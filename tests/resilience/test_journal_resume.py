"""JSONL run journal: checkpointing, corruption tolerance, bit-identical resume."""

import json
import warnings

import pytest

from repro.resilience.faults import FaultError, FaultPlan, FaultSpec, armed
from repro.resilience.journal import JOURNAL_VERSION, JournalError, RunJournal
from repro.suite import Harness
from repro.suite.matrices import SUITE
from repro.suite.storage import record_to_blob

#: wall-clock fields that legitimately differ between two computations
TIMING_FIELDS = {"inspector_seconds", "stage_seconds", "schedule_cached"}


def _strip(record):
    return {k: v for k, v in record.__dict__.items() if k not in TIMING_FIELDS}


class TestJournalFormat:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}])
            j.append_failure({"matrix": "m2", "error_type": "E"})
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {"kind": "header", "version": JOURNAL_VERSION, "fingerprint": "abc"}
        assert rows[1] == {"kind": "matrix", "matrix": "m1", "records": [{"x": 1}]}
        assert rows[2] == {"kind": "failure", "failure": {"matrix": "m2", "error_type": "E"}}

    def test_reload_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}, {"x": 2}])
        back = RunJournal(path, fingerprint="abc", resume=True)
        assert back.completed == ["m1"]
        assert back.has("m1") and not back.has("m2")
        assert back.record_blobs_for("m1") == [{"x": 1}, {"x": 2}]
        back.close()

    def test_existing_journal_refused_without_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path, fingerprint="abc").close()
        with pytest.raises(JournalError, match="already exists"):
            RunJournal(path, fingerprint="abc")

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path, fingerprint="grid-a").close()
        with pytest.raises(JournalError, match="different grid"):
            RunJournal(path, fingerprint="grid-b", resume=True)

    def test_trailing_half_written_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "matrix", "matrix": "m2", "rec')  # kill -9 signature
        with pytest.warns(RuntimeWarning, match="torn trailing journal line"):
            back = RunJournal(path, fingerprint="abc", resume=True)
        assert back.completed == ["m1"]
        back.close()

    def test_torn_tail_is_truncated_so_appends_stay_parseable(self, tmp_path):
        # Regression: the torn line used to be merely *skipped*, leaving its
        # bytes in place for the append handle to splice the next checkpoint
        # onto — silently corrupting a healthy row.  Resume must truncate.
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}])
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "matrix", "matrix": "m2", "rec')
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            with RunJournal(path, fingerprint="abc", resume=True) as back:
                back.append_matrix("m3", [{"y": 2}])
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r.get("matrix") for r in rows] == [None, "m1", "m3"]
        # and a second resume sees both matrices with no warning at all
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with RunJournal(path, fingerprint="abc", resume=True) as again:
                assert again.completed == ["m1", "m3"]

    def test_torn_multibyte_tail_tolerated(self, tmp_path):
        # a kill mid-append can cut a UTF-8 sequence in half; resume must
        # treat that like any other torn tail, not die on a decode error
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}])
        with open(path, "ab") as fh:
            fh.write('{"kind": "matrix", "matrix": "é'.encode("utf-8")[:-1])
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            back = RunJournal(path, fingerprint="abc", resume=True)
        assert back.completed == ["m1"]
        back.close()

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, fingerprint="abc") as j:
            j.append_matrix("m1", [{"x": 1}])
        text = path.read_text().splitlines()
        text[1] = "NOT JSON"
        path.write_text("\n".join(text + ['{"kind": "matrix", "matrix": "m2", "records": []}']) + "\n")
        with pytest.raises(JournalError, match="corrupt journal line"):
            RunJournal(path, fingerprint="abc", resume=True)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "matrix", "matrix": "m", "records": []}\n')
        with pytest.raises(JournalError, match="not a journal header"):
            RunJournal(path, resume=True)


class TestHarnessResume:
    @pytest.fixture(scope="class")
    def specs(self):
        return SUITE[:3]

    @pytest.fixture(scope="class")
    def harness_kwargs(self):
        return dict(kernels=("sptrsv",), algorithms=("hdagg", "wavefront"))

    def test_killed_run_resumes_bit_identically(self, tmp_path, specs, harness_kwargs):
        path = tmp_path / "grid.jsonl"
        # first run dies on the second matrix (an injected crash playing the
        # role of kill -9 after the first checkpoint was fsync'd)
        plan = FaultPlan([FaultSpec("suite.matrix", "raise", at=1)])
        h1 = Harness(**harness_kwargs)
        with armed(plan):
            with pytest.raises(RuntimeError, match=specs[1].name):
                h1.run_suite(specs, journal=str(path))
        j = RunJournal(path, resume=True)
        assert j.completed == [specs[0].name]
        first_blobs = j.record_blobs_for(specs[0].name)
        j.close()

        # the resumed run replays the checkpoint verbatim and finishes the rest
        h2 = Harness(**harness_kwargs)
        resumed = h2.run_suite(specs, journal=str(path))
        reference = Harness(**harness_kwargs).run_suite(specs)
        assert [_strip(r) for r in resumed] == [_strip(r) for r in reference]
        # bit-identical: the first matrix's rows are the journaled bytes,
        # wall-clock fields included
        n0 = len(first_blobs)
        assert [record_to_blob(r) for r in resumed[:n0]] == first_blobs

    def test_fingerprint_guards_grid_changes(self, tmp_path, specs, harness_kwargs):
        path = tmp_path / "grid.jsonl"
        h = Harness(**harness_kwargs)
        h.run_suite(specs[:1], journal=str(path))
        other = Harness(kernels=("spic0",), algorithms=("wavefront",))
        with pytest.raises(JournalError, match="different grid"):
            other.run_suite(specs[:1], journal=str(path))

    def test_failures_are_journaled(self, tmp_path, specs, harness_kwargs):
        path = tmp_path / "grid.jsonl"
        plan = FaultPlan([FaultSpec("suite.matrix", "raise", at=0, match=specs[0].name)])
        h = Harness(**harness_kwargs)
        with armed(plan):
            records = h.run_suite(specs[:2], journal=str(path), isolate_failures=True)
        assert records  # the healthy matrix still ran
        j = RunJournal(path, resume=True)
        assert [f["matrix"] for f in j.failures] == [specs[0].name]
        assert j.failures[0]["error_type"] == "FaultError"
        j.close()
