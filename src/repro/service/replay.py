"""Zipf/Poisson traffic replay: the serving layer's load benchmark.

Production schedule traffic is skewed — a handful of factorisation
patterns (the head of a Zipf distribution) dominate requests, with a long
tail of novel structures forcing fresh inspections.  The replay models
exactly that: ``n_requests`` arrivals over a catalog of ``n_structures``
seeded matrices, structure popularity ``∝ 1/rank^s``, inter-arrival gaps
drawn from an exponential distribution (a Poisson process) and enforced
with ``asyncio.sleep``, all driven through the real
:class:`~repro.service.frontdoor.FrontDoor` → broker → store stack.

The report carries the serving-quality numbers the roadmap names as
first-class series: **p50/p99 latency** over successful requests and the
**cache hit rate** (requests served without a fresh inspection).
:func:`record_replay` turns a report into a perf-lab
:class:`~repro.perflab.protocol.Observation` (benchmark
``service_replay``; p50/p99/hit-rate — plus per-tier p50/p99/share
channels — ride in the stage channel so the trajectory's
``stage_medians`` surfaces them) and merges it into the repo's
``BENCH_trajectory.json`` without disturbing the inspector series.

Latency aggregation is *streaming*: per-request latencies land in shared
:class:`~repro.observability.metrics.Histogram` instances (overall and
per resolution tier) plus a fixed-size seeded reservoir sample for the
perf-lab's bootstrap stats — memory stays bounded no matter how many
requests replay, which is what the roadmap's millions-of-requests regime
needs (``benchmarks/smoke_telemetry.py`` gates it at 10⁶ synthetic
requests).

Everything is seeded — two replays with the same config produce the same
request sequence, which is what lets the CI smoke gate on it.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph.dag import DAG
from ..kernels import KERNELS
from ..observability.metrics import Histogram, MetricsRegistry
from ..observability.spans import Tracer
from ..observability.state import observed
from ..observability.telemetry import (
    LATENCY_BUCKETS,
    MetricsSnapshotter,
    validate_request_trees,
)
from ..perflab.fingerprint import collect_fingerprint
from ..perflab.history import HistoryStore, load_trajectory, write_trajectory
from ..perflab.protocol import Observation, ObservationKey
from ..sparse import banded_spd, lower_triangle, poisson2d, power_law_spd, random_spd
from ..store.store import ScheduleStore
from .broker import ScheduleBroker, ServeRequest, ServiceRejected
from .frontdoor import FrontDoor

__all__ = [
    "LatencyReservoir",
    "ReplayConfig",
    "ReplayReport",
    "build_catalog",
    "zipf_weights",
    "run_replay",
    "run_replay_with_telemetry",
    "replay_observation",
    "record_replay",
]


class LatencyReservoir:
    """Seeded fixed-size uniform sample over an unbounded stream.

    Vitter's algorithm R: the first ``cap`` values are kept, after which
    each new value replaces a random slot with probability ``cap/seen``.
    The result is a uniform sample of everything observed, in O(cap)
    memory — what lets :func:`replay_observation` keep feeding real
    latency samples to the perf-lab bootstrap after the per-request list
    was removed.  Seeded, so a replay's sample is reproducible.
    """

    __slots__ = ("cap", "seen", "values", "_rng")

    def __init__(self, cap: int = 4096, seed: int = 0) -> None:
        if cap < 1:
            raise ValueError("reservoir cap must be >= 1")
        self.cap = cap
        self.seen = 0
        self.values: List[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.cap:
            self.values.append(float(value))
            return
        j = int(self._rng.integers(0, self.seen))
        if j < self.cap:
            self.values[j] = float(value)

    def add_many(self, values: Union[np.ndarray, List[float]]) -> None:
        vals = np.asarray(values, dtype=float)
        n = int(vals.size)
        if n == 0:
            return
        head = max(0, min(self.cap - len(self.values), n))
        if head:
            self.values.extend(float(v) for v in vals[:head])
            self.seen += head
        if head == n:
            return
        # vectorised replacement draws: slot j ~ U[0, seen) per value
        tail = vals[head:]
        seen = self.seen + np.arange(1, tail.size + 1)
        slots = (self._rng.random(tail.size) * seen).astype(np.int64)
        self.seen += int(tail.size)
        hits = np.nonzero(slots < self.cap)[0]
        for i in hits:
            self.values[int(slots[i])] = float(tail[int(i)])


@dataclass
class ReplayConfig:
    """One replay experiment, fully seeded."""

    n_requests: int = 300
    n_structures: int = 4
    zipf_s: float = 1.2
    seed: int = 0
    kernel: str = "sptrsv"
    algorithm: str = "hdagg"
    p: int = 8
    concurrency: int = 8
    max_pending: int = 64
    max_inflight: int = 8
    deadline: Optional[float] = None
    #: mean arrival rate in requests/second for the Poisson process;
    #: 0 disables pacing (a closed-loop stampede — useful for shed tests)
    arrival_rate: float = 0.0
    #: directory for the persistent store; ``None`` serves from L1 only
    store_root: Optional[str] = None

    def label(self) -> str:
        return f"zipf{self.n_structures}_s{self.zipf_s:g}"


@dataclass
class ReplayReport:
    """What one replay run measured (streaming — O(1) per request).

    Latencies are aggregated into the shared
    :class:`~repro.observability.metrics.Histogram` (overall plus one per
    resolution tier) and a seeded :class:`LatencyReservoir`; quantiles
    are bucket-interpolated, so ``p50``/``p99`` no longer require a
    retained per-request list.
    """

    config: ReplayConfig
    latency: Histogram = field(
        default_factory=lambda: Histogram("replay.latency", LATENCY_BUCKETS)
    )
    tier_latency: Dict[str, Histogram] = field(default_factory=dict)
    sample: Optional[LatencyReservoir] = None
    n_ok: int = 0
    sources: Dict[str, int] = field(default_factory=dict)
    n_rejected: int = 0
    n_degraded: int = 0
    hit_rate: float = 0.0
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.sample is None:
            self.sample = LatencyReservoir(seed=self.config.seed)

    def observe(self, source: str, seconds: float) -> None:
        """Record one successful request served from ``source``."""
        self.n_ok += 1
        self.latency.observe(seconds)
        hist = self.tier_latency.get(source)
        if hist is None:
            hist = self.tier_latency[source] = Histogram(
                f"replay.latency.{source}", LATENCY_BUCKETS
            )
        hist.observe(seconds)
        assert self.sample is not None
        self.sample.add(seconds)
        self.sources[source] = self.sources.get(source, 0) + 1

    def observe_many(self, source: str, seconds: Union[np.ndarray, List[float]]) -> None:
        """Bulk-record latencies (the memory-bounded smoke's entry point)."""
        vals = np.asarray(seconds, dtype=float)
        if vals.size == 0:
            return
        self.n_ok += int(vals.size)
        self.latency.observe_many(vals)
        hist = self.tier_latency.get(source)
        if hist is None:
            hist = self.tier_latency[source] = Histogram(
                f"replay.latency.{source}", LATENCY_BUCKETS
            )
        hist.observe_many(vals)
        assert self.sample is not None
        self.sample.add_many(vals)
        self.sources[source] = self.sources.get(source, 0) + int(vals.size)

    def quantile(self, q: float) -> float:
        """Latency quantile over successful requests (0 when none)."""
        v = self.latency.quantile(q)
        return float(v) if v is not None else 0.0

    def tier_quantile(self, source: str, q: float) -> float:
        hist = self.tier_latency.get(source)
        if hist is None:
            return 0.0
        v = hist.quantile(q)
        return float(v) if v is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "n_requests": self.config.n_requests,
            "n_structures": self.config.n_structures,
            "zipf_s": self.config.zipf_s,
            "seed": self.config.seed,
            "kernel": self.config.kernel,
            "algorithm": self.config.algorithm,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_degraded": self.n_degraded,
            "sources": dict(self.sources),
            "hit_rate": self.hit_rate,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "wall_seconds": self.wall_seconds,
            "tiers": {
                src: {
                    "count": self.sources.get(src, 0),
                    "p50_seconds": self.tier_quantile(src, 0.50),
                    "p99_seconds": self.tier_quantile(src, 0.99),
                }
                for src in sorted(self.tier_latency)
            },
        }


#: seeded structure builders, cycled (with shifted seeds) past four
_BUILDERS = (
    lambda s: poisson2d(12 + 2 * (s % 3), seed=s),
    lambda s: banded_spd(160, 6, seed=3 + s),
    lambda s: random_spd(150, 4.0, seed=7 + s),
    lambda s: power_law_spd(150, 5.0, seed=11 + s),
)


def build_catalog(
    n_structures: int, kernel: str, *, seed: int = 0
) -> List[Tuple[str, DAG, np.ndarray]]:
    """``n_structures`` named (DAG, cost) inspection problems for ``kernel``."""
    if n_structures < 1:
        raise ValueError("n_structures must be >= 1")
    k = KERNELS[kernel]
    catalog: List[Tuple[str, DAG, np.ndarray]] = []
    for i in range(n_structures):
        builder = _BUILDERS[i % len(_BUILDERS)]
        a = builder(seed + i // len(_BUILDERS))
        operand = lower_triangle(a) if kernel == "sptrsv" else a
        catalog.append((f"struct{i:02d}", k.dag(operand), k.cost(operand)))
    return catalog


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised Zipf popularity: weight of rank ``k`` ∝ ``1/(k+1)^s``."""
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return w / w.sum()


async def _drive(
    door: FrontDoor,
    requests: List[ServeRequest],
    gaps: np.ndarray,
    report: ReplayReport,
) -> None:
    arrivals = np.cumsum(gaps)

    async def one(i: int, req: ServeRequest) -> None:
        if arrivals[i] > 0:
            await asyncio.sleep(float(arrivals[i]))
        t0 = time.perf_counter()
        try:
            result = await door.submit(req)
        except ServiceRejected:
            report.n_rejected += 1
            return
        report.observe(result.source, time.perf_counter() - t0)
        if result.degraded:
            report.n_degraded += 1

    await asyncio.gather(*(one(i, r) for i, r in enumerate(requests)))


def run_replay(config: ReplayConfig) -> ReplayReport:
    """Execute one replay through a fresh front door / broker / store."""
    rng = np.random.default_rng(config.seed)
    catalog = build_catalog(config.n_structures, config.kernel, seed=config.seed)
    weights = zipf_weights(config.n_structures, config.zipf_s)
    picks = rng.choice(config.n_structures, size=config.n_requests, p=weights)
    if config.arrival_rate > 0:
        gaps = rng.exponential(1.0 / config.arrival_rate, size=config.n_requests)
    else:
        gaps = np.zeros(config.n_requests)

    store = (
        ScheduleStore(config.store_root) if config.store_root is not None else None
    )
    broker = ScheduleBroker(store, max_inflight=config.max_inflight)
    requests = [
        ServeRequest(
            g=catalog[i][1],
            cost=catalog[i][2],
            kernel=config.kernel,
            algorithm=config.algorithm,
            p=config.p,
            deadline=config.deadline,
        )
        for i in picks
    ]
    report = ReplayReport(config=config)
    t0 = time.perf_counter()
    with FrontDoor(
        broker, max_workers=config.concurrency, max_pending=config.max_pending
    ) as door:
        asyncio.run(_drive(door, requests, gaps, report))
    report.wall_seconds = time.perf_counter() - t0
    report.hit_rate = broker.stats.hit_rate
    return report


def run_replay_with_telemetry(
    config: ReplayConfig,
    out_dir: str,
    *,
    snapshot_interval: float = 0.5,
) -> Tuple[ReplayReport, Tracer, MetricsRegistry]:
    """Replay with the ambient observability switch on, archiving artifacts.

    Writes into ``out_dir``: ``spans.jsonl`` (raw span log),
    ``trace.json`` (Chrome/Perfetto ``trace_event`` with cross-thread
    handoff arrows), ``metrics.jsonl`` (periodic registry snapshots),
    ``metrics.prom`` (Prometheus text exposition), and ``replay.json``
    (the report plus the span-tree validation verdict) — everything
    ``hdagg-bench service stats|dash`` consumes.
    """
    import json as _json

    from ..observability.export import (
        write_chrome_trace,
        write_prometheus,
        write_spans_jsonl,
    )

    os.makedirs(out_dir, exist_ok=True)
    tracer = Tracer()
    registry = MetricsRegistry()
    snap = MetricsSnapshotter(
        registry, os.path.join(out_dir, "metrics.jsonl"), interval=snapshot_interval
    )
    with observed(tracer, registry):
        snap.start()
        try:
            report = run_replay(config)
        finally:
            snap.stop()
    spans = tracer.spans
    write_spans_jsonl(spans, os.path.join(out_dir, "spans.jsonl"))
    write_chrome_trace(os.path.join(out_dir, "trace.json"), spans, label="service replay")
    write_prometheus(os.path.join(out_dir, "metrics.prom"), registry.as_dict())
    problems = validate_request_trees(spans)
    doc = {"report": report.as_dict(), "span_problems": problems}
    with open(os.path.join(out_dir, "replay.json"), "w", encoding="utf-8") as fh:
        _json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return report, tracer, registry


def replay_observation(report: ReplayReport, *, note: str = "") -> Observation:
    """Lift a replay report into a perf-lab observation.

    ``timings`` are the reservoir's latency sample (the protocol's
    bootstrap stats then describe the latency distribution); p50/p99/
    hit-rate ride in the stage channel — joined by per-tier
    ``tier/<source>/p50|p99|share`` channels so a ``service_replay``
    regression names the tier that moved — where the trajectory snapshot
    surfaces them as ``stage_medians``.
    """
    cfg = report.config
    key = ObservationKey(
        benchmark="service_replay",
        matrix=cfg.label(),
        kernel=cfg.kernel,
        algorithm=cfg.algorithm,
    )
    stages: Dict[str, List[float]] = {
        "p50": [report.p50],
        "p99": [report.p99],
        "hit_rate": [report.hit_rate],
    }
    for src in sorted(report.tier_latency):
        stages[f"tier/{src}/p50"] = [report.tier_quantile(src, 0.50)]
        stages[f"tier/{src}/p99"] = [report.tier_quantile(src, 0.99)]
        share = report.sources.get(src, 0) / report.n_ok if report.n_ok else 0.0
        stages[f"tier/{src}/share"] = [share]
    assert report.sample is not None
    return Observation(
        key=key,
        timings=list(report.sample.values),
        stages=stages,
        fingerprint=collect_fingerprint(benchmark="service_replay"),
        warmup=0,
        target_rel_ci=0.0,
        confidence=0.95,
        seed=cfg.seed,
        converged=True,
        note=note
        or (
            f"n={cfg.n_requests} structures={cfg.n_structures} s={cfg.zipf_s:g} "
            f"hit_rate={report.hit_rate:.3f} rejected={report.n_rejected}"
        ),
    )


def _merge_trajectory(store: HistoryStore, path: str) -> dict:
    """Rewrite ``path`` with this history's series merged over the existing.

    ``write_trajectory`` regenerates a snapshot wholesale from one store;
    the replay history is a *different* store from the inspector history,
    so a plain rewrite would erase the inspector series.  Merge instead:
    series and fingerprints already in the snapshot are kept unless this
    store has a fresher version of the same (key, fingerprint) series.
    """
    tmp = f"{path}.replay-tmp"
    try:
        doc_new = write_trajectory(store, tmp, generated_by="repro.service.replay")
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    if not os.path.exists(path):
        doc = doc_new
    else:
        doc = load_trajectory(path)
        merged = {
            (json_key(s["key"]), s["fingerprint_digest"]): s for s in doc["series"]
        }
        for s in doc_new["series"]:
            merged[(json_key(s["key"]), s["fingerprint_digest"])] = s
        doc["series"] = [merged[k] for k in sorted(merged)]
        doc["fingerprints"] = {**doc["fingerprints"], **doc_new["fingerprints"]}
    import json as _json

    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        _json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def json_key(key_dict: dict) -> str:
    """Stable string identity for an observation-key dict."""
    import json as _json

    return _json.dumps(key_dict, sort_keys=True)


def record_replay(
    report: ReplayReport,
    history_path: str,
    trajectory_path: Optional[str] = None,
) -> Observation:
    """Append the report to a perf-lab history and update the trajectory."""
    obs = replay_observation(report)
    store = HistoryStore(history_path)
    store.append(obs)
    if trajectory_path:
        _merge_trajectory(store, trajectory_path)
    return obs
