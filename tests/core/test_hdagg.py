"""End-to-end tests for the HDagg inspector (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import DEFAULT_EPSILON, hdagg
from repro.graph import dag_from_matrix_lower, verify_schedule_order
from repro.kernels import KERNELS
from repro.sparse import lower_triangle

from ..conftest import assert_valid_schedule


@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_valid_on_every_family(all_small_matrices, p):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        cost = KERNELS["spilu0"].cost(a)
        s = hdagg(g, cost, p)
        s.validate(g)
        assert s.algorithm == "hdagg"
        assert verify_schedule_order(g, s.execution_order()), name


def test_numerics_all_kernels(mesh_nd, rng):
    b = rng.normal(size=mesh_nd.n_rows)
    for kname, kernel in KERNELS.items():
        operand = lower_triangle(mesh_nd) if kname == "sptrsv" else mesh_nd
        g = kernel.dag(operand)
        s = hdagg(g, kernel.cost(operand), 4)
        assert_valid_schedule(s, g, kernel, operand, b)


def test_width_bounded_by_p_when_packed(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 3, epsilon=0.5)
    if not s.fine_grained:
        assert all(len(level) <= 3 for level in s.levels)


def test_bins_sorted_smallest_id_first(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 4)
    for _, part in s.iter_partitions():
        assert np.all(np.diff(part.vertices) > 0)


def test_meta_diagnostics(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 4)
    for key in (
        "n_groups",
        "n_edges_original",
        "n_edges_reduced",
        "n_coarse_wavefronts",
        "accumulated_pgp",
        "epsilon",
    ):
        assert key in s.meta
    assert s.meta["epsilon"] == DEFAULT_EPSILON
    assert s.meta["n_edges_reduced"] <= s.meta["n_edges_original"]


def test_coarsening_reduces_levels(blocks):
    """On an embarrassingly parallel DAG, HDagg merges all wavefronts."""
    g = dag_from_matrix_lower(blocks)
    from repro.graph import compute_wavefronts

    s = hdagg(g, np.ones(g.n), 2)
    assert s.n_levels < compute_wavefronts(g).n_levels
    assert s.n_levels == 1


def test_ablation_switches(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    cost = np.ones(g.n)
    full = hdagg(g, cost, 4)
    no_step1 = hdagg(g, cost, 4, aggregate=False)
    no_tr = hdagg(g, cost, 4, transitive_reduce=False)
    no_pack = hdagg(g, cost, 4, bin_pack=False)
    for s in (full, no_step1, no_tr, no_pack):
        s.validate(g)
    assert no_step1.meta["n_groups"] == g.n
    assert no_pack.fine_grained


def test_step1_groups_on_kite(kite):
    g = dag_from_matrix_lower(kite)
    s = hdagg(g, np.ones(g.n), 2)
    s.validate(g)
    assert s.meta["n_groups"] < g.n  # cliques collapse into subtree groups


def test_epsilon_monotonicity(mesh_nd):
    """Looser epsilon never yields more coarsened wavefronts."""
    g = dag_from_matrix_lower(mesh_nd)
    cost = np.ones(g.n)
    tight = hdagg(g, cost, 4, epsilon=0.05)
    loose = hdagg(g, cost, 4, epsilon=0.9)
    assert loose.meta["n_coarse_wavefronts"] <= tight.meta["n_coarse_wavefronts"]


def test_p1_single_core(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 1)
    s.validate(g)
    # one core: everything merges into one coarsened wavefront
    assert s.n_levels == 1


def test_empty_graph():
    from repro.graph import DAG

    s = hdagg(DAG.empty(0), np.zeros(0), 4)
    assert s.n == 0
    assert s.n_levels == 0


def test_cost_length_checked(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    with pytest.raises(ValueError):
        hdagg(g, np.ones(3), 4)


def test_deterministic(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    cost = KERNELS["spilu0"].cost(mesh_nd)
    s1 = hdagg(g, cost, 4)
    s2 = hdagg(g, cost, 4)
    assert s1.execution_order().tolist() == s2.execution_order().tolist()
    assert s1.core_assignment().tolist() == s2.core_assignment().tolist()
