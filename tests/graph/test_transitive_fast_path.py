"""Differential tests: vectorized transitive-edge mask vs the retained
row-by-row reference (`transitive_edge_mask_reference`).

The fast path answers "is edge (i, f) present in the A@A structure?" with
one merged searchsorted pass over encoded ``row * n + col`` keys; the
reference loops rows with ``np.isin``.  They must agree exactly on every
input — the mask feeds the reduction that every later inspector stage
builds on.
"""

import numpy as np

from repro.graph import (
    DAG,
    dag_from_matrix_lower,
    transitive_edge_mask,
    transitive_edge_mask_reference,
    transitive_reduction_two_hop,
)
from repro.sparse import lower_triangle, random_spd, symbolic_cholesky


def _random_dag(rng, n, density):
    src, dst = [], []
    for j in range(1, n):
        for i in range(j):
            if rng.random() < density:
                src.append(i)
                dst.append(j)
    return DAG.from_edges(
        n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )


def test_mask_matches_reference_on_random_dags():
    rng = np.random.default_rng(1234)
    for _ in range(60):
        n = int(rng.integers(1, 40))
        g = _random_dag(rng, n, float(rng.uniform(0.02, 0.5)))
        fast = transitive_edge_mask(g)
        ref = transitive_edge_mask_reference(g)
        assert np.array_equal(fast, ref)


def test_mask_empty_dag():
    g = DAG.from_edges(0, [], [])
    assert transitive_edge_mask(g).shape == (0,)
    g5 = DAG.from_edges(5, [], [])  # vertices, no edges
    assert np.array_equal(transitive_edge_mask(g5), np.zeros(0, dtype=bool))


def test_mask_single_chain():
    g = DAG.from_edges(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
    mask = transitive_edge_mask(g)
    assert not mask.any()  # a chain has no two-hop shortcut edges
    assert np.array_equal(mask, transitive_edge_mask_reference(g))


def test_mask_star():
    # star: one source feeding many sinks — no length-2 paths at all
    n = 9
    g = DAG.from_edges(n, [0] * (n - 1), list(range(1, n)))
    mask = transitive_edge_mask(g)
    assert not mask.any()
    assert np.array_equal(mask, transitive_edge_mask_reference(g))


def test_mask_chain_with_shortcuts():
    # chain 0->1->2->3 plus shortcuts 0->2, 1->3: both shortcuts removable
    g = DAG.from_edges(4, [0, 1, 2, 0, 1], [1, 2, 3, 2, 3])
    mask = transitive_edge_mask(g)
    assert np.array_equal(mask, transitive_edge_mask_reference(g))
    r = transitive_reduction_two_hop(g)
    assert r.n_edges == 3


def test_mask_chordal_factor_reduces_to_elimination_tree():
    # the filled Cholesky factor of an SPD pattern is chordal; its lower
    # triangle's DAG must reduce so each vertex keeps exactly one out-edge
    # (the elimination-tree parent), except the root
    a = random_spd(24, 3.0, seed=5)
    filled = symbolic_cholesky(a)
    g = dag_from_matrix_lower(lower_triangle(filled))
    assert np.array_equal(
        transitive_edge_mask(g), transitive_edge_mask_reference(g)
    )
    r = transitive_reduction_two_hop(g)
    out_deg = r.out_degree()
    assert np.all(out_deg <= 1)
