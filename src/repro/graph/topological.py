"""Topological ordering and acyclicity checks (Kahn's algorithm, vectorized).

Used to validate DAG construction, to drive the general (non id-topological)
paths of the inspectors, and by the DAGP baseline whose coarse partitions
need an explicit topological order.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import INDEX_DTYPE
from .dag import DAG, gather_slices

__all__ = ["topological_order", "is_acyclic", "CycleError", "verify_schedule_order"]


class CycleError(ValueError):
    """Raised when a graph expected to be acyclic contains a cycle."""


def topological_order(g: DAG) -> np.ndarray:
    """Return a topological order of ``g`` (Kahn, level-synchronous).

    Frontiers are processed in ascending vertex id, so the order is
    deterministic.  Raises :class:`CycleError` if the graph has a cycle.
    """
    indeg = g.in_degree().copy()
    order = np.empty(g.n, dtype=INDEX_DTYPE)
    frontier = np.nonzero(indeg == 0)[0].astype(INDEX_DTYPE)
    filled = 0
    while frontier.size:
        order[filled : filled + frontier.size] = frontier
        filled += frontier.size
        touched = gather_slices(g.indptr, g.indices, frontier)
        if touched.size:
            dec = np.bincount(touched, minlength=g.n)
            indeg -= dec
            # A vertex enters the next frontier when its in-degree reaches 0
            # in this round (dec > 0 filters out untouched zeros).
            frontier = np.nonzero((indeg == 0) & (dec > 0))[0].astype(INDEX_DTYPE)
        else:
            frontier = np.empty(0, dtype=INDEX_DTYPE)
    if filled != g.n:
        raise CycleError(f"graph has a cycle ({g.n - filled} vertices unreachable)")
    return order


def is_acyclic(g: DAG) -> bool:
    """True when ``g`` contains no directed cycle."""
    try:
        topological_order(g)
        return True
    except CycleError:
        return False


def verify_schedule_order(g: DAG, execution_order: np.ndarray) -> bool:
    """True when ``execution_order`` respects every edge of ``g``.

    ``execution_order`` lists vertex ids in the order they (notionally)
    complete; an edge ``u -> v`` is satisfied when ``u`` appears before ``v``.
    Used by the dependence-checking executor and the schedule validators.
    """
    execution_order = np.asarray(execution_order, dtype=INDEX_DTYPE)
    if execution_order.shape[0] != g.n or np.any(
        np.sort(execution_order) != np.arange(g.n)
    ):
        raise ValueError("execution_order must be a permutation of the vertices")
    position = np.empty(g.n, dtype=INDEX_DTYPE)
    position[execution_order] = np.arange(g.n, dtype=INDEX_DTYPE)
    src, dst = g.edge_list()
    return bool(np.all(position[src] < position[dst]))
