"""Tests for Schedule.reversed(): one inspection, both triangular sweeps."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.graph import dag_from_matrix_lower, verify_schedule_order
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


@pytest.fixture(scope="module")
def setup(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    return low, g, kernel.cost(low)


@pytest.mark.parametrize("algo", ["hdagg", "wavefront", "spmp", "lbc"])
def test_reversed_valid_for_reversed_dag(setup, algo):
    low, g, cost = setup
    s = SCHEDULERS[algo](g, cost, 4)
    r = s.reversed()
    r.validate(g.reverse())
    assert verify_schedule_order(g.reverse(), r.execution_order())


def test_reversed_preserves_shape(setup):
    low, g, cost = setup
    s = hdagg(g, cost, 4)
    r = s.reversed()
    assert r.n_levels == s.n_levels
    assert r.n_partitions == s.n_partitions
    assert r.n_cores == s.n_cores
    assert r.sync == s.sync
    assert r.algorithm.endswith("-reversed")
    assert r.meta["reversed"]


def test_double_reverse_is_identity_up_to_name(setup):
    low, g, cost = setup
    s = hdagg(g, cost, 4)
    rr = s.reversed().reversed()
    assert rr.execution_order().tolist() == s.execution_order().tolist()
    assert rr.core_assignment().tolist() == s.core_assignment().tolist()


def test_reversed_drives_transpose_solve(setup, rng):
    """Execute L^T x = b with the reversed forward schedule, column-wise."""
    low, g, cost = setup
    s = hdagg(g, cost, 4)
    order = s.reversed().execution_order()
    b = rng.normal(size=low.n_rows)

    # column-oriented backward substitution following the reversed order:
    # when vertex i is processed, all its DAG children (rows depending on
    # x[i] in the forward solve == producers of contributions in L^T) are
    # already finalised.
    x = b.copy()
    done = np.zeros(low.n_rows, dtype=bool)
    indptr, indices, data = low.indptr, low.indices, low.data
    for i in order.tolist():
        lo, hi = indptr[i], indptr[i + 1]
        x[i] /= data[hi - 1]
        cols = indices[lo : hi - 1]
        # scatter targets must still be pending (they come later in the
        # reversed order) — this IS the dependence property being reused
        assert not done[cols].any()
        x[cols] -= data[lo : hi - 1] * x[i]
        done[i] = True
    from repro.kernels import sptrsv_transpose_reference

    np.testing.assert_allclose(x, sptrsv_transpose_reference(low, b), rtol=1e-10)
