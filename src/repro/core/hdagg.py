"""The HDagg inspector: Algorithm 1 end to end.

``hdagg(G, C, p, epsilon)`` mirrors Listing 2's ``HDagg(G, C, num_cores(),
epsilon())``: it takes the kernel's dependence DAG, the per-iteration cost
function, the core count, and the load-balance threshold, and returns a
:class:`~repro.core.schedule.Schedule` of coarsened wavefronts made of
width-partitions.

Pipeline:

1. *Aggregating densely connected vertices* — two-hop transitive reduction,
   subtree grouping, coarsened DAG ``G''``
   (:mod:`repro.core.aggregation`).
2. *LBP wavefront coarsening* — merge wavefronts of ``G''`` under the PGP
   threshold with first-fit bin packing (:mod:`repro.core.lbp`).
3. Expansion back to original iteration ids, smallest-id-first inside each
   bin (the spatial-locality rule of Section IV-C).

Since the pass-pipeline refactor the stages live in
:mod:`repro.passes.hdagg` as a declarative pass group with per-stage
contracts; this module keeps the public entry point, the expansion stage
implementation (it is also a backend-registry stage), and the driver that
seeds the :class:`~repro.passes.base.PassContext`.  The keyword switches
(``aggregate``, ``transitive_reduce``, ``bin_pack``) exist for the
ablation studies and select contract-weakened pass-group variants; the
defaults are the paper's algorithm.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.coarsen import Grouping
from ..graph.dag import DAG, gather_slices
from ..observability.state import STATE as _OBS_STATE
from ..passes import PassContext, build_hdagg_group, run_group
from ..runtime.perf import StageTimer
from ..sparse.csr import INDEX_DTYPE
from .backends import BackendSpec
from .lbp import LBPResult
from .pgp import DEFAULT_EPSILON
from .schedule import Schedule, WidthPartition

__all__ = ["hdagg", "expand_lbp_to_schedule"]


def _expand_bin(grouping: Grouping, coarse_ids: np.ndarray) -> np.ndarray:
    """Original vertex ids of a set of coarse vertices, smallest id first."""
    members = [grouping.groups[int(c)] for c in coarse_ids]
    return np.sort(np.concatenate(members)) if members else np.empty(0, dtype=INDEX_DTYPE)


def _grouping_csr(grouping: Grouping) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a grouping into CSR form: members of group ``i`` are
    ``flat[ptr[i]:ptr[i+1]]`` in ascending id order."""
    labels = grouping.labels
    flat = np.argsort(labels, kind="stable").astype(INDEX_DTYPE, copy=False)
    ptr = np.zeros(grouping.n_groups + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(labels, minlength=grouping.n_groups), out=ptr[1:])
    return ptr, flat


def _expand_cw(
    cw, fine_grained: bool, gptr: np.ndarray, gflat: np.ndarray,
    gsize: np.ndarray, p: int,
) -> List[WidthPartition]:
    """Expand one coarsened wavefront into its width-partitions.

    Expands the whole coarsened wavefront at once: gather every member
    vertex, tag it with its target bucket (bin, or component in
    fine-grained mode), and one lexsort by (bucket, id) yields each
    partition's smallest-id-first vertex list as a slice.  Shared by the
    full expansion and the incremental repair path, which re-expands only
    the coarsened wavefronts inside the dirty window.
    """
    sizes = np.asarray([c.shape[0] for c in cw.components], dtype=INDEX_DTYPE)
    coarse_all = np.concatenate(cw.components)
    comp_of_coarse = np.repeat(np.arange(sizes.shape[0], dtype=INDEX_DTYPE), sizes)
    if fine_grained:
        bucket_of_coarse = comp_of_coarse
        n_buckets = sizes.shape[0]
        cores = np.full(n_buckets, -1, dtype=INDEX_DTYPE)
    else:
        bucket_of_coarse = cw.packing.assignment[comp_of_coarse]
        n_buckets = p
        cores = np.arange(p, dtype=INDEX_DTYPE)
    verts = gather_slices(gptr, gflat, coarse_all)
    bucket = np.repeat(bucket_of_coarse, gsize[coarse_all])
    order = np.lexsort((verts, bucket))
    sv = verts[order]
    ptr = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(np.bincount(bucket, minlength=n_buckets), out=ptr[1:])
    ptr_list = ptr.tolist()
    parts: List[WidthPartition] = []
    for b, core in enumerate(cores.tolist()):
        lo, hi = ptr_list[b], ptr_list[b + 1]
        if lo == hi:
            continue
        parts.append(WidthPartition(core=core, vertices=np.ascontiguousarray(sv[lo:hi])))
    return parts


def expand_lbp_to_schedule(
    lbp: LBPResult,
    grouping: Grouping,
    n: int,
    p: int,
    *,
    algorithm: str = "hdagg",
    sync: str = "barrier",
    meta: dict | None = None,
) -> Schedule:
    """Turn an :class:`LBPResult` over ``G''`` into a vertex-level schedule.

    Packed mode: each used bin of a coarsened wavefront becomes one
    width-partition pinned to that bin's core.  Fine-grained mode
    (Lines 36-38): every connected component becomes its own width-partition
    with ``core = -1`` for dynamic placement.
    """
    gptr, gflat = _grouping_csr(grouping)
    gsize = np.diff(gptr)

    levels: List[List[WidthPartition]] = []
    for cw in lbp.coarsened:
        if not cw.components:
            continue
        parts = _expand_cw(cw, lbp.fine_grained, gptr, gflat, gsize, p)
        if parts:
            levels.append(parts)
    return Schedule(
        n=n,
        levels=levels,
        sync=sync,
        algorithm=algorithm,
        n_cores=p,
        fine_grained=lbp.fine_grained,
        meta=meta or {},
    )


def hdagg(
    g: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    aggregate: bool = True,
    transitive_reduce: bool = True,
    bin_pack: bool = True,
    group_cost_cap_fraction: float | None = 0.25,
    sync: str = "barrier",
    backend: "BackendSpec | str | None" = None,
) -> Schedule:
    """Build the HDagg schedule for DAG ``g`` with vertex costs ``cost``.

    Parameters
    ----------
    g:
        Dependence DAG (id-topological, as produced by the kernel builders).
    cost:
        Per-iteration cost, length ``g.n`` (non-zeros touched).
    p:
        Number of physical cores (Listing 2's ``num_cores()``).
    epsilon:
        Load-balance threshold for PGP (Listing 2's ``epsilon()``).
    aggregate:
        Disable to skip step 1 entirely (ablation: every vertex is its own
        group).
    transitive_reduce:
        Disable to run subtree grouping on the raw DAG (ablation: shows why
        the reduction is what exposes subtrees).
    bin_pack:
        Disable to force fine-grained tasks regardless of accumulated PGP
        (ablation of Lines 36-38).
    group_cost_cap_fraction:
        Step-1 groups stop growing once their cost exceeds this fraction of
        one core's fair share (``total_cost / p``); keeps tree-shaped
        reduced DAGs (chordal inputs) from collapsing into one sequential
        group.  ``None`` reproduces the paper's uncapped listing.
    sync:
        ``"barrier"`` is the paper's executor (a global barrier between
        coarsened wavefronts).  ``"p2p"`` is an extension: width-partitions
        synchronise point-to-point like SpMP groups, letting coarsened
        wavefronts overlap — safe because width-partitions are connected
        components (no intra-level dependences by construction).
    backend:
        Per-stage implementation selection (:class:`BackendSpec`, its
        string grammar such as ``"lbp=compiled,coarsen=compiled"``, or
        ``None`` to read the ``REPRO_BACKENDS`` environment variable).
        Every tier is bit-identical; the spec only changes speed.
    """
    schedule, _ = _hdagg_pipeline(
        g, cost, p, epsilon,
        aggregate=aggregate, transitive_reduce=transitive_reduce,
        bin_pack=bin_pack, group_cost_cap_fraction=group_cost_cap_fraction,
        sync=sync, backend=backend,
    )
    return schedule


def _hdagg_pipeline(
    g: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    aggregate: bool = True,
    transitive_reduce: bool = True,
    bin_pack: bool = True,
    group_cost_cap_fraction: float | None = 0.25,
    sync: str = "barrier",
    backend: "BackendSpec | str | None" = None,
) -> tuple[Schedule, dict]:
    """Algorithm 1 with its intermediate artifacts exposed.

    Builds the context for the ``hdagg`` pass group (the ablation
    switches pick the group variant), runs it through the generic
    executor, and returns ``(schedule, internals)`` where ``internals``
    carries every stage product the incremental repair path needs
    (reduced DAG, grouping, coarse DAG, group costs, LBP result,
    effective backend description).  :func:`hdagg` is the thin public
    wrapper that drops the internals.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.shape[0] != g.n:
        raise ValueError(f"cost has length {cost.shape[0]}, expected {g.n}")
    spec = BackendSpec.coerce(backend)
    if g.n == 0:
        return (
            Schedule(n=0, levels=[], sync="barrier", algorithm="hdagg", n_cores=p),
            {"backend": spec.effective().describe()},
        )
    backend_used = spec.effective().describe()

    group = build_hdagg_group(
        aggregate=aggregate, transitive_reduce=transitive_reduce, bin_pack=bin_pack
    )
    timer = StageTimer()
    ctx = PassContext(
        {
            "DAG": g,
            "Cost": cost,
            "Cores": p,
            "Epsilon": epsilon,
            "Backend": backend_used,
        },
        timer=timer,
        spec=spec,
        options={
            "group_cost_cap_fraction": group_cost_cap_fraction,
            "bin_pack": bin_pack,
            "sync": sync,
        },
    )
    run_group(group, ctx)
    schedule = ctx["Schedule"]
    g_base, grouping = ctx["ReducedDAG"], ctx["Grouping"]
    g2, group_cost = ctx["CoarseDAG"], ctx["GroupCost"]
    lbp = ctx["CoarsenedWaves"]

    # per-stage seconds for NRE-style reporting; to_dict() drops non-JSON
    # meta values, so this never leaks into serialized schedules
    schedule.meta["stage_seconds"] = timer.as_dict()
    cap = (
        group_cost_cap_fraction * float(cost.sum()) / p
        if aggregate and group_cost_cap_fraction is not None
        else None
    )
    internals = {
        "g": g,
        "g_base": g_base,
        "grouping": grouping,
        "g2": g2,
        "group_cost": group_cost,
        "lbp": lbp,
        "backend": backend_used,
        "cap": cap,
    }
    if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
        # metrics are recorded post-hoc from the LBP decision log / packing
        # results, so the inspector hot loops stay untouched
        reg = _OBS_STATE.registry
        reg.counter("inspector.vertices").inc(g.n)
        reg.counter("inspector.vertices_coarsened").inc(g.n - g2.n)
        reg.gauge("inspector.coarse_vertices").set(g2.n)
        reg.gauge("inspector.accumulated_pgp").set(lbp.accumulated_pgp)
        pgp_hist = reg.histogram("inspector.pgp_at_merge")
        for decision in lbp.decisions or []:
            pgp_hist.observe(decision.pgp)
        occupancy = reg.histogram("binpack.occupancy")
        for cw in lbp.coarsened:
            if cw.packing is not None and p > 0:
                occupancy.observe(cw.packing.n_bins_used / p)
    return schedule, internals
