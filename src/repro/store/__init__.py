"""Persistent schedule storage: the durable half of scheduling-as-a-service.

Inspection is expensive and amortised across executions (the paper's NRE
analysis); this package makes the amortisation survive process death.  It
has two layers:

* :mod:`repro.store.codec` — a compact versioned binary format for
  :class:`~repro.core.schedule.Schedule` with a trailing CRC32, so every
  record is self-validating;
* :mod:`repro.store.store` — a sharded on-disk store keyed by
  :func:`~repro.core.schedule_cache.schedule_key` digests, with atomic
  writes, per-shard manifests for O(1) open, and quarantine-not-crash
  corruption handling.

The serving layer (:mod:`repro.service`) composes this store with the
in-process :class:`~repro.core.schedule_cache.ScheduleCache` as L2 behind
L1; the store is also usable standalone (e.g. to pre-warm a schedule
library for a fixed factorisation pattern).
"""

from .codec import CODEC_VERSION, CodecError, decode_schedule, encode_schedule
from .store import (
    STORE_FORMAT,
    AuditReport,
    QuarantineEvent,
    ScheduleStore,
    StoreError,
    StoreStats,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "decode_schedule",
    "encode_schedule",
    "STORE_FORMAT",
    "AuditReport",
    "QuarantineEvent",
    "ScheduleStore",
    "StoreError",
    "StoreStats",
]
