"""Traffic-replay smoke benchmark for the serving front door.

Replays a seeded Zipf/Poisson request stream (200 requests over 4
structures, exponent 1.2) through the real FrontDoor → ScheduleBroker →
ScheduleStore stack, prints the serving-quality numbers the roadmap
tracks — p50/p99 latency and cache hit rate — and appends them to a
perf-lab history (merging the ``service_replay`` series into a trajectory
snapshot when one is given).

Two hard sanity gates, both far from the measured values so only genuine
regressions trip them:

* every request must be served (the closed-loop replay is sized under the
  admission bounds — a shed here means admission control broke);
* the hit rate must stay above 0.8 (Zipf head + single-flight mean at
  most one inspection per structure: measured ≈ 0.98).

Latency is reported, not gated — CI runners are too noisy for an absolute
wall-clock bound; the warn-only perf-lab gate tracks it longitudinally.

Usage::

    PYTHONPATH=src python benchmarks/smoke_service.py [history] [trajectory]
"""

from __future__ import annotations

import sys
import tempfile

from repro.service.replay import ReplayConfig, record_replay, run_replay

MIN_HIT_RATE = 0.8


def main(history: str | None = None, trajectory: str | None = None) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        config = ReplayConfig(
            n_requests=200,
            n_structures=4,
            zipf_s=1.2,
            seed=0,
            kernel="sptrsv",
            algorithm="hdagg",
            p=8,
            concurrency=8,
            max_pending=256,
            max_inflight=8,
            store_root=f"{tmp}/store",
        )
        report = run_replay(config)
    print(
        f"service replay: {report.n_ok}/{config.n_requests} served, "
        f"{report.n_rejected} shed, {report.n_degraded} degraded, "
        f"{report.wall_seconds:.2f}s wall"
    )
    print(f"  p50      {report.p50 * 1e3:8.3f} ms")
    print(f"  p99      {report.p99 * 1e3:8.3f} ms")
    print(f"  hit_rate {report.hit_rate:8.3f}")
    for source, count in sorted(report.sources.items()):
        print(f"  {source:10s} {count}")
    if history:
        obs = record_replay(report, history, trajectory)
        print(f"recorded {obs.key.label()} -> {history}"
              + (f" (+ trajectory {trajectory})" if trajectory else ""))
    failures = []
    if report.n_rejected or report.n_ok != config.n_requests:
        failures.append(
            f"{report.n_rejected} requests shed in a replay sized under the admission bounds"
        )
    if report.hit_rate < MIN_HIT_RATE:
        failures.append(f"hit rate {report.hit_rate:.3f} < {MIN_HIT_RATE} floor")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"OK: all served, hit rate >= {MIN_HIT_RATE}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(
        main(
            sys.argv[1] if len(sys.argv) > 1 else None,
            sys.argv[2] if len(sys.argv) > 2 else None,
        )
    )
