"""Structural and numerical matrix properties used by the evaluation harness.

The paper characterises its dataset by number of non-zeros, symmetry,
positive-definiteness (for SpIC0 stability), bandwidth, and DAG-derived
quantities such as average parallelism.  The structural checks live here; the
DAG-derived metrics live in :mod:`repro.metrics.parallelism`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE

__all__ = [
    "is_structurally_symmetric",
    "is_numerically_symmetric",
    "bandwidth",
    "profile",
    "density",
    "diagonal_dominance_ratio",
    "MatrixSummary",
    "summarize",
]


def is_structurally_symmetric(a: CSRMatrix) -> bool:
    """True when the sparsity pattern satisfies ``(i, j) present iff (j, i)``."""
    if not a.is_square:
        return False
    t = a.transpose()
    return np.array_equal(a.indptr, t.indptr) and np.array_equal(a.indices, t.indices)


def is_numerically_symmetric(a: CSRMatrix, *, rtol: float = 1e-12) -> bool:
    """True when ``A == A.T`` up to a relative tolerance."""
    if not is_structurally_symmetric(a):
        return False
    t = a.transpose()
    scale = max(1.0, float(np.abs(a.data).max()) if a.nnz else 1.0)
    return bool(np.all(np.abs(a.data - t.data) <= rtol * scale))


def bandwidth(a: CSRMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal/empty)."""
    if a.nnz == 0:
        return 0
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), np.diff(a.indptr))
    return int(np.abs(row_of - a.indices).max())


def profile(a: CSRMatrix) -> int:
    """Sum over rows of the distance from the leftmost entry to the diagonal.

    This is the classic envelope/profile measure that RCM-style orderings
    minimise; it is reported by the ordering benchmarks.
    """
    nonempty = np.nonzero(np.diff(a.indptr) > 0)[0]
    first = a.indices[a.indptr[nonempty]]
    below = first < nonempty
    return int((nonempty[below] - first[below]).sum())


def density(a: CSRMatrix) -> float:
    """``nnz / (n_rows * n_cols)``; 0 for degenerate shapes."""
    cells = a.n_rows * a.n_cols
    return a.nnz / cells if cells else 0.0


def diagonal_dominance_ratio(a: CSRMatrix) -> float:
    """Fraction of rows where ``|a_ii| >= sum_{j != i} |a_ij|``."""
    if not a.is_square or a.n_rows == 0:
        return 0.0
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_nnz())
    abs_sum = np.zeros(a.n_rows)
    np.add.at(abs_sum, row_of, np.abs(a.data))
    diag = np.abs(a.diagonal())
    off = abs_sum - diag
    return float(np.count_nonzero(diag >= off)) / a.n_rows


@dataclass(frozen=True)
class MatrixSummary:
    """Compact description of a matrix, printed in dataset tables."""

    n: int
    nnz: int
    density: float
    bandwidth: int
    structurally_symmetric: bool
    avg_nnz_per_row: float
    max_nnz_per_row: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} nnz={self.nnz} dens={self.density:.2e} "
            f"bw={self.bandwidth} sym={self.structurally_symmetric} "
            f"avg_row={self.avg_nnz_per_row:.1f} max_row={self.max_nnz_per_row}"
        )


def summarize(a: CSRMatrix) -> MatrixSummary:
    """Build a :class:`MatrixSummary` for reporting."""
    per_row = a.row_nnz()
    return MatrixSummary(
        n=a.n_rows,
        nnz=a.nnz,
        density=density(a),
        bandwidth=bandwidth(a),
        structurally_symmetric=is_structurally_symmetric(a),
        avg_nnz_per_row=float(per_row.mean()) if a.n_rows else 0.0,
        max_nnz_per_row=int(per_row.max()) if a.n_rows else 0,
    )
