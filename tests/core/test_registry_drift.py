"""Registry-drift gates: the cross-registry invariants the lint rules and
the verifier rely on, checked directly so drift fails loudly in CI.

Three registries must stay mutually consistent as the repo grows:

* the backend registry — every stage keeps its reference and numpy tiers
  (the differential-oracle discipline), and every pass's declared tiers
  exist;
* the fault-site registry — every site is exercised somewhere in the
  resilience suite, with only supported actions;
* the scheduler registry — every scheduler has a verified pass group.
"""

from pathlib import Path

import pytest

from repro.core.backends import STAGES, TIERS, registered_tiers
from repro.passes import PASS_GROUPS
from repro.resilience.faults import FAULT_SITES, FaultPlan
from repro.schedulers import SCHEDULERS

RESILIENCE_TESTS = Path(__file__).resolve().parents[1] / "resilience"


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stage", STAGES)
def test_every_stage_registers_reference_and_numpy(stage):
    tiers = registered_tiers(stage)
    assert "reference" in tiers, f"stage {stage!r} lost its loop oracle"
    assert "numpy" in tiers, f"stage {stage!r} lost its default fast path"
    assert set(tiers) <= set(TIERS)


def test_registered_tiers_rejects_unknown_stage():
    with pytest.raises(ValueError, match="unknown inspector stage"):
        registered_tiers("quantize")


def test_pass_declared_tiers_exist_in_the_registry():
    for name, group in PASS_GROUPS.items():
        for p in group.passes:
            if p.stage is None:
                assert not p.tiers, (name, p.name)
                continue
            tiers = registered_tiers(p.stage)
            for tier in p.tiers:
                assert tier in tiers, (name, p.name, tier)


# ----------------------------------------------------------------------
# fault-site registry
# ----------------------------------------------------------------------
def test_fault_sites_declare_known_actions():
    known = {"raise", "stall", "corrupt", "exit"}
    for site, actions in FAULT_SITES.items():
        assert actions, f"site {site!r} supports no actions"
        assert set(actions) <= known, (site, actions)


def test_chaos_default_sites_are_registered():
    plan = FaultPlan.chaos(0)
    for spec in plan.specs:
        assert spec.site in FAULT_SITES
        assert spec.action in FAULT_SITES[spec.site]


@pytest.mark.parametrize("site", sorted(FAULT_SITES))
def test_every_fault_site_is_exercised_by_the_resilience_suite(site):
    """A registered site nobody injects is dead armor: adding a site to
    FAULT_SITES requires a chaos/fault test naming it (as a literal, the
    same discipline lint rule L001 enforces at the call sites)."""
    sources = "\n".join(
        p.read_text() for p in sorted(RESILIENCE_TESTS.glob("test_*.py"))
    )
    assert f'"{site}"' in sources or f"'{site}'" in sources, (
        f"fault site {site!r} is registered but never exercised under tests/resilience"
    )


def test_fault_point_call_sites_use_registered_sites():
    """The runtime half of L001, against the live tree."""
    import ast

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    seen = set()
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "fault_point"
                and node.args
                and isinstance(node.args[0], ast.Constant)
            ):
                seen.add(node.args[0].value)
    assert seen <= set(FAULT_SITES), seen - set(FAULT_SITES)
    # the executor's per-stage hook is wired (the pass refactor kept it)
    assert "inspector.stage" in seen


# ----------------------------------------------------------------------
# scheduler registry
# ----------------------------------------------------------------------
def test_scheduler_and_pass_group_registries_agree():
    assert set(SCHEDULERS) == set(PASS_GROUPS)


def test_every_registered_group_passes_static_verification():
    from repro.statan import verify_registered_groups

    for name, diags in verify_registered_groups().items():
        errors = [d for d in diags if d.severity == "error"]
        assert errors == [], (name, [d.render() for d in errors])
