"""Unit tests for the exporters: JSONL span logs and Chrome trace_event."""

import json

import pytest

from repro.observability.export import (
    SPAN_PID,
    TIMELINE_PID,
    chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.observability.spans import Span
from repro.observability.timeline import TimelineRecorder


def _spans():
    return [
        Span(name="inspect/hdagg", t0=1.0, t1=3.0, tid=11, attrs={"n": 4}),
        Span(name="inspect/lbp", t0=1.5, t1=2.5, tid=11, parent=0, depth=1),
        Span(name="execute/partition[0,1]", t0=3.0, t1=4.0, tid=22),
    ]


def _timeline():
    rec = TimelineRecorder()
    rec.open(2)
    rec.wall_t0, rec.wall_t1 = 0.0, 4.0
    rec.record(0, "busy", 0.0, 3.0, vertex=1, level=0)
    rec.record(1, "busy", 0.0, 1.0, vertex=2, level=0)
    rec.record(1, "p2p_wait", 1.0, 2.0, vertex=3, dependence=1)
    return rec.finalize()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_spans_to_jsonl_one_object_per_line():
    text = spans_to_jsonl(_spans())
    lines = text.splitlines()
    assert len(lines) == 3
    objs = [json.loads(line) for line in lines]
    assert objs[0]["name"] == "inspect/hdagg"
    assert objs[0]["attrs"] == {"n": 4}
    assert objs[1]["parent"] == 0 and objs[1]["depth"] == 1
    assert spans_to_jsonl([]) == ""


def test_write_spans_jsonl_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    write_spans_jsonl(_spans(), path)
    objs = [json.loads(line) for line in path.read_text().splitlines()]
    assert [o["name"] for o in objs] == [s.name for s in _spans()]


# ----------------------------------------------------------------------
# trace_event
# ----------------------------------------------------------------------
def test_chrome_trace_spans_become_complete_events():
    doc = chrome_trace(_spans(), None, time_unit="s", label="t")
    events = doc["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    assert len(x) == 3
    # timestamps rebased to the earliest span and scaled to microseconds
    first = next(e for e in x if e["name"] == "inspect/hdagg")
    assert first["ts"] == 0.0
    assert first["dur"] == pytest.approx(2.0 * 1e6)
    assert first["pid"] == SPAN_PID
    assert first["args"] == {"n": 4}
    # the two distinct tids map to two distinct rows
    assert len({e["tid"] for e in x}) == 2


def test_chrome_trace_metadata_names_processes_and_threads():
    doc = chrome_trace(_spans(), _timeline(), time_unit="s", label="mesh")
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["pid"], e.get("tid")): e["args"]["name"] for e in meta
             if e["name"] == "process_name" or e["name"] == "thread_name"}
    assert names[(SPAN_PID, None)] == "mesh: spans"
    assert "per-core timeline" in names[(TIMELINE_PID, None)]
    assert names[(TIMELINE_PID, 0)] == "core 0"
    assert names[(TIMELINE_PID, 1)] == "core 1"


def test_chrome_trace_timeline_rows_one_per_core_with_colors():
    tl = _timeline()
    doc = chrome_trace(None, tl, time_unit="cycles", label="t")
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all(e["pid"] == TIMELINE_PID for e in x)
    # every segment (including derived idle) exported, cycles scale 1:1
    assert len(x) == sum(len(segs) for segs in tl.cores.values())
    busy0 = next(e for e in x if e["tid"] == 0 and e["name"] == "busy")
    assert busy0["ts"] == 0.0 and busy0["dur"] == 3.0
    assert busy0["cname"] == "thread_state_running"
    assert busy0["args"] == {"vertex": 1, "level": 0}
    wait = next(e for e in x if e["name"] == "p2p_wait")
    assert wait["cname"] == "thread_state_iowait"
    assert wait["args"] == {"vertex": 3, "dependence": 1}
    idle = next(e for e in x if e["name"] == "idle")
    assert idle["cname"] == "thread_state_sleeping"
    assert "args" not in idle


def test_chrome_trace_rejects_unknown_time_unit():
    with pytest.raises(ValueError):
        chrome_trace(_spans(), None, time_unit="ms")


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, _spans(), _timeline(), time_unit="s", label="t")
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
