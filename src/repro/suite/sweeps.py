"""Parameter sweeps: strong scaling and threshold sensitivity.

The paper evaluates two fixed core counts (20 and 64); a strong-scaling
sweep interpolates between them and exposes where each scheduler saturates
— the natural extension experiment for a schedule-quality study.  The
epsilon sweep generalises the ablation benchmark's into a reusable helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.pgp import DEFAULT_EPSILON
from ..graph.dag import DAG
from ..kernels.memory import MemoryModel
from ..runtime.machine import MachineConfig
from ..runtime.simulator import simulate
from ..schedulers import SCHEDULERS

__all__ = ["ScalingPoint", "strong_scaling", "epsilon_sensitivity"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (algorithm, core-count) sample of a strong-scaling sweep."""

    algorithm: str
    n_cores: int
    speedup: float
    efficiency: float
    potential_gain: float
    avg_memory_access_latency: float


def strong_scaling(
    g: DAG,
    cost: np.ndarray,
    memory: MemoryModel,
    machine: MachineConfig,
    *,
    algorithms: Sequence[str] = ("hdagg", "spmp", "wavefront"),
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 20),
) -> List[ScalingPoint]:
    """Simulated speedup vs active core count on one machine family.

    Each point re-runs the inspector for that core count (schedules are
    core-count-specific) and simulates on ``machine.scaled(p)`` so cache
    share grows as cores shrink, exactly like binding fewer threads on the
    real socket.
    """
    cost = np.asarray(cost, dtype=np.float64)
    serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, memory, machine.scaled(1))
    points: List[ScalingPoint] = []
    for algo in algorithms:
        for p in core_counts:
            m = machine.scaled(p) if p != machine.n_cores else machine
            schedule = SCHEDULERS[algo](g, cost, p)
            result = simulate(schedule, g, cost, memory, m)
            speedup = (
                serial.makespan_cycles / result.makespan_cycles
                if result.makespan_cycles > 0
                else float("inf")
            )
            points.append(
                ScalingPoint(
                    algorithm=algo,
                    n_cores=p,
                    speedup=speedup,
                    efficiency=speedup / p,
                    potential_gain=result.potential_gain,
                    avg_memory_access_latency=result.avg_memory_access_latency,
                )
            )
    return points


def epsilon_sensitivity(
    g: DAG,
    cost: np.ndarray,
    memory: MemoryModel,
    machine: MachineConfig,
    *,
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, DEFAULT_EPSILON, 0.5, 0.8),
) -> List[dict]:
    """HDagg speedup / structure across the balance-threshold range."""
    cost = np.asarray(cost, dtype=np.float64)
    serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, memory, machine.scaled(1))
    out: List[dict] = []
    for eps in epsilons:
        schedule = SCHEDULERS["hdagg"](g, cost, machine.n_cores, epsilon=eps)
        result = simulate(schedule, g, cost, memory, machine)
        out.append(
            {
                "epsilon": eps,
                "n_levels": schedule.n_levels,
                "fine_grained": schedule.fine_grained,
                "speedup": serial.makespan_cycles / result.makespan_cycles,
                "potential_gain": result.potential_gain,
            }
        )
    return out
