"""Structure-specific tests for each baseline inspector."""

import numpy as np
import pytest

from repro.graph import DAG, compute_wavefronts, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.schedulers import (
    SCHEDULERS,
    acyclic_partition,
    chunk_by_cost,
    chunk_by_count,
    edge_cut,
    elimination_tree,
    forest_components,
    lpt_assign,
    tree_levels,
)


class TestChunkHelpers:
    def test_chunk_by_cost_balances(self):
        verts = np.arange(10)
        cost = np.ones(20)
        chunks = chunk_by_cost(verts, cost, 5)
        assert [c.shape[0] for c in chunks] == [2, 2, 2, 2, 2]

    def test_chunk_by_cost_skewed(self):
        verts = np.arange(4)
        cost = np.array([100.0, 1, 1, 1])
        chunks = chunk_by_cost(verts, cost, 2)
        assert chunks[0].tolist() == [0]

    def test_chunk_by_cost_empty(self):
        assert chunk_by_cost(np.array([], dtype=np.int64), np.ones(0), 4) == []

    def test_chunk_by_count(self):
        chunks = chunk_by_count(np.arange(7), 3)
        assert sum(c.shape[0] for c in chunks) == 7
        assert len(chunks) == 3

    def test_chunk_by_count_fewer_vertices(self):
        chunks = chunk_by_count(np.arange(2), 5)
        assert len(chunks) == 2

    def test_lpt_balances(self):
        costs = np.array([5.0, 4, 3, 3, 3])
        assign = lpt_assign(costs, 2)
        loads = np.zeros(2)
        np.add.at(loads, assign, costs)
        # LPT guarantee: within one item of balanced
        assert abs(loads[0] - loads[1]) <= costs.max()


class TestWavefrontAndMKL:
    def test_one_level_per_wavefront(self, mesh):
        g = dag_from_matrix_lower(mesh)
        w = compute_wavefronts(g)
        for name in ("wavefront", "mkl"):
            s = SCHEDULERS[name](g, np.ones(g.n), 4)
            assert s.n_levels == w.n_levels
            assert s.sync == "barrier"

    def test_mkl_splits_by_count_wavefront_by_cost(self, skewed):
        g = dag_from_matrix_lower(skewed)
        cost = KERNELS["spilu0"].cost(skewed)
        wf = SCHEDULERS["wavefront"](g, cost, 4)
        mkl = SCHEDULERS["mkl"](g, cost, 4)
        # cost-aware chunking yields a flatter load profile on skewed costs
        from repro.core import accumulated_pgp

        assert accumulated_pgp(wf, cost) <= accumulated_pgp(mkl, cost) + 1e-9


class TestSpMP:
    def test_p2p_sync(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["spmp"](g, np.ones(g.n), 4)
        assert s.sync == "p2p"
        assert s.n_barriers() == 0

    def test_groups_follow_levels(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["spmp"](g, np.ones(g.n), 4)
        w = compute_wavefronts(g)
        assert s.n_levels == w.n_levels


class TestLBC:
    def test_two_coarsened_wavefronts(self, mesh_nd):
        g = dag_from_matrix_lower(mesh_nd)
        s = SCHEDULERS["lbc"](g, np.ones(g.n), 4)
        assert s.n_levels <= 2  # the paper's defining LBC shape
        assert "cut_level" in s.meta

    def test_elimination_tree_structure(self, mesh):
        g = dag_from_matrix_lower(mesh)
        parent = elimination_tree(g)
        n = g.n
        roots = np.nonzero(parent < 0)[0]
        assert roots.size >= 1
        ok = parent[parent >= 0] if False else None
        # parent(v) > v for all non-roots
        for v in range(n):
            if parent[v] >= 0:
                assert parent[v] > v

    def test_etree_descendant_property(self, all_small_matrices):
        """Every dependence edge u -> v has u a descendant of v in etree."""
        for name, a in all_small_matrices.items():
            g = dag_from_matrix_lower(a)
            parent = elimination_tree(g)
            for u, v in list(g.iter_edges())[:400]:
                w = u
                seen = 0
                while w != -1 and w != v and seen <= g.n:
                    w = int(parent[w])
                    seen += 1
                assert w == v, (name, u, v)

    def test_tree_levels_leaf_up(self):
        parent = np.array([2, 2, 4, 4, -1])
        levels = tree_levels(parent)
        assert levels.tolist() == [0, 0, 1, 0, 2]

    def test_tree_levels_rejects_bad_parent(self):
        with pytest.raises(ValueError):
            tree_levels(np.array([1, 0]))

    def test_forest_components(self):
        parent = np.array([1, 4, 3, 4, -1])
        mask = np.array([True, True, True, False, False])
        comps = forest_components(parent, mask)
        assert [c.tolist() for c in comps] == [[0, 1], [2]]


class TestDAGP:
    def test_partition_labels_valid(self, mesh):
        g = dag_from_matrix_lower(mesh)
        labels = acyclic_partition(g, np.ones(g.n), 16)
        assert labels.shape[0] == g.n
        assert labels.min() == 0
        assert labels.max() < 16

    def test_quotient_acyclic(self, all_small_matrices):
        from repro.graph import is_acyclic

        for name, a in all_small_matrices.items():
            g = dag_from_matrix_lower(a)
            labels = acyclic_partition(g, np.ones(g.n), 12)
            src, dst = g.edge_list()
            keep = labels[src] != labels[dst]
            q = DAG.from_edges(int(labels.max()) + 1, labels[src][keep], labels[dst][keep])
            assert is_acyclic(q), name

    def test_component_split_zero_cut(self, blocks):
        g = dag_from_matrix_lower(blocks)
        labels = acyclic_partition(g, np.ones(g.n), 12)
        assert edge_cut(g, labels) == 0  # blocks split along components

    def test_k_one_single_part(self, mesh):
        g = dag_from_matrix_lower(mesh)
        labels = acyclic_partition(g, np.ones(g.n), 1)
        assert np.all(labels == 0)

    def test_k_validation(self, mesh):
        g = dag_from_matrix_lower(mesh)
        with pytest.raises(ValueError):
            acyclic_partition(g, np.ones(g.n), 0)

    def test_meta_reports_cut(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["dagp"](g, np.ones(g.n), 4, k=8)
        assert s.meta["k_requested"] == 8
        assert s.meta["edge_cut"] >= 0
        assert s.meta["n_parts"] <= 8


class TestSerial:
    def test_serial_shape(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["serial"](g, np.ones(g.n))
        assert s.n_levels == 1
        assert s.n_partitions == 1
        assert s.n_cores == 1
