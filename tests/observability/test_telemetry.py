"""Telemetry primitives: catalog closure, request trees, snapshotting.

Synthetic-span tests pin the validator's failure modes one by one — the
serving-stack integration suite (``tests/service/test_telemetry.py``)
then only has to assert "no problems", knowing each problem class is
detectable.
"""

import json
import threading

import pytest

from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.spans import Span
from repro.observability.telemetry import (
    LATENCY_BUCKETS,
    OUTCOMES,
    SPAN_TAXONOMY,
    TIER_SPANS,
    MetricsSnapshotter,
    catalog_violations,
    load_snapshots,
    metric_catalog,
    next_request_id,
    request_trees,
    reset_request_ids,
    tier_breakdown,
    validate_request_trees,
)


# ----------------------------------------------------------------------
# the metric catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_catalog_is_closed_and_typed(self):
        catalog = metric_catalog()
        assert len(catalog) > 50
        assert set(catalog.values()) <= {"counter", "gauge", "histogram"}
        # spot-check one name per subsystem
        for name in (
            "service.requests",
            "service.latency.tier.memory",
            "service.queue_wait_seconds",
            "store.evictions",
            "store.quarantine_count",
            "schedule_cache.evictions",
            "inspector.runs.hdagg",
            "resilience.faults_fired.store.bit_flip",
        ):
            assert name in catalog, name

    def test_violations_flag_undeclared_names_only(self):
        names = ["service.requests", "store.hits", "perflab.adhoc.median_seconds"]
        assert catalog_violations(names) == []
        assert catalog_violations(["made.up.metric"]) == ["made.up.metric"]

    def test_all_taxonomy_tiers_have_latency_histograms(self):
        catalog = metric_catalog()
        for outcome in OUTCOMES:
            if outcome in ("shed", "deadline"):
                continue
            assert f"service.latency.tier.{outcome}" in catalog


# ----------------------------------------------------------------------
# request ids
# ----------------------------------------------------------------------
class TestRequestIds:
    def test_ids_are_unique_across_threads(self):
        reset_request_ids()
        out = []
        lock = threading.Lock()

        def mint():
            for _ in range(200):
                rid = next_request_id()
                with lock:
                    out.append(rid)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 800


# ----------------------------------------------------------------------
# request-tree validation on synthetic spans
# ----------------------------------------------------------------------
def _span(name, t0, t1, *, sid, psid=-1, tid=1, **attrs):
    return Span(
        name=name, t0=t0, t1=t1, tid=tid,
        attrs=attrs, span_id=sid, parent_span_id=psid,
    )


def _good_tree(rid="r-1"):
    return [
        _span("service.request", 0.0, 1.0, sid=1, request_id=rid, outcome="memory"),
        _span("service.queue_wait", 0.0, 0.1, sid=2, psid=1, tid=2, request_id=rid),
        _span("service.broker", 0.1, 0.9, sid=3, psid=1, tid=2, request_id=rid),
        _span("service.memory", 0.2, 0.8, sid=4, psid=3, tid=2),
    ]


class TestValidator:
    def test_well_formed_tree_passes(self):
        assert validate_request_trees(_good_tree(), expect=1) == []

    def test_missing_tier_span_is_flagged(self):
        spans = [s for s in _good_tree() if s.name != "service.memory"]
        problems = validate_request_trees(spans, expect=1)
        assert any("no service.memory span" in p for p in problems)

    def test_child_escaping_parent_is_flagged(self):
        spans = _good_tree()
        spans[3] = _span("service.memory", 0.2, 1.5, sid=4, psid=3, tid=2)
        problems = validate_request_trees(spans)
        assert any("escapes parent" in p for p in problems)

    def test_overlapping_siblings_are_flagged(self):
        spans = _good_tree()
        # queue_wait runs [0, 0.5] while the broker starts at 0.1
        spans[1] = _span("service.queue_wait", 0.0, 0.5, sid=2, psid=1, tid=2)
        problems = validate_request_trees(spans)
        assert any("overlaps its preceding sibling" in p for p in problems)

    def test_unknown_service_span_name_is_flagged(self):
        spans = _good_tree() + [_span("service.bogus", 0.3, 0.4, sid=9, psid=3)]
        problems = validate_request_trees(spans)
        assert any("not in the service taxonomy" in p for p in problems)

    def test_orphan_span_is_flagged(self):
        spans = _good_tree() + [_span("service.verify", 0.3, 0.4, sid=9, psid=999)]
        problems = validate_request_trees(spans)
        assert any("orphan" in p for p in problems)

    def test_wrong_tree_count_is_flagged(self):
        problems = validate_request_trees(_good_tree(), expect=3)
        assert any("expected 3 request trees" in p for p in problems)

    def test_taxonomy_covers_the_tier_spans(self):
        assert set(TIER_SPANS) <= set(SPAN_TAXONOMY)


class TestBreakdown:
    def test_tier_breakdown_aggregates_across_trees(self):
        spans = _good_tree() + [
            _span("service.request", 2.0, 3.0, sid=11, request_id="r-2", outcome="inspected"),
            _span("service.broker", 2.1, 2.9, sid=12, psid=11, tid=3, request_id="r-2"),
            _span("service.inspect", 2.2, 2.8, sid=13, psid=12, tid=3),
        ]
        breakdown = tier_breakdown(spans)
        assert breakdown["memory"] == {"count": 1.0, "seconds": pytest.approx(0.6)}
        assert breakdown["inspect"] == {"count": 1.0, "seconds": pytest.approx(0.6)}

    def test_request_trees_index_children_in_time_order(self):
        trees = request_trees(_good_tree())
        tree = trees["r-1"]
        kids = tree.children[1]
        assert [k.name for k in kids] == ["service.queue_wait", "service.broker"]
        assert tree.tier_seconds()["memory"] == pytest.approx(0.6)


# ----------------------------------------------------------------------
# snapshotting
# ----------------------------------------------------------------------
class TestSnapshotter:
    def test_manual_snapshots_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        snap = MetricsSnapshotter(registry, path, interval=60.0)
        registry.counter("service.requests").inc(3)
        snap.snapshot()
        registry.counter("service.requests").inc(2)
        registry.histogram("service.queue_wait_seconds", LATENCY_BUCKETS).observe(0.01)
        snap.snapshot()
        docs = load_snapshots(path)
        assert [d["seq"] for d in docs] == [0, 1]
        assert docs[0]["metrics"]["service.requests"]["value"] == 3
        assert docs[1]["metrics"]["service.requests"]["value"] == 5
        blob = docs[1]["metrics"]["service.queue_wait_seconds"]
        rehydrated = Histogram.from_dict("service.queue_wait_seconds", blob)
        assert rehydrated.count == 1
        assert rehydrated.quantile(0.5) == pytest.approx(0.01, rel=1.0)

    def test_timer_thread_snapshots_and_final_flush(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        registry.counter("service.requests").inc()
        with MetricsSnapshotter(registry, path, interval=0.02).start():
            threading.Event().wait(0.08)
        docs = load_snapshots(path)
        assert len(docs) >= 2  # at least one timer tick plus the final flush
        assert docs[-1]["metrics"]["service.requests"]["value"] == 1
        assert docs[-1]["elapsed_s"] >= docs[0]["elapsed_s"]

    def test_snapshot_lines_are_json(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        MetricsSnapshotter(registry, path).snapshot()
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsSnapshotter(MetricsRegistry(), tmp_path / "m.jsonl", interval=0.0)
