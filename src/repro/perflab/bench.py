"""Perf-lab benchmark definitions: what `perf run` actually measures.

One *cell* is (matrix, kernel, algorithm, machine); one rep of the
``inspector`` benchmark runs the full inspector-executor pipeline for the
cell and reports:

* ``inspect`` — wall-clock seconds of the scheduler call, with the
  inspector's own :class:`~repro.runtime.perf.StageTimer` sub-stages
  re-exported as ``inspect/<stage>`` (HDagg: transitive_reduction,
  aggregation, coarsen, lbp, expand — other schedulers report no
  sub-stages and the residual ``inspect/other`` covers them);
* ``execute`` — wall-clock seconds of simulating the schedule on the
  cell's machine model (a deterministic, schedule-shaped python workload:
  slower schedule expansion or a fatter schedule shows up here).

The total per rep is ``inspect + execute``.  Stalls injected through the
``inspector.stage`` fault site (``perf run --stall-stage``) land inside
the named stage's timer, which is how the regression gate's stage
attribution is exercised end to end.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .protocol import (
    MeasurementProtocol,
    Observation,
    ObservationKey,
    RepResult,
)

__all__ = [
    "PERF_SMOKE",
    "REPAIR_SMOKE_MATRIX",
    "inspector_rep",
    "repair_rep",
    "run_inspector_benchmarks",
    "run_repair_benchmark",
]

#: Default `perf run` subset: three small cells from different families
#: (2D mesh, 3D mesh, clique chain) that exercise all inspector stages in
#: a few milliseconds each — small enough for CI, shaped enough to matter.
PERF_SMOKE = ("mesh2d-s", "mesh3d-s", "kite-small")

#: Matrix behind the repair-vs-full smoke cell (`perf run` appends it after
#: the inspector cells; warn-only, see :func:`run_repair_benchmark`).
REPAIR_SMOKE_MATRIX = "mesh2d-m"


def inspector_rep(
    cell,
    algorithm: str,
    *,
    epsilon: Optional[float] = None,
    backend=None,
) -> Callable[[], RepResult]:
    """One-rep callable for the ``inspector`` benchmark on a built cell.

    ``cell`` is a :class:`~repro.suite.harness.BenchCell`; ``backend`` (a
    :class:`~repro.core.backends.BackendSpec`, grammar string, or None)
    selects the inspector tier for hdagg cells.
    """
    from ..runtime.simulator import simulate
    from ..schedulers import SCHEDULERS

    if algorithm not in SCHEDULERS:
        raise KeyError(f"unknown scheduler {algorithm!r}; available: {sorted(SCHEDULERS)}")
    g = cell.dag
    cost = np.asarray(cell.cost, dtype=np.float64)[: g.n]
    p = cell.machine.n_cores
    kwargs = {}
    if epsilon is not None and algorithm in ("hdagg", "lbc"):
        kwargs["epsilon"] = epsilon
    if backend is not None and algorithm == "hdagg":
        kwargs["backend"] = backend

    def rep() -> RepResult:
        t0 = time.perf_counter()
        schedule = SCHEDULERS[algorithm](g, cost, p, **kwargs)
        t_inspect = time.perf_counter() - t0
        stages: Dict[str, float] = {"inspect": t_inspect}
        for name, seconds in schedule.meta.get("stage_seconds", {}).items():
            stages[f"inspect/{name}"] = float(seconds)
        t1 = time.perf_counter()
        simulate(schedule, g, cost, cell.memory, cell.machine)
        t_execute = time.perf_counter() - t1
        stages["execute"] = t_execute
        return t_inspect + t_execute, stages

    return rep


def _record_metrics(obs: Observation) -> None:
    """Mirror an observation into the ambient metrics registry (if on)."""
    from ..observability.state import STATE

    if not STATE.enabled or STATE.registry is None:
        return
    reg = STATE.registry
    reg.histogram(f"perflab.{obs.key.label()}.seconds").observe_many(obs.timings)
    if obs.stats is not None:
        reg.gauge(f"perflab.{obs.key.label()}.median_seconds").set(obs.stats.statistic)


def _backend_fingerprint(backend):
    """(spec-or-None, fingerprint) for a run's ``backend`` argument.

    ``None`` with no ``REPRO_BACKENDS`` set is the dormant path: nothing
    is passed to the schedulers and the fingerprint's backend field stays
    empty, so histories written before the backend registry existed keep
    their digests.
    """
    import os

    from ..core.backends import ENV_VAR, BackendSpec
    from .fingerprint import collect_fingerprint

    if backend is None and not os.environ.get(ENV_VAR):
        return None, collect_fingerprint()
    spec = BackendSpec.coerce(backend)
    return spec, collect_fingerprint(backend=spec.effective().describe())


def run_inspector_benchmarks(
    matrices: Sequence[str] = PERF_SMOKE,
    *,
    kernel: str = "sptrsv",
    algorithm: str = "hdagg",
    machine: str = "intel20",
    cores: Optional[int] = None,
    ordering: str = "nd",
    epsilon: Optional[float] = None,
    backend=None,
    protocol: Optional[MeasurementProtocol] = None,
    note: str = "",
    progress: Optional[Callable[[Observation], None]] = None,
) -> List[Observation]:
    """Measure the inspector benchmark over a set of matrices.

    The environment fingerprint is collected once and shared by every
    observation of the run (it cannot change mid-process), so all cells of
    one run land on the same history series key.  ``backend`` selects the
    hdagg inspector tier and is stamped into the fingerprint (effective
    form, after availability fallback).
    """
    from ..suite.harness import build_cell

    proto = protocol if protocol is not None else MeasurementProtocol()
    spec, fingerprint = _backend_fingerprint(backend)
    out: List[Observation] = []
    for name in matrices:
        cell = build_cell(name, kernel=kernel, machine=machine,
                          cores=cores, ordering=ordering)
        key = ObservationKey(
            benchmark="inspector",
            matrix=name,
            kernel=kernel,
            algorithm=algorithm,
            machine=cell.machine.name,
        )
        obs = proto.measure(
            key,
            inspector_rep(cell, algorithm, epsilon=epsilon, backend=spec),
            fingerprint=fingerprint,
            note=note,
        )
        _record_metrics(obs)
        out.append(obs)
        if progress is not None:
            progress(obs)
    return out


def repair_rep(
    cell,
    *,
    epsilon: Optional[float] = None,
    backend=None,
    n_rows: int = 5,
    seed: int = 0,
) -> Callable[[], RepResult]:
    """One-rep callable for the ``repair`` benchmark: incremental repair of
    a small pattern delta versus a full re-inspection of the same DAG.

    Setup (once, outside the timed reps): inspect the cell's DAG with
    artifacts, drop one off-diagonal dependence from ``n_rows`` random
    rows, and derive the perturbed DAG.  Each rep then times
    :func:`~repro.core.incremental.repair_schedule` against the stored
    artifacts and :func:`~repro.core.incremental.inspect_with_artifacts`
    from scratch, reported as the ``repair`` and ``full`` stages — so the
    repair-to-full ratio is directly visible in the stage attribution.
    """
    from ..core.incremental import inspect_with_artifacts, repair_schedule
    from ..core.pgp import DEFAULT_EPSILON

    g = cell.dag
    cost = np.asarray(cell.cost, dtype=np.float64)[: g.n]
    p = cell.machine.n_cores
    eps = DEFAULT_EPSILON if epsilon is None else epsilon
    old = inspect_with_artifacts(g, cost, p, eps, backend=backend)

    rng = np.random.default_rng(seed)
    rows = rng.choice(g.n, size=min(n_rows, g.n), replace=False)
    keep = np.ones(g.indices.size, dtype=bool)
    for r in rows:
        lo, hi = int(g.indptr[r]), int(g.indptr[r + 1])
        if hi > lo:
            keep[int(rng.integers(lo, hi))] = False
    counts = np.bincount(
        np.repeat(np.arange(g.n), np.diff(g.indptr))[keep], minlength=g.n
    )
    indptr2 = np.concatenate([[0], np.cumsum(counts)]).astype(g.indptr.dtype)
    from ..graph.dag import DAG

    g_new = DAG(g.n, indptr2, g.indices[keep], check=False)
    cost_new = cost  # row costs are unchanged by dropping dependences here

    def rep() -> RepResult:
        t0 = time.perf_counter()
        result = repair_schedule(old, g_new, cost_new)
        t_repair = time.perf_counter() - t0
        t1 = time.perf_counter()
        inspect_with_artifacts(g_new, cost_new, p, eps, backend=backend)
        t_full = time.perf_counter() - t1
        stages = {"repair": t_repair, "full": t_full,
                  "repair/" + result.mode: t_repair}
        return t_repair + t_full, stages

    return rep


def run_repair_benchmark(
    matrix: str = REPAIR_SMOKE_MATRIX,
    *,
    kernel: str = "sptrsv",
    machine: str = "intel20",
    cores: Optional[int] = 8,
    ordering: str = "natural",
    epsilon: Optional[float] = None,
    backend=None,
    n_rows: int = 5,
    protocol: Optional[MeasurementProtocol] = None,
    note: str = "",
    progress: Optional[Callable[[Observation], None]] = None,
) -> Observation:
    """Measure the repair-vs-full smoke cell (one observation).

    The defaults pin the *documented budget configuration* — a
    natural-ordered Poisson mesh at 8 cores, where repair of a ≤5-row
    delta costs ≤25% of a full inspection.  (ND-ordered DAGs coarsen into
    a handful of very wide wavefronts, so one dirty wave forces a long
    live re-walk and the ratio degrades to roughly 0.4–0.6 — correct, just
    less profitable.)  The cell is advisory: `perf run` prints a warning
    when the median repair exceeds the budget but never fails the run —
    wall-clock ratios on loaded CI machines are too noisy to gate on.
    """
    from ..suite.harness import build_cell

    proto = protocol if protocol is not None else MeasurementProtocol()
    spec, fingerprint = _backend_fingerprint(backend)
    cell = build_cell(matrix, kernel=kernel, machine=machine,
                      cores=cores, ordering=ordering)
    key = ObservationKey(
        benchmark="repair",
        matrix=matrix,
        kernel=kernel,
        algorithm="hdagg",
        machine=cell.machine.name,
    )
    obs = proto.measure(
        key,
        repair_rep(cell, epsilon=epsilon, backend=spec, n_rows=n_rows),
        fingerprint=fingerprint,
        note=note,
    )
    _record_metrics(obs)
    if progress is not None:
        progress(obs)
    return obs
