"""Property tests: the analyses against brute force on random instances.

Two obligations, per the correctness-tooling contract:

* zero false positives — every registered scheduler is certified clean on
  random dependence structures (verifier and race detector agree with a
  brute-force oracle that there is nothing to find);
* zero false negatives — every applicable mutation class is flagged, and
  random mis-orderings are flagged in exact agreement with the brute-force
  oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import detect_races, kernel_footprint, run_mutation_suite, verify_dependences
from repro.core.schedule import Schedule, WidthPartition
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle, random_spd

SETTINGS = dict(max_examples=25, deadline=None)


def _random_matrix(seed, n):
    return random_spd(n, 4.0, seed=seed)


def _random_schedule(g, seed):
    """Arbitrary (usually wrong) schedule: random order, levels, partitions."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(g.n)
    n_levels = int(rng.integers(1, 5))
    n_parts = int(rng.integers(1, 4))
    chunks = np.array_split(perm, n_levels)
    levels = []
    for chunk in chunks:
        if chunk.size == 0:
            continue
        parts = [p for p in np.array_split(chunk, n_parts) if p.size]
        levels.append([WidthPartition(c, p.astype(np.int64)) for c, p in enumerate(parts)])
    return Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="random",
        n_cores=n_parts,
    )


def _bruteforce_violations(schedule, g) -> int:
    level = schedule.level_of()
    pid = schedule.partition_of()
    pos = schedule.position_of()
    src, dst = g.edge_list()
    bad = 0
    for u, v in zip(src.tolist(), dst.tolist()):
        if level[u] < level[v]:
            continue
        if pid[u] == pid[v] and pos[u] < pos[v]:
            continue
        bad += 1
    return bad


def _bruteforce_has_race(schedule, fp) -> bool:
    level = schedule.level_of()
    pid = schedule.partition_of()
    for i in range(fp.n):
        wi = set(fp.writes(i).tolist())
        ri = set(fp.reads(i).tolist())
        for j in range(i + 1, fp.n):
            if level[i] != level[j] or pid[i] == pid[j]:
                continue
            wj = set(fp.writes(j).tolist())
            rj = set(fp.reads(j).tolist())
            if wi & (wj | rj) or wj & ri:
                return True
    return False


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(8, 120))
def test_all_schedulers_certified_on_random_dags(seed, n):
    """Zero false positives: real inspector output is never flagged."""
    a = _random_matrix(seed, n)
    low = lower_triangle(a)
    g = dag_from_matrix_lower(a)
    cost = KERNELS["sptrsv"].cost(low)
    fp = kernel_footprint("sptrsv", low)
    for algo in sorted(SCHEDULERS):
        s = SCHEDULERS[algo](g, cost, 3)
        report = verify_dependences(s, g, stamp_meta=False)
        assert report.ok, (algo, report.describe())
        races = detect_races(s, fp, stamp_meta=False)
        assert races.ok, (algo, races.describe())


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(4, 40))
def test_verifier_matches_bruteforce(seed, n):
    """On arbitrary schedules the verifier agrees exactly with brute force."""
    g = dag_from_matrix_lower(_random_matrix(seed, n))
    s = _random_schedule(g, seed ^ 0xA5A5)
    report = verify_dependences(s, g, structural=False, stamp_meta=False)
    expected = _bruteforce_violations(s, g)
    assert report.n_violations == (expected if not report.ok else 0)
    assert report.ok == (expected == 0)
    if not report.ok:
        assert report.witnesses


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(4, 30),
    kname=st.sampled_from(["sptrsv", "spic0", "spilu0"]),
)
def test_race_detector_matches_bruteforce(seed, n, kname):
    """On arbitrary schedules the detector agrees exactly with the O(n^2)
    pairwise footprint-intersection oracle."""
    a = _random_matrix(seed, n)
    operand = lower_triangle(a) if kname == "sptrsv" else a
    g = KERNELS[kname].dag(operand)
    fp = kernel_footprint(kname, operand)
    s = _random_schedule(g, seed ^ 0x5A5A)
    report = detect_races(s, fp, stamp_meta=False)
    assert report.ok == (not _bruteforce_has_race(s, fp)), report.describe()


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 80),
    algo=st.sampled_from(["hdagg", "wavefront", "spmp", "lbc"]),
)
def test_mutations_never_escape(seed, n, algo):
    """Zero false negatives: every applicable mutation class is flagged."""
    a = _random_matrix(seed, n)
    low = lower_triangle(a)
    g = dag_from_matrix_lower(a)
    s = SCHEDULERS[algo](g, KERNELS["sptrsv"].cost(low), 3)
    results = run_mutation_suite(s, g, kernel_footprint("sptrsv", low), seed=seed)
    escaped = [r.name for r in results if r.escaped]
    assert not escaped, escaped


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(4, 40))
def test_witness_describes_a_real_violation(seed, n):
    """Every reported witness re-checks as violating under the invariant."""
    g = dag_from_matrix_lower(_random_matrix(seed, n))
    s = _random_schedule(g, seed)
    report = verify_dependences(s, g, structural=False, stamp_meta=False, max_witnesses=8)
    for w in report.witnesses:
        ordered_by_level = w.src_level < w.dst_level
        ordered_in_partition = (
            w.src_partition == w.dst_partition and w.src_position < w.dst_position
        )
        assert not (ordered_by_level or ordered_in_partition)
