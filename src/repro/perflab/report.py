"""Perf-lab reports: markdown for humans-in-terminals, HTML for artifacts.

Both renderers consume the same inputs — a :class:`HistoryStore` plus the
per-series :class:`ObservationComparison` list the comparison engine
produced — and stay entirely self-contained: the HTML inlines its CSS and
draws the median trajectories as inline SVG sparklines, so a CI artifact
is one file that opens anywhere with no network access.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

from .compare import ObservationComparison
from .fingerprint import PERF_SCHEMA_VERSION
from .history import HistoryStore
from .protocol import Observation

__all__ = ["markdown_report", "html_report", "sparkline"]


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.3f} ms"


def _series_rows(store: HistoryStore) -> List[Tuple[str, str, List[Observation]]]:
    return [
        (key.label(), digest, store.series(key, digest))
        for key, digest in store.series_keys()
    ]


def _verdict_for(label: str, comparisons: Sequence[ObservationComparison]):
    for c in comparisons:
        if c.label == label:
            return c
    return None


# ----------------------------------------------------------------------
def markdown_report(
    store: HistoryStore,
    comparisons: Sequence[ObservationComparison] = (),
    *,
    title: str = "Perf-lab report",
) -> str:
    lines = [f"# {title}", ""]
    fingerprints = store.fingerprints()
    lines.append(f"Schema {PERF_SCHEMA_VERSION}; {len(store)} observations, "
                 f"{len(fingerprints)} environment(s).")
    lines.append("")
    for digest, fp in sorted(fingerprints.items()):
        lines.append(f"- `{digest}`: {fp.describe()}")
    lines.append("")
    lines.append("| series | env | obs | latest median | 95% CI | reps | verdict |")
    lines.append("|---|---|---:|---:|---|---:|---|")
    for label, digest, seq in _series_rows(store):
        latest = seq[-1]
        st = latest.stats
        verdict = _verdict_for(label, comparisons)
        vtext = "-"
        if verdict is not None:
            t = verdict.total
            if t.verdict == "indeterminate":
                vtext = "indeterminate"
            else:
                mark = "**REGRESSED**" if verdict.regressed else t.verdict
                vtext = f"{mark} {t.rel_shift:+.1%}"
                if verdict.regressed and verdict.responsible_stages:
                    vtext += f" ({verdict.responsible_stages[0].stage})"
        lines.append(
            f"| {label} | `{digest}` | {len(seq)} | "
            f"{_fmt_s(st.statistic if st else None)} | "
            f"[{_fmt_s(st.lo if st else None)}, {_fmt_s(st.hi if st else None)}] | "
            f"{latest.reps}{'' if latest.converged else '*'} | {vtext} |"
        )
    lines.append("")
    lines.append("`*` = the adaptive protocol hit max_reps before its CI target.")
    stage_sections = [c for c in comparisons if c.stages]
    if stage_sections:
        lines.append("")
        lines.append("## Stage breakdown of compared series")
        for c in stage_sections:
            lines.append("")
            lines.append(f"### {c.label}")
            if c.change_point is not None:
                cp = c.change_point
                lines.append(
                    f"Change point at observation {cp.index}: "
                    f"{_fmt_s(cp.before_median)} -> {_fmt_s(cp.after_median)} "
                    f"({cp.rel_shift:+.1%}, p={cp.p_value:.3f})."
                )
            lines.append("")
            lines.append("| stage | shift | 95% shift CI | delta | verdict |")
            lines.append("|---|---:|---|---:|---|")
            for s in c.stages:
                v = s.verdict
                if v.verdict == "indeterminate":
                    lines.append(f"| {s.stage} | - | - | - | indeterminate |")
                    continue
                flag = v.verdict + (" (confirmed)" if v.confirmed else "")
                lines.append(
                    f"| {s.stage} | {v.rel_shift:+.1%} | "
                    f"[{v.shift_lo:+.1%}, {v.shift_hi:+.1%}] | "
                    f"{s.delta_seconds * 1e3:+.3f} ms | {flag} |"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a1a; padding: 0 1em; }
h1, h2, h3 { font-weight: 600; }
table { border-collapse: collapse; margin: 1em 0; width: 100%; }
th, td { border: 1px solid #d0d0d0; padding: 0.35em 0.6em; text-align: left; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.regressed { color: #b30000; font-weight: 700; }
.improved { color: #006400; }
.unconfirmed { color: #8a6d00; }
.muted { color: #777; }
code { background: #f5f5f5; padding: 0 0.25em; }
svg.spark { vertical-align: middle; }
"""


def sparkline(values: Sequence[float], *, width: int = 140, height: int = 28) -> str:
    """Inline SVG polyline of a value trajectory (last point emphasised).

    Public because the service dashboard
    (:mod:`repro.observability.dashboard`) draws its metric time-series
    with the same self-contained SVG — one renderer, two reports.
    """
    pts = [v for v in values if v is not None]
    if len(pts) < 2:
        return '<span class="muted">n/a</span>'
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    pad = 3
    xs = [pad + i * (width - 2 * pad) / (len(pts) - 1) for i in range(len(pts))]
    ys = [height - pad - (v - lo) * (height - 2 * pad) / span for v in pts]
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{poly}" fill="none" stroke="#3465a4" stroke-width="1.5"/>'
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" fill="#b30000"/>'
        "</svg>"
    )


def html_report(
    store: HistoryStore,
    comparisons: Sequence[ObservationComparison] = (),
    *,
    title: str = "Perf-lab report",
) -> str:
    esc = html.escape
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f"<p>Schema {PERF_SCHEMA_VERSION}; {len(store)} observations.</p>",
        "<h2>Environments</h2><ul>",
    ]
    for digest, fp in sorted(store.fingerprints().items()):
        parts.append(f"<li><code>{esc(digest)}</code>: {esc(fp.describe())}</li>")
    parts.append("</ul><h2>Series</h2>")
    parts.append(
        "<table><tr><th>series</th><th>env</th><th>obs</th><th>trajectory</th>"
        "<th>latest median</th><th>95% CI</th><th>reps</th><th>verdict</th></tr>"
    )
    for label, digest, seq in _series_rows(store):
        latest = seq[-1]
        st = latest.stats
        medians = [o.stats.statistic if o.stats else None for o in seq]
        verdict = _verdict_for(label, comparisons)
        if verdict is None:
            vcell = '<span class="muted">-</span>'
        else:
            t = verdict.total
            if t.verdict == "indeterminate":
                vcell = '<span class="muted">indeterminate</span>'
            elif verdict.regressed:
                stage = (
                    f" &middot; {esc(verdict.responsible_stages[0].stage)}"
                    if verdict.responsible_stages
                    else ""
                )
                vcell = (f'<span class="regressed">REGRESSED '
                         f"{t.rel_shift:+.1%}</span>{stage}")
            elif t.verdict == "improved" and t.confirmed:
                vcell = f'<span class="improved">improved {t.rel_shift:+.1%}</span>'
            elif t.verdict in ("regressed", "improved"):
                vcell = (f'<span class="unconfirmed">{t.verdict} '
                         f"{t.rel_shift:+.1%} (unconfirmed)</span>")
            else:
                vcell = f"unchanged {t.rel_shift:+.1%}"
        parts.append(
            f"<tr><td>{esc(label)}</td><td><code>{esc(digest)}</code></td>"
            f"<td class='num'>{len(seq)}</td><td>{sparkline(medians)}</td>"
            f"<td class='num'>{_fmt_s(st.statistic if st else None)}</td>"
            f"<td class='num'>[{_fmt_s(st.lo if st else None)}, "
            f"{_fmt_s(st.hi if st else None)}]</td>"
            f"<td class='num'>{latest.reps}{'' if latest.converged else '*'}</td>"
            f"<td>{vcell}</td></tr>"
        )
    parts.append("</table>")
    parts.append("<p class='muted'>* = adaptive protocol hit max_reps before "
                 "reaching its CI-width target.</p>")
    stage_sections = [c for c in comparisons if c.stages]
    if stage_sections:
        parts.append("<h2>Stage breakdown</h2>")
        for c in stage_sections:
            parts.append(f"<h3>{esc(c.label)}</h3>")
            if c.change_point is not None:
                cp = c.change_point
                parts.append(
                    f"<p>Change point at observation {cp.index}: "
                    f"{_fmt_s(cp.before_median)} &rarr; {_fmt_s(cp.after_median)} "
                    f"({cp.rel_shift:+.1%}, p={cp.p_value:.3f}).</p>"
                )
            parts.append(
                "<table><tr><th>stage</th><th>shift</th><th>95% shift CI</th>"
                "<th>delta</th><th>verdict</th></tr>"
            )
            for s in c.stages:
                v = s.verdict
                if v.verdict == "indeterminate":
                    parts.append(
                        f"<tr><td>{esc(s.stage)}</td><td colspan='3' "
                        f"class='muted'>-</td><td>indeterminate</td></tr>"
                    )
                    continue
                cls = (
                    "regressed" if (v.verdict == "regressed" and v.confirmed)
                    else "improved" if (v.verdict == "improved" and v.confirmed)
                    else "unconfirmed" if v.verdict in ("regressed", "improved")
                    else ""
                )
                flag = v.verdict + (" (confirmed)" if v.confirmed else "")
                parts.append(
                    f"<tr><td>{esc(s.stage)}</td>"
                    f"<td class='num'>{v.rel_shift:+.1%}</td>"
                    f"<td class='num'>[{v.shift_lo:+.1%}, {v.shift_hi:+.1%}]</td>"
                    f"<td class='num'>{s.delta_seconds * 1e3:+.3f} ms</td>"
                    f"<td class='{cls}'>{flag}</td></tr>"
                )
            parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)
