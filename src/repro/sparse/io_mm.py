"""Matrix Market (.mtx) reader/writer.

The paper loads SuiteSparse matrices from Matrix Market files
(``Sparse A("path/to/mat.mtx")`` in Listing 2).  This module implements the
coordinate Matrix Market dialect used by SuiteSparse: ``real``/``integer``/
``pattern`` fields and ``general``/``symmetric`` symmetry, with ``%`` comment
lines.  ``array`` (dense) files and complex fields are rejected explicitly.
"""

from __future__ import annotations

import io
from os import PathLike
from typing import Union

import numpy as np

from .csr import CSRMatrix
from .sanitize import CSRSanitizeError, SanitizeIssue, SanitizeReport, sanitize_csr

__all__ = [
    "MatrixMarketParseError",
    "read_matrix_market",
    "write_matrix_market",
    "loads_matrix_market",
    "dumps_matrix_market",
]

_HEADER_PREFIX = "%%MatrixMarket"


class MatrixMarketParseError(ValueError):
    """The document is not parseable Matrix Market text (before any matrix
    content can be judged): bad header, bad size line, truncated or
    over-long entry list, malformed entry tokens."""


def loads_matrix_market(text: str, *, repair: bool = False) -> CSRMatrix:
    """Parse a Matrix Market coordinate document from a string.

    Malformed *documents* raise :class:`MatrixMarketParseError`; documents
    that parse but carry malformed *matrix content* (duplicate entries,
    out-of-range indices, NaN/Inf values) are routed through
    :func:`~repro.sparse.sanitize.sanitize_csr` — rejected with a
    structured :class:`~repro.sparse.sanitize.CSRSanitizeError` by
    default, or repaired in place with ``repair=True``.  Both are
    ``ValueError`` subclasses, preserving the historical contract.
    """
    lines = iter(text.splitlines())
    try:
        header = next(lines)
    except StopIteration:
        raise MatrixMarketParseError("empty Matrix Market document") from None
    parts = header.strip().split()
    if len(parts) != 5 or parts[0] != _HEADER_PREFIX:
        raise MatrixMarketParseError(f"bad Matrix Market header: {header!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix":
        raise MatrixMarketParseError(f"unsupported object {obj!r}")
    if fmt != "coordinate":
        raise MatrixMarketParseError(f"only 'coordinate' format is supported, got {fmt!r}")
    if field not in ("real", "integer", "pattern"):
        raise MatrixMarketParseError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise MatrixMarketParseError(f"unsupported symmetry {symmetry!r}")

    # Skip comments and blanks up to the size line.
    size_line = None
    for line in lines:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        size_line = s
        break
    if size_line is None:
        raise MatrixMarketParseError("missing size line")
    dims = size_line.split()
    if len(dims) != 3:
        raise MatrixMarketParseError(f"bad size line: {size_line!r}")
    try:
        n_rows, n_cols, nnz = (int(x) for x in dims)
    except ValueError:
        raise MatrixMarketParseError(f"bad size line: {size_line!r}") from None
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise MatrixMarketParseError(f"negative dimensions in size line: {size_line!r}")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in lines:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        if k >= nnz:
            raise MatrixMarketParseError("more entries than declared in size line")
        toks = s.split()
        try:
            if field == "pattern":
                if len(toks) != 2:
                    raise MatrixMarketParseError(f"bad pattern entry: {s!r}")
                r, c, v = int(toks[0]), int(toks[1]), 1.0
            else:
                if len(toks) != 3:
                    raise MatrixMarketParseError(f"bad entry: {s!r}")
                r, c, v = int(toks[0]), int(toks[1]), float(toks[2])
        except ValueError:
            raise MatrixMarketParseError(f"bad entry: {s!r}") from None
        rows[k], cols[k], vals[k] = r - 1, c - 1, v  # 1-based -> 0-based
        k += 1
    if k != nnz:
        raise MatrixMarketParseError(
            f"declared {nnz} entries but found {k} (truncated document?)"
        )

    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return _assemble(n_rows, n_cols, rows, cols, vals, repair=repair)


def _assemble(
    n_rows: int, n_cols: int, rows, cols, vals, *, repair: bool
) -> CSRMatrix:
    """COO triplets -> sanitized CSR with structured content errors."""
    report = SanitizeReport(name="matrix-market", n_rows=n_rows, n_cols=n_cols)
    bad_rows = (rows < 0) | (rows >= n_rows)
    n_bad = int(np.count_nonzero(bad_rows))
    if n_bad:
        report.issues.append(
            SanitizeIssue(
                "row_out_of_range",
                n_bad,
                f"row indices outside [0, {n_rows})",
                repaired=repair,
            )
        )
        if not repair:
            raise CSRSanitizeError(report)
        keep = ~bad_rows
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
    matrix, content_report = sanitize_csr(
        (n_rows, n_cols, indptr, cols, vals), repair=repair, name="matrix-market"
    )
    if report.issues and content_report.issues:
        # merge the row-range issue into the content report for callers
        content_report.issues = report.issues + content_report.issues
    return matrix


def read_matrix_market(path: Union[str, PathLike], *, repair: bool = False) -> CSRMatrix:
    """Read a ``.mtx`` file from disk (see :func:`loads_matrix_market`)."""
    with open(path, "r", encoding="ascii") as fh:
        return loads_matrix_market(fh.read(), repair=repair)


def dumps_matrix_market(a: CSRMatrix, *, symmetric: bool = False) -> str:
    """Serialise to a Matrix Market coordinate document.

    With ``symmetric=True`` only the lower triangle is emitted and the header
    declares ``symmetric`` (the caller is responsible for the matrix actually
    being symmetric; this is validated).
    """
    buf = io.StringIO()
    sym = "symmetric" if symmetric else "general"
    buf.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
    buf.write("% written by repro (HDagg reproduction)\n")
    entries = []
    for i, cols, vals in a.iter_rows():
        for c, v in zip(cols.tolist(), vals.tolist()):
            if symmetric and c > i:
                continue
            entries.append((i + 1, c + 1, v))
    if symmetric:
        from .properties import is_structurally_symmetric

        if not is_structurally_symmetric(a):
            raise ValueError("symmetric=True but matrix pattern is not symmetric")
    buf.write(f"{a.n_rows} {a.n_cols} {len(entries)}\n")
    for r, c, v in entries:
        buf.write(f"{r} {c} {v!r}\n")
    return buf.getvalue()


def write_matrix_market(a: CSRMatrix, path: Union[str, PathLike], *, symmetric: bool = False) -> None:
    """Write a ``.mtx`` file to disk."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dumps_matrix_market(a, symmetric=symmetric))
