"""Tests for the transpose triangular solve (L^T x = b)."""

import numpy as np
import pytest

from repro.graph import compute_wavefronts, dag_from_lower_triangular
from repro.kernels import (
    KernelError,
    SpIC0,
    sptrsv_transpose_levelwise,
    sptrsv_transpose_reference,
)
from repro.sparse import csr_from_dense, dense_upper_solve, lower_triangle


def test_reference_matches_dense(mesh, rng):
    low = lower_triangle(mesh)
    b = rng.normal(size=mesh.n_rows)
    x = sptrsv_transpose_reference(low, b)
    np.testing.assert_allclose(x, dense_upper_solve(low.to_dense().T, b), rtol=1e-12)


def test_levelwise_matches_reference(all_small_matrices, rng):
    for name, a in all_small_matrices.items():
        low = lower_triangle(a)
        b = rng.normal(size=a.n_rows)
        np.testing.assert_allclose(
            sptrsv_transpose_levelwise(low, b),
            sptrsv_transpose_reference(low, b),
            rtol=1e-10,
            err_msg=name,
        )


def test_accepts_precomputed_waves(mesh, rng):
    low = lower_triangle(mesh)
    waves = compute_wavefronts(dag_from_lower_triangular(low))
    b = rng.normal(size=mesh.n_rows)
    np.testing.assert_allclose(
        sptrsv_transpose_levelwise(low, b, waves),
        sptrsv_transpose_reference(low, b),
        rtol=1e-10,
    )


def test_residual_is_zero(mesh, rng):
    low = lower_triangle(mesh)
    b = rng.normal(size=mesh.n_rows)
    x = sptrsv_transpose_levelwise(low, b)
    r = low.to_dense().T @ x - b
    assert np.linalg.norm(r) < 1e-10 * np.linalg.norm(b)


def test_identity():
    low = csr_from_dense(np.eye(3) * 4.0)
    np.testing.assert_allclose(
        sptrsv_transpose_reference(low, np.ones(3)), 0.25 * np.ones(3)
    )


def test_validation_applies():
    bad = csr_from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))  # upper entries
    with pytest.raises(KernelError):
        sptrsv_transpose_reference(bad, np.ones(2))


def test_b_shape_checked(mesh):
    with pytest.raises(ValueError):
        sptrsv_transpose_reference(lower_triangle(mesh), np.ones(3))


def test_full_ic0_preconditioner_solve(mesh, rng):
    """L then L^T applied to A-times-x recovers x (exact on no-fill pattern
    up to the IC(0) defect, tight for the tiny fixture)."""
    from repro.kernels.sptrsv import sptrsv_levelwise

    factor = SpIC0().reference(mesh)
    x = rng.normal(size=mesh.n_rows)
    b = mesh.matvec(x)
    y = sptrsv_levelwise(factor, b)
    z = sptrsv_transpose_levelwise(factor, y)
    # z approximates x: (L L^T)^-1 A x with L L^T ~ A on the pattern
    assert np.linalg.norm(z - x) / np.linalg.norm(x) < 0.6
    # and the solve pair is exactly (L L^T)^{-1}
    llt = factor.to_dense() @ factor.to_dense().T
    np.testing.assert_allclose(llt @ z, b, rtol=1e-8)
