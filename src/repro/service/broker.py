"""Synchronous request broker: the core of the serving front door.

One :meth:`ScheduleBroker.request` call resolves a schedule for one
(structure, kernel, scheduler, p, ε, backend) key through a fixed
resolution ladder, each rung observable in the result's ``source``:

``memory``
    the in-process :class:`~repro.core.schedule_cache.ScheduleCache` (L1);
``store``
    the persistent :class:`~repro.store.ScheduleStore` (L2) — reads are
    retried with backoff on transient I/O errors, and every store hit is
    re-verified with ``assert_schedule_safe`` before being served (a
    record that decodes but is unsafe for the request's DAG is
    quarantined, never returned);
``inspected``
    a fresh inspection through the
    ``hdagg→wavefront→serial`` degradation chain
    (:func:`~repro.resilience.degrade.inspect_with_fallback`), under
    whatever remains of the request's deadline, retried on injected
    worker crashes (``service.worker_crash``), then written through to
    the store and L1;
``coalesced``
    another thread was already inspecting the same key — the request
    waited (single-flight) and shares the leader's schedule.

Failure behaviour is structured, never silent: over-capacity requests
raise :class:`AdmissionRejected` immediately (bounded queue, shed — don't
buffer), expired deadlines raise :class:`DeadlineExceeded`, and both carry
machine-readable ``as_dict()`` payloads for the front door to return.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..core.schedule import Schedule
from ..core.schedule_cache import ScheduleCache, schedule_key
from ..graph.dag import DAG
from ..observability.state import STATE as _OBS_STATE
from ..observability.state import current_tracer
from ..observability.telemetry import FANIN_BUCKETS, LATENCY_BUCKETS, RequestContext
from ..resilience.degrade import inspect_with_fallback
from ..resilience.faults import FaultError, fault_point
from ..resilience.retry import RetryExhausted, retry_with_backoff
from ..store.store import ScheduleStore, StoreError

__all__ = [
    "ServeRequest",
    "ServeResult",
    "ServiceRejected",
    "AdmissionRejected",
    "DeadlineExceeded",
    "BrokerStats",
    "ScheduleBroker",
]


class ServiceRejected(RuntimeError):
    """A request the service declined, with a structured reason.

    ``payload`` is the machine-readable body the front door returns to
    the client instead of queueing unboundedly or timing out opaquely.
    """

    reason = "rejected"

    def __init__(self, message: str, **payload: Any) -> None:
        super().__init__(message)
        self.payload = {"reason": self.reason, "message": message, **payload}

    def as_dict(self) -> dict:
        return dict(self.payload)


class AdmissionRejected(ServiceRejected):
    """Load shed: the bounded inspection queue is full."""

    reason = "admission_full"


class DeadlineExceeded(ServiceRejected):
    """The request's deadline expired before a schedule could be served."""

    reason = "deadline_exceeded"


@dataclass
class ServeRequest:
    """One schedule request: the inspection problem plus serving policy.

    ``deadline`` is a per-request wall-clock budget in seconds; whatever
    remains when inspection starts becomes the degradation-chain budget,
    so a late request degrades (hdagg → wavefront → serial) rather than
    overshooting.  ``None`` means no deadline.
    """

    g: DAG
    cost: np.ndarray
    kernel: str = ""
    algorithm: str = "hdagg"
    p: int = 8
    epsilon: Optional[float] = None
    backend: Any = None
    deadline: Optional[float] = None
    options: Optional[dict] = None

    def key(self) -> str:
        """The store/cache digest for this request (see :func:`schedule_key`)."""
        return schedule_key(
            self.g,
            kernel=self.kernel,
            algorithm=self.algorithm,
            p=self.p,
            epsilon=self.epsilon,
            backend="" if self.backend is None else str(self.backend),
            options=self.options,
        )


@dataclass
class ServeResult:
    """A served schedule plus its provenance."""

    key: str
    schedule: Schedule
    source: str  # "memory" | "store" | "inspected" | "coalesced"
    algorithm: str
    requested: str
    degraded: bool = False
    degraded_from: str = ""
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "source": self.source,
            "algorithm": self.algorithm,
            "requested": self.requested,
            "degraded": self.degraded,
            "degraded_from": self.degraded_from,
            "seconds": self.seconds,
            "n_levels": self.schedule.n_levels,
            "n_partitions": self.schedule.n_partitions,
        }


@dataclass(frozen=True)
class BrokerStats:
    """Lifetime counters of one broker (all requests, all threads)."""

    requests: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    inspected: int = 0
    coalesced: int = 0
    rejected: int = 0
    degraded: int = 0
    retries: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of completed requests served without a fresh inspection."""
        served = self.memory_hits + self.store_hits + self.inspected + self.coalesced
        return (self.memory_hits + self.store_hits + self.coalesced) / served if served else 0.0


class _Flight:
    """Single-flight rendezvous: the leader publishes, followers wait.

    ``followers`` is incremented under the broker's flights lock while
    the flight is still registered, so by the time the leader publishes
    (after deregistering) it is the final fan-in minus the leader.
    """

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[ServeResult] = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class ScheduleBroker:
    """Synchronous-core schedule server (wrap with the asyncio front door).

    Parameters
    ----------
    store:
        Optional persistent L2 (:class:`ScheduleStore`).  Without it the
        broker is a single-flight memoising server over L1 only.
    cache:
        In-process L1; a fresh unbounded :class:`ScheduleCache` by default.
    max_inflight:
        Bound on *concurrent fresh inspections* (the expensive path).
        Requests beyond it are shed with :class:`AdmissionRejected`;
        cache and store hits are never shed.
    store_retries / retry_base_delay:
        :func:`retry_with_backoff` policy for transient store reads and
        crashed inspection workers.
    validate:
        Re-verify L1 hits and store hits with ``assert_schedule_safe``
        before serving (the degradation chain always validates fresh
        inspections).  Leave on in production; benchmarks measuring pure
        lookup latency may disable it.
    """

    def __init__(
        self,
        store: Optional[ScheduleStore] = None,
        *,
        cache: Optional[ScheduleCache] = None,
        max_inflight: int = 8,
        store_retries: int = 2,
        retry_base_delay: float = 0.05,
        validate: bool = True,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.store = store
        self.cache = cache if cache is not None else ScheduleCache()
        self.max_inflight = max_inflight
        self.store_retries = store_retries
        self.retry_base_delay = retry_base_delay
        self.validate = validate
        self._clock = clock
        self._sleep = sleep
        self._flights: Dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0, "memory_hits": 0, "store_hits": 0, "inspected": 0,
            "coalesced": 0, "rejected": 0, "degraded": 0, "retries": 0,
        }

    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += amount
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            _OBS_STATE.registry.counter(f"service.{name}").inc(amount)

    @property
    def stats(self) -> BrokerStats:
        with self._stats_lock:
            return BrokerStats(**self._counters)

    # ------------------------------------------------------------------
    def _remaining(self, req: ServeRequest, t0: float) -> Optional[float]:
        """Seconds left on the request's deadline (``None`` = unbounded)."""
        if req.deadline is None:
            return None
        return req.deadline - (self._clock() - t0)

    def _safe(self, schedule: Schedule, g: DAG) -> bool:
        if not self.validate:
            return True
        from ..analysis.verifier import assert_schedule_safe

        try:
            assert_schedule_safe(schedule, g)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # telemetry helpers — all dormant behind the ambient switch
    def _observe_latency(self, tier: Optional[str], outcome: str, seconds: float) -> None:
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            reg = _OBS_STATE.registry
            if tier is not None:
                reg.histogram(f"service.latency.tier.{tier}", LATENCY_BUCKETS).observe(seconds)
            reg.histogram(f"service.latency.outcome.{outcome}", LATENCY_BUCKETS).observe(seconds)

    def _count_metric(self, name: str) -> None:
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            _OBS_STATE.registry.counter(f"service.{name}").inc()

    # ------------------------------------------------------------------
    def request(
        self, req: ServeRequest, *, telemetry: Optional[RequestContext] = None
    ) -> ServeResult:
        """Resolve one request through memory → store → inspection.

        ``telemetry`` is the front door's request envelope: its ``parent``
        context re-parents this worker thread's spans under the request's
        root span (the asyncio → thread handoff) and its ``t_admit`` dates
        the retrospective ``queue_wait`` span.  Broker-only callers leave
        it ``None`` and the broker span doubles as the request root.

        Raises :class:`AdmissionRejected` or :class:`DeadlineExceeded`
        (both structured); any other exception means every rung of the
        degradation chain failed, which for a well-formed DAG cannot
        happen (serial is always safe).
        """
        t0 = self._clock()
        self._bump("requests")
        key = req.key()
        tracer = current_tracer()
        parent = telemetry.parent if telemetry is not None else None
        with tracer.attach(parent):
            if telemetry is not None and tracer.enabled:
                # the executor queue wait ends now, on this thread — record
                # it retrospectively as the broker span's elder sibling
                now = tracer.clock()
                tracer.record_span(
                    "service.queue_wait", telemetry.t_admit, now,
                    parent=parent, request_id=telemetry.request_id,
                )
                if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                    _OBS_STATE.registry.histogram(
                        "service.queue_wait_seconds", LATENCY_BUCKETS
                    ).observe(now - telemetry.t_admit)
            span = tracer.span("service.broker", key=key[:12], algorithm=req.algorithm)
            with span:
                if telemetry is not None:
                    span.annotate(request_id=telemetry.request_id)
                try:
                    result = self._resolve(req, key, t0, span)
                except AdmissionRejected:
                    span.annotate(outcome="shed")
                    self._count_metric("sheds.broker")
                    self._observe_latency(None, "shed", self._clock() - t0)
                    raise
                except DeadlineExceeded:
                    span.annotate(outcome="deadline")
                    self._count_metric("deadline_misses")
                    self._observe_latency(None, "deadline", self._clock() - t0)
                    raise
                span.annotate(outcome=result.source, degraded=result.degraded)
                self._observe_latency(
                    result.source,
                    "degraded" if result.degraded else "ok",
                    result.seconds,
                )
                return result

    def _resolve(self, req: ServeRequest, key: str, t0: float, bspan) -> ServeResult:
        tracer = current_tracer()
        # L1 — validate hits (chaos can corrupt the cache; the harness
        # re-validates its hits for the same reason) and invalidate on
        # refutation so the slot heals
        with tracer.span("service.memory"):
            hit = self.cache.get(key)
        if hit is not None:
            with tracer.span("service.verify", tier="memory"):
                ok = self._safe(hit, req.g)
            if ok:
                self._bump("memory_hits")
                return ServeResult(
                    key=key, schedule=hit, source="memory",
                    algorithm=hit.algorithm, requested=req.algorithm,
                    seconds=self._clock() - t0,
                )
            self.cache.invalidate(key)

        # single-flight: exactly one thread leads each key
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                flight.followers += 1
                leader = False

        if not leader:
            return self._follow(req, key, flight, t0)

        try:
            result = self._lead(req, key, t0, bspan)
            flight.result = result
            return result
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                _OBS_STATE.registry.histogram(
                    "service.coalesce_fanin", FANIN_BUCKETS
                ).observe(flight.followers + 1)
            flight.done.set()

    # ------------------------------------------------------------------
    def _follow(self, req: ServeRequest, key: str, flight: _Flight, t0: float) -> ServeResult:
        remaining = self._remaining(req, t0)
        with current_tracer().span("service.coalesce_wait", key=key[:12]):
            done = flight.done.wait(timeout=remaining)
        if not done:
            self._bump("rejected")
            raise DeadlineExceeded(
                f"deadline of {req.deadline:.3f}s expired waiting for the in-flight "
                f"inspection of {key[:12]}…",
                key=key, deadline=req.deadline, waited=self._clock() - t0,
            )
        if flight.error is not None:
            raise flight.error
        assert flight.result is not None
        self._bump("coalesced")
        return ServeResult(
            key=key,
            schedule=flight.result.schedule,
            source="coalesced",
            algorithm=flight.result.algorithm,
            requested=req.algorithm,
            degraded=flight.result.degraded,
            degraded_from=flight.result.degraded_from,
            seconds=self._clock() - t0,
        )

    # ------------------------------------------------------------------
    def _lead(self, req: ServeRequest, key: str, t0: float, bspan) -> ServeResult:
        tracer = current_tracer()
        # L2 — transient read errors are retried with backoff; quarantined
        # or absent records come back as a plain miss (None)
        if self.store is not None:
            def read():
                return self.store.get(key)

            with tracer.span("service.store.read", key=key[:12]):
                try:
                    stored = retry_with_backoff(
                        read,
                        retries=self.store_retries,
                        base_delay=self.retry_base_delay,
                        retry_on=(OSError, StoreError),
                        sleep=self._sleep,
                        on_retry=lambda n, exc: self._bump("retries"),
                    )
                except RetryExhausted:
                    stored = None  # store down: keep serving via inspection
            if stored is not None:
                with tracer.span("service.verify", tier="store"):
                    safe = self._safe(stored, req.g)
                if safe:
                    self.cache.put(key, stored)
                    self._bump("store_hits")
                    return ServeResult(
                        key=key, schedule=stored, source="store",
                        algorithm=stored.algorithm, requested=req.algorithm,
                        seconds=self._clock() - t0,
                    )
                # decodes fine but unsafe for this DAG (e.g. foreign or
                # stale record under a colliding key): never serve it
                bspan.annotate(quarantined=True)
                self.store.quarantine_key(key, "failed assert_schedule_safe for request DAG")

        # admission control: bound the expensive path, shed the excess
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self._bump("rejected")
                raise AdmissionRejected(
                    f"{self._inflight} inspections in flight (capacity {self.max_inflight})",
                    key=key, inflight=self._inflight, capacity=self.max_inflight,
                )
            self._inflight += 1
        try:
            remaining = self._remaining(req, t0)
            if remaining is not None and remaining <= 0:
                self._bump("rejected")
                raise DeadlineExceeded(
                    f"deadline of {req.deadline:.3f}s expired before inspection",
                    key=key, deadline=req.deadline,
                )

            def work():
                fault_point("service.worker_crash", label=key)
                return inspect_with_fallback(
                    req.algorithm,
                    req.g,
                    req.cost,
                    req.p,
                    epsilon=req.epsilon,
                    budget=self._remaining(req, t0),
                    backend=req.backend,
                )

            with tracer.span("service.inspect", algorithm=req.algorithm):
                outcome = retry_with_backoff(
                    work,
                    retries=self.store_retries,
                    base_delay=self.retry_base_delay,
                    retry_on=(FaultError, OSError),
                    sleep=self._sleep,
                    on_retry=lambda n, exc: self._bump("retries"),
                )
        finally:
            with self._inflight_lock:
                self._inflight -= 1

        if outcome.degraded:
            self._bump("degraded")
            tracer.instant(
                "service.degrade",
                requested=req.algorithm,
                served=outcome.algorithm,
                degraded_from=outcome.degraded_from,
            )
        # write-through, best effort: persistence failures (including
        # injected store faults) must not fail a request that holds a
        # perfectly good schedule — degraded schedules are not persisted,
        # matching the harness's never-cache-degraded rule
        if self.store is not None and not outcome.degraded:
            with tracer.span("service.store.write", key=key[:12]):
                try:
                    self.store.put(key, outcome.schedule)
                except Exception:
                    if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                        _OBS_STATE.registry.counter("service.store_write_errors").inc()
        self.cache.put(key, outcome.schedule)
        self._bump("inspected")
        return ServeResult(
            key=key,
            schedule=outcome.schedule,
            source="inspected",
            algorithm=outcome.algorithm,
            requested=req.algorithm,
            degraded=outcome.degraded,
            degraded_from=outcome.degraded_from,
            seconds=self._clock() - t0,
        )
