"""Run the doctest examples embedded in pure-function modules."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.core.pgp",
    "repro.core.binpack",
    "repro.metrics.synchronization",
    "repro.metrics.correlation",
]


@pytest.mark.parametrize("modname", MODULE_NAMES)
def test_doctests(modname):
    # importlib avoids attribute shadowing: `repro.core.pgp` the *attribute*
    # is the pgp function (re-exported), not the submodule
    mod = importlib.import_module(modname)
    failures, _ = doctest.testmod(mod, verbose=False)
    assert failures == 0
