"""Registry-drift gates: the cross-registry invariants the lint rules and
the verifier rely on, checked directly so drift fails loudly in CI.

Three registries must stay mutually consistent as the repo grows:

* the backend registry — every stage keeps its reference and numpy tiers
  (the differential-oracle discipline), and every pass's declared tiers
  exist;
* the fault-site registry — every site is exercised somewhere in the
  resilience suite, with only supported actions;
* the scheduler registry — every scheduler has a verified pass group.
"""

from pathlib import Path

import pytest

from repro.core.backends import STAGES, TIERS, registered_tiers
from repro.passes import PASS_GROUPS
from repro.resilience.faults import FAULT_SITES, FaultPlan
from repro.schedulers import SCHEDULERS

TESTS_ROOT = Path(__file__).resolve().parents[1]
#: suites that may discharge the "every fault site is exercised" duty —
#: resilience owns the generic chaos machinery; the store/service suites
#: own the four serving-stack sites (store.*, service.*)
FAULT_SUITES = ("resilience", "store", "service")


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stage", STAGES)
def test_every_stage_registers_reference_and_numpy(stage):
    tiers = registered_tiers(stage)
    assert "reference" in tiers, f"stage {stage!r} lost its loop oracle"
    assert "numpy" in tiers, f"stage {stage!r} lost its default fast path"
    assert set(tiers) <= set(TIERS)


def test_registered_tiers_rejects_unknown_stage():
    with pytest.raises(ValueError, match="unknown inspector stage"):
        registered_tiers("quantize")


def test_pass_declared_tiers_exist_in_the_registry():
    for name, group in PASS_GROUPS.items():
        for p in group.passes:
            if p.stage is None:
                assert not p.tiers, (name, p.name)
                continue
            tiers = registered_tiers(p.stage)
            for tier in p.tiers:
                assert tier in tiers, (name, p.name, tier)


# ----------------------------------------------------------------------
# fault-site registry
# ----------------------------------------------------------------------
def test_fault_sites_declare_known_actions():
    known = {"raise", "stall", "corrupt", "exit"}
    for site, actions in FAULT_SITES.items():
        assert actions, f"site {site!r} supports no actions"
        assert set(actions) <= known, (site, actions)


def test_chaos_default_sites_are_registered():
    plan = FaultPlan.chaos(0)
    for spec in plan.specs:
        assert spec.site in FAULT_SITES
        assert spec.action in FAULT_SITES[spec.site]


@pytest.mark.parametrize("site", sorted(FAULT_SITES))
def test_every_fault_site_is_exercised_by_a_fault_suite(site):
    """A registered site nobody injects is dead armor: adding a site to
    FAULT_SITES requires a chaos/fault test naming it (as a literal, the
    same discipline lint rule L001 enforces at the call sites)."""
    sources = "\n".join(
        p.read_text()
        for suite in FAULT_SUITES
        for p in sorted((TESTS_ROOT / suite).glob("test_*.py"))
    )
    assert f'"{site}"' in sources or f"'{site}'" in sources, (
        f"fault site {site!r} is registered but never exercised under "
        + " / ".join(f"tests/{s}" for s in FAULT_SUITES)
    )


def test_serving_stack_sites_are_registered():
    """The four serving-stack sites of the crash-consistency suite must
    stay registered: an unregistered literal at a ``fault_point`` call is
    exactly what lint rule L001 rejects, and an unregistered site in a
    ``FaultSpec`` would silently never fire."""
    expected = {
        "store.torn_write": {"raise", "corrupt"},
        "store.bit_flip": {"corrupt"},
        "store.stale_manifest": {"raise"},
        "service.worker_crash": {"raise"},
    }
    for site, actions in expected.items():
        assert site in FAULT_SITES, f"serving-stack fault site {site!r} unregistered"
        assert set(FAULT_SITES[site]) == actions, (site, FAULT_SITES[site])


def test_statan_l001_catches_unregistered_store_site(tmp_path):
    """End-to-end check that L001 (the statan lint rule the runtime gate
    above mirrors) flags a ``fault_point`` naming an unregistered
    serving-stack site — the drift mode this PR makes newly possible."""
    from repro.statan import run_lint

    # L001 scopes itself to src/repro, so mirror that layout in the sandbox
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    bad = pkg / "bad_store_code.py"
    bad.write_text(
        "from repro.resilience.faults import fault_point\n\n\n"
        "def write(blob):\n"
        '    fault_point("store.torn_wrlte", payload=blob)\n'  # typo'd site
        "    return blob\n"
    )
    diags = run_lint(tmp_path, rule_ids=["L001"])
    assert any("store.torn_wrlte" in d.message for d in diags), [
        d.render() for d in diags
    ]
    # and the real, registered literal is clean
    bad.write_text(
        "from repro.resilience.faults import fault_point\n\n\n"
        "def write(blob):\n"
        '    fault_point("store.torn_write", payload=blob)\n'
        "    return blob\n"
    )
    assert run_lint(tmp_path, rule_ids=["L001"]) == []


def test_fault_point_call_sites_use_registered_sites():
    """The runtime half of L001, against the live tree."""
    import ast

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    seen = set()
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "fault_point"
                and node.args
                and isinstance(node.args[0], ast.Constant)
            ):
                seen.add(node.args[0].value)
    assert seen <= set(FAULT_SITES), seen - set(FAULT_SITES)
    # the executor's per-stage hook is wired (the pass refactor kept it)
    assert "inspector.stage" in seen


# ----------------------------------------------------------------------
# scheduler registry
# ----------------------------------------------------------------------
def test_scheduler_and_pass_group_registries_agree():
    assert set(SCHEDULERS) == set(PASS_GROUPS)


def test_every_registered_group_passes_static_verification():
    from repro.statan import verify_registered_groups

    for name, diags in verify_registered_groups().items():
        errors = [d for d in diags if d.severity == "error"]
        assert errors == [], (name, [d.render() for d in errors])
