"""Table I: average speedup of HDagg over MKL/DAGP/LBC/Wavefront/SpMP.

Paper values (34 SuiteSparse matrices, real hardware):

===========  ======  =====
HDagg vs     intel   amd
===========  ======  =====
MKL (trsv)   3.56    --
DAGP         3.87    8.41
LBC          3.41    7.01
Wavefront    1.95    2.83
SpMP         1.43    1.10
===========  ======  =====

The regenerated table reports the same ratios on the synthetic suite and
simulated machines; EXPERIMENTS.md records paper-vs-measured.
"""

import numpy as np

from _common import write_report
from repro.suite import format_table, table1_speedups

#: The paper's Table I (Intel / AMD columns), used for shape assertions.
PAPER_INTEL = {"mkl": 3.56, "dagp": 3.87, "lbc": 3.41, "wavefront": 1.95, "spmp": 1.43}


def _mean_ratio(data, baseline, machine):
    vals = [v["mean"] for k, v in data.items() if k.startswith(f"{baseline}|") and k.endswith(machine)]
    return float(np.mean([v for v in vals if np.isfinite(v)]))


def test_table1_intel(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(table1_speedups, records_intel)
    text = format_table(headers, rows, title="Table I (intel20): avg speedup of HDagg over baselines")
    write_report(output_dir, "table1_intel20", text)

    # Shape assertions: HDagg wins on average against every baseline, and
    # the baseline ordering matches the paper (SpMP strongest ... DAGP/LBC
    # weakest).
    means = {b: _mean_ratio(data, b, "intel20") for b in PAPER_INTEL}
    for b, m in means.items():
        assert m > 1.0, f"HDagg should beat {b} on average, got {m:.2f}"
    assert means["spmp"] < means["wavefront"] < means["lbc"]
    assert means["spmp"] < means["dagp"]


def test_table1_amd(benchmark, records_amd, output_dir):
    headers, rows, data = benchmark(table1_speedups, records_amd)
    text = format_table(headers, rows, title="Table I (amd64): avg speedup of HDagg over baselines")
    write_report(output_dir, "table1_amd64", text)
    # On AMD the paper's SpMP gap narrows to 1.10x.  The simulated model
    # lands slightly below parity (~0.8; see EXPERIMENTS.md deviations):
    # at p=64 the scaled matrices expose too few connected components for
    # HDagg to coarsen, while SpMP's pipelining is unaffected.
    assert _mean_ratio(data, "spmp", "amd64") > 0.6
    assert _mean_ratio(data, "dagp", "amd64") > 1.0
    assert _mean_ratio(data, "lbc", "amd64") > 1.0
