"""A/B comparison of two harness runs — the development regression tool.

Calibration work on the model or changes to an inspector shift numbers
everywhere; this module diffs two record sets (e.g. saved before and after
a change with :mod:`repro.suite.storage`) and reports per-algorithm speedup
movement, flagged regressions, and the headline Table-I ratios side by
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .harness import RunRecord
from .tables import index_records

__all__ = ["RecordDelta", "diff_records", "regression_report"]


@dataclass(frozen=True)
class RecordDelta:
    """Speedup movement of one (matrix, kernel, algorithm, machine) cell."""

    key: tuple
    old_speedup: float
    new_speedup: float

    @property
    def ratio(self) -> float:
        return self.new_speedup / self.old_speedup if self.old_speedup > 0 else float("inf")

    @property
    def regressed(self) -> bool:
        """More than 5% slower counts as a regression."""
        return self.ratio < 0.95


def diff_records(
    old: Sequence[RunRecord], new: Sequence[RunRecord]
) -> Tuple[List[RecordDelta], List[tuple], List[tuple]]:
    """Match cells by key; returns (deltas, only_in_old, only_in_new)."""
    old_idx = index_records(old)
    new_idx = index_records(new)
    deltas = [
        RecordDelta(key=k, old_speedup=old_idx[k].speedup, new_speedup=new_idx[k].speedup)
        for k in sorted(set(old_idx) & set(new_idx))
    ]
    return (
        deltas,
        sorted(set(old_idx) - set(new_idx)),
        sorted(set(new_idx) - set(old_idx)),
    )


def regression_report(
    old: Sequence[RunRecord], new: Sequence[RunRecord], *, threshold: float = 0.95
) -> str:
    """Human-readable diff: per-algorithm movement and flagged regressions."""
    deltas, gone, added = diff_records(old, new)
    lines = [f"record diff: {len(deltas)} matched cells"]
    if gone:
        lines.append(f"  cells only in OLD: {len(gone)} (e.g. {gone[0]})")
    if added:
        lines.append(f"  cells only in NEW: {len(added)} (e.g. {added[0]})")

    by_algo: Dict[str, List[float]] = {}
    for d in deltas:
        by_algo.setdefault(d.key[2], []).append(d.ratio)
    for algo in sorted(by_algo):
        ratios = np.array(by_algo[algo])
        lines.append(
            f"  {algo:>10}: mean ratio {ratios.mean():.3f} "
            f"(min {ratios.min():.3f}, max {ratios.max():.3f})"
        )

    regressions = [d for d in deltas if d.ratio < threshold]
    if regressions:
        lines.append(f"  {len(regressions)} regression(s) below {threshold:.2f}x:")
        for d in sorted(regressions, key=lambda d: d.ratio)[:10]:
            lines.append(
                f"    {d.key}: {d.old_speedup:.2f} -> {d.new_speedup:.2f} "
                f"({d.ratio:.2f}x)"
            )
    else:
        lines.append(f"  no regressions below {threshold:.2f}x")
    return "\n".join(lines)
