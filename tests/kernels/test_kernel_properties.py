"""Property-based numeric tests for the kernels (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import topological_order
from repro.kernels import (
    SpIC0,
    SpILU0,
    SpTRSV,
    gauss_seidel_sweep,
    sptrsv_levelwise,
    sptrsv_reference,
    sptrsv_transpose_levelwise,
)
from repro.sparse import csr_from_dense, lower_triangle, spd_from_pattern


@st.composite
def random_spd_matrices(draw, max_n=24):
    """Seeded random SPD matrices of modest size."""
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, 3 * max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(1, n, size=m)
    cols = (rng.random(m) * rows).astype(np.int64)
    pair = np.unique(np.stack([rows, cols], axis=1), axis=0)
    return spd_from_pattern(n, pair[:, 0], pair[:, 1], seed=seed)


@given(random_spd_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_sptrsv_solves_exactly(a, seed):
    low = lower_triangle(a)
    rng = np.random.default_rng(seed)
    x_true = rng.normal(size=a.n_rows)
    b = low.matvec(x_true)
    for solver in (sptrsv_reference, sptrsv_levelwise):
        x = solver(low, b)
        np.testing.assert_allclose(x, x_true, rtol=1e-8, atol=1e-10)


@given(random_spd_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_transpose_solve_inverts(a, seed):
    low = lower_triangle(a)
    rng = np.random.default_rng(seed)
    x_true = rng.normal(size=a.n_rows)
    b = low.transpose().matvec(x_true)
    x = sptrsv_transpose_levelwise(low, b)
    np.testing.assert_allclose(x, x_true, rtol=1e-8, atol=1e-10)


@given(random_spd_matrices())
@settings(max_examples=30, deadline=None)
def test_ic0_defect_zero_on_pattern(a):
    kernel = SpIC0()
    factor = kernel.reference(a)
    assert kernel.verify(a, factor) < 1e-9
    assert np.all(factor.diagonal() > 0)


@given(random_spd_matrices())
@settings(max_examples=30, deadline=None)
def test_ilu0_defect_zero_on_pattern(a):
    kernel = SpILU0()
    factor = kernel.reference(a)
    assert kernel.verify(a, factor) < 1e-9


@given(random_spd_matrices())
@settings(max_examples=25, deadline=None)
def test_factorisations_order_invariant(a):
    """Any topological order yields the same factor values."""
    for kernel in (SpIC0(), SpILU0()):
        g = kernel.dag(a)
        order = topological_order(g)
        ref = kernel.reference(a)
        got = kernel.execute_in_order(a, order)
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-9, atol=1e-12)


@given(random_spd_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_gauss_seidel_contracts_on_spd(a, seed):
    """One forward sweep never increases the A-norm error on SPD systems."""
    rng = np.random.default_rng(seed)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)
    x0 = rng.normal(size=a.n_rows)
    x1 = gauss_seidel_sweep(a, b, x0)
    dense = a.to_dense()

    def a_norm(e):
        return float(e @ (dense @ e))

    assert a_norm(x1 - x_true) <= a_norm(x0 - x_true) + 1e-9
