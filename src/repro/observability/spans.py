"""Span-based tracing: nested, monotonically timestamped execution spans.

A :class:`Tracer` records *spans* — named intervals with monotonic start
and end timestamps — organised into a per-thread nesting tree, exactly the
shape Chrome's ``trace_event`` format (and therefore Perfetto) renders as
a flame chart.  Span names follow a ``stage/substage[args]`` convention:
``inspect/transitive_reduction``, ``inspect/lbp``,
``execute/wavefront[3]``, ``execute/partition[3,1]``.

Nesting is tracked per thread (executor workers trace concurrently without
locks on the hot path: each thread appends to its own list and the tracer
merges on read).  Timestamps come from an injectable ``clock`` — the
default is :func:`time.perf_counter` — so tests can drive a deterministic
virtual clock and assert exact span trees.

The disabled path is :data:`NULL_TRACER`: ``span()`` hands back one shared
no-op context manager, ``instant()`` returns immediately, and nothing is
ever allocated — the zero-overhead-when-off guarantee the benchmark gate
(``benchmarks/smoke_observability.py``) enforces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One named interval of work.

    ``t0``/``t1`` are clock readings (seconds for the default clock);
    ``parent`` is the index of the enclosing span *within the same thread's
    span list* (-1 for top level), ``depth`` its nesting depth, and ``tid``
    the recording thread's ident.  ``attrs`` holds small JSON-safe
    key/values (core ids, level indices, vertex counts).
    """

    name: str
    t0: float
    t1: float
    tid: int
    parent: int = -1
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        """JSON-ready form (the JSONL exporter writes one of these per line)."""
        out = {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "tid": self.tid,
            "parent": self.parent,
            "depth": self.depth,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class _OpenSpan:
    """Context manager for one in-flight span (reused API, per-call object)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        local = self._tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        self._parent = stack[-1] if stack else -1
        self._depth = len(stack)
        # reserve the slot *before* timing starts so children know their parent
        spans = self._tracer._spans_for_thread()
        stack.append(len(spans))
        spans.append(None)  # placeholder, filled on exit
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = self._tracer.clock()
        local = self._tracer._local
        index = local.stack.pop()
        spans = self._tracer._spans_for_thread()
        spans[index] = Span(
            name=self._name,
            t0=self._t0,
            t1=t1,
            tid=threading.get_ident(),
            parent=self._parent,
            depth=self._depth,
            attrs=self._attrs or {},
        )


class _NullSpan:
    """The shared do-nothing context manager of the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans from any number of threads.

    ``clock`` must be monotonic; tests may inject a fake.  ``enabled`` is
    True — instrumented code checks this single attribute (or the ambient
    state's flag) before doing any per-event work.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._local = threading.local()
        #: one span list per recording thread, kept by identity — thread
        #: idents are reused by the OS, so a dict keyed on them would drop
        #: a finished thread's spans when a later thread inherits its ident
        self._lists: List[List[Optional[Span]]] = []
        self._threads_lock = threading.Lock()

    def _spans_for_thread(self) -> List[Optional[Span]]:
        local = self._local
        spans = getattr(local, "spans", None)
        if spans is None:
            spans = local.spans = []
            with self._threads_lock:
                self._lists.append(spans)
        return spans

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _OpenSpan:
        """Open a nested span: ``with tracer.span("inspect/lbp"): ...``."""
        return _OpenSpan(self, name, attrs or None)

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration marker span."""
        t = self.clock()
        spans = self._spans_for_thread()
        local = self._local
        stack = getattr(local, "stack", None) or []
        spans.append(
            Span(
                name=name,
                t0=t,
                t1=t,
                tid=threading.get_ident(),
                parent=stack[-1] if stack else -1,
                depth=len(stack),
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """All *closed* spans, grouped by thread, in per-thread record order."""
        with self._threads_lock:
            lists = list(self._lists)
        return [s for spans in lists for s in spans if s is not None]

    def spans_named(self, prefix: str) -> List[Span]:
        """Closed spans whose name starts with ``prefix``, in record order."""
        return [s for s in self.spans if s.name.startswith(prefix)]

    def clear(self) -> None:
        """Drop all recorded spans (open spans in other threads are lost)."""
        with self._threads_lock:
            self._lists.clear()
        self._local = threading.local()

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """Disabled tracer: every operation is a no-op returning shared objects."""

    enabled = False
    spans: List[Span] = []

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        return None

    def spans_named(self, prefix: str) -> List[Span]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The process-wide disabled tracer (never collects anything).
NULL_TRACER = NullTracer()
