"""The HDagg inspector as a pass group (Algorithm 1, stage per pass).

Each stage of the paper's Algorithm 1 is one :class:`~repro.passes.base.Pass`
bound to the backend registry stage of the same name, with the contract the
inline pipeline used implicitly:

========= ============================ ==============================
pass       consumes                     produces
========= ============================ ==============================
reduce     DAG                          ReducedDAG
aggregate  ReducedDAG, Cost, Cores      Grouping
coarsen    ReducedDAG, Grouping, Cost   CoarseDAG, GroupCost
lbp        CoarseDAG, GroupCost, ...    CoarsenedWaves
expand     CoarsenedWaves, Grouping...  Schedule
========= ============================ ==============================

:func:`build_hdagg_group` is the factory the ablation switches configure:
``transitive_reduce=False`` swaps the reduce pass for an identity variant
(same timer window, same fault site — only the contract loses
``transitively-reduced``), ``aggregate=False`` replaces step 1 with an
identity grouping, ``bin_pack=False`` swaps the LBP pass for the
force-fine-grained variant.  This is ROADMAP item 5's point: ablations and
successor schedulers are different pass lists, not code surgery.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from .base import Pass, PassContext, PassGroup
from .contracts import Contract

__all__ = ["build_hdagg_group", "HDAGG_INPUTS", "HDAGG_ASSUMES"]

#: artifacts the hdagg driver seeds the context with
HDAGG_INPUTS = ("DAG", "Cost", "Cores", "Epsilon", "Backend")

#: invariants the kernel DAG builders guarantee on those inputs
HDAGG_ASSUMES = ("acyclic", "topo-ordered", "bit-identical-under-backend")


def _resolve(ctx: PassContext, stage: str) -> Any:
    """Backend-registry implementation for ``stage`` under the context spec."""
    from ..core.backends import resolve_stage

    fn, _tier = resolve_stage(ctx.spec, stage)
    return fn


# ----------------------------------------------------------------------
# pass bodies
# ----------------------------------------------------------------------
def _run_reduce(ctx: PassContext) -> Mapping[str, Any]:
    return {"ReducedDAG": _resolve(ctx, "reduce")(ctx["DAG"])}


def _run_reduce_identity(ctx: PassContext) -> Mapping[str, Any]:
    # ablation (transitive_reduce=False): subtree grouping on the raw DAG
    return {"ReducedDAG": ctx["DAG"]}


def _run_aggregate(ctx: PassContext) -> Mapping[str, Any]:
    cost = ctx["Cost"]
    cap_fraction = ctx.options.get("group_cost_cap_fraction")
    cap = (
        cap_fraction * float(cost.sum()) / ctx["Cores"]
        if cap_fraction is not None
        else None
    )
    return {"Grouping": _resolve(ctx, "aggregate")(ctx["ReducedDAG"], cost, cap)}


def _run_identity_grouping(ctx: PassContext) -> Mapping[str, Any]:
    # ablation (aggregate=False): step 1 disabled, every vertex its own group
    from ..graph.coarsen import identity_grouping

    g = ctx["DAG"]
    return {"ReducedDAG": g, "Grouping": identity_grouping(g.n)}


def _run_coarsen(ctx: PassContext) -> Mapping[str, Any]:
    g2, group_cost = _resolve(ctx, "coarsen")(
        ctx["ReducedDAG"], ctx["Grouping"], ctx["Cost"]
    )
    return {"CoarseDAG": g2, "GroupCost": group_cost}


def _run_lbp(ctx: PassContext) -> Mapping[str, Any]:
    from ..core.backends import resolve_stage

    lbp_fn, _ = resolve_stage(ctx.spec, "lbp")
    pack_fn, pack_tier = resolve_stage(ctx.spec, "binpack")
    lbp = lbp_fn(
        ctx["CoarseDAG"],
        ctx["GroupCost"],
        ctx["Cores"],
        ctx["Epsilon"],
        allow_fine_grained=True,
        pack=None if pack_tier == "numpy" else pack_fn,
    )
    if not ctx.options.get("bin_pack", True):
        # ablation of Lines 36-38: force fine-grained regardless of the
        # accumulated PGP.  The flag is flipped on the pass's own product
        # before publishing — input artifacts are never touched.
        lbp.fine_grained = True
    return {"CoarsenedWaves": lbp}


def _run_expand(ctx: PassContext) -> Mapping[str, Any]:
    g = ctx["DAG"]
    lbp = ctx["CoarsenedWaves"]
    grouping = ctx["Grouping"]
    meta: Dict[str, Any] = {
        "n_groups": grouping.n_groups,
        "n_edges_original": g.n_edges,
        "n_edges_reduced": ctx["ReducedDAG"].n_edges,
        "n_coarse_vertices": ctx["CoarseDAG"].n,
        "n_coarse_wavefronts": len(lbp.coarsened),
        "n_wavefronts": lbp.waves.n_levels,
        "accumulated_pgp": lbp.accumulated_pgp,
        "cut_positions": lbp.cut_positions,
        "epsilon": ctx["Epsilon"],
        "backend": ctx["Backend"],
    }
    schedule = _resolve(ctx, "expand")(
        lbp,
        grouping,
        g.n,
        ctx["Cores"],
        sync=ctx.options.get("sync", "barrier"),
        meta=meta,
    )
    return {"Schedule": schedule}


# ----------------------------------------------------------------------
# span attribute helpers (only computed when observability is armed)
# ----------------------------------------------------------------------
def _reduce_attrs(ctx: PassContext) -> Dict[str, Any]:
    g = ctx["DAG"]
    return {"n": g.n, "n_edges": g.n_edges}


def _lbp_attrs(ctx: PassContext) -> Dict[str, Any]:
    return {"n_coarse": ctx["CoarseDAG"].n, "epsilon": ctx["Epsilon"]}


# ----------------------------------------------------------------------
# the group factory
# ----------------------------------------------------------------------
def build_hdagg_group(
    *,
    aggregate: bool = True,
    transitive_reduce: bool = True,
    bin_pack: bool = True,
) -> PassGroup:
    """The HDagg pass list for one ablation configuration.

    The default arguments produce the paper's Algorithm 1 — the group
    registered as ``"hdagg"``.  Toggles swap passes for contract-weakened
    variants instead of branching inside pass bodies.
    """
    passes = []
    if aggregate:
        reduce_establishes = ("transitively-reduced",) if transitive_reduce else ()
        passes.append(
            Pass(
                name="reduce",
                contract=Contract(
                    requires=("DAG",),
                    produces=("ReducedDAG",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    establishes=reduce_establishes,
                    preserves=("acyclic", "topo-ordered", "bit-identical-under-backend"),
                ),
                run=_run_reduce if transitive_reduce else _run_reduce_identity,
                stage="reduce",
                tiers=("reference", "numpy"),
                timer_label="transitive_reduction",
                span="inspect/transitive_reduction",
                span_attrs=_reduce_attrs,
                fault_label="transitive_reduction",
                repair="recompute",
            )
        )
        passes.append(
            Pass(
                name="aggregate",
                contract=Contract(
                    requires=("ReducedDAG", "Cost", "Cores"),
                    produces=("Grouping",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    preserves=("acyclic", "topo-ordered", "bit-identical-under-backend"),
                ),
                run=_run_aggregate,
                stage="aggregate",
                tiers=("reference", "numpy"),
                timer_label="aggregation",
                span="inspect/aggregation",
                fault_label="aggregation",
                repair="recompute",
            )
        )
    else:
        passes.append(
            Pass(
                name="identity-grouping",
                contract=Contract(
                    requires=("DAG",),
                    produces=("ReducedDAG", "Grouping"),
                    requires_invariants=("acyclic",),
                    preserves=("acyclic", "topo-ordered"),
                ),
                run=_run_identity_grouping,
                repair="recompute",
            )
        )
    passes.append(
        Pass(
            name="coarsen",
            contract=Contract(
                requires=("ReducedDAG", "Grouping", "Cost"),
                produces=("CoarseDAG", "GroupCost"),
                requires_invariants=("acyclic", "topo-ordered"),
                preserves=("acyclic", "topo-ordered", "bit-identical-under-backend"),
            ),
            run=_run_coarsen,
            stage="coarsen",
            tiers=("reference", "numpy", "compiled"),
            timer_label="coarsen",
            span="inspect/coarsen",
            fault_label="coarsen",
            repair="splice",
        )
    )
    passes.append(
        Pass(
            name="lbp",
            contract=Contract(
                requires=("CoarseDAG", "GroupCost", "Cores", "Epsilon"),
                produces=("CoarsenedWaves",),
                requires_invariants=("acyclic", "topo-ordered"),
                establishes=("balanced-under-epsilon",) if bin_pack else (),
                preserves=("bit-identical-under-backend",),
            ),
            run=_run_lbp,
            stage="lbp",
            tiers=("reference", "numpy", "compiled"),
            timer_label="lbp",
            span="inspect/lbp",
            span_attrs=_lbp_attrs,
            fault_label="lbp",
            repair="splice",
        )
    )
    passes.append(
        Pass(
            name="expand",
            contract=Contract(
                requires=(
                    "CoarsenedWaves",
                    "Grouping",
                    "DAG",
                    "ReducedDAG",
                    "CoarseDAG",
                    "Cores",
                    "Epsilon",
                    "Backend",
                ),
                produces=("Schedule",),
                requires_invariants=("acyclic", "topo-ordered"),
                establishes=("dependence-closed", "vertex-cover"),
                preserves=("bit-identical-under-backend",),
            ),
            run=_run_expand,
            stage="expand",
            tiers=("reference", "numpy"),
            timer_label="expand",
            span="inspect/expand",
            fault_label="expand",
            repair="splice",
        )
    )
    suffix = []
    if not aggregate:
        suffix.append("no-aggregate")
    elif not transitive_reduce:
        suffix.append("no-reduce")
    if not bin_pack:
        suffix.append("fine-grained")
    name = "hdagg" if not suffix else "hdagg+" + "+".join(suffix)
    return PassGroup(
        name=name,
        passes=tuple(passes),
        inputs=HDAGG_INPUTS,
        outputs=("Schedule",),
        assumes=HDAGG_ASSUMES,
        description="HDagg Algorithm 1: reduce -> aggregate -> coarsen -> LBP -> expand",
    )
