"""Resilience layer: fault injection, graceful degradation, resumable runs.

Four legs keep a production grid run alive through pathological inputs:

* :mod:`repro.resilience.faults` — seeded, deterministic fault injection
  (:class:`FaultPlan` + the :func:`fault_point` hook, compiled down to one
  ``None`` check when dormant);
* :mod:`repro.resilience.degrade` — inspector wall-clock budgets and the
  ``hdagg → wavefront → serial`` fallback chain;
* :mod:`repro.resilience.journal` — JSONL checkpointing so an interrupted
  suite run resumes bit-identically;
* :mod:`repro.resilience.retry` / :mod:`repro.resilience.failures` —
  bounded exponential backoff and structured per-matrix failure rows.

The degradation module is loaded lazily (it pulls in the scheduler and
verifier stacks); everything else imports nothing from the rest of
:mod:`repro`, so low-level layers can instrument themselves with
:func:`fault_point` without import cycles.
"""

from .failures import FailureRecord
from .faults import (
    CSR_CORRUPTIONS,
    FAULT_SITES,
    FaultError,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    active_plan,
    armed,
    corrupt_csr_arrays,
    corrupt_schedule,
    fault_point,
)
from .journal import JOURNAL_VERSION, JournalError, RunJournal
from .retry import RetryExhausted, retry_with_backoff

__all__ = [
    "FAULT_SITES",
    "CSR_CORRUPTIONS",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "active_plan",
    "armed",
    "corrupt_csr_arrays",
    "corrupt_schedule",
    "FailureRecord",
    "RunJournal",
    "JournalError",
    "JOURNAL_VERSION",
    "retry_with_backoff",
    "RetryExhausted",
    # lazily loaded from .degrade (see __getattr__)
    "FALLBACK_CHAIN",
    "TERMINAL_FALLBACK",
    "fallback_chain",
    "InspectorTimeout",
    "DegradationError",
    "AttemptFailure",
    "InspectionOutcome",
    "run_with_budget",
    "inspect_with_fallback",
]

#: names resolved lazily so importing :mod:`repro.resilience.faults` from
#: low-level modules never drags in the scheduler/verifier stacks
_LAZY = {
    "FALLBACK_CHAIN",
    "TERMINAL_FALLBACK",
    "fallback_chain",
    "InspectorTimeout",
    "DegradationError",
    "AttemptFailure",
    "InspectionOutcome",
    "run_with_budget",
    "inspect_with_fallback",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import degrade

        return getattr(degrade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
