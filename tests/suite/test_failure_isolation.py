"""Suite-run fault isolation, retry/backoff, and degenerate-input guards."""

import warnings

import numpy as np
import pytest

import repro.suite.harness as harness_mod
from repro.resilience import FailureRecord, RetryExhausted, retry_with_backoff
from repro.sparse import csr_from_dense
from repro.suite import Harness
from repro.suite.matrices import SUITE, MatrixSpec
from repro.suite.storage import record_from_blob, record_to_blob


def _bad_spec(name="broken"):
    def build():
        raise ValueError("synthetic build failure")

    return MatrixSpec(name=name, family="mesh2d", build=build)


@pytest.fixture(scope="module")
def harness_kwargs():
    return dict(kernels=("sptrsv",), algorithms=("wavefront",))


class TestIsolation:
    def test_failure_isolated_into_structured_row(self, harness_kwargs):
        specs = [SUITE[0], _bad_spec(), SUITE[1]]
        failures = []
        records = Harness(**harness_kwargs).run_suite(
            specs, isolate_failures=True, failures=failures
        )
        assert {r.matrix for r in records} == {SUITE[0].name, SUITE[1].name}
        assert len(failures) == 1
        f = failures[0]
        assert isinstance(f, FailureRecord)
        assert f.matrix == "broken" and f.stage == "run"
        assert f.error_type == "ValueError"
        assert "synthetic build failure" in f.message
        assert "broken" in f.describe()
        assert FailureRecord.from_dict(f.as_dict()) == f

    def test_without_isolation_error_names_matrix(self, harness_kwargs):
        specs = [SUITE[0], _bad_spec("dies-here")]
        with pytest.raises(RuntimeError, match="dies-here"):
            Harness(**harness_kwargs).run_suite(specs)

    def test_pool_mode_isolates_with_matrix_name(self, harness_kwargs):
        specs = [SUITE[0], _bad_spec("pool-broken"), SUITE[1]]
        failures = []
        records = Harness(**harness_kwargs).run_suite(
            specs, n_jobs=2, isolate_failures=True, failures=failures
        )
        assert {r.matrix for r in records} == {SUITE[0].name, SUITE[1].name}
        assert [f.matrix for f in failures] == ["pool-broken"]
        assert failures[0].stage == "worker"
        assert "synthetic build failure" in failures[0].message

    def test_pool_mode_without_isolation_names_matrix(self, harness_kwargs):
        specs = [SUITE[0], _bad_spec("pool-dies")]
        with pytest.raises(RuntimeError, match="pool-dies"):
            Harness(**harness_kwargs).run_suite(specs, n_jobs=2)


class TestPoolPayloadClobberGuard:
    def test_nested_pool_run_refused(self, harness_kwargs):
        specs = list(SUITE[:2])
        harness_mod._POOL_PAYLOAD = ("sentinel", specs)
        try:
            with pytest.raises(RuntimeError, match="already active"):
                Harness(**harness_kwargs).run_suite(specs, n_jobs=2)
        finally:
            harness_mod._POOL_PAYLOAD = None

    def test_payload_cleared_after_run(self, harness_kwargs):
        Harness(**harness_kwargs).run_suite(SUITE[:2], n_jobs=2)
        assert harness_mod._POOL_PAYLOAD is None

    def test_payload_cleared_after_failed_run(self, harness_kwargs):
        with pytest.raises(RuntimeError):
            Harness(**harness_kwargs).run_suite(
                [_bad_spec(), SUITE[0]], n_jobs=2
            )
        assert harness_mod._POOL_PAYLOAD is None


class TestRetryBackoff:
    def test_success_needs_no_retry(self):
        sleeps = []
        assert retry_with_backoff(lambda: 7, sleep=sleeps.append) == 7
        assert sleeps == []

    def test_backoff_sequence_is_exponential(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise OSError("transient")
            return "done"

        out = retry_with_backoff(
            flaky, retries=3, base_delay=0.1, factor=2.0, sleep=sleeps.append
        )
        assert out == "done"
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_exhaustion_carries_history(self):
        def always():
            raise OSError("still down")

        with pytest.raises(RetryExhausted) as e:
            retry_with_backoff(always, retries=2, sleep=lambda _: None)
        assert e.value.attempts == 3
        assert isinstance(e.value.last, OSError)

    def test_non_matching_exception_propagates_immediately(self):
        def boom():
            raise KeyError("no retry for this")

        with pytest.raises(KeyError):
            retry_with_backoff(boom, retries=5, retry_on=(OSError,), sleep=lambda _: None)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_with_backoff(lambda: 1, retries=-1)


class TestZeroCycleGuards:
    """Empty / single-vertex matrices must not poison speedup with inf."""

    def _spec_for(self, dense, name):
        return MatrixSpec(name=name, family="mesh2d", build=lambda: csr_from_dense(dense))

    def test_empty_matrix_speedup_is_one(self, harness_kwargs):
        spec = self._spec_for(np.zeros((0, 0)), "empty")
        with pytest.warns(RuntimeWarning):
            records = Harness(**harness_kwargs).run_matrix(spec)
        for r in records:
            assert r.speedup == 1.0
            assert np.isfinite(r.speedup)
            assert r.nre == 1.0

    def test_single_vertex_matrix_finite_speedup(self, harness_kwargs):
        spec = self._spec_for(np.array([[2.0]]), "one-vertex")
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            records = Harness(**harness_kwargs).run_matrix(spec)
        for r in records:
            assert np.isfinite(r.speedup) and r.speedup == 1.0

    def test_records_with_degenerate_rows_round_trip(self, harness_kwargs):
        spec = self._spec_for(np.zeros((0, 0)), "empty")
        with pytest.warns(RuntimeWarning):
            records = Harness(**harness_kwargs).run_matrix(spec)
        for r in records:
            assert record_from_blob(record_to_blob(r)) == r


class TestDormantBlobFormat:
    def test_dormant_fields_dropped_from_blobs(self, harness_kwargs):
        records = Harness(**harness_kwargs).run_suite(SUITE[:1])
        for r in records:
            blob = record_to_blob(r)
            assert "degraded" not in blob
            assert "degraded_from" not in blob
            assert record_from_blob(blob) == r

    def test_degraded_fields_survive_round_trip(self, harness_kwargs):
        records = Harness(**harness_kwargs).run_suite(SUITE[:1])
        r = records[0]
        r.degraded = True
        r.degraded_from = "hdagg"
        blob = record_to_blob(r)
        assert blob["degraded"] is True and blob["degraded_from"] == "hdagg"
        assert record_from_blob(blob) == r
