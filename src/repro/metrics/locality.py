"""Locality metrics: average memory access latency and improvement ratios.

The paper's locality metric (Section V-A, [18]) is the average memory
access latency; in the reproduction it comes from the coherence-aware cache
model inside the simulator.  Improvements are reported the way the paper's
Table II does: baseline latency divided by HDagg latency (>1 means HDagg is
better)."""

from __future__ import annotations

from ..runtime.simulator import SimulationResult

__all__ = ["avg_memory_access_latency", "locality_improvement"]


def avg_memory_access_latency(result: SimulationResult) -> float:
    """Hit/miss-weighted mean latency per line access (lower is better)."""
    return result.avg_memory_access_latency


def locality_improvement(hdagg: SimulationResult, baseline: SimulationResult) -> float:
    """``baseline latency / hdagg latency`` — > 1 when HDagg has better locality."""
    h = hdagg.avg_memory_access_latency
    if h <= 0.0:
        return float("inf") if baseline.avg_memory_access_latency > 0 else 1.0
    return baseline.avg_memory_access_latency / h
