"""Incremental repair as a pass-group property.

When a matrix's sparsity pattern changes, only passes whose *inputs* are
dirty need to re-run — everything else replays verbatim.  Which passes
those are is a pure function of the group's declared contracts, not of
the repair implementation: :func:`plan_repair` walks the pass list,
propagates dirtiness through ``requires``/``produces``, and buckets each
affected pass by its declared ``repair`` policy (``recompute`` — cheap,
re-run exactly; ``splice`` — diff-driven partial recomputation reusing
clean regions; ``replay`` — reuse the old product untouched).

:func:`repro.core.incremental.repair_schedule` consults this plan: the
stage boundary between "recompute exactly" and "splice around the dirty
set" is read off the hdagg group's contracts rather than hard-coded, and
the plan is stamped into the repair stats for observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from .base import PassGroup

__all__ = ["RepairPlan", "plan_repair"]


@dataclass(frozen=True)
class RepairPlan:
    """Partition of a group's passes for one incremental repair.

    ``recompute`` and ``splice`` are the affected passes, in pipeline
    order, bucketed by their declared policy; ``replay`` are the passes
    whose inputs stayed clean and whose products can be reused verbatim.
    ``dirty_artifacts`` is the closure of dirtiness after propagation.
    """

    recompute: Tuple[str, ...]
    splice: Tuple[str, ...]
    replay: Tuple[str, ...]
    dirty_artifacts: Tuple[str, ...]

    @property
    def affected(self) -> Tuple[str, ...]:
        return self.recompute + self.splice


def plan_repair(group: PassGroup, dirty: Iterable[str]) -> RepairPlan:
    """Which passes of ``group`` must re-run when ``dirty`` inputs changed.

    ``dirty`` names the artifacts whose values changed (typically
    ``{"DAG", "Cost"}`` for a sparsity-pattern delta).  A pass is affected
    when any required artifact is dirty; its products then become dirty in
    turn, so dirtiness propagates exactly along the declared dataflow.
    """
    dirty_set: Set[str] = set(dirty)
    recompute = []
    splice = []
    replay = []
    for p in group.passes:
        if dirty_set & set(p.contract.requires):
            if p.repair == "splice":
                splice.append(p.name)
            else:
                recompute.append(p.name)
            dirty_set |= set(p.contract.produces)
        else:
            replay.append(p.name)
    return RepairPlan(
        recompute=tuple(recompute),
        splice=tuple(splice),
        replay=tuple(replay),
        dirty_artifacts=tuple(sorted(dirty_set)),
    )
