"""Plain-text report formatting shared by the benchmarks and the CLI.

No plotting dependencies are available offline, so "figures" are emitted as
aligned data tables (the series a plot would show), and tables as aligned
text grids — the same rows/columns the paper prints.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "fmt", "dump_json", "geomean"]


def fmt(x, *, digits: int = 2) -> str:
    """Human formatting: floats rounded, inf/nan spelled out, rest str()."""
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, float):
        if math.isinf(x):
            return "inf"
        if math.isnan(x):
            return "-"
        if abs(x) >= 1e5:
            return f"{x:.3g}"
        return f"{x:.{digits}f}"
    return str(x)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    digits: int = 2,
) -> str:
    """Render an aligned text table (first column left, rest right aligned)."""
    srows: List[List[str]] = [[fmt(c, digits=digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(out)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in srows)
    return "\n".join(lines)


def format_kv(pairs: dict, *, title: str | None = None) -> str:
    """Render key/value diagnostics."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(str(k)) for k in pairs), default=0)
    for k, v in pairs.items():
        lines.append(f"  {str(k).ljust(width)} : {fmt(v)}")
    return "\n".join(lines)


def dump_json(obj, path: str) -> None:
    """Write a JSON results file (floats as-is, inf encoded as strings)."""

    def default(o):
        if isinstance(o, float) and (math.isinf(o) or math.isnan(o)):
            return str(o)
        if hasattr(o, "__dict__"):
            return o.__dict__
        if hasattr(o, "tolist"):
            return o.tolist()
        return str(o)

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1, default=default)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-finite entries; 0 if none remain."""
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
