"""Property-based tests (hypothesis) for the CSR container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import csr_from_coo, csr_from_dense


@st.composite
def dense_matrices(draw, max_dim=8):
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    mat = draw(
        arrays(
            np.float64,
            (n, m),
            elements=st.floats(-10, 10, allow_nan=False).map(lambda x: 0.0 if abs(x) < 3 else x),
        )
    )
    return mat


@st.composite
def coo_triplets(draw, max_dim=8, max_nnz=24):
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, m - 1), min_size=k, max_size=k))
    vals = draw(st.lists(st.floats(-5, 5, allow_nan=False), min_size=k, max_size=k))
    return n, m, rows, cols, vals


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_dense_roundtrip(dense):
    a = csr_from_dense(dense)
    np.testing.assert_array_equal(a.to_dense(), dense)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(dense):
    a = csr_from_dense(dense)
    assert a.transpose().transpose() == a
    np.testing.assert_array_equal(a.transpose().to_dense(), dense.T)


@given(dense_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_matvec_matches_dense(dense, seed):
    a = csr_from_dense(dense)
    x = np.random.default_rng(seed).normal(size=dense.shape[1])
    np.testing.assert_allclose(a.matvec(x), dense @ x, rtol=1e-12, atol=1e-12)


@given(coo_triplets())
@settings(max_examples=60, deadline=None)
def test_coo_agrees_with_dense_accumulation(triplet):
    n, m, rows, cols, vals = triplet
    a = csr_from_coo(n, m, rows, cols, vals)
    dense = np.zeros((n, m))
    for r, c, v in zip(rows, cols, vals):
        dense[r, c] += v
    np.testing.assert_allclose(a.to_dense(), dense, rtol=1e-12, atol=1e-12)


@given(coo_triplets())
@settings(max_examples=60, deadline=None)
def test_csr_invariants_always_hold(triplet):
    n, m, rows, cols, vals = triplet
    a = csr_from_coo(n, m, rows, cols, vals)
    assert a.indptr[0] == 0
    assert a.indptr[-1] == a.nnz == len(a.indices) == len(a.data)
    assert np.all(np.diff(a.indptr) >= 0)
    for i in range(n):
        r = a.indices[a.indptr[i] : a.indptr[i + 1]]
        assert np.all(np.diff(r) > 0)  # strictly increasing per row


@given(dense_matrices(max_dim=6), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_symmetric_permutation_preserves_values(dense, seed):
    n = min(dense.shape)
    sym = dense[:n, :n] + dense[:n, :n].T
    a = csr_from_dense(sym)
    perm = np.random.default_rng(seed).permutation(n)
    p = a.permute_symmetric(perm)
    np.testing.assert_allclose(p.to_dense(), sym[np.ix_(perm, perm)])
    assert p.nnz == a.nnz
