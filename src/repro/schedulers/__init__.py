"""Inspector algorithms: HDagg plus the paper's baselines.

``SCHEDULERS`` maps names to builders with the uniform signature
``builder(g, cost, p, **options) -> Schedule``:

========== ====================================================
name        algorithm
========== ====================================================
hdagg       Hybrid DAG Aggregation (the paper's contribution)
wavefront   level sets + global barriers [2]
spmp        level grouping + point-to-point sync [4]
lbc         load-balanced level coarsening (ParSy) [7]
dagp        acyclic partitioning, list-scheduled quotient [1]
mkl         vendor-style level sets, count chunking (SpTRSV)
coarsenk    fixed-window wavefront coarsening [5], [6]
serial      sequential order (NRE denominator)
========== ====================================================
"""

from ..core.hdagg import hdagg
from ..core.schedule import Schedule
from ..graph.dag import DAG
from .base import SCHEDULERS, chunk_by_cost, chunk_by_count, get_scheduler, register_scheduler
from .coarsen_k import coarsen_k_schedule
from .dagp import acyclic_partition, dagp_schedule, edge_cut
from .lbc import elimination_tree, forest_components, lbc_schedule, tree_levels
from .mkl_like import mkl_like_schedule
from .serial import serial_schedule
from .spmp import lpt_assign, spmp_schedule
from .wavefront import wavefront_schedule

import numpy as np


@register_scheduler("hdagg")
def hdagg_schedule(g: DAG, cost: np.ndarray, p: int, **options) -> Schedule:
    """Registry adapter for :func:`repro.core.hdagg.hdagg`."""
    return hdagg(g, cost, p, **options)


__all__ = [
    "SCHEDULERS",
    "get_scheduler",
    "register_scheduler",
    "chunk_by_cost",
    "chunk_by_count",
    "hdagg_schedule",
    "wavefront_schedule",
    "spmp_schedule",
    "lbc_schedule",
    "dagp_schedule",
    "mkl_like_schedule",
    "serial_schedule",
    "coarsen_k_schedule",
    "acyclic_partition",
    "edge_cut",
    "elimination_tree",
    "forest_components",
    "tree_levels",
    "lpt_assign",
]
