"""Sparse triangular solve (SpTRSV), CSR forward substitution.

Listing 1 of the paper::

    for (i = 0; i < n; i++) {
      x[i] = b[i];
      for (j = Lp[i]; j < Lp[i+1] - 1; j++)
        x[i] -= Lx[j] * x[Li[j]];
      x[i] /= Lx[Lp[i+1] - 1];
    }

Iteration ``i`` reads ``x[j]`` for every stored ``L[i, j]``, ``j < i`` —
those reads are the loop-carried dependences the inspectors schedule around.

Three executors are provided:

* :func:`sptrsv_reference` — the literal sequential loop (oracle);
* :func:`sptrsv_levelwise` — vectorized level-synchronous solve used by the
  fast paths of the harness (one segmented mat-vec per wavefront);
* :meth:`SpTRSV.execute_in_order` — dependence-checking executor that runs
  iterations in an arbitrary (schedule-derived) order and raises on any
  violated dependence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.build import dag_from_lower_triangular
from ..graph.dag import DAG
from ..graph.wavefronts import Wavefronts, compute_wavefronts
from ..sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from .base import KernelError, SparseKernel, lines_of_rows
from .cost import sptrsv_cost

__all__ = [
    "SpTRSV",
    "sptrsv_reference",
    "sptrsv_levelwise",
    "sptrsv_levelwise_multi",
    "sptrsv_transpose_reference",
    "sptrsv_transpose_levelwise",
    "check_solvable",
]


def check_solvable(low: CSRMatrix) -> None:
    """Validate that ``low`` is lower-triangular with a non-zero full diagonal."""
    if not low.is_square:
        raise KernelError("sptrsv: matrix must be square")
    row_of = np.repeat(np.arange(low.n_rows, dtype=INDEX_DTYPE), low.row_nnz())
    if np.any(low.indices > row_of):
        raise KernelError("sptrsv: matrix has entries above the diagonal")
    if not low.has_full_diagonal():
        raise KernelError("sptrsv: missing diagonal entry")
    d = low.diagonal()
    if np.any(d == 0.0):
        raise KernelError("sptrsv: zero on the diagonal")


def sptrsv_reference(low: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Sequential forward substitution (the paper's Listing 1)."""
    check_solvable(low)
    n = low.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = np.empty(n, dtype=VALUE_DTYPE)
    indptr, indices, data = low.indptr, low.indices, low.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo : hi - 1]  # diagonal is last (sorted row)
        x[i] = (b[i] - data[lo : hi - 1] @ x[cols]) / data[hi - 1]
    return x


def sptrsv_levelwise(low: CSRMatrix, b: np.ndarray, waves: Wavefronts | None = None) -> np.ndarray:
    """Vectorized wavefront-at-a-time forward substitution.

    Rows inside one wavefront are independent, so each wavefront is a single
    gather / segmented-reduce / scale — no Python loop over rows.  Numerically
    identical (up to FP reassociation within a row) to the reference.
    """
    check_solvable(low)
    if waves is None:
        waves = compute_wavefronts(dag_from_lower_triangular(low))
    n = low.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    x = np.empty(n, dtype=VALUE_DTYPE)
    indptr, indices, data = low.indptr, low.indices, low.data
    for k in range(waves.n_levels):
        rows = waves.wavefront(k)
        starts = indptr[rows]
        ends = indptr[rows + 1]
        counts = ends - starts - 1  # off-diagonal entries per row
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
            flat = np.repeat(starts, counts) + within
            prods = data[flat] * x[indices[flat]]
            sums = np.zeros(rows.shape[0], dtype=VALUE_DTYPE)
            seg = np.repeat(np.arange(rows.shape[0], dtype=INDEX_DTYPE), counts)
            np.add.at(sums, seg, prods)
        else:
            sums = np.zeros(rows.shape[0], dtype=VALUE_DTYPE)
        x[rows] = (b[rows] - sums) / data[ends - 1]
    return x


def sptrsv_levelwise_multi(
    low: CSRMatrix, b: np.ndarray, waves: Wavefronts | None = None
) -> np.ndarray:
    """Forward substitution for multiple right-hand sides at once.

    ``b`` has shape ``(n, k)``; iterative solvers with several systems and
    block Krylov methods batch exactly like this, amortising one schedule
    (and the gathered index work) over ``k`` solves.  Row-major access over
    the RHS block keeps the inner ops contiguous.
    """
    check_solvable(low)
    if waves is None:
        waves = compute_wavefronts(dag_from_lower_triangular(low))
    n = low.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 2 or b.shape[0] != n:
        raise ValueError(f"b has shape {b.shape}, expected ({n}, k)")
    x = np.empty_like(b)
    indptr, indices, data = low.indptr, low.indices, low.data
    for k in range(waves.n_levels):
        rows = waves.wavefront(k)
        starts = indptr[rows]
        ends = indptr[rows + 1]
        counts = ends - starts - 1
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
            flat = np.repeat(starts, counts) + within
            prods = data[flat][:, None] * x[indices[flat], :]
            sums = np.zeros((rows.shape[0], b.shape[1]), dtype=VALUE_DTYPE)
            seg = np.repeat(np.arange(rows.shape[0], dtype=INDEX_DTYPE), counts)
            np.add.at(sums, seg, prods)
        else:
            sums = np.zeros((rows.shape[0], b.shape[1]), dtype=VALUE_DTYPE)
        x[rows, :] = (b[rows, :] - sums) / data[ends - 1][:, None]
    return x


def sptrsv_transpose_reference(low: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Sequential backward substitution for ``L^T x = b`` on the CSR of ``L``.

    Column-oriented: once ``x[i]`` is final, it is scattered into the
    partial sums of the rows ``j < i`` that column ``i`` of ``L^T`` (= row
    ``i`` of ``L``) touches.  This is the second half of every
    IC(0)-preconditioned solve, so it shares ``L``'s storage and schedule
    machinery instead of materialising ``L^T``.
    """
    check_solvable(low)
    n = low.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    indptr, indices, data = low.indptr, low.indices, low.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        x[i] /= data[hi - 1]
        cols = indices[lo : hi - 1]
        x[cols] -= data[lo : hi - 1] * x[i]
    return x


def sptrsv_transpose_levelwise(
    low: CSRMatrix, b: np.ndarray, waves: Wavefronts | None = None
) -> np.ndarray:
    """Vectorized ``L^T x = b`` sweeping the wavefronts of ``L`` backwards.

    The transpose solve's dependence DAG is the reverse of ``L``'s, so
    running ``L``'s wavefronts from last to first satisfies every reversed
    edge; within one wavefront the scatter targets are disjoint from the
    wavefront itself, so the whole level is one gather/scale/scatter.
    """
    check_solvable(low)
    if waves is None:
        waves = compute_wavefronts(dag_from_lower_triangular(low))
    n = low.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    x = b.copy()
    indptr, indices, data = low.indptr, low.indices, low.data
    for k in range(waves.n_levels - 1, -1, -1):
        rows = waves.wavefront(k)
        starts = indptr[rows]
        ends = indptr[rows + 1]
        x[rows] /= data[ends - 1]
        counts = ends - starts - 1
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
            flat = np.repeat(starts, counts) + within
            np.subtract.at(
                x, indices[flat], data[flat] * np.repeat(x[rows], counts)
            )
    return x


class SpTRSV(SparseKernel):
    """The SpTRSV kernel object (inspector + executor interface)."""

    name = "sptrsv"

    def dag(self, a: CSRMatrix) -> DAG:
        """Dependence DAG: edge ``j -> i`` for every stored ``L[i, j]``, ``j < i``."""
        return dag_from_lower_triangular(a)

    def cost(self, a: CSRMatrix) -> np.ndarray:
        return sptrsv_cost(a)

    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Iteration ``i`` touches: the lines of ``L`` row ``i`` (streamed),
        the ``x``-vector lines of its column indices, and the line of
        ``x[i]`` it writes."""
        n = a.n_rows
        per_row_lines, line_base = lines_of_rows(a, line_elems=line_elems)
        x_off = int(line_base[-1])
        nnz_row = a.row_nnz()
        tot = per_row_lines + nnz_row + 1
        ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(tot, out=ptr[1:])
        lines = np.empty(int(ptr[-1]), dtype=INDEX_DTYPE)
        # part A: L-row lines, consecutive ids starting at line_base[i]
        cntA = per_row_lines
        cumA = np.cumsum(cntA)
        withinA = np.arange(int(cumA[-1]), dtype=INDEX_DTYPE) - np.repeat(cumA - cntA, cntA)
        destA = np.repeat(ptr[:-1], cntA) + withinA
        lines[destA] = np.repeat(line_base[:-1], cntA) + withinA
        # part B: x-vector lines of the columns read
        cntB = nnz_row
        if int(cntB.sum()):
            cumB = np.cumsum(cntB)
            withinB = np.arange(int(cumB[-1]), dtype=INDEX_DTYPE) - np.repeat(cumB - cntB, cntB)
            destB = np.repeat(ptr[:-1] + cntA, cntB) + withinB
            lines[destB] = x_off + a.indices // line_elems
        # part C: the write of x[i]
        lines[ptr[1:] - 1] = x_off + np.arange(n, dtype=INDEX_DTYPE) // line_elems
        return ptr, lines

    def memory_model(self, a: CSRMatrix, g: DAG | None = None, *, line_elems: int = 8):
        """Edge-based memory model (see :mod:`repro.kernels.memory`)."""
        from .memory import sptrsv_memory_model

        return sptrsv_memory_model(a, g if g is not None else self.dag(a), line_elems=line_elems)

    def reference(self, a: CSRMatrix, b: np.ndarray | None = None) -> np.ndarray:
        if b is None:
            b = np.ones(a.n_rows, dtype=VALUE_DTYPE)
        return sptrsv_reference(a, b)

    def execute_in_order(
        self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None
    ) -> np.ndarray:
        """Forward substitution following ``order``, asserting dependences."""
        check_solvable(a)
        n = a.n_rows
        if b is None:
            b = np.ones(n, dtype=VALUE_DTYPE)
        b = np.asarray(b, dtype=VALUE_DTYPE)
        order = np.asarray(order, dtype=INDEX_DTYPE)
        if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
            raise KernelError("sptrsv: order must be a permutation of range(n)")
        done = np.zeros(n, dtype=bool)
        x = np.empty(n, dtype=VALUE_DTYPE)
        indptr, indices, data = a.indptr, a.indices, a.data
        for i in order:
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo : hi - 1]
            if not np.all(done[cols]):
                missing = cols[~done[cols]][:5].tolist()
                raise KernelError(
                    f"sptrsv: iteration {int(i)} scheduled before its dependences {missing}"
                )
            x[i] = (b[i] - data[lo : hi - 1] @ x[cols]) / data[hi - 1]
            done[i] = True
        return x

    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        """Relative residual ``||Lx - b|| / ||b||``."""
        if b is None:
            b = np.ones(a.n_rows, dtype=VALUE_DTYPE)
        b = np.asarray(b, dtype=VALUE_DTYPE)
        r = a.matvec(np.asarray(result, dtype=VALUE_DTYPE)) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom
