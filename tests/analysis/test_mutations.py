"""Mutation harness: every injected schedule bug must be caught (100% kill)."""

import numpy as np
import pytest

from repro.analysis import MUTATIONS, apply_mutation, kernel_footprint, run_mutation_suite
from repro.analysis.races import detect_races
from repro.analysis.verifier import verify_dependences
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle

ALGOS = ("hdagg", "wavefront", "spmp", "lbc", "dagp", "coarsenk")


def _setup(kname, matrix):
    kernel = KERNELS[kname]
    operand = lower_triangle(matrix) if kname == "sptrsv" else matrix
    g = kernel.dag(operand)
    return g, kernel.cost(operand), kernel_footprint(kname, operand)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("kname", ["sptrsv", "spic0", "spilu0"])
def test_zero_escaped_mutants(algo, kname, mesh_nd):
    g, cost, fp = _setup(kname, mesh_nd)
    s = SCHEDULERS[algo](g, cost, 4)
    results = run_mutation_suite(s, g, fp)
    assert {r.name for r in results} == set(MUTATIONS)
    escaped = [r.name for r in results if r.escaped]
    assert not escaped, f"mutations escaped detection: {escaped}"
    # the kill rate only counts applicable mutants, and some must apply
    assert any(r.applied for r in results)
    for r in results:
        if r.caught:
            assert r.caught_by and r.detail


def test_every_mutation_class_applies_somewhere(mesh_nd, irregular):
    applied = set()
    for matrix in (mesh_nd, irregular):
        for algo in ALGOS:
            g, cost, fp = _setup("sptrsv", matrix)
            for r in run_mutation_suite(SCHEDULERS[algo](g, cost, 4), g, fp):
                if r.applied:
                    applied.add(r.name)
    assert applied == set(MUTATIONS)


def test_mutants_stay_structurally_valid(mesh_nd):
    """Mutants must only be catchable by the dependence analyses."""
    g, cost, _ = _setup("sptrsv", mesh_nd)
    s = SCHEDULERS["hdagg"](g, cost, 4)
    for name in sorted(MUTATIONS):
        mutant = apply_mutation(name, s, g)
        if mutant is None:
            continue
        mutant.validate(g, check_dependences=False)  # must not raise
        assert mutant.algorithm.endswith(name)
        assert mutant.meta["mutation"] == name


def test_reorder_within_partition_needs_the_verifier(mesh_nd):
    """The race detector is blind to intra-partition order by design."""
    g, cost, fp = _setup("sptrsv", mesh_nd)
    s = SCHEDULERS["hdagg"](g, cost, 4)
    mutant = apply_mutation("reorder_within_partition", s, g)
    assert mutant is not None
    assert not verify_dependences(mutant, g, stamp_meta=False).ok
    assert detect_races(mutant, fp, stamp_meta=False).ok


@pytest.mark.parametrize("name", ["drop_barrier", "merge_adjacent_wavefronts"])
def test_lost_synchronisation_is_also_a_race(name, mesh_nd):
    """Fused wavefronts surface in *both* analyses: a cross-partition edge
    in one wavefront is a mis-ordered dependence and a footprint conflict."""
    g, cost, fp = _setup("spic0", mesh_nd)
    s = SCHEDULERS["hdagg"](g, cost, 4)
    mutant = apply_mutation(name, s, g)
    assert mutant is not None
    assert not verify_dependences(mutant, g, stamp_meta=False).ok
    assert not detect_races(mutant, fp, stamp_meta=False).ok


def test_swap_across_dependence_reverses_an_edge(mesh_nd):
    g, cost, _ = _setup("sptrsv", mesh_nd)
    s = SCHEDULERS["wavefront"](g, cost, 4)
    mutant = apply_mutation("swap_across_dependence", s, g)
    assert mutant is not None
    report = verify_dependences(mutant, g, stamp_meta=False)
    assert not report.ok and report.n_violations >= 1


def test_mutations_deterministic_per_seed(mesh_nd):
    g, cost, _ = _setup("sptrsv", mesh_nd)
    s = SCHEDULERS["hdagg"](g, cost, 4)
    a = apply_mutation("drop_barrier", s, g, seed=7)
    b = apply_mutation("drop_barrier", s, g, seed=7)
    assert a is not None and b is not None
    assert np.array_equal(a.level_of(), b.level_of())
    assert np.array_equal(a.partition_of(), b.partition_of())


def test_serial_schedule_only_reorder_applies(mesh_nd):
    """One partition, one level: no cross-partition structure to mutate."""
    g, cost, fp = _setup("sptrsv", mesh_nd)
    s = SCHEDULERS["serial"](g, cost, 1)
    results = {r.name: r for r in run_mutation_suite(s, g, fp)}
    assert results["reorder_within_partition"].applied
    assert results["reorder_within_partition"].caught
    for name in ("swap_across_dependence", "drop_barrier", "merge_adjacent_wavefronts"):
        assert not results[name].applied
