"""Matrix Market (.mtx) reader/writer.

The paper loads SuiteSparse matrices from Matrix Market files
(``Sparse A("path/to/mat.mtx")`` in Listing 2).  This module implements the
coordinate Matrix Market dialect used by SuiteSparse: ``real``/``integer``/
``pattern`` fields and ``general``/``symmetric`` symmetry, with ``%`` comment
lines.  ``array`` (dense) files and complex fields are rejected explicitly.
"""

from __future__ import annotations

import io
from os import PathLike
from typing import Union

import numpy as np

from .csr import CSRMatrix, csr_from_coo

__all__ = ["read_matrix_market", "write_matrix_market", "loads_matrix_market", "dumps_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def loads_matrix_market(text: str) -> CSRMatrix:
    """Parse a Matrix Market coordinate document from a string."""
    lines = iter(text.splitlines())
    try:
        header = next(lines)
    except StopIteration:
        raise ValueError("empty Matrix Market document") from None
    parts = header.strip().split()
    if len(parts) != 5 or parts[0] != _HEADER_PREFIX:
        raise ValueError(f"bad Matrix Market header: {header!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix":
        raise ValueError(f"unsupported object {obj!r}")
    if fmt != "coordinate":
        raise ValueError(f"only 'coordinate' format is supported, got {fmt!r}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    # Skip comments and blanks up to the size line.
    size_line = None
    for line in lines:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        size_line = s
        break
    if size_line is None:
        raise ValueError("missing size line")
    dims = size_line.split()
    if len(dims) != 3:
        raise ValueError(f"bad size line: {size_line!r}")
    n_rows, n_cols, nnz = (int(x) for x in dims)

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in lines:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        if k >= nnz:
            raise ValueError("more entries than declared in size line")
        toks = s.split()
        if field == "pattern":
            if len(toks) != 2:
                raise ValueError(f"bad pattern entry: {s!r}")
            r, c, v = int(toks[0]), int(toks[1]), 1.0
        else:
            if len(toks) != 3:
                raise ValueError(f"bad entry: {s!r}")
            r, c, v = int(toks[0]), int(toks[1]), float(toks[2])
        rows[k], cols[k], vals[k] = r - 1, c - 1, v  # 1-based -> 0-based
        k += 1
    if k != nnz:
        raise ValueError(f"declared {nnz} entries but found {k}")

    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return csr_from_coo(n_rows, n_cols, rows, cols, vals, sum_duplicates=False)


def read_matrix_market(path: Union[str, PathLike]) -> CSRMatrix:
    """Read a ``.mtx`` file from disk."""
    with open(path, "r", encoding="ascii") as fh:
        return loads_matrix_market(fh.read())


def dumps_matrix_market(a: CSRMatrix, *, symmetric: bool = False) -> str:
    """Serialise to a Matrix Market coordinate document.

    With ``symmetric=True`` only the lower triangle is emitted and the header
    declares ``symmetric`` (the caller is responsible for the matrix actually
    being symmetric; this is validated).
    """
    buf = io.StringIO()
    sym = "symmetric" if symmetric else "general"
    buf.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
    buf.write("% written by repro (HDagg reproduction)\n")
    entries = []
    for i, cols, vals in a.iter_rows():
        for c, v in zip(cols.tolist(), vals.tolist()):
            if symmetric and c > i:
                continue
            entries.append((i + 1, c + 1, v))
    if symmetric:
        from .properties import is_structurally_symmetric

        if not is_structurally_symmetric(a):
            raise ValueError("symmetric=True but matrix pattern is not symmetric")
    buf.write(f"{a.n_rows} {a.n_cols} {len(entries)}\n")
    for r, c, v in entries:
        buf.write(f"{r} {c} {v!r}\n")
    return buf.getvalue()


def write_matrix_market(a: CSRMatrix, path: Union[str, PathLike], *, symmetric: bool = False) -> None:
    """Write a ``.mtx`` file to disk."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dumps_matrix_market(a, symmetric=symmetric))
