"""Kernel abstraction mirroring the paper's embedded kernel library.

Listing 2 of the paper drives the framework through a kernel object::

    Graph G = ILU0.DAG(A);
    Cost  C = ILU0.cost(A);
    Schedule S = HDagg(G, C, num_cores(), epsilon());
    Factor f = ilu0_omp(A, S);

A :class:`SparseKernel` bundles exactly those pieces for one computation:

* :meth:`~SparseKernel.dag` — the loop-carried dependence DAG,
* :meth:`~SparseKernel.cost` — per-iteration cost (non-zeros touched),
* :meth:`~SparseKernel.reference` — the sequential executor (oracle),
* :meth:`~SparseKernel.execute` — the schedule-driven executor, which also
  *verifies* that the schedule respects every dependence,
* :meth:`~SparseKernel.memory_trace` — per-iteration touched cache lines,
  feeding the locality model of :mod:`repro.runtime.cache`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE

__all__ = ["SparseKernel", "KernelError", "lines_of_rows"]


class KernelError(RuntimeError):
    """Raised when a kernel cannot run (structural defect, zero pivot, ...)."""


def lines_of_rows(a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Assign cache-line ids to the stored entries of ``a``, row-major.

    Returns ``(line_ptr, line_base)`` where row ``i`` occupies line ids
    ``line_base[i] .. line_base[i] + n_lines(i) - 1`` and
    ``n_lines(i) = ceil(row_nnz(i) / line_elems)`` (at least 1: factor rows
    are padded to a line).  Line ids are globally unique per matrix, so two
    different rows never share a line — a slightly pessimistic but simple
    model of CSR storage.
    """
    per_row = np.maximum(1, -(-a.row_nnz() // line_elems))
    line_base = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(per_row, out=line_base[1:])
    return per_row.astype(INDEX_DTYPE), line_base


class SparseKernel(ABC):
    """One sparse computation with loop-carried dependence.

    Subclasses are stateless; all per-matrix artefacts are returned, never
    cached, so one kernel object can serve the whole matrix suite.
    """

    #: short identifier used in reports ("sptrsv", "spic0", "spilu0")
    name: str = "abstract"

    # ------------------------------------------------------------------
    # inspector-facing interface
    # ------------------------------------------------------------------
    @abstractmethod
    def dag(self, a: CSRMatrix) -> DAG:
        """Data-dependence DAG of the outermost loop over ``a``."""

    @abstractmethod
    def cost(self, a: CSRMatrix) -> np.ndarray:
        """Per-iteration cost: number of non-zeros touched (paper Section IV-A)."""

    @abstractmethod
    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Cache-line footprint per iteration as a ragged CSR pair.

        Returns ``(ptr, lines)``: iteration ``i`` touches line ids
        ``lines[ptr[i]:ptr[i+1]]`` in access order.  Line ids follow
        :func:`lines_of_rows` plus a distinct id space for the right-hand
        side / solution vector where relevant.
        """

    # ------------------------------------------------------------------
    # executor-facing interface
    # ------------------------------------------------------------------
    @abstractmethod
    def reference(self, a: CSRMatrix, b: np.ndarray | None = None):
        """Sequential oracle implementation."""

    @abstractmethod
    def execute_in_order(self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None):
        """Run the kernel with iterations executed in ``order``.

        ``order`` must be a permutation of ``range(n)`` that respects the
        DAG; the executor asserts this per-iteration (dependence-checking
        execution) and raises :class:`KernelError` on a violation.
        """

    @abstractmethod
    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        """Defect of ``result`` (0 == exact); metric is kernel-specific."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def check_square(self, a: CSRMatrix) -> None:
        if not a.is_square:
            raise KernelError(f"{self.name}: matrix must be square, got {a.shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<kernel {self.name}>"
