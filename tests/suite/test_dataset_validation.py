"""Validation of the complete 34-matrix dataset (cheap certificates only)."""

import numpy as np
import pytest

from repro.sparse import is_structurally_symmetric
from repro.suite import SUITE


@pytest.fixture(scope="module")
def built():
    return [(spec, spec.build()) for spec in SUITE]


def test_all_34_build(built):
    assert len(built) == 34


def test_all_structurally_symmetric(built):
    for spec, a in built:
        assert a.is_square, spec.name
        assert is_structurally_symmetric(a), spec.name


def test_all_strictly_diagonally_dominant(built):
    """Strict diagonal dominance certifies SPD without eigensolves."""
    for spec, a in built:
        diag = a.diagonal()
        # vectorized |row| sums
        row_abs = np.zeros(a.n_rows)
        row_of = np.repeat(np.arange(a.n_rows), a.row_nnz())
        np.add.at(row_abs, row_of, np.abs(a.data))
        off = row_abs - np.abs(diag)
        assert np.all(diag > off - 1e-9), spec.name


def test_size_range_spans_scaled_paper_band(built):
    """Paper: 5.1e5 - 5.9e7 nnz; scaled by 64 -> ~8e3 - 9.2e5."""
    sizes = sorted(a.nnz for _, a in built)
    assert sizes[0] >= 8_000
    assert sizes[-1] <= 1_000_000
    assert sizes[-1] / sizes[0] > 10  # a real size spread


def test_deterministic_rebuild(built):
    for spec, a in built[:6]:  # spot check; full rebuild is covered elsewhere
        assert spec.build() == a


def test_full_diagonals(built):
    for spec, a in built:
        assert a.has_full_diagonal(), spec.name
