"""Shared benchmark fixtures.

Every ``bench_*`` file regenerates one of the paper's tables or figures.
The underlying run records are computed once per session (they are pure
functions of the suite) and cached here; each benchmark then times a
representative piece of real work (an inspector, a simulation, or the
table regeneration) so ``pytest benchmarks/ --benchmark-only`` reports
meaningful numbers, and writes the regenerated table/figure text to
``benchmarks/output/``.

Dataset size: by default a 12-matrix subset spanning every family and both
Table III size buckets (full-suite records cost many minutes of pure-Python
inspection).  Set ``HDAGG_BENCH_FULL=1`` to run all 34 matrices.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _common import OUTPUT_DIR, bench_specs
from repro.suite import Harness


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        metavar="SPEC",
        help="inspector backend spec for hdagg benchmarks, e.g. "
        "'compiled', 'numpy', or 'lbp=compiled,coarsen=numpy' "
        "(default: REPRO_BACKENDS env, else numpy)",
    )


@pytest.fixture(scope="session")
def backend_spec(request):
    """Resolved :class:`BackendSpec` from ``--backend`` / ``REPRO_BACKENDS``,
    or ``None`` on the dormant path (no option, no env var)."""
    import os

    from repro.core.backends import ENV_VAR, BackendSpec

    raw = request.config.getoption("--backend")
    if raw is None and not os.environ.get(ENV_VAR):
        return None
    return BackendSpec.coerce(raw)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def records_intel():
    """Full grid (3 kernels x 6 algorithms) on the intel20 model."""
    return Harness(machines=("intel20",)).run_suite(bench_specs())


@pytest.fixture(scope="session")
def records_amd():
    """Full grid on the amd64 model (Table I's second column block)."""
    return Harness(machines=("amd64",)).run_suite(bench_specs())
