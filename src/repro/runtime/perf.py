"""Lightweight per-stage wall-clock timing for the inspector pipeline.

The paper reports inspector overhead as a first-class metric (NRE,
Section V-D); this module gives every pipeline the same cheap way to
attribute that overhead to stages (transitive reduction, aggregation,
coarsening, LBP, expansion) without threading timestamps by hand.

A :class:`StageTimer` accumulates seconds per named stage; entering the
same stage twice adds up (useful for per-matrix loops).  The timer is a
plain dict underneath so results drop straight into ``Schedule.meta`` or a
harness row.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulate wall-clock seconds per named stage.

    >>> timer = StageTimer()
    >>> with timer.stage("reduce"):
    ...     pass
    >>> sorted(timer.seconds) == ["reduce"]
    True
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one stage; nested/repeated entries accumulate."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.seconds[name] = self.seconds.get(name, 0.0) + dt

    @property
    def total(self) -> float:
        """Sum over all stages."""
        return float(sum(self.seconds.values()))

    def as_dict(self) -> Dict[str, float]:
        """A copy of the per-stage seconds (safe to stash in metadata)."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in self.seconds.items())
        return f"StageTimer({inner})"
