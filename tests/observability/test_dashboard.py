"""Service dashboard: summary extraction, text stats, self-contained HTML."""

import pytest

from repro.observability.dashboard import (
    dashboard_html,
    format_stats,
    render_dashboard,
    service_summary,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.telemetry import FANIN_BUCKETS, LATENCY_BUCKETS, MetricsSnapshotter


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("service.requests").inc(10)
    reg.counter("service.memory_hits").inc(7)
    reg.counter("service.inspected").inc(3)
    reg.counter("service.sheds.frontdoor").inc(2)
    for v in (0.001, 0.002, 0.004):
        reg.histogram("service.latency.tier.memory", LATENCY_BUCKETS).observe(v)
    reg.histogram("service.latency.tier.inspected", LATENCY_BUCKETS).observe(0.05)
    reg.histogram("service.latency.outcome.ok", LATENCY_BUCKETS).observe(0.002)
    reg.histogram("service.queue_wait_seconds", LATENCY_BUCKETS).observe(0.01)
    reg.histogram("service.coalesce_fanin", FANIN_BUCKETS).observe(3)
    reg.counter("store.hits").inc(4)
    reg.counter("store.evictions").inc(1)
    reg.gauge("store.quarantine_count").set(0)
    reg.gauge("store.occupancy_bytes").set(4096)
    return reg


class TestSummary:
    def test_summary_extracts_every_section(self):
        summary = service_summary(_loaded_registry().as_dict())
        assert summary["counters"]["requests"] == 10
        assert summary["counters"]["sheds.frontdoor"] == 2
        tiers = summary["tiers"]
        assert tiers["memory"]["count"] == 3
        assert tiers["memory"]["share"] == pytest.approx(0.75)
        assert tiers["inspected"]["share"] == pytest.approx(0.25)
        assert tiers["memory"]["p50_seconds"] == pytest.approx(0.002, rel=0.5)
        assert summary["outcomes"]["ok"]["count"] == 1
        assert summary["queue_wait"]["count"] == 1
        assert summary["coalesce_fanin"]["mean"] == pytest.approx(3.0)
        assert summary["store"]["evictions"] == 1
        assert summary["store"]["occupancy_bytes"] == 4096

    def test_empty_registry_gives_empty_summary(self):
        summary = service_summary(MetricsRegistry().as_dict())
        assert summary["counters"] == {}
        assert summary["tiers"] == {}
        assert "queue_wait" not in summary

    def test_format_stats_is_readable_text(self):
        text = format_stats(service_summary(_loaded_registry().as_dict()))
        assert "service counters" in text
        assert "requests" in text
        assert "latency by tier" in text
        assert "store health" in text
        assert format_stats(service_summary({})) == "no service metrics recorded\n"


class TestHtml:
    def _snapshots(self):
        reg = _loaded_registry()
        first = {"seq": 0, "elapsed_s": 0.5, "metrics": reg.as_dict()}
        reg.counter("service.requests").inc(5)
        second = {"seq": 1, "elapsed_s": 1.0, "metrics": reg.as_dict()}
        return [first, second]

    def test_dashboard_renders_all_sections_inline(self):
        html = dashboard_html(self._snapshots(), title="T")
        for needle in (
            "<title>T</title>",
            "service.requests",
            "Latency by tier",
            "Latency by outcome",
            "Store health",
            "svg",
            "queue wait",
        ):
            assert needle in html, needle
        assert "http" not in html  # self-contained: no external fetches

    def test_replay_card_shows_trace_verdict(self):
        replay = {"report": {"n_ok": 9, "n_rejected": 1, "hit_rate": 0.7},
                  "span_problems": []}
        html = dashboard_html(self._snapshots(), replay=replay)
        assert "request trees valid" in html
        bad = dict(replay, span_problems=["r-1: broken"])
        html = dashboard_html(self._snapshots(), replay=bad)
        assert "1 span problems" in html
        assert "r-1: broken" in html

    def test_empty_snapshots_still_render(self):
        html = dashboard_html([])
        assert "0 snapshots" in html


class TestRender:
    def test_render_from_telemetry_dir(self, tmp_path):
        reg = _loaded_registry()
        snap = MetricsSnapshotter(reg, tmp_path / "metrics.jsonl", interval=60.0)
        snap.snapshot()
        reg.counter("service.requests").inc()
        snap.snapshot()
        (tmp_path / "replay.json").write_text(
            '{"report": {"n_ok": 11, "hit_rate": 0.6}, "span_problems": []}'
        )
        out = render_dashboard(tmp_path, title="Replay dash")
        assert out == tmp_path / "dashboard.html"
        html = out.read_text()
        assert "Replay dash" in html
        assert "request trees valid" in html
        assert "2 snapshots" in html

    def test_missing_snapshots_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_dashboard(tmp_path)
