"""Tests for wavefront (level-set) computation."""

import numpy as np
import pytest

from repro.graph import DAG, CycleError, compute_wavefronts, dag_from_matrix_lower, level_of_vertices


def test_chain_levels():
    g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
    w = compute_wavefronts(g)
    assert w.n_levels == 4
    assert w.level.tolist() == [0, 1, 2, 3]
    assert w.sizes().tolist() == [1, 1, 1, 1]


def test_diamond_levels(diamond_dag):
    w = compute_wavefronts(diamond_dag)
    # 0 | 1,2 | 3  — the transitive edge 0->3 does not change levels
    assert w.level.tolist() == [0, 1, 1, 2]
    assert w.wavefront(1).tolist() == [1, 2]


def test_levels_are_longest_paths():
    # 0 -> 1 -> 3, 0 -> 3: level(3) must be 2 (longest path), not 1
    g = DAG.from_edges(4, [0, 1, 0, 2], [1, 3, 3, 3])
    assert level_of_vertices(g).tolist() == [0, 1, 0, 2]


def test_wavefront_slices(mesh):
    g = dag_from_matrix_lower(mesh)
    w = compute_wavefronts(g)
    total = sum(w.wavefront(k).shape[0] for k in range(w.n_levels))
    assert total == g.n
    # wavefront k members all have level k, ascending ids
    for k in range(w.n_levels):
        verts = w.wavefront(k)
        assert np.all(w.level[verts] == k)
        assert np.all(np.diff(verts) > 0)


def test_vertices_in_range(mesh):
    g = dag_from_matrix_lower(mesh)
    w = compute_wavefronts(g)
    both = w.vertices_in_range(0, 2)
    manual = np.concatenate([w.wavefront(0), w.wavefront(1)])
    np.testing.assert_array_equal(np.sort(both), np.sort(manual))


def test_every_edge_crosses_levels(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        w = compute_wavefronts(g)
        src, dst = g.edge_list()
        assert np.all(w.level[src] < w.level[dst]), name


def test_no_edges_single_level():
    w = compute_wavefronts(DAG.empty(5))
    assert w.n_levels == 1
    assert w.wavefront(0).tolist() == [0, 1, 2, 3, 4]


def test_empty_graph():
    w = compute_wavefronts(DAG.empty(0))
    assert w.n_levels == 0
    assert w.order.size == 0


def test_cycle_raises():
    g = DAG(3, np.array([0, 1, 2, 3]), np.array([1, 2, 0]), check=False)
    with pytest.raises(CycleError):
        compute_wavefronts(g)


def test_blocks_have_block_depth_levels(blocks):
    g = dag_from_matrix_lower(blocks)
    w = compute_wavefronts(g)
    # dense 8-vertex blocks: critical path = 8 levels, 12 blocks wide
    assert w.n_levels == 8
    assert all(s == 12 for s in w.sizes().tolist())
