"""Differential tests: exact LRU trace replay vs the fast edge model."""

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.runtime import LAPTOP4, MachineConfig, simulate
from repro.runtime.exact import simulate_cache_exact
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


@pytest.fixture(scope="module")
def setup(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    ptr, lines = kernel.memory_trace(mesh_nd)
    mem = kernel.memory_model(mesh_nd, g)
    return g, cost, ptr, lines, mem


def test_exact_counts_all_accesses(setup):
    g, cost, ptr, lines, _ = setup
    s = SCHEDULERS["hdagg"](g, cost, 4)
    stats = simulate_cache_exact(s, ptr, lines, LAPTOP4, cost)
    assert stats.total_accesses == lines.shape[0]
    assert 0.0 <= stats.hit_rate <= 1.0
    assert sum(stats.per_core_hits.values()) == stats.hits


def test_serial_has_best_locality(setup):
    """A single core sees every reuse; parallel splits can only lose."""
    g, cost, ptr, lines, _ = setup
    serial = simulate_cache_exact(
        SCHEDULERS["serial"](g, cost), ptr, lines, LAPTOP4.scaled(1), cost
    )
    parallel = simulate_cache_exact(
        SCHEDULERS["wavefront"](g, cost, 4), ptr, lines, LAPTOP4, cost
    )
    assert serial.hit_rate >= parallel.hit_rate - 1e-9


def test_bigger_cache_never_hurts(setup):
    g, cost, ptr, lines, _ = setup
    s = SCHEDULERS["hdagg"](g, cost, 4)
    small = simulate_cache_exact(
        s, ptr, lines, MachineConfig(name="s", n_cores=4, cache_lines_per_core=32), cost
    )
    big = simulate_cache_exact(
        s, ptr, lines, MachineConfig(name="b", n_cores=4, cache_lines_per_core=4096), cost
    )
    assert big.hits >= small.hits


def test_fast_model_preserves_locality_ordering(setup):
    """The edge model and the exact replay rank schedules the same way on a
    case with a real locality gap (HDagg vs scrambled placement)."""
    g, cost, ptr, lines, mem = setup
    machine = MachineConfig(name="t", n_cores=4, cache_lines_per_core=96)

    hdagg_s = SCHEDULERS["hdagg"](g, cost, 4)
    dagp_s = SCHEDULERS["dagp"](g, cost, 4)

    exact = {}
    fast = {}
    for name, s in (("hdagg", hdagg_s), ("dagp", dagp_s)):
        exact[name] = simulate_cache_exact(s, ptr, lines, machine, cost).hit_rate
        fast[name] = simulate(s, g, cost, mem, machine).hit_rate
    # same ordering under both models
    assert (exact["hdagg"] >= exact["dagp"]) == (fast["hdagg"] >= fast["dagp"])


def test_exact_latency_metric(setup):
    g, cost, ptr, lines, _ = setup
    s = SCHEDULERS["hdagg"](g, cost, 4)
    stats = simulate_cache_exact(s, ptr, lines, LAPTOP4, cost)
    lat = stats.avg_memory_access_latency(LAPTOP4)
    assert LAPTOP4.hit_cycles <= lat <= LAPTOP4.miss_cycles
