#!/usr/bin/env python
"""Compare all six inspectors on one matrix across the paper's metrics.

Prints, per algorithm: simulated speedup, average memory access latency
(locality), measured potential gain (load balance), synchronisation counts,
inspector amortisation — the per-matrix slice of Figures 5-7 and 9.

Run:  python examples/scheduler_comparison.py [matrix-name] [kernel]
      python examples/scheduler_comparison.py mesh3d-l spilu0
      (matrix names: see `hdagg-bench --list`)
"""

import sys

from repro import INTEL20, simulate
from repro.kernels import KERNELS
from repro.metrics import (
    equivalent_p2p_syncs,
    imbalance_ratio,
    inspector_cost_model,
    nre,
    reuse_profile,
)
from repro.schedulers import SCHEDULERS
from repro.sparse import apply_ordering, lower_triangle
from repro.suite import format_table, suite_by_name


def main() -> None:
    matrix_name = sys.argv[1] if len(sys.argv) > 1 else "mesh2d-l"
    kernel_name = sys.argv[2] if len(sys.argv) > 2 else "spilu0"

    spec = suite_by_name()[matrix_name]
    kernel = KERNELS[kernel_name]
    a, _ = apply_ordering(spec.build(), "nd")
    operand = lower_triangle(a) if kernel_name == "sptrsv" else a
    g = kernel.dag(operand)
    cost = kernel.cost(operand)
    memory = kernel.memory_model(operand, g)
    machine = INTEL20
    print(f"{matrix_name} ({spec.family}): n={g.n}, edges={g.n_edges}, "
          f"kernel={kernel_name}, machine={machine.name}")

    serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, memory, machine.scaled(1))

    algos = ["hdagg", "spmp", "wavefront", "lbc", "dagp"]
    if kernel_name == "sptrsv":
        algos.append("mkl")
    rows = []
    for name in algos:
        schedule = SCHEDULERS[name](g, cost, machine.n_cores)
        schedule.validate(g)
        result = simulate(schedule, g, cost, memory, machine)
        insp = inspector_cost_model(name, g, schedule)
        prof = reuse_profile(schedule, g, memory, machine, cost)
        rows.append(
            [
                name,
                serial.makespan_cycles / result.makespan_cycles,
                result.avg_memory_access_latency,
                result.potential_gain,
                equivalent_p2p_syncs(result, machine.n_cores),
                imbalance_ratio(schedule, machine.n_cores),
                nre(insp, serial, result),
                100 * prof.cross_core_fraction,
            ]
        )
    print(
        format_table(
            ["algorithm", "speedup", "mem latency", "PG", "equiv syncs",
             "imb ratio", "NRE", "x-core %"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
