"""Table II: average improvement of HDagg's performance metrics (SpILU0, Intel).

Paper shape: HDagg improves locality and load balance over DAGP (2.66x /
2.60x) and LBC (2.33x / 2.27x) and reduces synchronisation vs DAGP (5.07x);
against SpMP/Wavefront it improves locality and synchronisation but *not*
load balance (their LB improvement entries are below 1).
"""

from _common import write_report
from repro.suite import format_table, table2_metric_improvements


def test_table2(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        table2_metric_improvements, records_intel, kernel="spilu0", machine="intel20"
    )
    text = format_table(
        headers, rows, title="Table II: avg metric improvement of HDagg (SpILU0, intel20)"
    )
    write_report(output_dir, "table2_intel20", text)

    # locality: HDagg clearly better than the wavefront family (paper Table
    # III: 1.90x on large matrices).  The paper also reports 2.66x / 2.33x
    # over DAGP / LBC; our idealised DAGP/LBC executors run their (large)
    # partitions in ascending-id order, which flatters their locality, so
    # the model lands near parity there — a documented deviation
    # (EXPERIMENTS.md).
    assert data["locality|spmp"] > 1.2
    assert data["locality|wavefront"] > 1.2
    assert data["locality|dagp"] > 0.7
    assert data["locality|lbc"] > 0.7
    # load balance: HDagg better than DAGP/LBC; roughly at parity with (or
    # slightly behind) SpMP, whose overlap is the paper's balance champion
    assert data["load balance|dagp"] > 1.0
    assert data["load balance|lbc"] > 1.0
    assert data["load balance|spmp"] < 1.15
    # synchronisation: fewer equivalent p2p syncs than Wavefront (which pays
    # a barrier per level)
    assert data["synchronization|wavefront"] > 1.0
