"""Regeneration of the paper's Tables I, II, and III from run records.

Each function consumes the flat :class:`~repro.suite.harness.RunRecord`
list a harness run produces and returns ``(headers, rows)`` ready for
:func:`repro.suite.reporting.format_table`, plus a machine-readable dict.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..runtime.machine import DATASET_SCALE
from .harness import RunRecord

__all__ = [
    "table1_speedups",
    "table2_metric_improvements",
    "table3_categories",
    "index_records",
    "LARGE_NNZ_THRESHOLD",
    "HIGH_PARALLELISM_THRESHOLD",
]

#: Table III size threshold: the paper's nnz > 1e7, divided by the dataset
#: scale (DESIGN.md).
LARGE_NNZ_THRESHOLD = int(1e7 / DATASET_SCALE)

#: Table III average-parallelism threshold: the paper's 400.  Critical-path
#: length scales roughly with the square root of matrix size for mesh-like
#: problems, so parallelism scales by ~sqrt(DATASET_SCALE) = 8.
HIGH_PARALLELISM_THRESHOLD = 400 / 8


def index_records(records: Sequence[RunRecord]) -> Dict[tuple, RunRecord]:
    """Index by ``(matrix, kernel, algorithm, machine)``."""
    out: Dict[tuple, RunRecord] = {}
    for r in records:
        out[(r.matrix, r.kernel, r.algorithm, r.machine)] = r
    return out


def _ratio_series(
    records: Sequence[RunRecord], value=lambda r: r.speedup
) -> Dict[tuple, Dict[str, float]]:
    """Per (kernel, machine, baseline): list of per-matrix hdagg/baseline ratios."""
    idx = index_records(records)
    series: Dict[tuple, List[float]] = defaultdict(list)
    for r in records:
        if r.algorithm == "hdagg":
            continue
        h = idx.get((r.matrix, r.kernel, "hdagg", r.machine))
        if h is None:
            continue
        denom = value(r)
        if denom > 0:
            series[(r.kernel, r.machine, r.algorithm)].append(value(h) / denom)
    return series


def table1_speedups(records: Sequence[RunRecord]) -> Tuple[List[str], List[list], dict]:
    """Table I: average speedup of HDagg over each algorithm per kernel/machine."""
    series = _ratio_series(records)
    kernels = sorted({r.kernel for r in records})
    machines = sorted({r.machine for r in records})
    baselines = sorted({r.algorithm for r in records if r.algorithm != "hdagg"})
    headers = ["HDagg vs"] + [f"{k}/{m}" for m in machines for k in kernels]
    rows = []
    data: dict = {}
    for b in baselines:
        row: list = [b]
        for m in machines:
            for k in kernels:
                vals = series.get((k, m, b), [])
                mean = float(np.mean(vals)) if vals else float("nan")
                row.append(mean)
                data[f"{b}|{k}|{m}"] = {"mean": mean, "n": len(vals)}
        rows.append(row)
    return headers, rows, data


def table2_metric_improvements(
    records: Sequence[RunRecord], *, kernel: str = "spilu0", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Table II: average improvement of locality / load balance / sync.

    Conventions follow the paper: each entry is ``baseline / HDagg`` so
    values above 1 mean HDagg is better; load balance uses the measured PG
    (values below 1 reproduce the paper's "SpMP/Wavefront balance better"
    rows).
    """
    recs = [r for r in records if r.kernel == kernel and r.machine == machine]
    idx = index_records(recs)
    baselines = sorted({r.algorithm for r in recs if r.algorithm != "hdagg"})
    eps = 1e-9
    metrics = {
        "locality": lambda h, b: (b.avg_memory_access_latency + eps)
        / (h.avg_memory_access_latency + eps),
        "load balance": lambda h, b: (b.potential_gain + eps) / (h.potential_gain + eps),
        # +1 guard: schedules with a single level have zero syncs; the +1
        # keeps ratios finite without distorting multi-level comparisons.
        "synchronization": lambda h, b: (b.equivalent_syncs + 1.0) / (h.equivalent_syncs + 1.0),
    }
    headers = ["metric improvement"] + baselines
    rows = []
    data: dict = {}
    for mname, fn in metrics.items():
        row: list = [mname]
        for b in baselines:
            vals = []
            for r in recs:
                if r.algorithm != b:
                    continue
                h = idx.get((r.matrix, kernel, "hdagg", machine))
                if h is not None:
                    vals.append(fn(h, r))
            mean = float(np.mean(vals)) if vals else float("nan")
            row.append(mean)
            data[f"{mname}|{b}"] = mean
        rows.append(row)
    return headers, rows, data


def _category_of(r: RunRecord) -> int:
    """Table III bucket: 0 = large, 1 = small/high-AP, 2 = small/low-AP."""
    if r.nnz > LARGE_NNZ_THRESHOLD:
        return 0
    if r.average_parallelism > HIGH_PARALLELISM_THRESHOLD:
        return 1
    return 2


def table3_categories(
    records: Sequence[RunRecord], *, kernel: str = "spilu0", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Table III: category breakdown of HDagg vs the better of SpMP/Wavefront."""
    recs = [r for r in records if r.kernel == kernel and r.machine == machine]
    idx = index_records(recs)
    labels = [
        f"nnz > {LARGE_NNZ_THRESHOLD}",
        f"nnz <= {LARGE_NNZ_THRESHOLD}, AP > {HIGH_PARALLELISM_THRESHOLD:.0f}",
        f"nnz <= {LARGE_NNZ_THRESHOLD}, AP <= {HIGH_PARALLELISM_THRESHOLD:.0f}",
    ]
    buckets: Dict[int, List[dict]] = {0: [], 1: [], 2: []}
    eps = 1e-9
    for r in recs:
        if r.algorithm != "hdagg":
            continue
        comp = [
            idx.get((r.matrix, kernel, a, machine)) for a in ("spmp", "wavefront")
        ]
        comp = [c for c in comp if c is not None]
        if not comp:
            continue
        best = max(comp, key=lambda c: c.speedup)
        buckets[_category_of(r)].append(
            {
                "nnz_per_wavefront": r.nnz_per_wavefront,
                "locality_improvement": (best.avg_memory_access_latency + eps)
                / (r.avg_memory_access_latency + eps),
                "lb_improvement": (best.potential_gain + eps) / (r.potential_gain + eps),
                "fast": r.speedup > best.speedup,
                "speedup": r.speedup / best.speedup,
            }
        )
    headers = [
        "category",
        "matrices",
        "avg nnz/wavefront",
        "locality impr",
        "LB impr",
        "fast %",
        "speedup",
    ]
    rows = []
    data: dict = {}
    for cat in (0, 1, 2):
        entries = buckets[cat]
        if entries:
            row = [
                labels[cat],
                len(entries),
                float(np.mean([e["nnz_per_wavefront"] for e in entries])),
                float(np.mean([e["locality_improvement"] for e in entries])),
                float(np.mean([e["lb_improvement"] for e in entries])),
                100.0 * float(np.mean([e["fast"] for e in entries])),
                float(np.mean([e["speedup"] for e in entries])),
            ]
        else:
            row = [labels[cat], 0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan")]
        rows.append(row)
        data[labels[cat]] = dict(zip(headers[1:], row[1:]))
    return headers, rows, data
