"""Tests for cost functions, memory traces, and the edge memory model."""

import numpy as np
import pytest

from repro.kernels import (
    KERNELS,
    MemoryModel,
    SpIC0,
    SpILU0,
    SpTRSV,
    lines_of_rows,
    spic0_cost,
    spilu0_cost,
    sptrsv_cost,
    uniform_cost,
)
from repro.kernels._trace import trace_self_plus_lower_neighbors
from repro.sparse import csr_from_dense, lower_triangle


@pytest.fixture
def small():
    dense = np.array(
        [
            [4.0, 1, 0, 1],
            [1, 4, 1, 0],
            [0, 1, 4, 1],
            [1, 0, 1, 4],
        ]
    )
    return csr_from_dense(dense)


class TestCosts:
    def test_sptrsv_cost(self, small):
        low = lower_triangle(small)
        np.testing.assert_array_equal(sptrsv_cost(low), [1, 2, 2, 3])

    def test_spic0_cost(self, small):
        # lower row sizes: [1, 2, 2, 3]
        # cost[i] = own + sum(lower sizes of below-diagonal neighbours)
        np.testing.assert_array_equal(spic0_cost(small), [1, 2 + 1, 2 + 2, 3 + 1 + 2])

    def test_spilu0_cost(self, small):
        # full row sizes: [3, 3, 3, 3]
        np.testing.assert_array_equal(spilu0_cost(small), [3, 6, 6, 9])

    def test_uniform(self):
        np.testing.assert_array_equal(uniform_cost(3), [1.0, 1.0, 1.0])

    def test_costs_positive_everywhere(self, all_small_matrices):
        for name, a in all_small_matrices.items():
            low = lower_triangle(a)
            for c in (sptrsv_cost(low), spic0_cost(a), spilu0_cost(a)):
                assert np.all(c > 0), name


class TestLinesOfRows:
    def test_counts(self, small):
        per_row, base = lines_of_rows(small, line_elems=2)
        np.testing.assert_array_equal(per_row, [2, 2, 2, 2])  # ceil(3/2)
        np.testing.assert_array_equal(base, [0, 2, 4, 6, 8])

    def test_minimum_one_line(self):
        a = csr_from_dense(np.eye(3))
        per_row, _ = lines_of_rows(a, line_elems=8)
        np.testing.assert_array_equal(per_row, [1, 1, 1])


class TestFactorTrace:
    def test_trace_structure(self, small):
        low = lower_triangle(small)
        ptr, lines = trace_self_plus_lower_neighbors(low, line_elems=2)
        assert ptr.shape[0] == 5
        assert int(ptr[-1]) == lines.shape[0]
        # iteration 0 touches only its own row's lines
        per_row, base = lines_of_rows(low, line_elems=2)
        own0 = lines[ptr[0] : ptr[1]]
        assert own0.tolist() == list(range(base[0], base[1]))

    def test_trace_includes_neighbor_rows(self, small):
        low = lower_triangle(small)
        ptr, lines = trace_self_plus_lower_neighbors(low, line_elems=2)
        per_row, base = lines_of_rows(low, line_elems=2)
        # row 3 has lower neighbours 0 and 2: their lines must appear after its own
        seg = lines[ptr[3] : ptr[4]].tolist()
        own = list(range(base[3], base[4]))
        assert seg[: len(own)] == own
        assert set(seg[len(own) :]) == set(range(base[0], base[1])) | set(
            range(base[2], base[3])
        )

    def test_trace_lengths_match_cost_shape(self, mesh):
        ptr, lines = trace_self_plus_lower_neighbors(lower_triangle(mesh))
        assert ptr.shape[0] == mesh.n_rows + 1
        assert np.all(np.diff(ptr) >= 1)


class TestMemoryModel:
    def test_validate_rejects_mismatch(self, small):
        k = SpTRSV()
        low = lower_triangle(small)
        g = k.dag(low)
        m = k.memory_model(low, g)
        with pytest.raises(ValueError):
            MemoryModel(m.stream_lines[:-1], m.edge_lines).validate(g)
        with pytest.raises(ValueError):
            MemoryModel(m.stream_lines, m.edge_lines[:-1]).validate(g)

    def test_totals(self, small):
        k = SpTRSV()
        low = lower_triangle(small)
        g = k.dag(low)
        m = k.memory_model(low, g)
        assert m.total_accesses == m.total_stream + m.total_edge
        assert m.total_edge == g.n_edges  # 1 line per edge for sptrsv

    @pytest.mark.parametrize("kname", ["sptrsv", "spic0", "spilu0"])
    def test_all_kernels_produce_models(self, kname, mesh):
        k = KERNELS[kname]
        operand = lower_triangle(mesh) if kname == "sptrsv" else mesh
        g = k.dag(operand)
        m = k.memory_model(operand, g)
        m.validate(g)
        assert m.total_accesses > 0
        assert np.all(m.stream_lines > 0)

    def test_ilu0_edges_heavier_than_ic0(self, mesh):
        """ILU0 re-reads full rows; IC0 only lower rows — ILU0 moves more."""
        g = SpILU0().dag(mesh)
        ilu = SpILU0().memory_model(mesh, g)
        ic = SpIC0().memory_model(mesh, g)
        assert ilu.total_edge >= ic.total_edge
