"""Figure 6: the three performance metrics per matrix (SpILU0, Intel).

Locality (average memory access latency), load balance (measured potential
gain), and synchronisation (equivalent point-to-point count) per matrix and
algorithm — the data behind the paper's per-matrix analysis of *why* HDagg
wins or loses.
"""

import numpy as np

from _common import write_report
from repro.suite import fig6_performance_metrics, format_table, index_records


def test_fig6(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        fig6_performance_metrics, records_intel, kernel="spilu0", machine="intel20"
    )
    write_report(
        output_dir,
        "fig6_intel20",
        format_table(headers, rows, title="Figure 6: performance metrics (SpILU0, intel20)"),
    )

    matrices = {m for (m, _) in data}
    # DAGP's load balance is the worst on average (paper: highest PG bars).
    def avg_pg(algo):
        vals = [v["pg"] for (m, a), v in data.items() if a == algo]
        return float(np.mean(vals))

    assert avg_pg("dagp") > avg_pg("hdagg")
    assert avg_pg("dagp") > avg_pg("spmp")
    # SpMP/Wavefront balance at least as well as HDagg on average (paper).
    assert avg_pg("spmp") <= avg_pg("hdagg") + 0.05

    # Wavefront pays the most synchronisation (a barrier per level).
    def avg_sync(algo):
        vals = [v["syncs"] for (m, a), v in data.items() if a == algo]
        return float(np.mean(vals))

    assert avg_sync("wavefront") > avg_sync("hdagg")
    assert avg_sync("wavefront") > avg_sync("lbc")
