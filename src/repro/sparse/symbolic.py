"""Symbolic Cholesky factorisation: fill pattern, column counts, chordality.

The paper's SpTRSV workload is a lower-triangular *factor* — the output of
a (complete or incomplete) factorisation — whose pattern includes fill.
This module computes that pattern without numerics:

* :func:`elimination_tree_from_matrix` — Liu's etree directly from a
  symmetric matrix's lower pattern;
* :func:`symbolic_cholesky` — the filled pattern of the Cholesky factor
  ``L`` (row-subtree characterisation: row ``i`` of ``L`` contains ``j``
  iff ``j`` is on an etree path from a nonzero column of ``A`` row ``i``
  up to ``i``);
* :func:`column_counts` — nnz per factor column (fill prediction);
* :func:`is_chordal_pattern` — a pattern is chordal iff it equals its own
  symbolic factor pattern (zero fill), the property LBC's tree machinery
  relies on (Figure 1(c)).

These also extend the evaluation dataset: ``factor_pattern(A)`` turns any
suite matrix into the filled SPD pattern whose triangular solve matches
the paper's Cholesky-factor workloads.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE, csr_from_coo
from .triangular import lower_triangle

__all__ = [
    "elimination_tree_from_matrix",
    "symbolic_cholesky",
    "column_counts",
    "fill_in",
    "is_chordal_pattern",
    "factor_pattern_spd",
    "supernodes",
]


def elimination_tree_from_matrix(a: CSRMatrix) -> np.ndarray:
    """Liu's elimination tree of ``a``'s symmetric pattern (parent array).

    ``parent[i] = -1`` marks a root.  Only the lower triangle is read, so
    the input may be the full symmetric matrix or its lower triangle.
    """
    if not a.is_square:
        raise ValueError("elimination tree requires a square matrix")
    n = a.n_rows
    parent = np.full(n, -1, dtype=INDEX_DTYPE)
    ancestor = np.full(n, -1, dtype=INDEX_DTYPE)
    indptr, indices = a.indptr, a.indices
    for i in range(n):
        for t in range(indptr[i], indptr[i + 1]):
            k = int(indices[t])
            if k >= i:
                continue
            r = k
            while ancestor[r] != -1 and ancestor[r] != i:
                nxt = int(ancestor[r])
                ancestor[r] = i
                r = nxt
            if ancestor[r] == -1:
                ancestor[r] = i
                parent[r] = i
    return parent


def symbolic_cholesky(a: CSRMatrix) -> CSRMatrix:
    """Pattern of the Cholesky factor ``L`` (lower, unit values, full diag).

    Row-subtree traversal: for each row ``i``, walk each below-diagonal
    entry ``k`` up the elimination tree until reaching ``i`` or an already
    marked vertex; every vertex on the path is a fill position of row
    ``i``.  O(|L|) total work.
    """
    if not a.is_square:
        raise ValueError("symbolic factorisation requires a square matrix")
    n = a.n_rows
    parent = elimination_tree_from_matrix(a)
    mark = np.full(n, -1, dtype=INDEX_DTYPE)
    rows: list[int] = []
    cols: list[int] = []
    indptr, indices = a.indptr, a.indices
    for i in range(n):
        mark[i] = i
        rows.append(i)
        cols.append(i)
        for t in range(indptr[i], indptr[i + 1]):
            k = int(indices[t])
            if k >= i:
                continue
            j = k
            while mark[j] != i:
                mark[j] = i
                rows.append(i)
                cols.append(j)
                j = int(parent[j])
                if j == -1 or j >= i:
                    break
    vals = np.ones(len(rows), dtype=VALUE_DTYPE)
    return csr_from_coo(n, n, rows, cols, vals, sum_duplicates=False)


def column_counts(a: CSRMatrix) -> np.ndarray:
    """Non-zeros per column of the symbolic factor (including diagonal)."""
    l = symbolic_cholesky(a)
    counts = np.bincount(l.indices, minlength=a.n_rows)
    return counts.astype(INDEX_DTYPE)


def fill_in(a: CSRMatrix) -> int:
    """Entries the factor adds beyond ``tril(A)``'s pattern."""
    return symbolic_cholesky(a).nnz - lower_triangle(a).nnz


def is_chordal_pattern(a: CSRMatrix) -> bool:
    """True when elimination in natural order produces no fill.

    Zero fill in the given order means the pattern (with this ordering) has
    a perfect elimination ordering — the chordality property LBC's
    tree-based machinery assumes.
    """
    return fill_in(a) == 0


def factor_pattern_spd(a: CSRMatrix, *, seed: int = 0, dominance: float = 1.0) -> CSRMatrix:
    """A full SPD matrix whose lower triangle equals ``a``'s filled factor.

    Used to extend the dataset with Cholesky-factor-shaped workloads: the
    triangular solve on ``lower_triangle(result)`` has exactly the paper's
    "solve with the factor of A" dependence structure, and the pattern is
    chordal by construction.
    """
    from .generators import spd_from_pattern

    l = symbolic_cholesky(a)
    row_of = np.repeat(np.arange(l.n_rows, dtype=INDEX_DTYPE), l.row_nnz())
    strict = l.indices < row_of
    return spd_from_pattern(
        a.n_rows, row_of[strict], l.indices[strict], seed=seed, dominance=dominance
    )


def supernodes(a: CSRMatrix) -> np.ndarray:
    """Fundamental supernodes of the symbolic factor.

    A supernode is a maximal run of consecutive columns ``j, j+1, ...``
    where each column's structure below the diagonal equals the next
    column's structure plus that diagonal — the dense trapezoids supernodal
    Cholesky factorises with BLAS3.  Detected with the standard rule:
    column ``j+1`` joins ``j``'s supernode iff ``parent(j) == j+1`` and
    ``count(j) == count(j+1) + 1`` (etree parent + column-count matching).

    Returns a label array of length ``n`` (labels are the first column of
    each supernode, so they are sorted and dense enough for grouping).
    """
    n = a.n_rows
    parent = elimination_tree_from_matrix(a)
    counts = column_counts(a)
    labels = np.empty(n, dtype=INDEX_DTYPE)
    current = 0
    labels[0] = 0
    for j in range(1, n):
        if parent[j - 1] == j and counts[j - 1] == counts[j] + 1:
            labels[j] = current
        else:
            current = j
            labels[j] = current
    return labels
