"""Extension kernels (no paper counterpart): Gauss-Seidel and complete Cholesky.

Two regimes beyond the paper's three kernels:

* **Gauss-Seidel** — same dependence class as SpTRSV, denser per-iteration
  reads (the full row); the schedulers should rank the same way they do on
  SpILU0.
* **Complete Cholesky (SpChol)** — the *filled* pattern is chordal and its
  reduced DAG is exactly the elimination tree: LBC's home turf and HDagg
  step 1's capped regime.  The claim checked is qualitative: LBC is
  competitive here (unlike the non-tree kernels, where it collapses).
"""

import numpy as np

from _common import write_report
from repro.kernels import KERNELS
from repro.runtime import INTEL20, simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import apply_ordering, lower_triangle
from repro.suite import format_table, suite_by_name

ALGOS = ("hdagg", "spmp", "wavefront", "lbc", "dagp")


def run_kernel(kernel_name, matrix_names, machine):
    kernel = KERNELS[kernel_name]
    rows = []
    ratios = {}
    for nm in matrix_names:
        a, _ = apply_ordering(suite_by_name()[nm].build(), "nd")
        g = kernel.dag(a)
        cost = kernel.cost(a)
        mem = kernel.memory_model(a, g)
        serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, mem, machine.scaled(1))
        row = [nm]
        for algo in ALGOS:
            s = SCHEDULERS[algo](g, cost, machine.n_cores)
            s.validate(g)
            r = simulate(s, g, cost, mem, machine)
            speedup = serial.makespan_cycles / r.makespan_cycles
            row.append(speedup)
            ratios.setdefault(algo, []).append(speedup)
        rows.append(row)
    return rows, {a: float(np.mean(v)) for a, v in ratios.items()}


def test_gauss_seidel(benchmark, output_dir):
    rows, means = benchmark.pedantic(
        run_kernel, args=("gauss_seidel", ["mesh2d-m", "rand-mid", "kite-small"], INTEL20),
        rounds=1, iterations=1,
    )
    write_report(
        output_dir,
        "extension_gauss_seidel",
        format_table(["matrix"] + [f"{a}" for a in ALGOS], rows,
                     title="Extension: Gauss-Seidel speedups (intel20)"),
    )
    # same qualitative ranking as the paper's kernels
    assert means["hdagg"] > means["lbc"]
    assert means["hdagg"] > means["dagp"]
    assert means["hdagg"] > 1.0


def test_complete_cholesky(benchmark, output_dir):
    rows, means = benchmark.pedantic(
        run_kernel, args=("spchol", ["mesh2d-s", "kite-small"], INTEL20.scaled(4)),
        rounds=1, iterations=1,
    )
    write_report(
        output_dir,
        "extension_spchol",
        format_table(["matrix"] + [f"{a}" for a in ALGOS], rows,
                     title="Extension: complete Cholesky speedups (intel20@4)"),
    )
    # chordal pattern: the etree is real, so LBC stops collapsing — it must
    # land within 2x of HDagg here (it trails by 4-5x on the non-tree kernels)
    assert means["lbc"] > means["hdagg"] / 2.5
