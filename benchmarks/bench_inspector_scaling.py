"""Section IV-E: inspector complexity scaling.

The paper derives O(|E| * E[D] + |V| * Var[D]) for the transitive
reduction, O(|V| + |E|) for subtree aggregation, and O(l * |E| * log|V|)
for the per-merge connected components.  This benchmark times the real
stages of this implementation over a Poisson size sweep and checks the
growth is near-linear in |E| (doubling nnz must not quadruple stage time).

Besides the human-readable table, the sweep emits
``benchmarks/output/BENCH_inspector.json`` — machine-readable per-size
timings (total plus per-stage from the inspector's :class:`StageTimer`
metadata) so CI and regression tooling can diff inspector performance
across commits without parsing text tables.
"""

import numpy as np
import pytest

from _common import write_json_payload, write_report
from repro.core import hdagg, subtree_grouping
from repro.graph import dag_from_matrix_lower, transitive_reduction_two_hop
from repro.kernels import KERNELS
from repro.sparse import apply_ordering, poisson2d
from repro.suite import format_table

SIZES = [32, 48, 64, 96, 128, 192]


@pytest.fixture(scope="module")
def dags():
    out = []
    for nx in SIZES:
        a, _ = apply_ordering(poisson2d(nx, seed=1), "nd")
        g = dag_from_matrix_lower(a)
        out.append((nx, a, g))
    return out


def test_transitive_reduction_scaling(benchmark, dags, output_dir):
    _, _, g_mid = dags[-2]
    benchmark(transitive_reduction_two_hop, g_mid)


def test_subtree_grouping_scaling(benchmark, dags):
    _, _, g_mid = dags[-2]
    g_red = transitive_reduction_two_hop(g_mid)
    benchmark(subtree_grouping, g_red)


def test_full_inspector_scaling(benchmark, dags, output_dir, backend_spec):
    import time

    backend_desc = (
        backend_spec.effective().describe() if backend_spec is not None else ""
    )
    hdagg_kwargs = {"backend": backend_spec} if backend_spec is not None else {}
    rows = []
    times = []
    json_rows = []
    for nx, a, g in dags:
        cost = KERNELS["sptrsv"].cost(a)  # full-matrix cost proxy, fine for timing
        t0 = time.perf_counter()
        s = hdagg(g, np.asarray(cost, dtype=float)[: g.n], 20, **hdagg_kwargs)
        dt = time.perf_counter() - t0
        times.append(dt)
        rows.append([f"poisson2d({nx})", g.n, g.n_edges, dt * 1e3, s.n_levels])
        json_rows.append(
            {
                "matrix": f"poisson2d({nx})",
                "n": int(g.n),
                "edges": int(g.n_edges),
                "inspector_ms": dt * 1e3,
                "stage_ms": {
                    k: v * 1e3 for k, v in s.meta.get("stage_seconds", {}).items()
                },
                "coarse_wavefronts": int(s.n_levels),
            }
        )
    write_report(
        output_dir,
        "inspector_scaling",
        format_table(
            ["matrix", "V", "E", "inspector ms", "coarse wavefronts"],
            rows,
            title="HDagg inspector scaling (Section IV-E)",
        ),
    )
    write_json_payload(
        output_dir,
        "BENCH_inspector",
        {"backend": backend_desc, "sizes": json_rows},
        backend=backend_desc,
    )
    # near-linear growth: more edges should cost well under quadratically
    # more time
    edge_ratio = dags[-1][2].n_edges / dags[0][2].n_edges
    time_ratio = times[-1] / max(times[0], 1e-9)
    assert time_ratio < edge_ratio**2, (time_ratio, edge_ratio)

    # benchmark the largest instance for the timing report
    nx, a, g = dags[-1]
    cost = np.ones(g.n)
    benchmark.pedantic(hdagg, args=(g, cost, 20), kwargs=hdagg_kwargs,
                       rounds=3, iterations=1)
