"""Tests for the PGP metric (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import accumulated_pgp, pgp, pgp_worst_case
from repro.core.schedule import Schedule, WidthPartition


def test_balanced_is_zero():
    assert pgp([5.0, 5.0, 5.0]) == 0.0


def test_single_loaded_core():
    assert pgp([10.0, 0.0]) == pytest.approx(0.5)  # paper's p = 2 example


def test_worst_case_formula():
    for p in (1, 2, 4, 20):
        loads = [1.0] + [0.0] * (p - 1)
        assert pgp(loads) == pytest.approx(pgp_worst_case(p))


def test_empty_and_zero():
    assert pgp([]) == 0.0
    assert pgp([0.0, 0.0]) == 0.0


def test_worst_case_rejects_bad_p():
    with pytest.raises(ValueError):
        pgp_worst_case(0)


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=32))
@settings(max_examples=100, deadline=None)
def test_range_property(loads):
    v = pgp(loads)
    assert 0.0 <= v <= 1.0
    p = len(loads)
    assert v <= pgp_worst_case(p) + 1e-12


@given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=16), st.floats(0.1, 10))
@settings(max_examples=60, deadline=None)
def test_scale_invariant(loads, scale):
    assert pgp(loads) == pytest.approx(pgp(np.array(loads) * scale), rel=1e-9)


def _schedule(levels, p):
    return Schedule(
        n=sum(part.size for lev in levels for part in lev),
        levels=levels,
        sync="barrier",
        algorithm="test",
        n_cores=p,
    )


def test_accumulated_pgp_balanced():
    cost = np.ones(4)
    levels = [
        [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))],
        [WidthPartition(0, np.array([2])), WidthPartition(1, np.array([3]))],
    ]
    assert accumulated_pgp(_schedule(levels, 2), cost) == 0.0


def test_accumulated_pgp_one_sided():
    cost = np.ones(4)
    levels = [
        [WidthPartition(0, np.array([0, 1]))],
        [WidthPartition(0, np.array([2, 3]))],
    ]
    assert accumulated_pgp(_schedule(levels, 2), cost) == pytest.approx(0.5)


def test_accumulated_pgp_mixed_levels():
    cost = np.array([1.0, 1.0, 2.0])
    levels = [
        [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))],
        [WidthPartition(0, np.array([2]))],
    ]
    # level 1: mean 1, max 1; level 2: mean 1, max 2 -> 1 - 2/3
    assert accumulated_pgp(_schedule(levels, 2), cost) == pytest.approx(1 - 2 / 3)


def test_accumulated_pgp_dynamic_partitions_balance():
    cost = np.ones(4)
    levels = [[WidthPartition(-1, np.array([i])) for i in range(4)]]
    s = Schedule(n=4, levels=levels, sync="barrier", algorithm="t", n_cores=2)
    assert accumulated_pgp(s, cost) == 0.0  # greedy binding balances 4 units on 2 cores
