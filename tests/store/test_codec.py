"""Binary schedule codec: bit-identical round trips, hostile bytes.

The two properties everything downstream leans on:

* **fidelity** — ``decode(encode(s))`` reproduces the schedule exactly,
  and re-encoding yields the same bytes (canonical form), for every
  registered scheduler over the four seeded golden matrices and for
  hypothesis-generated synthetic schedules;
* **fail-closed** — corrupted bytes (any single-byte mutation, any
  truncation) raise :class:`CodecError`; the codec never hands back a
  plausible-but-wrong schedule.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import Schedule, WidthPartition
from repro.store import CODEC_VERSION, CodecError, decode_schedule, encode_schedule

from .conftest import MATRICES


def assert_same_schedule(a: Schedule, b: Schedule) -> None:
    assert a.n == b.n
    assert a.sync == b.sync
    assert a.algorithm == b.algorithm
    assert a.n_cores == b.n_cores
    assert a.fine_grained == b.fine_grained
    assert len(a.levels) == len(b.levels)
    for la, lb in zip(a.levels, b.levels):
        assert len(la) == len(lb)
        for pa, pb in zip(la, lb):
            assert pa.core == pb.core
            assert pa.vertices.dtype == pb.vertices.dtype
            np.testing.assert_array_equal(pa.vertices, pb.vertices)


# ----------------------------------------------------------------------
# fidelity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_all_schedulers_all_matrices_bit_identical(self, corpus):
        for (sname, mname), (schedule, _) in corpus.items():
            blob = encode_schedule(schedule)
            back = decode_schedule(blob)
            assert_same_schedule(schedule, back)
            assert encode_schedule(back) == blob, (sname, mname)

    def test_version_stamped(self, corpus):
        blob = encode_schedule(next(iter(corpus.values()))[0])
        assert blob[:4] == b"HDSC"
        assert int.from_bytes(blob[4:6], "little") == CODEC_VERSION

    def test_meta_survives(self, corpus):
        schedule, _ = corpus[("hdagg", "poisson2d")]
        assert schedule.meta  # hdagg records epsilon etc.
        back = decode_schedule(encode_schedule(schedule))
        for k, v in schedule.meta.items():
            if isinstance(v, (str, int, float, bool, type(None))):
                assert back.meta[k] == pytest.approx(v) if isinstance(v, float) else back.meta[k] == v


@st.composite
def synthetic_schedules(draw):
    n = draw(st.integers(1, 60))
    n_levels = draw(st.integers(1, 4))
    sync = draw(st.sampled_from(["barrier", "p2p"]))
    algorithm = draw(st.text(st.characters(codec="utf-8", exclude_categories=("Cs",)), max_size=12))
    levels = []
    for _ in range(n_levels):
        n_parts = draw(st.integers(1, 3))
        parts = []
        for _ in range(n_parts):
            size = draw(st.integers(1, 8))
            vertices = draw(
                st.lists(st.integers(0, n - 1), min_size=size, max_size=size)
            )
            parts.append(WidthPartition(core=draw(st.integers(0, 7)), vertices=np.asarray(vertices)))
        levels.append(parts)
    meta = draw(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(-10, 10), st.floats(-5, 5, allow_nan=False), st.booleans(), st.text(max_size=8)),
            max_size=4,
        )
    )
    return Schedule(
        n=n,
        levels=levels,
        sync=sync,
        algorithm=algorithm,
        n_cores=draw(st.integers(1, 16)),
        fine_grained=draw(st.booleans()),
        meta=meta,
    )


@given(synthetic_schedules())
@settings(max_examples=60, deadline=None)
def test_synthetic_round_trip(schedule):
    blob = encode_schedule(schedule)
    back = decode_schedule(blob)
    assert_same_schedule(schedule, back)
    assert encode_schedule(back) == blob


# ----------------------------------------------------------------------
# fail-closed under hostile bytes
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture(scope="class")
    def blob(self, corpus):
        return encode_schedule(corpus[("hdagg", "banded")][0])

    def test_every_single_byte_flip_rejected(self, blob):
        """Exhaustive over offsets: no single corrupted byte decodes."""
        for off in range(len(blob)):
            mutated = bytearray(blob)
            mutated[off] ^= 0xFF
            with pytest.raises(CodecError):
                decode_schedule(bytes(mutated))

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_fuzzed_bit_flips_rejected(self, corpus, data):
        name = data.draw(st.sampled_from(sorted(MATRICES)))
        blob = encode_schedule(corpus[("hdagg", name)][0])
        off = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        mutated = bytearray(blob)
        mutated[off] ^= 1 << bit
        with pytest.raises(CodecError):
            decode_schedule(bytes(mutated))

    def test_every_truncation_rejected(self, blob):
        for end in range(len(blob)):
            with pytest.raises(CodecError):
                decode_schedule(blob[:end])

    def test_trailing_garbage_rejected(self, blob):
        with pytest.raises(CodecError):
            decode_schedule(blob + b"\x00")

    def test_crc_fixup_cannot_smuggle_bad_semantics(self, blob, corpus):
        """Even an attacker who recomputes the CRC cannot make the decoder
        emit out-of-range vertices: semantic checks run after the CRC."""
        schedule = corpus[("hdagg", "banded")][0]
        body = bytearray(blob[:-4])
        # n lives at offset 8 (u64); shrink it below a used vertex id
        body[8:16] = (1).to_bytes(8, "little")
        fixed = bytes(body) + zlib.crc32(bytes(body)).to_bytes(4, "little")
        with pytest.raises(CodecError):
            decode_schedule(fixed)
        assert schedule.n > 1  # the mutation above was meaningful

    def test_wrong_magic_rejected(self, blob):
        with pytest.raises(CodecError):
            decode_schedule(b"NOPE" + blob[4:])

    def test_unknown_version_rejected(self, blob):
        body = bytearray(blob[:-4])
        body[4:6] = (CODEC_VERSION + 1).to_bytes(2, "little")
        fixed = bytes(body) + zlib.crc32(bytes(body)).to_bytes(4, "little")
        with pytest.raises(CodecError, match="version"):
            decode_schedule(fixed)

    def test_empty_and_tiny_inputs_rejected(self):
        for junk in (b"", b"H", b"HDSC", b"\x00" * 16):
            with pytest.raises(CodecError):
                decode_schedule(junk)
