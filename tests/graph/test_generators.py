"""Tests for the synthetic DAG generators + schedulers on pure DAG shapes."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.graph import compute_wavefronts, is_acyclic
from repro.graph.generators import (
    chain_dag,
    fan_dag,
    layered_dag,
    random_forest,
    series_parallel_dag,
)
from repro.schedulers import SCHEDULERS

GENS = [
    ("layered", lambda: layered_dag(5, 6, seed=1)),
    ("forest", lambda: random_forest(40, n_roots=3, seed=2)),
    ("chain", lambda: chain_dag(20)),
    ("fan", lambda: fan_dag(15)),
    ("sp", lambda: series_parallel_dag(4, seed=3)),
]


@pytest.mark.parametrize("name,build", GENS, ids=[g[0] for g in GENS])
def test_generators_produce_valid_dags(name, build):
    g = build()
    assert is_acyclic(g)
    assert g.is_id_topological()
    assert build() == g  # deterministic


def test_layered_wavefronts_are_layers():
    g = layered_dag(6, 4, seed=5)
    w = compute_wavefronts(g)
    assert w.n_levels == 6
    assert all(s == 4 for s in w.sizes().tolist())


def test_layered_validation():
    with pytest.raises(ValueError):
        layered_dag(0, 3)


def test_forest_every_nonroot_has_one_out_edge():
    g = random_forest(30, n_roots=2, seed=1)
    deg = g.out_degree()
    assert np.all(deg[:-2] == 1) or int((deg == 0).sum()) >= 2
    assert int((deg == 0).sum()) >= 2


def test_forest_validation():
    with pytest.raises(ValueError):
        random_forest(3, n_roots=0)
    with pytest.raises(ValueError):
        random_forest(3, n_roots=4)


def test_chain_shape():
    g = chain_dag(10)
    w = compute_wavefronts(g)
    assert w.n_levels == 10
    with pytest.raises(ValueError):
        chain_dag(0)


def test_fan_shapes():
    g = fan_dag(8)
    assert g.n == 9
    assert g.in_degree()[-1] == 8
    flat = fan_dag(8, gather=False)
    assert flat.n_edges == 0
    with pytest.raises(ValueError):
        fan_dag(0)


def test_series_parallel_single_sink():
    g = series_parallel_dag(4, branching=3, seed=7)
    assert is_acyclic(g)
    assert g.sinks().shape[0] == 1
    with pytest.raises(ValueError):
        series_parallel_dag(-1)


@pytest.mark.parametrize("name,build", GENS, ids=[g[0] for g in GENS])
@pytest.mark.parametrize("algo", ["hdagg", "wavefront", "spmp", "lbc", "dagp", "coarsenk"])
def test_all_schedulers_on_all_shapes(name, build, algo):
    g = build()
    s = SCHEDULERS[algo](g, np.ones(g.n), 3)
    s.validate(g)


def test_hdagg_fan_balances():
    """A fan of equal vertices packs evenly over the cores."""
    g = fan_dag(30, gather=False)
    s = hdagg(g, np.ones(30), 3)
    from repro.core import accumulated_pgp

    assert s.n_levels == 1
    assert accumulated_pgp(s, np.ones(30)) == 0.0


def test_hdagg_chain_is_sequential_without_cap_effects():
    g = chain_dag(16)
    s = hdagg(g, np.ones(16), 2)
    s.validate(g)
    # a pure chain has no parallelism for anyone
    assert all(len(level) == 1 for level in s.levels)
