"""Flaky-marker audit (satellite S5): keep the chaos job deterministic.

The chaos CI job runs with ``-m "not flaky"`` so a known-nondeterministic
test can be quarantined without turning fault-injection CI red.  That
escape hatch only stays honest if its use is audited: every
``@pytest.mark.flaky`` in the tree must appear in :data:`FLAKY_ALLOWLIST`
below with a written reason, and the marker must stay registered (with
``--strict-markers``) so a typo cannot silently opt a test out.

Adding a flaky marker therefore forces a diff in this file — which is the
review point where "is this actually nondeterministic, or just broken?"
gets asked.
"""

import re
from pathlib import Path

TESTS_DIR = Path(__file__).parent

#: (relative test file) -> reason a flaky marker is tolerated there.
#: Keep this list short — the suite is deterministic (seeded RNGs,
#: injected clocks, deterministic fault plans) and should stay that way.
FLAKY_ALLOWLIST: dict = {
    "core/test_incremental.py": (
        "test_repair_beats_full_on_mesh asserts a wall-clock ratio "
        "(repair < 0.8x full, ~0.22x in practice); a loaded CI machine "
        "can still blow the generous margin"
    ),
}

_MARKER_RE = re.compile(r"pytest\.mark\.flaky\b|@.*\bmark\.flaky\b")


def _files_using_flaky():
    hits = []
    for path in sorted(TESTS_DIR.rglob("*.py")):
        if path == Path(__file__):
            continue
        if _MARKER_RE.search(path.read_text(encoding="utf-8")):
            hits.append(str(path.relative_to(TESTS_DIR)))
    return hits


def test_every_flaky_marker_is_allowlisted():
    hits = _files_using_flaky()
    unlisted = [f for f in hits if f not in FLAKY_ALLOWLIST]
    assert not unlisted, (
        f"flaky markers without an allowlist entry: {unlisted} — add them "
        f"to FLAKY_ALLOWLIST with a reason, or make the tests deterministic"
    )


def test_allowlist_has_no_stale_entries():
    hits = set(_files_using_flaky())
    stale = [f for f in FLAKY_ALLOWLIST if f not in hits]
    assert not stale, f"allowlist entries with no flaky marker left: {stale}"


def test_flaky_marker_is_registered(pytestconfig):
    registered = [m.split(":")[0].strip()
                  for m in pytestconfig.getini("markers")]
    assert "flaky" in registered, (
        "the `flaky` marker must stay registered in pyproject.toml so "
        "--strict-markers keeps guarding the chaos job's deselection"
    )


def test_strict_markers_enforced(pytestconfig):
    addopts = pytestconfig.getini("addopts")
    assert "--strict-markers" in addopts
