"""Strong scaling: simulated speedup vs core count (extension experiment).

The paper evaluates fixed core counts (20-core Intel, 64-core AMD); this
sweep interpolates, showing where each scheduler saturates.  Expected
shape: every scheduler scales at low counts; HDagg and SpMP keep scaling
past Wavefront (whose barrier cost grows with p*log p); efficiency drops
monotonically with p.
"""

import numpy as np

from _common import write_report
from repro.kernels import KERNELS
from repro.runtime import INTEL20
from repro.sparse import apply_ordering, lower_triangle
from repro.suite import format_table, suite_by_name
from repro.suite.sweeps import strong_scaling


def test_strong_scaling(benchmark, output_dir):
    spec = suite_by_name()["mesh2d-xl"]
    kernel = KERNELS["spilu0"]
    a, _ = apply_ordering(spec.build(), "nd")
    g = kernel.dag(a)
    cost = kernel.cost(a)
    mem = kernel.memory_model(a, g)

    points = strong_scaling(g, cost, mem, INTEL20,
                            core_counts=(1, 2, 4, 8, 16, 20))
    rows = [
        [p.algorithm, p.n_cores, p.speedup, p.efficiency, p.potential_gain]
        for p in points
    ]
    write_report(
        output_dir,
        "scaling_intel20",
        format_table(
            ["algorithm", "cores", "speedup", "efficiency", "PG"],
            rows,
            title="Strong scaling (mesh2d-xl, SpILU0, intel20 family)",
        ),
    )

    by = {(p.algorithm, p.n_cores): p for p in points}
    for algo in ("hdagg", "spmp", "wavefront"):
        # more cores never hurt by much at the low end...
        assert by[(algo, 4)].speedup > by[(algo, 1)].speedup
        # ...and efficiency decays with p (no superlinear artefacts)
        assert by[(algo, 20)].efficiency <= by[(algo, 2)].efficiency + 0.05
    # single-core schedule is serial-equivalent: speedup ~ 1
    assert 0.5 <= by[("hdagg", 1)].speedup <= 1.6

    benchmark.pedantic(
        strong_scaling, args=(g, cost, mem, INTEL20),
        kwargs={"algorithms": ("hdagg",), "core_counts": (8,)},
        rounds=3, iterations=1,
    )
