"""Shared fixtures: small deterministic matrices and DAGs.

Everything here is sized for fast tests (n <= ~2500); the benchmarks own
the large inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DAG
from repro.sparse import (
    apply_ordering,
    banded_spd,
    block_diagonal_spd,
    csr_from_dense,
    kite_chain_spd,
    lower_triangle,
    poisson2d,
    poisson3d,
    power_law_spd,
    random_spd,
    tridiagonal_spd,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20220530)  # IPDPS 2022 conference date


@pytest.fixture(scope="session")
def tiny_spd():
    """3x3 dense SPD matrix with a hand-checkable Cholesky factor."""
    return csr_from_dense(np.array([[4.0, 1, 0], [1, 3, 1], [0, 1, 2]]))


@pytest.fixture(scope="session")
def mesh():
    """Small 2D Poisson matrix (natural ordering)."""
    return poisson2d(12, seed=7)


@pytest.fixture(scope="session")
def mesh_nd():
    """ND-reordered 2D Poisson matrix — the harness's canonical input."""
    ordered, _ = apply_ordering(poisson2d(16, seed=7), "nd")
    return ordered


@pytest.fixture(scope="session")
def mesh3d_small():
    return poisson3d(6, seed=9)


@pytest.fixture(scope="session")
def kite():
    """Chain of dense cliques: rich in transitive edges and subtrees."""
    return kite_chain_spd(6, 6, seed=3)


@pytest.fixture(scope="session")
def blocks():
    """Block-diagonal: embarrassingly parallel DAG."""
    return block_diagonal_spd(12, 8, seed=5)


@pytest.fixture(scope="session")
def chain():
    """Tridiagonal: the DAG is a single path."""
    return tridiagonal_spd(40, seed=2)


@pytest.fixture(scope="session")
def irregular():
    """Random symmetric pattern: a non-tree DAG (HDagg's target class)."""
    return random_spd(300, 6.0, seed=11)


@pytest.fixture(scope="session")
def skewed():
    """Power-law degrees: non-uniform iteration costs."""
    return power_law_spd(260, 5.0, seed=13)


@pytest.fixture(scope="session")
def banded():
    return banded_spd(200, 9, fill=0.8, seed=17)


@pytest.fixture(scope="session")
def all_small_matrices(mesh, mesh3d_small, kite, blocks, chain, irregular, skewed, banded):
    """Name -> matrix map covering every structure family."""
    return {
        "mesh": mesh,
        "mesh3d": mesh3d_small,
        "kite": kite,
        "blocks": blocks,
        "chain": chain,
        "irregular": irregular,
        "skewed": skewed,
        "banded": banded,
    }


@pytest.fixture(scope="session")
def diamond_dag():
    """0 -> {1, 2} -> 3 plus the transitive edge 0 -> 3."""
    return DAG.from_edges(4, [0, 0, 1, 2, 0], [1, 2, 3, 3, 3])


@pytest.fixture(scope="session")
def paper_like_dag():
    """A 13-vertex DAG in the spirit of the paper's Figure 2.

    Designed (not transcribed — the figure's full edge list is not in the
    text) so that after two-hop transitive reduction the subtree step finds
    multiple non-trivial groups, wavefront coarsening has >= 3 levels, and
    the LBP loop exercises both merge and cut branches at p = 2.
    """
    edges = [
        (0, 3), (1, 2), (2, 3), (0, 4), (2, 4),
        (3, 9), (4, 9), (1, 3),          # (1,3) is transitive via 2
        (5, 7), (6, 7), (7, 8), (5, 8),  # (5,8) is transitive via 7
        (8, 9), (8, 10),
        (9, 11), (10, 11), (11, 12), (9, 12),  # (9,12) transitive via 11
    ]
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    return DAG.from_edges(13, src, dst)


def assert_valid_schedule(schedule, g, kernel=None, operand=None, b=None):
    """Assert structural validity and (optionally) numeric correctness."""
    schedule.validate(g)
    if kernel is not None:
        ref = kernel.reference(operand, b)
        got = kernel.execute_in_order(operand, schedule.execution_order(), b)
        if isinstance(ref, np.ndarray):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)
        else:
            np.testing.assert_allclose(got.data, ref.data, rtol=1e-10, atol=1e-12)
