"""Tests for building dependence DAGs from matrices."""

import numpy as np
import pytest

from repro.graph import (
    dag_from_lower_triangular,
    dag_from_matrix_lower,
    dag_to_matrix_pattern,
)
from repro.sparse import csr_from_dense, lower_triangle


def test_edges_follow_lower_entries():
    dense = np.array(
        [
            [2.0, 0, 0, 0],
            [1.0, 2, 0, 0],
            [0.0, 1, 2, 0],
            [1.0, 0, 1, 2],
        ]
    )
    g = dag_from_lower_triangular(csr_from_dense(dense))
    assert set(g.iter_edges()) == {(0, 1), (1, 2), (0, 3), (2, 3)}


def test_diagonal_contributes_no_edges():
    g = dag_from_lower_triangular(csr_from_dense(np.eye(3)))
    assert g.n_edges == 0


def test_full_matrix_uses_lower_only(mesh):
    low = lower_triangle(mesh)
    assert dag_from_matrix_lower(mesh) == dag_from_lower_triangular(low)


def test_dag_is_id_topological(mesh):
    assert dag_from_matrix_lower(mesh).is_id_topological()


def test_requires_square():
    with pytest.raises(ValueError, match="square"):
        dag_from_lower_triangular(csr_from_dense(np.ones((2, 3))))


def test_vertex_count_equals_rows(mesh):
    assert dag_from_matrix_lower(mesh).n == mesh.n_rows


def test_dag_to_matrix_pattern_roundtrip(mesh):
    g = dag_from_matrix_lower(mesh)
    pattern = dag_to_matrix_pattern(g)
    assert dag_from_matrix_lower(pattern) == g
    assert pattern.has_full_diagonal()


def test_dag_to_matrix_rejects_non_id_topological():
    from repro.graph import DAG

    g = DAG.from_edges(3, [2], [0])  # wait: 2 -> 0 violates src < dst
    with pytest.raises(ValueError, match="id-topological"):
        dag_to_matrix_pattern(g)


def test_same_dag_for_all_kernels(mesh):
    """Section III: all three kernels reuse the lower pattern as the DAG."""
    from repro.kernels import SpIC0, SpILU0, SpTRSV

    low = lower_triangle(mesh)
    g_trsv = SpTRSV().dag(low)
    g_ic0 = SpIC0().dag(mesh)
    g_ilu = SpILU0().dag(mesh)
    assert g_trsv == g_ic0 == g_ilu
