"""Compact versioned binary codec for :class:`~repro.core.schedule.Schedule`.

The resilience journal's JSONL rows are the wrong shape for a hot serving
path: a schedule for a 100k-row factor costs megabytes of decimal digits
and a full JSON parse per read.  This codec is the store's wire format —
a fixed little-endian header, raw vertex arrays (4- or 8-byte ids, chosen
per record by the vertex-count), and a trailing CRC32 over everything
before it, so a record is *self-validating*: any torn write, bit flip, or
truncation fails :func:`decode_schedule` with :class:`CodecError` instead
of yielding a plausible-but-wrong schedule.

Layout (version 1, all integers little-endian)::

    magic      4s   b"HDSC"
    version    u16  1
    flags      u16  bit0 fine_grained, bit1 sync == "p2p"
    n          u64  vertex count
    n_cores    u32
    vwidth     u8   bytes per vertex id (4 when n fits in u32, else 8)
    _pad       3x
    algo_len   u16  | followed by algo utf-8 bytes
    meta_len   u32  | followed by canonical-JSON meta bytes
    n_levels   u32
    per level: n_parts u32
      per partition: core i32, size u32, size * vwidth vertex bytes
    crc32      u32  over every preceding byte

Guarantees the tests pin: ``decode(encode(s))`` reproduces ``s``'s full
structure bit-identically (vertex arrays compare equal as ``INDEX_DTYPE``),
``encode(decode(b)) == b`` (canonical form), and any single-byte mutation
or truncation of a blob raises :class:`CodecError` (CRC32 detects all
single-byte and all burst-under-32-bit errors).

Like :meth:`Schedule.to_dict`, only plainly JSON-serialisable ``meta``
entries survive the round trip — inspector diagnostics holding arrays are
dropped, never mangled.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import List

import numpy as np

from ..core.schedule import Schedule, ScheduleError, WidthPartition, _json_safe
from ..sparse.csr import INDEX_DTYPE

__all__ = ["CODEC_VERSION", "MAGIC", "CodecError", "encode_schedule", "decode_schedule"]

MAGIC = b"HDSC"
CODEC_VERSION = 1

_FIXED = struct.Struct("<4sHHQIB3x")  # magic, version, flags, n, n_cores, vwidth
_ALGO_LEN = struct.Struct("<H")
_META_LEN = struct.Struct("<I")
_U32 = struct.Struct("<I")
_PART_HDR = struct.Struct("<iI")  # core, size

_FLAG_FINE_GRAINED = 1 << 0
_FLAG_P2P = 1 << 1


class CodecError(ValueError):
    """The blob is not a valid schedule record (corrupt, torn, or foreign)."""


def encode_schedule(schedule: Schedule) -> bytes:
    """Serialise ``schedule`` into one self-validating binary record."""
    if schedule.sync not in ("barrier", "p2p"):
        raise CodecError(f"unknown sync model {schedule.sync!r}")
    flags = 0
    if schedule.fine_grained:
        flags |= _FLAG_FINE_GRAINED
    if schedule.sync == "p2p":
        flags |= _FLAG_P2P
    vwidth = 4 if schedule.n <= 0xFFFFFFFF else 8
    vdtype = np.dtype("<u4") if vwidth == 4 else np.dtype("<u8")
    algo = schedule.algorithm.encode("utf-8")
    if len(algo) > 0xFFFF:
        raise CodecError("algorithm name too long to encode")
    meta = {k: v for k, v in schedule.meta.items() if _json_safe(v)}
    meta_bytes = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    parts: List[bytes] = [
        _FIXED.pack(MAGIC, CODEC_VERSION, flags, schedule.n, schedule.n_cores, vwidth),
        _ALGO_LEN.pack(len(algo)),
        algo,
        _META_LEN.pack(len(meta_bytes)),
        meta_bytes,
        _U32.pack(len(schedule.levels)),
    ]
    for level in schedule.levels:
        parts.append(_U32.pack(len(level)))
        for part in level:
            v = part.vertices
            parts.append(_PART_HDR.pack(int(part.core), v.shape[0]))
            parts.append(np.ascontiguousarray(v, dtype=vdtype).tobytes())
    body = b"".join(parts)
    return body + _U32.pack(zlib.crc32(body) & 0xFFFFFFFF)


class _Cursor:
    """Bounds-checked reader over a blob; every overrun is a CodecError."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError(
                f"record truncated: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def unpack(self, s: struct.Struct):
        return s.unpack(self.take(s.size))


def decode_schedule(blob: bytes) -> Schedule:
    """Rebuild the schedule serialised by :func:`encode_schedule`.

    Raises :class:`CodecError` on *any* defect — bad magic, unsupported
    version, CRC mismatch, truncation, trailing garbage, or structurally
    impossible contents (out-of-range vertex ids, empty partitions).  It
    never returns a schedule other than the one that was encoded.
    """
    if len(blob) < _FIXED.size + _U32.size:
        raise CodecError(f"record too short to be a schedule ({len(blob)} bytes)")
    body, (crc_stored,) = blob[:-4], _U32.unpack(blob[-4:])
    crc_actual = zlib.crc32(body) & 0xFFFFFFFF
    if crc_stored != crc_actual:
        raise CodecError(f"CRC mismatch: stored {crc_stored:#010x}, computed {crc_actual:#010x}")
    cur = _Cursor(body)
    magic, version, flags, n, n_cores, vwidth = cur.unpack(_FIXED)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (not a schedule record)")
    if version != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {version} (this build reads {CODEC_VERSION})")
    if vwidth not in (4, 8):
        raise CodecError(f"invalid vertex width {vwidth}")
    vdtype = np.dtype("<u4") if vwidth == 4 else np.dtype("<u8")
    (algo_len,) = cur.unpack(_ALGO_LEN)
    try:
        algorithm = cur.take(algo_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError("algorithm name is not valid utf-8") from exc
    (meta_len,) = cur.unpack(_META_LEN)
    try:
        meta = json.loads(cur.take(meta_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError("meta block is not valid JSON") from exc
    if not isinstance(meta, dict):
        raise CodecError("meta block is not a JSON object")
    (n_levels,) = cur.unpack(_U32)
    levels: List[List[WidthPartition]] = []
    for _ in range(n_levels):
        (n_parts,) = cur.unpack(_U32)
        level: List[WidthPartition] = []
        for _ in range(n_parts):
            core, size = cur.unpack(_PART_HDR)
            if size == 0:
                raise CodecError("empty width-partition in record")
            raw = cur.take(size * vwidth)
            vertices = np.frombuffer(raw, dtype=vdtype).astype(INDEX_DTYPE)
            if vertices.size and (int(vertices.max()) >= n):
                raise CodecError("vertex id out of range in record")
            level.append(WidthPartition(core=core, vertices=vertices))
        levels.append(level)
    if cur.pos != len(body):
        raise CodecError(f"{len(body) - cur.pos} trailing bytes after the last partition")
    try:
        return Schedule(
            n=int(n),
            levels=levels,
            sync="p2p" if flags & _FLAG_P2P else "barrier",
            algorithm=algorithm,
            n_cores=int(n_cores),
            fine_grained=bool(flags & _FLAG_FINE_GRAINED),
            meta=meta,
        )
    except ScheduleError as exc:
        raise CodecError(f"decoded record violates schedule invariants: {exc}") from exc
