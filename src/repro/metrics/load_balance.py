"""Load-balance metrics: measured PG, PGP accuracy, imbalance ratio.

Three related quantities from the paper:

* **PGP** (Equation 1, inspector-side): :mod:`repro.core.pgp`.
* **PG** (measured, Section IV-D): the same formula over per-core *busy
  cycles* from the execution simulator — the paper uses PAPI/VTune cycle
  counters here.
* **load imbalance ratio** (Figure 7): the fraction of a schedule's
  (coarsened) wavefronts whose number of independent workloads is smaller
  than the core count ``p`` — "a wavefront is imbalanced if the number of
  independent workloads in the wavefront is less than the number of
  cores".
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..runtime.simulator import SimulationResult

__all__ = ["measured_pg", "imbalance_ratio", "level_widths"]


def measured_pg(result: SimulationResult) -> float:
    """Measured potential gain: ``1 - mean(busy)/max(busy)`` over cores."""
    return result.potential_gain


def level_widths(schedule: Schedule) -> np.ndarray:
    """Number of independent workloads (width-partitions) per level."""
    return np.array([len(level) for level in schedule.levels], dtype=np.int64)


def imbalance_ratio(schedule: Schedule, p: int | None = None) -> float:
    """Fraction of levels with fewer than ``p`` independent workloads.

    ``p`` defaults to the schedule's own core count.  Empty schedules have
    ratio 0 by convention.
    """
    if p is None:
        p = schedule.n_cores
    widths = level_widths(schedule)
    if widths.size == 0:
        return 0.0
    return float(np.count_nonzero(widths < p)) / widths.size
