"""``hdagg-bench service``: drive the serving stack from the command line.

Subcommands::

    service replay   run the Zipf/Poisson traffic replay through the real
                     front door; optionally append the p50/p99/hit-rate
                     observation to a perf-lab history and merge it into
                     the trajectory snapshot
    service audit    sweep a persistent schedule store, validating every
                     record (bad ones are quarantined, stale manifests
                     repaired) — run after a crash or before blessing a
                     store for serving
    service stats    print the service summary (counters, tier/outcome
                     latency quantiles, store health) from a telemetry
                     directory's metric snapshots
    service dash     render the self-contained HTML dashboard from a
                     telemetry directory

Examples::

    hdagg-bench service replay --requests 500 --structures 6 --store /tmp/sched-store
    hdagg-bench service replay --telemetry-dir /tmp/svc-telemetry --requests 400
    hdagg-bench service stats /tmp/svc-telemetry
    hdagg-bench service dash /tmp/svc-telemetry -o dashboard.html
    hdagg-bench service audit /tmp/sched-store --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["service_main", "build_service_parser"]


def build_service_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="hdagg-bench service", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("replay", help="Zipf/Poisson traffic replay benchmark")
    rep.add_argument("--requests", type=int, default=300)
    rep.add_argument("--structures", type=int, default=4)
    rep.add_argument("--zipf", type=float, default=1.2, help="Zipf exponent s")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--kernel", default="sptrsv")
    rep.add_argument("--algorithm", default="hdagg")
    rep.add_argument("--p", type=int, default=8, help="cores the schedules target")
    rep.add_argument("--concurrency", type=int, default=8, help="front-door workers")
    rep.add_argument("--max-pending", type=int, default=64, help="admission bound")
    rep.add_argument("--max-inflight", type=int, default=8,
                     help="concurrent fresh inspections before shedding")
    rep.add_argument("--deadline", type=float, default=None,
                     help="per-request deadline in seconds (degrades, then sheds)")
    rep.add_argument("--rate", type=float, default=0.0,
                     help="Poisson arrival rate in req/s (0 = no pacing)")
    rep.add_argument("--store", default=None, metavar="DIR",
                     help="persistent schedule store directory (default: L1 only)")
    rep.add_argument("--history", default=None,
                     help="perf-lab JSONL history to append the observation to")
    rep.add_argument("--trajectory", default=None,
                     help="trajectory snapshot to merge the series into "
                          "(requires --history)")
    rep.add_argument("--json", dest="json_out", default=None,
                     help="write the full report as JSON")
    rep.add_argument("--telemetry-dir", default=None, metavar="DIR",
                     help="run with request telemetry on and write the span "
                          "trace, metric snapshots, Prometheus text, and "
                          "report into DIR")

    st = sub.add_parser("stats", help="print the service summary from telemetry")
    st.add_argument("telemetry_dir", help="directory holding metrics.jsonl")
    st.add_argument("--json", dest="json_out", default=None,
                    help="write the structured summary as JSON")

    dash = sub.add_parser("dash", help="render the HTML service dashboard")
    dash.add_argument("telemetry_dir", help="directory holding metrics.jsonl")
    dash.add_argument("-o", "--out", default=None,
                      help="output path (default: <dir>/dashboard.html)")
    dash.add_argument("--title", default="Service dashboard")

    aud = sub.add_parser("audit", help="validate every record of a schedule store")
    aud.add_argument("store", help="store directory")
    aud.add_argument("--strict", action="store_true",
                     help="exit 1 when any record was quarantined")
    aud.add_argument("--json", dest="json_out", default=None,
                     help="write the audit report as JSON")
    return p


def _cmd_replay(args) -> int:
    from .replay import (
        ReplayConfig,
        record_replay,
        run_replay,
        run_replay_with_telemetry,
    )

    config = ReplayConfig(
        n_requests=args.requests,
        n_structures=args.structures,
        zipf_s=args.zipf,
        seed=args.seed,
        kernel=args.kernel,
        algorithm=args.algorithm,
        p=args.p,
        concurrency=args.concurrency,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        deadline=args.deadline,
        arrival_rate=args.rate,
        store_root=args.store,
    )
    if args.telemetry_dir:
        report, _tracer, _registry = run_replay_with_telemetry(
            config, args.telemetry_dir
        )
        print(f"# telemetry written to {args.telemetry_dir} "
              "(spans.jsonl trace.json metrics.jsonl metrics.prom replay.json)",
              file=sys.stderr)
    else:
        report = run_replay(config)
    print(f"# replay: {report.n_ok}/{config.n_requests} served, "
          f"{report.n_rejected} shed, {report.n_degraded} degraded", file=sys.stderr)
    print(f"p50_ms   {report.p50 * 1e3:10.3f}")
    print(f"p99_ms   {report.p99 * 1e3:10.3f}")
    print(f"hit_rate {report.hit_rate:10.3f}")
    for source, count in sorted(report.sources.items()):
        print(f"  {source:10s} {count}")
    if args.history:
        obs = record_replay(report, args.history, args.trajectory)
        print(f"# observation appended to {args.history} "
              f"({obs.key.label()})", file=sys.stderr)
        if args.trajectory:
            print(f"# trajectory merged: {args.trajectory}", file=sys.stderr)
    elif args.trajectory:
        print("# --trajectory requires --history", file=sys.stderr)
        return 2
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"# wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    from pathlib import Path

    from ..observability.dashboard import format_stats, service_summary
    from ..observability.telemetry import load_snapshots

    metrics_path = Path(args.telemetry_dir) / "metrics.jsonl"
    if not metrics_path.exists():
        print(f"# {metrics_path}: no metric snapshots", file=sys.stderr)
        return 2
    snapshots = load_snapshots(metrics_path)
    if not snapshots:
        print(f"# {metrics_path}: empty snapshot file", file=sys.stderr)
        return 2
    summary = service_summary(snapshots[-1].get("metrics", {}))
    sys.stdout.write(format_stats(summary))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"# wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_dash(args) -> int:
    from ..observability.dashboard import render_dashboard

    try:
        out = render_dashboard(args.telemetry_dir, args.out, title=args.title)
    except FileNotFoundError as exc:
        print(f"# {exc}", file=sys.stderr)
        return 2
    print(f"# wrote {out}", file=sys.stderr)
    return 0


def _cmd_audit(args) -> int:
    from ..store.store import ScheduleStore, StoreError

    try:
        store = ScheduleStore(args.store)
    except StoreError as exc:
        print(f"# {exc}", file=sys.stderr)
        return 2
    report = store.audit()
    print(f"scanned     {report.scanned}")
    print(f"ok          {report.ok}")
    print(f"quarantined {len(report.quarantined)}")
    print(f"manifests_repaired {report.repaired_manifests}")
    for q in report.quarantined:
        print(f"  {q.key[:16]}… shard {q.shard}: {q.reason}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"# wrote {args.json_out}", file=sys.stderr)
    return 1 if (args.strict and report.quarantined) else 0


def service_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``hdagg-bench service``."""
    args = build_service_parser().parse_args(argv)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "dash":
        return _cmd_dash(args)
    return _cmd_audit(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(service_main())
