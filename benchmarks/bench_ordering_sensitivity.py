"""Ordering sensitivity: Table I's headline under different pre-orderings.

The paper fixes METIS reordering for all algorithms (Section V); this
extension sweeps the pre-ordering and shows (a) ND is the right default —
it maximises absolute speedups — and (b) HDagg's *relative* advantage is
robust to the ordering choice, i.e. the headline is not an artefact of the
METIS substitute.
"""

import numpy as np

from _common import write_report
from repro.suite import Harness, format_table, suite_by_name, table1_speedups

MATRICES = ["mesh2d-m", "rand-mid", "kite-small"]
ORDERINGS = ("nd", "rcm", "natural")


def test_ordering_sensitivity(benchmark, output_dir):
    specs = [suite_by_name()[m] for m in MATRICES]

    def run(ordering):
        harness = Harness(machines=("intel20",), kernels=("spilu0",),
                          algorithms=("hdagg", "spmp", "wavefront", "lbc"),
                          ordering=ordering)
        return harness.run_suite(specs)

    per_ordering = {}
    rows = []
    for ordering in ORDERINGS:
        records = run(ordering)
        _, _, data = table1_speedups(records)
        ratios = {
            algo: data[f"{algo}|spilu0|intel20"]["mean"]
            for algo in ("spmp", "wavefront", "lbc")
        }
        hdagg_abs = float(np.mean([r.speedup for r in records if r.algorithm == "hdagg"]))
        per_ordering[ordering] = (hdagg_abs, ratios)
        rows.append([ordering, hdagg_abs, ratios["spmp"], ratios["wavefront"], ratios["lbc"]])

    write_report(
        output_dir,
        "ordering_sensitivity",
        format_table(
            ["ordering", "hdagg abs speedup", "vs spmp", "vs wavefront", "vs lbc"],
            rows,
            title="Ordering sensitivity (SpILU0, intel20, 3 matrices)",
        ),
    )

    # ND maximises absolute performance (why the paper pre-orders)
    assert per_ordering["nd"][0] >= per_ordering["natural"][0]
    # the relative story survives every ordering: HDagg >= LBC everywhere
    for ordering in ORDERINGS:
        assert per_ordering[ordering][1]["lbc"] > 1.0, ordering

    benchmark.pedantic(run, args=("nd",), rounds=1, iterations=1)
