"""DAG coarsening: collapse groups of vertices into super-vertices.

Step 1 of HDagg partitions the reduced DAG into subtrees; the coarsened DAG
``G''`` (Algorithm 1, Line 20) has one vertex per group and an edge between
two groups whenever any cross-group edge existed.  The grouping is
represented both ways: a per-vertex label array and the list of member arrays
per group.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..sparse.csr import INDEX_DTYPE
from .dag import DAG

__all__ = ["Grouping", "grouping_from_labels", "grouping_from_groups", "coarsen_dag", "identity_grouping"]


class Grouping:
    """A partition of DAG vertices into disjoint groups.

    Attributes
    ----------
    labels:
        ``labels[v]`` is the group id of vertex ``v`` (0-based, dense).
    groups:
        ``groups[gid]`` is the sorted array of member vertex ids.  Built
        lazily from ``labels`` on first access: the coarsening/cost paths
        only ever need labels, and skipping the per-group array
        construction keeps the inspector hot path allocation-free.
    """

    __slots__ = ("labels", "_groups", "_n_groups")

    def __init__(
        self,
        labels: np.ndarray,
        groups: Optional[List[np.ndarray]] = None,
        n_groups: Optional[int] = None,
    ) -> None:
        self.labels = labels
        self._groups = list(groups) if groups is not None else None
        if n_groups is not None:
            self._n_groups = int(n_groups)
        elif groups is not None:
            self._n_groups = len(groups)
        else:
            self._n_groups = int(labels.max()) + 1 if labels.shape[0] else 0

    @property
    def n_groups(self) -> int:
        return self._n_groups

    @property
    def groups(self) -> List[np.ndarray]:
        if self._groups is None:
            order = np.argsort(self.labels, kind="stable").astype(INDEX_DTYPE, copy=False)
            ptr = np.zeros(self._n_groups + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.labels, minlength=self._n_groups), out=ptr[1:])
            pl = ptr.tolist()
            self._groups = [
                np.ascontiguousarray(order[pl[i] : pl[i + 1]])
                for i in range(self._n_groups)
            ]
        return self._groups

    @property
    def n_vertices(self) -> int:
        return self.labels.shape[0]

    def group_sizes(self) -> np.ndarray:
        """Member count per group."""
        return np.array([g.shape[0] for g in self.groups], dtype=INDEX_DTYPE)

    def group_costs(self, vertex_cost: np.ndarray) -> np.ndarray:
        """Sum of ``vertex_cost`` over each group's members."""
        out = np.zeros(self.n_groups, dtype=np.float64)
        np.add.at(out, self.labels, vertex_cost)
        return out

    def validate(self) -> None:
        """Check partition invariants; raises ``AssertionError`` on violation."""
        seen = np.concatenate(self.groups) if self.groups else np.empty(0, dtype=INDEX_DTYPE)
        assert seen.shape[0] == self.n_vertices, "groups do not cover all vertices"
        assert np.array_equal(np.sort(seen), np.arange(self.n_vertices)), "groups overlap or skip"
        for gid, members in enumerate(self.groups):
            assert np.all(self.labels[members] == gid), "labels inconsistent with groups"


def grouping_from_labels(labels: np.ndarray) -> Grouping:
    """Build a :class:`Grouping` from a per-vertex label array.

    Labels are densified (renumbered 0..k-1 by order of smallest member id).
    """
    labels = np.asarray(labels, dtype=INDEX_DTYPE)
    _, dense = np.unique(labels, return_inverse=True)
    dense = dense.astype(INDEX_DTYPE)
    order = np.argsort(dense, kind="stable")
    sorted_labels = dense[order]
    boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
    members = np.split(np.arange(labels.shape[0], dtype=INDEX_DTYPE)[order], boundaries)
    groups = [np.sort(m) for m in members]
    return Grouping(labels=dense, groups=groups)


def grouping_from_groups(n: int, groups: Sequence[Sequence[int]]) -> Grouping:
    """Build a :class:`Grouping` from explicit member lists covering ``0..n-1``."""
    labels = np.full(n, -1, dtype=INDEX_DTYPE)
    norm: List[np.ndarray] = []
    for gid, members in enumerate(groups):
        arr = np.sort(np.asarray(list(members), dtype=INDEX_DTYPE))
        if arr.size and (labels[arr] != -1).any():
            raise ValueError("groups overlap")
        labels[arr] = gid
        norm.append(arr)
    if (labels == -1).any():
        raise ValueError("groups do not cover all vertices")
    return Grouping(labels=labels, groups=norm)


def identity_grouping(n: int) -> Grouping:
    """Every vertex is its own group (used when step 1 is disabled)."""
    ids = np.arange(n, dtype=INDEX_DTYPE)
    return Grouping(labels=ids, n_groups=n)


def coarsen_dag(g: DAG, grouping: Grouping) -> DAG:
    """The coarsened DAG ``G''``: one vertex per group, deduplicated edges.

    Self-loops created by intra-group edges are dropped.  The result is
    acyclic whenever every group is *convex* in ``g`` (true for the subtree
    groups of HDagg step 1, whose members form contiguous dependence chains
    into a single sink).
    """
    src, dst = g.edge_list()
    gs, gd = grouping.labels[src], grouping.labels[dst]
    keep = gs != gd
    return DAG.from_edges(grouping.n_groups, gs[keep], gd[keep], dedup=True)
