"""Per-core execution timelines: busy / wait / idle segments.

The paper's Figures 7-9 reason about *where cores spend time* —
synchronisation stalls versus useful work versus idling at level
boundaries.  This module gives both executors the same per-core segment
representation:

* the **threaded executor** (:func:`repro.runtime.threaded.run_threaded`)
  records wall-clock segments into a :class:`TimelineRecorder` — ``busy``
  per vertex, ``barrier_wait`` at each level barrier, ``p2p_wait`` with
  the (vertex, dependence) pair the spin was blocked on;
* the **simulator** (:func:`repro.runtime.simulator.simulate` with
  ``collect_timeline=True``) emits the same structure in *model cycles*,
  which is deterministic and therefore what the trace-vs-model
  differential tests compare against :mod:`repro.metrics.load_balance`.

``finalize`` closes a recorder into a :class:`CoreTimeline`: idle segments
are derived as the per-core complement over the wall span, so by
construction ``busy + waits + idle == wall`` per core — and
:meth:`CoreTimeline.check_invariants` asserts exactly that, plus
non-overlap, which the property suite pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["Segment", "TimelineRecorder", "CoreTimeline", "SEGMENT_KINDS"]

#: Segment kinds in display order.  ``idle`` is always derived, never recorded.
SEGMENT_KINDS = ("busy", "barrier_wait", "p2p_wait", "idle")


@dataclass(frozen=True)
class Segment:
    """One interval of one core's time.

    ``vertex``/``dependence`` attribute waits and work to schedule
    entities: a ``busy`` segment names the vertex executed, a ``p2p_wait``
    segment names the vertex that was blocked *and* the dependence it
    waited for (point-to-point wait attribution); -1 where not applicable.
    ``level`` is the coarsened wavefront, -1 for p2p schedules.
    """

    core: int
    kind: str
    t0: float
    t1: float
    vertex: int = -1
    dependence: int = -1
    level: int = -1

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        out = {"core": self.core, "kind": self.kind, "t0": self.t0, "t1": self.t1}
        if self.vertex >= 0:
            out["vertex"] = self.vertex
        if self.dependence >= 0:
            out["dependence"] = self.dependence
        if self.level >= 0:
            out["level"] = self.level
        return out


class TimelineRecorder:
    """Collects per-core segments; worker threads append without locking.

    Cores must be registered up front (:meth:`open`) or lazily on first
    record; each core's list is only ever touched by the worker that owns
    it, so the hot path is a plain ``list.append``.  ``clock`` is
    injectable for deterministic tests (the threaded executor reads it for
    every timestamp).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._segments: Dict[int, List[Segment]] = {}
        self.wall_t0: Optional[float] = None
        self.wall_t1: Optional[float] = None

    def open(self, n_cores: int) -> None:
        """Pre-register cores ``0..n_cores-1`` (so empty cores still report)."""
        for c in range(n_cores):
            self._segments.setdefault(c, [])

    def record(
        self,
        core: int,
        kind: str,
        t0: float,
        t1: float,
        *,
        vertex: int = -1,
        dependence: int = -1,
        level: int = -1,
    ) -> None:
        """Append one segment to ``core``'s own list."""
        if kind not in SEGMENT_KINDS or kind == "idle":
            raise ValueError(f"cannot record segment kind {kind!r}")
        bucket = self._segments.get(core)
        if bucket is None:
            bucket = self._segments.setdefault(core, [])
        bucket.append(
            Segment(core=core, kind=kind, t0=t0, t1=t1,
                    vertex=vertex, dependence=dependence, level=level)
        )

    def finalize(self) -> "CoreTimeline":
        """Close the recorder into a :class:`CoreTimeline` with derived idle.

        The wall span defaults to the envelope of all recorded segments
        when the executor did not stamp ``wall_t0``/``wall_t1``.
        """
        all_segments = [s for segs in self._segments.values() for s in segs]
        if self.wall_t0 is not None and self.wall_t1 is not None:
            t0, t1 = self.wall_t0, self.wall_t1
        elif all_segments:
            t0 = min(s.t0 for s in all_segments)
            t1 = max(s.t1 for s in all_segments)
        else:
            t0 = t1 = 0.0
        cores: Dict[int, List[Segment]] = {}
        for core in sorted(self._segments):
            recorded = sorted(self._segments[core], key=lambda s: (s.t0, s.t1))
            merged: List[Segment] = []
            cursor = t0
            for seg in recorded:
                if seg.t0 > cursor:
                    merged.append(Segment(core=core, kind="idle", t0=cursor, t1=seg.t0))
                merged.append(seg)
                cursor = max(cursor, seg.t1)
            if t1 > cursor:
                merged.append(Segment(core=core, kind="idle", t0=cursor, t1=t1))
            cores[core] = merged
        return CoreTimeline(cores=cores, wall_t0=t0, wall_t1=t1)


@dataclass
class CoreTimeline:
    """A finalized set of per-core timelines over one wall span.

    ``cores[c]`` is core ``c``'s complete, gapless, non-overlapping
    segment list covering ``[wall_t0, wall_t1]``.
    """

    cores: Dict[int, List[Segment]]
    wall_t0: float
    wall_t1: float

    @property
    def wall(self) -> float:
        return self.wall_t1 - self.wall_t0

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def seconds_by_kind(self, core: int) -> Dict[str, float]:
        """Total duration per segment kind for one core."""
        out = {k: 0.0 for k in SEGMENT_KINDS}
        for seg in self.cores[core]:
            out[seg.kind] += seg.duration
        return out

    def busy_per_core(self) -> np.ndarray:
        """Busy time per core, indexed by sorted core id."""
        return np.array(
            [self.seconds_by_kind(c)["busy"] for c in sorted(self.cores)],
            dtype=np.float64,
        )

    def utilization(self) -> Dict[int, float]:
        """Busy fraction of the wall span per core (0 when the span is 0)."""
        wall = self.wall
        if wall <= 0:
            return {c: 0.0 for c in self.cores}
        return {c: self.seconds_by_kind(c)["busy"] / wall for c in sorted(self.cores)}

    def measured_pg(self) -> float:
        """Potential gain from traced busy time: ``1 - mean(busy)/max(busy)``.

        The trace-side counterpart of
        :meth:`repro.runtime.simulator.SimulationResult.potential_gain` and
        the inspector-side PGP prediction — the trace-vs-model differential
        compares the three.
        """
        busy = self.busy_per_core()
        mx = float(busy.max()) if busy.size else 0.0
        if mx <= 0.0:
            return 0.0
        return 1.0 - float(busy.mean()) / mx

    def wait_attribution(self) -> List[Segment]:
        """All ``p2p_wait`` segments (each names its blocking dependence)."""
        return [s for segs in self.cores.values() for s in segs if s.kind == "p2p_wait"]

    def segments(self) -> List[Segment]:
        """All segments of all cores (per-core order preserved)."""
        return [s for c in sorted(self.cores) for s in self.cores[c]]

    # ------------------------------------------------------------------
    def check_invariants(self, *, tol: float = 1e-9) -> None:
        """Raise ``AssertionError`` unless the timeline is well-formed.

        Per core: segments are sorted and non-overlapping, lie inside the
        wall span, and their durations sum to the wall span (gapless cover).
        """
        wall = self.wall
        for core, segs in self.cores.items():
            covered = 0.0
            prev_end = self.wall_t0
            for seg in segs:
                assert seg.t1 >= seg.t0, f"core {core}: negative segment {seg}"
                assert seg.t0 >= prev_end - tol, f"core {core}: overlapping segments at {seg}"
                assert seg.t0 >= self.wall_t0 - tol and seg.t1 <= self.wall_t1 + tol, (
                    f"core {core}: segment outside wall span {seg}"
                )
                covered += seg.duration
                prev_end = seg.t1
            assert abs(covered - wall) <= tol * max(1.0, abs(wall)) + tol, (
                f"core {core}: busy+wait+idle covers {covered}, wall span is {wall}"
            )

    def as_dict(self) -> dict:
        return {
            "wall_t0": self.wall_t0,
            "wall_t1": self.wall_t1,
            "cores": {str(c): [s.as_dict() for s in segs] for c, segs in self.cores.items()},
        }
