"""Figure 4: PGP (static estimate) vs measured PG, SpTRSV.

The paper fits a line through 34 (PGP, PG) points and reports R^2 = 0.83 —
the evidence that the inspector's cheap proxy tracks the real (PAPI/VTune)
potential gain.  Here PG comes from the simulator's per-core busy cycles;
the scatter spans all schedulers so the balance spectrum is covered.
"""

from _common import write_report
from repro.suite import fig4_pgp_vs_pg, format_kv, format_table


def test_fig4(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        fig4_pgp_vs_pg, records_intel, kernel="sptrsv", machine="intel20"
    )
    text = "\n\n".join(
        [
            format_table(headers, rows, title="Figure 4: PGP vs measured PG (SpTRSV, intel20)"),
            format_kv(
                {"R^2": data["r_squared"], "slope": data["slope"], "paper R^2": 0.83},
                title="linear fit",
            ),
        ]
    )
    write_report(output_dir, "fig4_intel20", text)

    assert len(rows) >= 10
    # PGP must be a good predictor of PG: strong positive correlation.
    assert data["r_squared"] > 0.5, f"R^2 too low: {data['r_squared']:.2f}"
    assert data["slope"] > 0
