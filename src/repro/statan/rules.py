"""The project's lint rules (``L001``–``L009``).

Each rule machine-checks one discipline the repo's docs state in prose.
The rules are deliberately conservative: they flag the idioms the
codebase actually uses and rely on explicit ``statan: ignore[RULE]``
comment markers for the rare justified exception, which keeps every
exception auditable in the diff.

======  ==============================================================
L001    ``fault_point`` call sites must use a registered site name
L002    every backend registry stage must expose reference and numpy
L003    ambient observability state is used only behind ``.enabled``
L004    no float reductions over unordered containers in ``repro.core``
L005    no wall-clock or unseeded RNG in inspector code (core/graph)
L006    ``RunRecord``'s public schema is frozen; new fields need defaults
L007    pass bodies never mutate artifacts read from the context
L008    suppression markers must name rule ids (no blanket ignores)
L009    registry metric names come from the closed telemetry catalog
======  ==============================================================
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from .diagnostics import Diagnostic
from .engine import AstRule, ModuleUnit, ProjectRule, _SUPPRESS_ANY_RE, suppressed_rules

__all__ = ["ALL_RULES", "RUNRECORD_REQUIRED_FIELDS"]

#: RunRecord's frozen public schema: the positional (default-less) fields.
#: Adding a field here is an API break for every stored record; new fields
#: must be *dormant* (carry a default) so old blobs keep loading — which is
#: exactly what rule L006 enforces.
RUNRECORD_REQUIRED_FIELDS: Tuple[str, ...] = (
    "matrix", "family", "kernel", "algorithm", "machine",
    "n", "nnz", "n_wavefronts", "average_parallelism", "nnz_per_wavefront",
    "speedup", "makespan_cycles", "serial_cycles",
    "avg_memory_access_latency", "hit_rate", "potential_gain", "pgp",
    "equivalent_syncs", "n_barriers", "n_p2p_syncs", "imbalance_ratio",
    "inspector_cycles", "nre", "schedule_levels", "schedule_partitions",
    "fine_grained", "inspector_seconds",
)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class FaultSiteRegistered(AstRule):
    """L001: ``fault_point(site, ...)`` sites must exist in FAULT_SITES."""

    id = "L001"
    description = "fault_point call sites must use a registered site name"
    scope = ("src/repro",)
    exclude = ("src/repro/resilience/faults.py",)
    hint = "register the site in repro.resilience.faults.FAULT_SITES"

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        from ..resilience.faults import FAULT_SITES

        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain[-1] != "fault_point":
                continue
            if not node.args:
                yield unit.diagnostic(self, node, "fault_point called without a site name")
                continue
            site = node.args[0]
            if not isinstance(site, ast.Constant) or not isinstance(site.value, str):
                yield unit.diagnostic(
                    self,
                    node,
                    "fault_point site must be a string literal "
                    "(dynamic sites defeat the registry and the chaos sweep)",
                )
            elif site.value not in FAULT_SITES:
                yield unit.diagnostic(
                    self,
                    node,
                    f"fault_point site {site.value!r} is not registered in FAULT_SITES",
                )


class BackendOracleCoverage(ProjectRule):
    """L002: every registry stage carries reference and numpy loaders."""

    id = "L002"
    description = "backend stages must expose reference and numpy tiers"

    def check_project(self, root: Path) -> Iterator[Diagnostic]:
        from ..core.backends import STAGES, registered_tiers

        for stage in STAGES:
            tiers = registered_tiers(stage)
            for required in ("reference", "numpy"):
                if required not in tiers:
                    yield Diagnostic(
                        rule=self.id,
                        message=f"backend stage {stage!r} has no {required!r} tier "
                        f"(registered: {list(tiers)})",
                        path="src/repro/core/backends/__init__.py",
                        hint="every stage keeps a loop oracle next to its fast path; "
                        f"register_backend({stage!r}, {required!r}, loader)",
                    )


class ObservabilityGuard(AstRule):
    """L003: STATE.tracer / STATE.registry only behind an ``.enabled`` check.

    Accepts the repo's three guard shapes: an ancestor ``if``/ternary
    whose test mentions ``<state>.enabled``, or an earlier early-exit
    statement in the same function (``if not <state>.enabled: return``).
    """

    id = "L003"
    description = "ambient observability state must be guarded by .enabled"
    scope = ("src/repro",)
    exclude = ("src/repro/observability",)
    hint = (
        "wrap the use in `if STATE.enabled:` (or early-return when disabled) "
        "so disabled-mode overhead stays at one attribute read"
    )

    _GUARDED_ATTRS = ("tracer", "registry")

    def _state_aliases(self, unit: ModuleUnit) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("observability.state") or node.module.endswith("observability")
            ):
                for a in node.names:
                    if a.name == "STATE":
                        aliases.add(a.asname or a.name)
        return aliases

    def _test_mentions_enabled(self, test: ast.AST, aliases: Set[str]) -> bool:
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "enabled"
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
            ):
                return True
        return False

    def _guarded(self, unit: ModuleUnit, use: ast.AST, aliases: Set[str]) -> bool:
        for anc in unit.ancestors(use):
            if isinstance(anc, (ast.If, ast.IfExp)) and self._test_mentions_enabled(
                anc.test, aliases
            ):
                return True
        fn = unit.enclosing_function(use)
        if fn is None:
            return False
        use_line = getattr(use, "lineno", 0)
        for stmt in fn.body:
            if getattr(stmt, "lineno", 0) >= use_line:
                break
            if (
                isinstance(stmt, ast.If)
                and self._test_mentions_enabled(stmt.test, aliases)
                and stmt.body
                and isinstance(stmt.body[-1], (ast.Return, ast.Raise, ast.Continue))
            ):
                return True
        return False

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        aliases = self._state_aliases(unit)
        if not aliases:
            return
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._GUARDED_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
            ):
                if not self._guarded(unit, node, aliases):
                    yield unit.diagnostic(
                        self,
                        node,
                        f"{node.value.id}.{node.attr} used without an .enabled guard",
                    )


class NoUnorderedFloatReduction(AstRule):
    """L004: ``sum``/``fsum`` over sets is order-nondeterministic for floats."""

    id = "L004"
    description = "no float reductions over unordered containers in repro.core"
    scope = ("src/repro/core",)
    hint = (
        "iterate a sorted/ordered sequence instead; float addition is not "
        "associative, so set order changes the schedule bit pattern"
    )

    _REDUCERS = {"sum", "fsum"}
    _SET_CALLS = {"set", "frozenset"}

    def _is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return chain is not None and chain[-1] in self._SET_CALLS
        return False

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain[-1] not in self._REDUCERS:
                continue
            arg = node.args[0]
            bad = self._is_unordered(arg)
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                bad = any(self._is_unordered(gen.iter) for gen in arg.generators)
            if bad:
                yield unit.diagnostic(
                    self,
                    node,
                    f"{chain[-1]}() over an unordered container in bit-identical core code",
                )


class NoWallClockOrUnseededRng(AstRule):
    """L005: inspector code uses injected clocks/seeds only.

    ``time.time()`` (non-monotonic wall clock) and global/unseeded RNG
    state make inspection irreproducible; ``time.perf_counter`` for
    telemetry and explicitly seeded ``default_rng(seed)`` are fine.
    """

    id = "L005"
    description = "no wall clock or unseeded RNG in inspector code"
    scope = ("src/repro/core", "src/repro/graph")
    hint = (
        "use time.perf_counter for telemetry and np.random.default_rng(seed) "
        "with an explicit seed for randomness"
    )

    _RNG_FACTORY_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if chain == ["time", "time"]:
                yield unit.diagnostic(self, node, "time.time() wall clock in inspector code")
            elif len(chain) >= 2 and chain[0] == "random":
                yield unit.diagnostic(
                    self, node, f"global stdlib RNG call random.{chain[-1]}()"
                )
            elif "random" in chain[:-1] and chain[0] in {"np", "numpy"}:
                if chain[-1] not in self._RNG_FACTORY_OK:
                    yield unit.diagnostic(
                        self,
                        node,
                        f"global numpy RNG call {'.'.join(chain)}()",
                    )
                elif chain[-1] == "default_rng" and not node.args:
                    yield unit.diagnostic(
                        self, node, "default_rng() without an explicit seed"
                    )


class RunRecordDormantDefaults(ProjectRule):
    """L006: RunRecord's required-field schema is pinned; growth is dormant."""

    id = "L006"
    description = "RunRecord public fields keep dormant defaults"

    def check_project(self, root: Path) -> Iterator[Diagnostic]:
        import dataclasses

        from ..suite.harness import RunRecord

        required = tuple(
            f.name
            for f in dataclasses.fields(RunRecord)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        )
        pinned = RUNRECORD_REQUIRED_FIELDS
        path = "src/repro/suite/harness.py"
        for name in required:
            if name not in pinned:
                yield Diagnostic(
                    rule=self.id,
                    message=f"new RunRecord field {name!r} has no default",
                    path=path,
                    hint="give new fields a dormant default so previously stored "
                    "records (and downstream readers) keep loading",
                )
        for name in pinned:
            if name not in required:
                yield Diagnostic(
                    rule=self.id,
                    message=f"pinned RunRecord field {name!r} was removed or defaulted",
                    path=path,
                    hint="the public record schema is frozen; update "
                    "RUNRECORD_REQUIRED_FIELDS only with a deliberate schema bump",
                )


class NoPassInputMutation(AstRule):
    """L007: pass bodies return new products; context reads are immutable.

    Tracks names bound from ``ctx[...]``/``ctx.get(...)`` inside each
    function and flags attribute/subscript stores through them (or
    directly through a ``ctx[...]`` read).
    """

    id = "L007"
    description = "pass implementations must not mutate input artifacts"
    scope = ("src/repro/passes",)
    hint = (
        "build and return a new product instead; executor and repair "
        "planning both assume artifacts are immutable once published"
    )

    def _is_ctx_read(self, node: ast.AST, ctx_names: Set[str]) -> bool:
        if isinstance(node, ast.Subscript):
            return isinstance(node.value, ast.Name) and node.value.id in ctx_names
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return (
                chain is not None
                and len(chain) == 2
                and chain[0] in ctx_names
                and chain[1] == "get"
            )
        return False

    def _root_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        for fn in ast.walk(unit.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
            ctx_names = {p for p in params if p == "ctx"}
            if not ctx_names:
                continue
            artifact_aliases: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    value_reads = self._is_ctx_read(node.value, ctx_names)
                    if isinstance(node.value, ast.Tuple):
                        value_reads = any(
                            self._is_ctx_read(el, ctx_names) for el in node.value.elts
                        )
                    if value_reads:
                        for tgt in node.targets:
                            names = tgt.elts if isinstance(tgt, ast.Tuple) else [tgt]
                            for n in names:
                                if isinstance(n, ast.Name):
                                    artifact_aliases.add(n.id)
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for tgt in targets:
                        if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                            continue
                        if self._is_ctx_read(tgt.value, ctx_names) or (
                            self._root_name(tgt) in artifact_aliases
                        ):
                            yield unit.diagnostic(
                                self,
                                node,
                                "store into an artifact read from the pass context",
                            )


class SuppressionHygiene(AstRule):
    """L008: every ``statan: ignore`` names at least one valid rule id."""

    id = "L008"
    description = "suppression markers must name rule ids"
    scope = ()
    hint = "name the rule inside brackets; blanket ignores hide future findings"

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        known = {r.id for r in ALL_RULES} | {"SP%03d" % i for i in range(1, 9)}
        for lineno, line in enumerate(unit.lines, start=1):
            if not _SUPPRESS_ANY_RE.search(line):
                continue
            rules = suppressed_rules(line)
            if rules is None or not rules:
                yield Diagnostic(
                    rule=self.id,
                    message="blanket `statan: ignore` without rule ids",
                    severity=self.severity,
                    path=unit.path,
                    line=lineno,
                    hint=self.hint,
                )
            else:
                for rid in sorted(rules - known):
                    yield Diagnostic(
                        rule=self.id,
                        message=f"suppression names unknown rule {rid!r}",
                        severity=self.severity,
                        path=unit.path,
                        line=lineno,
                        hint=self.hint,
                    )


class MetricNameInCatalog(AstRule):
    """L009: registry metric names come from the closed telemetry catalog.

    ``<registry>.counter/gauge/histogram(name, ...)`` call sites are the
    write side of the metric contract DESIGN.md §15 pins: every name a
    dashboard, exporter, or alert might read is declared in
    :func:`repro.observability.telemetry.metric_catalog`.  String
    literals are checked exactly; f-strings must open with a literal
    prefix from one of the registered open families
    (``FSTRING_NAME_PREFIXES`` / ``METRIC_NAME_PREFIXES``); fully
    dynamic names are left to the runtime drift check
    (:func:`~repro.observability.telemetry.catalog_violations`), which
    the telemetry smoke runs over every registry it touches.
    """

    id = "L009"
    description = "registry metric names must be declared in the telemetry catalog"
    scope = ("src/repro",)
    exclude = ("src/repro/observability/metrics.py",)
    hint = (
        "declare the name in repro.observability.telemetry.metric_catalog() "
        "(or register its family prefix in FSTRING_NAME_PREFIXES) so the "
        "exported metric set stays closed and documented"
    )

    _FACTORIES = {"counter", "gauge", "histogram"}

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:
        from ..observability.telemetry import (
            FSTRING_NAME_PREFIXES,
            METRIC_NAME_PREFIXES,
            metric_catalog,
        )

        catalog = metric_catalog()
        open_prefixes = tuple(METRIC_NAME_PREFIXES)
        fstring_prefixes = tuple(FSTRING_NAME_PREFIXES) + open_prefixes
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            chain = _attr_chain(node.func)
            if chain is None or len(chain) < 2 or chain[-1] not in self._FACTORIES:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                if name not in catalog and not name.startswith(open_prefixes):
                    yield unit.diagnostic(
                        self,
                        node,
                        f"metric {name!r} is not declared in metric_catalog()",
                    )
            elif isinstance(arg, ast.JoinedStr):
                head = arg.values[0] if arg.values else None
                literal = (
                    head.value
                    if isinstance(head, ast.Constant) and isinstance(head.value, str)
                    else ""
                )
                if not literal or not literal.startswith(fstring_prefixes):
                    yield unit.diagnostic(
                        self,
                        node,
                        "f-string metric name does not open with a registered "
                        f"family prefix (literal head {literal!r})",
                    )


#: the full rule set, id order
ALL_RULES: Tuple[object, ...] = (
    FaultSiteRegistered(),
    BackendOracleCoverage(),
    ObservabilityGuard(),
    NoUnorderedFloatReduction(),
    NoWallClockOrUnseededRng(),
    RunRecordDormantDefaults(),
    NoPassInputMutation(),
    SuppressionHygiene(),
    MetricNameInCatalog(),
)
