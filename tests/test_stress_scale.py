"""Scale stress tests: the full stack on the suite's largest matrices.

The unit tests run on toy sizes; these exercise the vectorized paths where
ragged-gather bookkeeping, int64 offsets, and O(E log V) loops actually
matter.  Time-bounded: only inspection + simulation (no Python-loop
numerics at this size).
"""

import numpy as np
import pytest

from repro.graph import verify_schedule_order
from repro.kernels import KERNELS
from repro.runtime import INTEL20, simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import apply_ordering, lower_triangle
from repro.suite import suite_by_name


@pytest.fixture(scope="module")
def big():
    """The largest chain-family matrix: 40k vertices, deep structure."""
    a, _ = apply_ordering(suite_by_name()["chain-long"].build(), "nd")
    return a


@pytest.fixture(scope="module")
def big_mesh():
    """The largest 3D mesh: 27k vertices, wide structure."""
    a, _ = apply_ordering(suite_by_name()["mesh3d-xl"].build(), "nd")
    return a


def test_inspectors_scale_to_40k_vertices(big):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(big)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    assert g.n == 40000
    for algo in ("hdagg", "wavefront", "spmp", "lbc"):
        s = SCHEDULERS[algo](g, cost, INTEL20.n_cores)
        s.validate(g)
        assert verify_schedule_order(g, s.execution_order()), algo


def test_simulation_scales(big_mesh):
    kernel = KERNELS["spilu0"]
    g = kernel.dag(big_mesh)
    cost = kernel.cost(big_mesh)
    mem = kernel.memory_model(big_mesh, g)
    serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, mem, INTEL20.scaled(1))
    s = SCHEDULERS["hdagg"](g, cost, INTEL20.n_cores)
    r = simulate(s, g, cost, mem, INTEL20)
    assert r.total_accesses == mem.total_accesses
    assert serial.makespan_cycles / r.makespan_cycles > 2.0


def test_levelwise_solve_at_scale(big_mesh, rng):
    """The vectorized solver handles ~27k rows quickly and exactly."""
    low = lower_triangle(big_mesh)
    from repro.kernels import sptrsv_levelwise

    x_true = rng.normal(size=low.n_rows)
    b = low.matvec(x_true)
    x = sptrsv_levelwise(low, b)
    np.testing.assert_allclose(x, x_true, rtol=1e-8, atol=1e-9)


def test_symbolic_tools_at_scale(big):
    from repro.sparse import elimination_tree_from_matrix

    parent = elimination_tree_from_matrix(big)
    non_roots = parent >= 0
    assert np.all(parent[non_roots] > np.nonzero(non_roots)[0])
