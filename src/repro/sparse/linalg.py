"""Small numeric helpers shared by kernels, examples, and tests.

These are reference-quality routines (clarity over speed) used to validate
the schedule-driven kernels and to build the iterative-solver examples that
motivate the paper (preconditioned CG / stationary iterations execute the
same triangular solve tens of thousands of times, which is what amortises the
inspector — Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRMatrix, VALUE_DTYPE

__all__ = [
    "dense_lower_solve",
    "dense_upper_solve",
    "residual_norm",
    "CGResult",
    "conjugate_gradient",
]


def dense_lower_solve(low: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Forward substitution on a dense lower-triangular matrix (reference)."""
    n = low.shape[0]
    x = np.zeros(n, dtype=VALUE_DTYPE)
    for i in range(n):
        s = b[i] - low[i, :i] @ x[:i]
        if low[i, i] == 0.0:
            raise ZeroDivisionError(f"zero diagonal at row {i}")
        x[i] = s / low[i, i]
    return x


def dense_upper_solve(up: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Backward substitution on a dense upper-triangular matrix (reference)."""
    n = up.shape[0]
    x = np.zeros(n, dtype=VALUE_DTYPE)
    for i in range(n - 1, -1, -1):
        s = b[i] - up[i, i + 1 :] @ x[i + 1 :]
        if up[i, i] == 0.0:
            raise ZeroDivisionError(f"zero diagonal at row {i}")
        x[i] = s / up[i, i]
    return x


def residual_norm(a: CSRMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Two-norm of ``b - A x``."""
    return float(np.linalg.norm(b - a.matvec(x)))


@dataclass
class CGResult:
    """Outcome of :func:`conjugate_gradient`."""

    x: np.ndarray
    iterations: int
    converged: bool
    residuals: list = field(default_factory=list)


def conjugate_gradient(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    preconditioner=None,
    tol: float = 1e-10,
    max_iter: int = 2000,
) -> CGResult:
    """(Preconditioned) conjugate gradient for SPD ``a``.

    ``preconditioner`` is a callable ``r -> z`` applying ``M^{-1}``; in the
    examples it is a schedule-driven SpIC0 solve, the workload class the
    paper's NRE analysis (Figure 9) is about.
    """
    b = np.asarray(b, dtype=VALUE_DTYPE)
    n = a.n_rows
    x = np.zeros(n, dtype=VALUE_DTYPE)
    r = b.copy()
    z = preconditioner(r) if preconditioner is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals = [float(np.linalg.norm(r)) / b_norm]
    for k in range(1, max_iter + 1):
        ap = a.matvec(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            # Matrix is not SPD along this direction; bail out honestly.
            return CGResult(x=x, iterations=k - 1, converged=False, residuals=residuals)
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = float(np.linalg.norm(r)) / b_norm
        residuals.append(rel)
        if rel < tol:
            return CGResult(x=x, iterations=k, converged=True, residuals=residuals)
        z = preconditioner(r) if preconditioner is not None else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(x=x, iterations=max_iter, converged=False, residuals=residuals)
