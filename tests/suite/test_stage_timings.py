"""Stage-timing coverage for StageTimer / RunRecord (satellite S4).

``RunRecord.stage_seconds`` must be a truthful breakdown of
``inspector_seconds``: known stage keys only, non-negative values, and a
sum that never exceeds the total it claims to break down.  The cache-hit
path is the historical trap — a hit re-runs only the verification, so
copying the producing run's stage breakdown would report stages that
never executed (and sum to more than the hit's own inspector time).
"""

import pytest

from repro.core.schedule_cache import ScheduleCache
from repro.suite.harness import Harness
from repro.suite.matrices import small_suite

#: every stage an inspector may report, plus the harness's own verify step
KNOWN_STAGES = {
    "transitive_reduction", "aggregation", "coarsen", "lbp", "expand", "verify",
}

#: sum(stages) <= total needs slack: the stages are timed inside the same
#: interval as the total, but each ``perf_counter`` pair has its own jitter
SLACK = 1e-3


@pytest.fixture(scope="module")
def spec():
    return min(small_suite(), key=lambda s: s.build().n_rows)


@pytest.fixture(scope="module")
def records(spec):
    harness = Harness(machines=["laptop4"], kernels=["sptrsv"])
    return harness.run_suite([spec])


def test_stage_keys_are_known_and_values_sane(records):
    assert records
    for r in records:
        assert set(r.stage_seconds) <= KNOWN_STAGES, (
            f"{r.algorithm}: unknown stage keys "
            f"{set(r.stage_seconds) - KNOWN_STAGES}"
        )
        for stage, seconds in r.stage_seconds.items():
            assert seconds >= 0.0, f"{r.algorithm}/{stage}: negative timing"
        assert r.inspector_seconds >= 0.0


def test_stage_sum_bounded_by_inspector_seconds(records):
    for r in records:
        total = sum(r.stage_seconds.values())
        assert total <= r.inspector_seconds + SLACK, (
            f"{r.algorithm}: stages sum to {total:.6f}s but "
            f"inspector_seconds is {r.inspector_seconds:.6f}s — the "
            f"breakdown claims more time than the run took"
        )


def test_hdagg_records_cover_the_full_pipeline(records):
    """HDagg's inspector stamps all five algorithm stages plus verify."""
    hdagg = [r for r in records if r.algorithm == "hdagg" and not r.degraded]
    assert hdagg
    for r in hdagg:
        assert {"transitive_reduction", "aggregation", "coarsen",
                "lbp", "expand"} <= set(r.stage_seconds)
        assert r.stage_seconds["verify"] > 0.0


def test_cache_hit_reports_only_the_verify_stage(spec):
    """A cached schedule re-ran nothing but verification — its record must
    say exactly that, not echo the producer's stale stage breakdown."""
    cache = ScheduleCache()
    harness = Harness(machines=["laptop4"], kernels=["sptrsv"],
                      schedule_cache=cache)
    first = harness.run_suite([spec])
    second = harness.run_suite([spec])
    assert not any(r.schedule_cached for r in first)
    hits = [r for r in second if r.schedule_cached]
    assert hits, "second run produced no cache hits"
    for r in hits:
        assert set(r.stage_seconds) == {"verify"}
        assert r.stage_seconds["verify"] == pytest.approx(r.inspector_seconds)
    # and the non-cached baseline invariant still holds on both runs
    for r in first + second:
        assert sum(r.stage_seconds.values()) <= r.inspector_seconds + SLACK
