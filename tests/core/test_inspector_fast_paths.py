"""Differential tests: vectorized inspector stages vs their retained
reference loops.

Every fast path in the inspector (pointer-jumping subtree grouping,
monotone-pointer first-fit packing, warm-started LBP connected components)
ships with the original loop implementation as an oracle.  These tests
drive both over seeded random DAGs and the structural edge cases named in
the design notes — empty DAG, single chain, star, tree-reduced chordal
factor — and demand *bit-identical* output: same group partitions, same
bin assignments and float loads, same coarsened wavefronts and packings.
"""

import numpy as np
import pytest

from repro.core.aggregation import subtree_grouping, subtree_grouping_reference
from repro.core.binpack import first_fit_pack, first_fit_pack_reference
from repro.core.lbp import lbp_coarsen, lbp_coarsen_reference
from repro.graph import DAG, dag_from_matrix_lower, transitive_reduction_two_hop
from repro.graph.coarsen import coarsen_dag
from repro.sparse import lower_triangle, random_spd, symbolic_cholesky


def _random_dag(rng, n, density):
    src, dst = [], []
    for j in range(1, n):
        for i in range(j):
            if rng.random() < density:
                src.append(i)
                dst.append(j)
    return DAG.from_edges(
        n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )


def _assert_grouping_equal(a, b):
    assert np.array_equal(a.labels, b.labels)
    assert a.n_groups == b.n_groups
    for ga, gb in zip(a.groups, b.groups):
        assert np.array_equal(ga, gb)


def _assert_lbp_equal(a, b):
    assert len(a.coarsened) == len(b.coarsened)
    assert a.fine_grained == b.fine_grained
    assert a.accumulated_pgp == b.accumulated_pgp  # bitwise float equality
    for ca, cb in zip(a.coarsened, b.coarsened):
        assert (ca.wave_lo, ca.wave_hi) == (cb.wave_lo, cb.wave_hi)
        assert len(ca.components) == len(cb.components)
        for xa, xb in zip(ca.components, cb.components):
            assert np.array_equal(xa, xb)
        assert np.array_equal(ca.packing.assignment, cb.packing.assignment)
        assert np.array_equal(ca.packing.loads, cb.packing.loads)  # bitwise


# ---------------------------------------------------------------- subtree


def test_subtree_grouping_random_dags():
    rng = np.random.default_rng(77)
    for _ in range(40):
        n = int(rng.integers(1, 50))
        g = transitive_reduction_two_hop(_random_dag(rng, n, float(rng.uniform(0.02, 0.4))))
        cost = rng.uniform(0.5, 4.0, size=n)
        _assert_grouping_equal(subtree_grouping(g), subtree_grouping_reference(g))
        for frac in (0.05, 0.25, 1.0):
            cap = frac * float(cost.sum()) / 4
            _assert_grouping_equal(
                subtree_grouping(g, cost, cap),
                subtree_grouping_reference(g, cost, cap),
            )


def test_subtree_grouping_empty_and_edgeless():
    g0 = DAG.from_edges(0, [], [])
    assert subtree_grouping(g0).n_groups == 0
    g5 = DAG.from_edges(5, [], [])
    _assert_grouping_equal(subtree_grouping(g5), subtree_grouping_reference(g5))


def test_subtree_grouping_single_chain():
    n = 12
    g = DAG.from_edges(n, list(range(n - 1)), list(range(1, n)))
    fast, ref = subtree_grouping(g), subtree_grouping_reference(g)
    _assert_grouping_equal(fast, ref)
    assert fast.n_groups == 1  # an uncapped chain collapses into one group
    cost = np.ones(n)
    capped = subtree_grouping(g, cost, 3.0)
    _assert_grouping_equal(capped, subtree_grouping_reference(g, cost, 3.0))
    assert capped.n_groups > 1  # the cap splits it


def test_subtree_grouping_star():
    n = 9  # many sources into one sink: parents have out-degree 1
    g = DAG.from_edges(n, list(range(n - 1)), [n - 1] * (n - 1))
    _assert_grouping_equal(subtree_grouping(g), subtree_grouping_reference(g))


def test_subtree_grouping_chordal_elimination_tree():
    a = random_spd(30, 3.0, seed=9)
    g = dag_from_matrix_lower(lower_triangle(symbolic_cholesky(a)))
    g_red = transitive_reduction_two_hop(g)
    cost = np.ones(g.n)
    _assert_grouping_equal(
        subtree_grouping(g_red), subtree_grouping_reference(g_red)
    )
    cap = 0.25 * g.n / 4
    _assert_grouping_equal(
        subtree_grouping(g_red, cost, cap),
        subtree_grouping_reference(g_red, cost, cap),
    )


def test_subtree_grouping_rejects_cycle():
    # a 2-cycle is not a DAG; the pointer-jumping path must refuse it
    # rather than loop forever or emit a partial grouping
    g = DAG(
        n=2,
        indptr=np.array([0, 1, 2], dtype=np.int64),
        indices=np.array([1, 0], dtype=np.int64),
    )
    with pytest.raises(ValueError):
        subtree_grouping(g)


# ---------------------------------------------------------------- binpack


def test_first_fit_random():
    rng = np.random.default_rng(5)
    for _ in range(200):
        k = int(rng.integers(0, 40))
        p = int(rng.integers(1, 9))
        costs = rng.uniform(0.0, 3.0, size=k)
        fast, ref = first_fit_pack(costs, p), first_fit_pack_reference(costs, p)
        assert np.array_equal(fast.assignment, ref.assignment)
        assert np.array_equal(fast.loads, ref.loads)  # bitwise float equality


def test_first_fit_edge_cases():
    for costs, p in [([], 1), ([], 5), ([1.0], 1), ([0.0, 0.0], 3), ([5.0, 0.1], 2)]:
        fast = first_fit_pack(costs, p)
        ref = first_fit_pack_reference(costs, p)
        assert np.array_equal(fast.assignment, ref.assignment)
        assert np.array_equal(fast.loads, ref.loads)


def test_items_per_bin_preserves_arrival_order():
    packing = first_fit_pack([1.0, 1.0, 1.0, 1.0, 1.0], 2)
    per_bin = packing.items_per_bin(2)
    flat = np.concatenate(per_bin)
    assert sorted(flat.tolist()) == [0, 1, 2, 3, 4]
    for b, items in enumerate(per_bin):
        assert np.array_equal(items, np.sort(items))  # arrival order == index order
        assert np.all(packing.assignment[items] == b)


# ---------------------------------------------------------------- lbp


@pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.5])
def test_lbp_random_dags_bitwise(epsilon):
    rng = np.random.default_rng(hash(epsilon) % 2**31)
    for _ in range(25):
        n = int(rng.integers(1, 45))
        g = transitive_reduction_two_hop(_random_dag(rng, n, float(rng.uniform(0.05, 0.4))))
        grouping = subtree_grouping(g)
        g2 = coarsen_dag(g, grouping)
        cost = rng.uniform(0.5, 4.0, size=g2.n)
        for p in (1, 3, 6):
            fast = lbp_coarsen(g2, cost, p, epsilon, allow_fine_grained=True)
            ref = lbp_coarsen_reference(g2, cost, p, epsilon, allow_fine_grained=True)
            _assert_lbp_equal(fast, ref)


def test_lbp_single_wavefront_and_empty():
    g0 = DAG.from_edges(0, [], [])
    fast = lbp_coarsen(g0, np.empty(0), 2, 0.1)
    ref = lbp_coarsen_reference(g0, np.empty(0), 2, 0.1)
    _assert_lbp_equal(fast, ref)
    g1 = DAG.from_edges(4, [], [])  # one wavefront of independent vertices
    cost = np.array([1.0, 2.0, 3.0, 4.0])
    _assert_lbp_equal(
        lbp_coarsen(g1, cost, 2, 0.1), lbp_coarsen_reference(g1, cost, 2, 0.1)
    )
