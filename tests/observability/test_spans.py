"""Unit tests for the span tracer: nesting, threading, the null path."""

import threading

import pytest

from repro.observability.spans import NULL_TRACER, NullTracer, Span, Tracer


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def test_single_span_records_interval_and_attrs():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("inspect/lbp", epsilon=0.5):
        pass
    (s,) = tracer.spans
    assert s.name == "inspect/lbp"
    assert s.t1 > s.t0
    assert s.duration == s.t1 - s.t0
    assert s.parent == -1 and s.depth == 0
    assert s.attrs == {"epsilon": 0.5}
    assert s.tid == threading.get_ident()


def test_nested_spans_link_parent_and_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("mid"):
            with tracer.span("inner"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    spans = tracer.spans
    assert by_name["outer"].depth == 0 and by_name["outer"].parent == -1
    assert by_name["mid"].depth == 1
    assert by_name["inner"].depth == 2
    # parent indices refer back within the same thread's span list
    assert spans[by_name["mid"].parent].name == "outer"
    assert spans[by_name["inner"].parent].name == "mid"


def test_nested_span_contained_in_parent_interval():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].t0 <= by_name["inner"].t0
    assert by_name["inner"].t1 <= by_name["outer"].t1


def test_sibling_spans_share_parent():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["a"].parent == by_name["b"].parent
    assert by_name["a"].t1 <= by_name["b"].t0


def test_instant_records_zero_duration_marker():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        tracer.instant("cell", matrix="mesh2d-s")
    markers = [s for s in tracer.spans if s.name == "cell"]
    (m,) = markers
    assert m.duration == 0.0
    assert m.depth == 1
    assert m.attrs == {"matrix": "mesh2d-s"}


def test_spans_named_prefix_filter():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("inspect/lbp"):
        pass
    with tracer.span("execute/wavefront[0]"):
        pass
    assert [s.name for s in tracer.spans_named("inspect/")] == ["inspect/lbp"]
    assert len(tracer.spans_named("execute/")) == 1
    assert tracer.spans_named("nope/") == []


def test_spans_from_worker_threads_are_merged():
    tracer = Tracer()

    def worker(i):
        with tracer.span(f"execute/partition[0,{i}]", core=i):
            pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tracer.spans
    assert len(spans) == 4  # survives OS reuse of thread idents
    assert {s.attrs["core"] for s in spans} == {0, 1, 2, 3}
    # each thread's span is top-level within its own list
    assert all(s.parent == -1 and s.depth == 0 for s in spans)


def test_open_span_not_listed_until_closed():
    tracer = Tracer(clock=FakeClock())
    cm = tracer.span("open")
    cm.__enter__()
    assert len(tracer) == 0  # placeholder slot, not a closed span
    cm.__exit__(None, None, None)
    assert len(tracer) == 1


def test_span_closes_on_exception():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("fails"):
            raise RuntimeError("boom")
    (s,) = tracer.spans
    assert s.name == "fails" and s.t1 >= s.t0


def test_clear_drops_all_spans():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    tracer.clear()
    assert len(tracer) == 0
    with tracer.span("b"):
        pass
    assert [s.name for s in tracer.spans] == ["b"]


def test_as_dict_roundtrips_fields():
    s = Span(name="x", t0=1.0, t1=2.5, tid=7, parent=3, depth=1, attrs={"p": 8})
    d = s.as_dict()
    assert d == {"name": "x", "t0": 1.0, "t1": 2.5, "tid": 7,
                 "parent": 3, "depth": 1, "attrs": {"p": 8}}
    # attrs key omitted when empty
    assert "attrs" not in Span(name="y", t0=0.0, t1=0.0, tid=1).as_dict()


def test_null_tracer_is_inert_and_shared():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    cm1 = NULL_TRACER.span("anything", k=1)
    cm2 = NULL_TRACER.span("else")
    assert cm1 is cm2  # one shared no-op context manager, nothing allocated
    with cm1:
        NULL_TRACER.instant("marker")
    assert NULL_TRACER.spans == []
    assert NULL_TRACER.spans_named("any") == []
    assert len(NULL_TRACER) == 0
    NULL_TRACER.clear()  # no-op, must not raise


# ----------------------------------------------------------------------
# cross-thread context propagation
# ----------------------------------------------------------------------
def test_span_ids_are_process_unique_and_parented():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = sorted(tracer.spans, key=lambda s: s.span_id)
    assert outer.span_id > 0
    assert inner.parent_span_id == outer.span_id
    assert outer.parent_span_id == -1


def test_attach_adopts_a_foreign_context_on_another_thread():
    tracer = Tracer()
    with tracer.span("root") as root:
        ctx = root.context

        def worker():
            with tracer.attach(ctx):
                with tracer.span("child"):
                    pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
    child = tracer.spans_named("child")[0]
    root_span = tracer.spans_named("root")[0]
    assert child.parent_span_id == root_span.span_id
    assert child.tid != root_span.tid
    # adoption is scoped: after attach() exits the thread is clean
    assert tracer.current_context() is None


def test_manual_span_begin_end_for_event_loop_code():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    span = tracer.begin("service.request", request_id="r-1")
    ctx = span.context
    assert ctx is not None and ctx.span_id == span.context.span_id
    span.annotate(outcome="memory")
    span.end()
    span.end()  # idempotent
    (recorded,) = tracer.spans
    assert recorded.name == "service.request"
    assert recorded.attrs == {"request_id": "r-1", "outcome": "memory"}
    assert recorded.t1 > recorded.t0
    assert len(tracer.spans) == 1


def test_record_span_writes_a_retrospective_interval():
    tracer = Tracer()
    root = tracer.begin("root")
    tracer.record_span("queue_wait", 10.0, 11.5, parent=root.context, k="v")
    root.end()
    wait = tracer.spans_named("queue_wait")[0]
    assert (wait.t0, wait.t1) == (10.0, 11.5)
    assert wait.parent_span_id == root.context.span_id
    assert wait.attrs == {"k": "v"}


def test_null_tracer_context_surface_is_inert():
    assert NULL_TRACER.begin("x").context is None
    assert NULL_TRACER.current_context() is None
    with NULL_TRACER.attach(None):
        pass
    NULL_TRACER.record_span("x", 0.0, 1.0)
    assert NULL_TRACER.clock() >= 0.0
