"""Shared fixtures for the serving-stack suite: two small SpTRSV problems."""

import pytest

from repro.kernels import KERNELS
from repro.service import ServeRequest
from repro.sparse import banded_spd, lower_triangle, poisson2d


def _problem(build):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(build())
    return kernel.dag(low), kernel.cost(low)


@pytest.fixture(scope="session")
def problem_a():
    return _problem(lambda: poisson2d(8, seed=0))


@pytest.fixture(scope="session")
def problem_b():
    return _problem(lambda: banded_spd(120, 5, seed=3))


@pytest.fixture()
def request_a(problem_a):
    g, cost = problem_a
    return ServeRequest(g=g, cost=cost, kernel="sptrsv", algorithm="hdagg", p=4)


@pytest.fixture()
def request_b(problem_b):
    g, cost = problem_b
    return ServeRequest(g=g, cost=cost, kernel="sptrsv", algorithm="hdagg", p=4)
