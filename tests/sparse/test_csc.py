"""Tests for the CSC container and the column-oriented solve."""

import numpy as np
import pytest

from repro.sparse import csr_from_dense, lower_triangle
from repro.sparse.csc import (
    CSCMatrix,
    csc_from_csr,
    csr_from_csc,
    sptrsv_csc_in_order,
    sptrsv_csc_reference,
)


@pytest.fixture
def a(rng):
    dense = rng.random((6, 5))
    dense[dense < 0.5] = 0.0
    return csr_from_dense(dense)


class TestContainer:
    def test_roundtrip(self, a):
        csc = csc_from_csr(a)
        assert csr_from_csc(csc) == a
        np.testing.assert_array_equal(csc.to_dense(), a.to_dense())

    def test_column_access(self, a):
        csc = csc_from_csr(a)
        dense = a.to_dense()
        for j in range(a.n_cols):
            rows, vals = csc.col(j)
            np.testing.assert_array_equal(rows, np.nonzero(dense[:, j])[0])
            np.testing.assert_array_equal(vals, dense[rows, j])

    def test_col_nnz(self, a):
        csc = csc_from_csr(a)
        np.testing.assert_array_equal(
            csc.col_nnz(), (a.to_dense() != 0).sum(axis=0)
        )

    def test_matvec(self, a, rng):
        csc = csc_from_csr(a)
        x = rng.random(a.n_cols)
        np.testing.assert_allclose(csc.matvec(x), a.to_dense() @ x)

    def test_matvec_shape_check(self, a):
        with pytest.raises(ValueError):
            csc_from_csr(a).matvec(np.ones(a.n_cols + 1))

    def test_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            CSCMatrix(2, 2, [0, 1], [0], [1.0])
        with pytest.raises(ValueError, match="range"):
            CSCMatrix(2, 2, [0, 1, 1], [5], [1.0])
        with pytest.raises(ValueError, match="increasing"):
            CSCMatrix(3, 1, [0, 2], [1, 1], [1.0, 2.0])

    def test_readonly_and_unhashable(self, a):
        csc = csc_from_csr(a)
        with pytest.raises(ValueError):
            csc.data[0] = 1.0
        with pytest.raises(TypeError):
            hash(csc)

    def test_equality(self, a):
        assert csc_from_csr(a) == csc_from_csr(a)


class TestCscSolve:
    def test_matches_row_solver(self, mesh, rng):
        low = lower_triangle(mesh)
        csc = csc_from_csr(low)
        b = rng.normal(size=mesh.n_rows)
        from repro.kernels import sptrsv_reference

        np.testing.assert_allclose(
            sptrsv_csc_reference(csc, b), sptrsv_reference(low, b), rtol=1e-12
        )

    def test_in_order_topological(self, irregular, rng):
        from repro.graph import topological_order
        from repro.kernels import SpTRSV

        low = lower_triangle(irregular)
        csc = csc_from_csr(low)
        order = topological_order(SpTRSV().dag(low))
        b = rng.normal(size=irregular.n_rows)
        np.testing.assert_allclose(
            sptrsv_csc_in_order(csc, order, b),
            sptrsv_csc_reference(csc, b),
            rtol=1e-10,
        )

    def test_scheduled_order(self, mesh_nd, rng):
        from repro.core import hdagg
        from repro.kernels import SpTRSV

        low = lower_triangle(mesh_nd)
        kernel = SpTRSV()
        g = kernel.dag(low)
        s = hdagg(g, kernel.cost(low), 4)
        b = rng.normal(size=mesh_nd.n_rows)
        got = sptrsv_csc_in_order(csc_from_csr(low), s.execution_order(), b)
        np.testing.assert_allclose(got, kernel.reference(low, b), rtol=1e-10)

    def test_violation_detected(self, mesh, rng):
        low = lower_triangle(mesh)
        csc = csc_from_csr(low)
        order = np.arange(mesh.n_rows)[::-1].copy()
        with pytest.raises(ValueError, match="finalised before"):
            sptrsv_csc_in_order(csc, order, rng.normal(size=mesh.n_rows))

    def test_missing_diagonal(self):
        bad = CSCMatrix(2, 2, [0, 1, 2], [1, 1], [1.0, 1.0])
        with pytest.raises(ValueError, match="diagonal"):
            sptrsv_csc_reference(bad, np.ones(2))

    def test_upper_entries_rejected(self):
        bad = CSCMatrix(2, 2, [0, 2, 3], [0, 1, 1], [1.0, 1.0, 1.0])
        # column 1 of a LOWER matrix cannot contain row 0; build one that does
        worse = CSCMatrix(2, 2, [0, 1, 3], [0, 0, 1], [1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            sptrsv_csc_reference(worse, np.ones(2))
