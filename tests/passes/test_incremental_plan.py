"""plan_repair: dirtiness propagation along declared contracts."""

from repro.passes import build_hdagg_group, get_pass_group, plan_repair


def test_pattern_delta_buckets_match_repair_implementation():
    """Dirty {DAG, Cost} reproduces the recompute/splice split repair assumes."""
    plan = plan_repair(build_hdagg_group(), ("DAG", "Cost"))
    assert plan.recompute == ("reduce", "aggregate")
    assert plan.splice == ("coarsen", "lbp", "expand")
    assert plan.replay == ()
    assert plan.affected == ("reduce", "aggregate", "coarsen", "lbp", "expand")
    # dirtiness closed over every produced artifact
    assert set(plan.dirty_artifacts) >= {
        "DAG", "Cost", "ReducedDAG", "Grouping", "CoarseDAG",
        "GroupCost", "CoarsenedWaves", "Schedule",
    }


def test_epsilon_only_delta_replays_the_structural_prefix():
    plan = plan_repair(build_hdagg_group(), ("Epsilon",))
    assert plan.replay == ("reduce", "aggregate", "coarsen")
    assert plan.recompute == ()
    assert plan.splice == ("lbp", "expand")


def test_clean_inputs_replay_everything():
    plan = plan_repair(build_hdagg_group(), ())
    assert plan.affected == ()
    assert plan.replay == ("reduce", "aggregate", "coarsen", "lbp", "expand")
    assert plan.dirty_artifacts == ()


def test_ablation_group_plans_through_its_own_passes():
    plan = plan_repair(build_hdagg_group(aggregate=False), ("DAG", "Cost"))
    assert plan.recompute == ("identity-grouping",)
    assert plan.splice == ("coarsen", "lbp", "expand")
    assert plan.replay == ()


def test_baseline_groups_plan_without_special_cases():
    plan = plan_repair(get_pass_group("wavefront"), ("Cost",))
    # the level decomposition ignores cost; only the emit pass re-runs
    assert plan.replay == ("wavefronts",)
    assert plan.affected == ("emit-cost-chunks",)


def test_repair_schedule_stamps_the_plan_into_stats():
    import numpy as np

    from repro.core.incremental import inspect_with_artifacts, repair_schedule
    from repro.graph import DAG

    # 8 independent 5-vertex chains: wide enough that hdagg stays coarse
    srcs = [c * 5 + i for c in range(8) for i in range(4)]
    dsts = [c * 5 + i + 1 for c in range(8) for i in range(4)]
    g = DAG.from_edges(40, srcs, dsts)
    cost = np.ones(40)
    old = inspect_with_artifacts(g, cost, 2)
    g_new = DAG.from_edges(40, srcs + [0], dsts + [2])
    res = repair_schedule(old, g_new, cost)
    assert res.mode == "repaired"
    assert res.stats["plan"]["recompute"] == ["reduce", "aggregate"]
    assert res.stats["plan"]["splice"] == ["coarsen", "lbp", "expand"]
    assert res.stats["plan"]["replay"] == []
