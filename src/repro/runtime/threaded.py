"""Threaded executor: real concurrent schedule execution.

The paper's executor is OpenMP; this is the closest Python equivalent — one
worker thread per core, each executing its width-partitions in level order
with a :class:`threading.Barrier` between coarsened wavefronts (barrier
sync) or per-vertex completion flags (p2p sync).  CPython's GIL serialises
the numeric work, so this executor demonstrates *correctness under true
concurrency* (no dependence ordering is enforced by the interpreter — only
by the schedule and its synchronisation), not speedup; the performance
claims live in :mod:`repro.runtime.simulator`.

The p2p path spins on a shared ``done`` flag array exactly like SpMP's
point-to-point synchronisation; the barrier path mirrors the wavefront /
HDagg executors.  Any kernel-level dependence violation would surface as a
read of a not-yet-written value and fail the numeric comparison in tests;
additionally each vertex's dependences are checked against the flags.
"""

from __future__ import annotations

import threading
from typing import Callable, List

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..sparse.csr import INDEX_DTYPE
from .simulator import bind_dynamic_partitions

__all__ = ["run_threaded", "ThreadedExecutionError"]


class ThreadedExecutionError(RuntimeError):
    """A worker observed a dependence violation or a peer failure."""


def run_threaded(
    schedule: Schedule,
    g: DAG,
    process_vertex: Callable[[int], None],
    *,
    cost: np.ndarray | None = None,
    spin_yield: bool = True,
) -> None:
    """Execute ``process_vertex(v)`` for every vertex under the schedule.

    ``process_vertex`` must be thread-compatible in the way kernel row
    updates are: writes touch only vertex-owned state, reads touch state
    owned by dependences.  Dynamic (core = -1) partitions are bound first
    (requires ``cost``; unit costs assumed otherwise).

    Raises :class:`ThreadedExecutionError` if any worker observes an
    unsatisfied dependence (which would indicate an invalid schedule) or if
    a worker raises.
    """
    if cost is None:
        cost = np.ones(schedule.n, dtype=np.float64)
    schedule = bind_dynamic_partitions(schedule, cost)
    p = max((part.core for _, part in schedule.iter_partitions()), default=0) + 1
    p = max(p, 1)

    done = np.zeros(schedule.n, dtype=bool)
    errors: List[BaseException] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(p)
    in_ptr, in_idx = g.in_ptr, g.in_idx
    use_barrier = schedule.sync == "barrier"

    # per-core, per-level partition lists
    plan: List[List[List[np.ndarray]]] = [
        [[] for _ in range(p)] for _ in schedule.levels
    ]
    for k, level in enumerate(schedule.levels):
        for part in level:
            plan[k][part.core % p].append(part.vertices)

    def wait_for(v: int) -> None:
        deps = in_idx[in_ptr[v] : in_ptr[v + 1]]
        for u in deps:
            if use_barrier:
                # with barrier sync, deps must already be done — anything
                # else is a schedule bug, not a timing matter
                if not done[u]:
                    raise ThreadedExecutionError(
                        f"vertex {v} scheduled before dependence {int(u)}"
                    )
            else:
                while not done[u]:  # SpMP-style spin on the flag
                    if errors:
                        raise ThreadedExecutionError("peer worker failed")
                    if spin_yield:
                        threading.Event().wait(0)  # yield

    def worker(core: int) -> None:
        try:
            for k in range(len(plan)):
                for vertices in plan[k][core]:
                    for v in vertices.tolist():
                        wait_for(v)
                        process_vertex(v)
                        done[v] = True
                if use_barrier:
                    barrier.wait()
        except BaseException as exc:  # propagate to the caller
            with errors_lock:
                errors.append(exc)
            if use_barrier:
                barrier.abort()

    threads = [threading.Thread(target=worker, args=(c,)) for c in range(p)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        first = errors[0]
        if isinstance(first, threading.BrokenBarrierError):
            first = next(
                (e for e in errors if not isinstance(e, threading.BrokenBarrierError)),
                first,
            )
        raise ThreadedExecutionError(str(first)) from first
    if not bool(done.all()):
        missing = np.nonzero(~done)[0][:5].tolist()
        raise ThreadedExecutionError(f"vertices never executed: {missing}")
