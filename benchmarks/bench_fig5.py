"""Figure 5: per-matrix speedup of HDagg over each algorithm, three kernels.

Paper shape: HDagg is faster on > 94% of matrices for SpTRSV and SpIC0 and
~73% for SpILU0 (the hardest kernel); DAGP and LBC lose everywhere.
"""

import numpy as np

from _common import write_report
from repro.suite import fig5_per_matrix_speedups, format_table


def test_fig5(benchmark, records_intel, output_dir):
    per_kernel = benchmark(fig5_per_matrix_speedups, records_intel, machine="intel20")
    chunks = []
    for kernel, (headers, rows, data) in sorted(per_kernel.items()):
        chunks.append(
            format_table(headers, rows, title=f"Figure 5: HDagg speedup per matrix ({kernel}, intel20)")
        )
    write_report(output_dir, "fig5_intel20", "\n\n".join(chunks))

    assert set(per_kernel) == {"sptrsv", "spic0", "spilu0"}
    for kernel, (_, rows, data) in per_kernel.items():
        # HDagg beats DAGP and LBC on (almost) every matrix — the paper's
        # strongest per-matrix claim.
        for baseline in ("dagp", "lbc"):
            ratios = np.array(list(data[baseline].values()))
            ratios = ratios[np.isfinite(ratios)]
            win_rate = float((ratios > 1.0).mean())
            assert win_rate >= 0.75, f"{kernel} vs {baseline}: wins {win_rate:.0%}"
    # and wins a solid majority against the wavefront family on the two
    # heavier kernels (SpIC0 ratios hover near parity on the scaled suite —
    # a documented deviation from the paper's 94%; see EXPERIMENTS.md).
    for kernel in ("sptrsv", "spilu0"):
        _, _, data = per_kernel[kernel]
        wf = np.array(list(data["wavefront"].values()))
        assert float((wf[np.isfinite(wf)] > 1.0).mean()) >= 0.5, kernel
