"""Tests for the Gauss-Seidel kernel extension."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.kernels import (
    KERNELS,
    GaussSeidel,
    KernelError,
    gauss_seidel_in_order,
    gauss_seidel_sweep,
)
from repro.sparse import csr_from_dense


@pytest.fixture
def kernel():
    return GaussSeidel()


def test_registered(kernel):
    assert KERNELS["gauss_seidel"].name == "gauss_seidel"


def test_sweep_matches_dense_formula(rng):
    dense = rng.random((6, 6)) + 6 * np.eye(6)
    a = csr_from_dense(dense)
    b = rng.normal(size=6)
    x_old = rng.normal(size=6)
    got = gauss_seidel_sweep(a, b, x_old)
    # textbook: (D + L) x_new = b - U x_old
    dl = np.tril(dense)
    u = np.triu(dense, 1)
    expected = np.linalg.solve(dl, b - u @ x_old)
    np.testing.assert_allclose(got, expected, rtol=1e-12)


def test_sweeps_converge_on_spd(mesh, rng):
    b = rng.normal(size=mesh.n_rows)
    x = np.zeros(mesh.n_rows)
    res = [np.linalg.norm(mesh.matvec(x) - b)]
    for _ in range(20):
        x = gauss_seidel_sweep(mesh, b, x)
        res.append(np.linalg.norm(mesh.matvec(x) - b))
    assert res[-1] < 1e-3 * res[0]
    assert all(r2 <= r1 + 1e-12 for r1, r2 in zip(res, res[1:]))


def test_in_order_matches_reference(mesh, kernel, rng):
    b = rng.normal(size=mesh.n_rows)
    from repro.graph import topological_order

    order = topological_order(kernel.dag(mesh))
    np.testing.assert_allclose(
        gauss_seidel_in_order(mesh, order, b),
        gauss_seidel_sweep(mesh, b),
        rtol=1e-12,
    )


def test_scheduled_sweep_order_independent(mesh_nd, kernel, rng):
    """Any valid schedule produces the identical sweep (two-vector form)."""
    from repro.runtime import execute_schedule

    b = rng.normal(size=mesh_nd.n_rows)
    g = kernel.dag(mesh_nd)
    s = hdagg(g, kernel.cost(mesh_nd), 4)
    ref = kernel.reference(mesh_nd, b)
    for seed in (0, 1):
        got = execute_schedule(kernel, mesh_nd, s, b, interleave_seed=seed)
        np.testing.assert_allclose(got, ref, rtol=1e-12)


def test_violation_detected(mesh, kernel):
    order = np.arange(mesh.n_rows)[::-1].copy()
    with pytest.raises(KernelError, match="relaxed before"):
        gauss_seidel_in_order(mesh, order, np.ones(mesh.n_rows))


def test_validation():
    missing_diag = csr_from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(KernelError, match="diagonal"):
        gauss_seidel_sweep(missing_diag, np.ones(2))
    nonsquare = csr_from_dense(np.ones((2, 3)))
    with pytest.raises(KernelError, match="square"):
        gauss_seidel_sweep(nonsquare, np.ones(2))


def test_inspector_interface(mesh, kernel):
    g = kernel.dag(mesh)
    assert g.n == mesh.n_rows
    cost = kernel.cost(mesh)
    np.testing.assert_array_equal(cost, mesh.row_nnz().astype(float))
    m = kernel.memory_model(mesh, g)
    m.validate(g)
    ptr, lines = kernel.memory_trace(mesh)
    assert int(ptr[-1]) == lines.shape[0]


def test_verify_metric(mesh, kernel, rng):
    b = rng.normal(size=mesh.n_rows)
    good = kernel.reference(mesh, b)
    assert kernel.verify(mesh, good, b) < 1e-12
    assert kernel.verify(mesh, good + 1.0, b) > 0.01
