"""Focused tests on p2p timing details of the simulator."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG
from repro.kernels import MemoryModel
from repro.runtime import MachineConfig, simulate


def machine(**kw):
    base = dict(name="t", n_cores=2, cache_lines_per_core=64,
                hit_cycles=1.0, miss_cycles=10.0, cycles_per_cost_unit=1.0,
                p2p_sync_cycles=7.0)
    base.update(kw)
    return MachineConfig(**base)


def mem_for(g):
    return MemoryModel(np.ones(g.n), np.ones(g.n_edges))


def test_same_core_dependence_needs_no_sync():
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2,
        levels=[[WidthPartition(0, np.array([0]))], [WidthPartition(0, np.array([1]))]],
        sync="p2p", algorithm="t", n_cores=2,
    )
    r = simulate(s, g, np.ones(2), mem_for(g), machine())
    assert r.n_p2p_syncs == 0
    assert r.sync_cycles == 0.0


def test_sync_charged_once_per_partition_pair():
    # two edges between the same pair of partitions: one sync
    g = DAG.from_edges(4, [0, 1], [2, 3])
    s = Schedule(
        n=4,
        levels=[
            [WidthPartition(0, np.array([0, 1]))],
            [WidthPartition(1, np.array([2, 3]))],
        ],
        sync="p2p", algorithm="t", n_cores=2,
    )
    r = simulate(s, g, np.ones(4), mem_for(g), machine())
    assert r.n_p2p_syncs == 1


def test_waiting_core_idles_not_busy():
    """Busy cycles exclude p2p wait time (PG measures work, not stalls)."""
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2,
        levels=[
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(1, np.array([1]))],
        ],
        sync="p2p", algorithm="t", n_cores=2,
    )
    m = machine()
    r = simulate(s, g, np.array([100.0, 1.0]), mem_for(g), m)
    # core 1's busy time is only its own execution
    assert r.core_busy_cycles[1] < r.core_busy_cycles[0]
    assert r.makespan_cycles > r.core_busy_cycles.max()


def test_independent_chains_fully_overlap():
    g = DAG.from_edges(6, [0, 1, 2, 3], [2, 3, 4, 5])
    levels = [
        [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))],
        [WidthPartition(0, np.array([2])), WidthPartition(1, np.array([3]))],
        [WidthPartition(0, np.array([4])), WidthPartition(1, np.array([5]))],
    ]
    s = Schedule(n=6, levels=levels, sync="p2p", algorithm="t", n_cores=2)
    r = simulate(s, g, np.ones(6), mem_for(g), machine())
    # no cross-core deps at all: makespan == per-core chain length
    assert r.n_p2p_syncs == 0
    assert r.makespan_cycles == pytest.approx(float(r.core_busy_cycles.max()))


def test_p2p_dependency_chain_orders_finishes():
    """A zig-zag across cores serialises through sync costs."""
    g = DAG.from_edges(3, [0, 1], [1, 2])
    s = Schedule(
        n=3,
        levels=[
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(1, np.array([1]))],
            [WidthPartition(0, np.array([2]))],
        ],
        sync="p2p", algorithm="t", n_cores=2,
    )
    m = machine()
    r = simulate(s, g, np.ones(3), mem_for(g), m)
    assert r.n_p2p_syncs == 2
    # lower bound: three executions + two syncs, all serialised
    per_vertex_min = 1 * m.cycles_per_cost_unit + m.miss_cycles  # stream miss
    assert r.makespan_cycles >= 3 * per_vertex_min + 2 * m.p2p_sync_cycles


def test_barrier_makespan_invariant_to_partition_listing(request):
    """Within a level, the ORDER partitions are listed in is bookkeeping:
    the simulated makespan depends only on the core assignments."""
    mesh_nd = request.getfixturevalue("mesh_nd")
    from repro.graph import dag_from_matrix_lower
    from repro.kernels import KERNELS
    from repro.runtime import LAPTOP4
    from repro.schedulers import SCHEDULERS
    from repro.core.schedule import Schedule

    kernel = KERNELS["spilu0"]
    g = dag_from_matrix_lower(mesh_nd)
    cost = kernel.cost(mesh_nd)
    memm = kernel.memory_model(mesh_nd, g)
    s = SCHEDULERS["hdagg"](g, cost, 4)
    shuffled = Schedule(
        n=s.n,
        levels=[list(reversed(level)) for level in s.levels],
        sync=s.sync, algorithm=s.algorithm, n_cores=s.n_cores,
        fine_grained=s.fine_grained, meta=dict(s.meta),
    )
    r1 = simulate(s, g, cost, memm, LAPTOP4)
    r2 = simulate(shuffled, g, cost, memm, LAPTOP4)
    assert r2.makespan_cycles == pytest.approx(r1.makespan_cycles)
    assert r2.hits == r1.hits


def test_level_spans_sum_to_makespan(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    from repro.graph import dag_from_matrix_lower
    from repro.kernels import KERNELS
    from repro.runtime import LAPTOP4
    from repro.schedulers import SCHEDULERS

    kernel = KERNELS["spilu0"]
    g = dag_from_matrix_lower(mesh_nd)
    cost = kernel.cost(mesh_nd)
    memm = kernel.memory_model(mesh_nd, g)
    r = simulate(SCHEDULERS["wavefront"](g, cost, 4), g, cost, memm, LAPTOP4)
    assert sum(r.level_spans) + r.sync_cycles == pytest.approx(r.makespan_cycles)
    assert all(s > 0 for s in r.level_spans)
