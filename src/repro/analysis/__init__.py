"""Scheduler-agnostic correctness analyses for HDagg-style schedules.

Three independent checks, ordered by what they trust:

* :mod:`~repro.analysis.verifier` trusts the DAG and checks the schedule
  against it (every edge ordered by level or intra-partition position),
  extracting a minimal counterexample witness on failure;
* :mod:`~repro.analysis.footprint` / :mod:`~repro.analysis.races` trust
  only the matrix: per-iteration read/write sets are derived directly from
  the CSR structure and same-wavefront cross-partition conflicts are
  flagged statically — catching DAG-construction bugs the verifier is
  blind to;
* :mod:`~repro.analysis.tracecheck` trusts neither and checks an actual
  threaded *execution*, replaying the runtime's event log through vector
  clocks.

:mod:`~repro.analysis.mutate` closes the loop: known-unsafe schedule edits
that must be caught, asserted in CI via ``hdagg-bench analyze``
(:mod:`~repro.analysis.cli`).
"""

from .footprint import (
    FOOTPRINTS,
    Footprint,
    implied_dag,
    kernel_footprint,
    spic0_footprint,
    spilu0_footprint,
    sptrsv_footprint,
)
from .mutate import MUTATIONS, MutationResult, apply_mutation, run_mutation_suite
from .races import RaceReport, RaceWitness, detect_races
from .tracecheck import HappensBeforeViolation, TraceRecorder, TraceReport, check_trace
from .verifier import (
    DependenceReport,
    assert_schedule_safe,
    find_dependence_witnesses,
    verify_dependences,
)

__all__ = [
    "DependenceReport",
    "verify_dependences",
    "find_dependence_witnesses",
    "assert_schedule_safe",
    "Footprint",
    "FOOTPRINTS",
    "kernel_footprint",
    "sptrsv_footprint",
    "spic0_footprint",
    "spilu0_footprint",
    "implied_dag",
    "RaceWitness",
    "RaceReport",
    "detect_races",
    "TraceRecorder",
    "TraceReport",
    "HappensBeforeViolation",
    "check_trace",
    "MutationResult",
    "MUTATIONS",
    "apply_mutation",
    "run_mutation_suite",
]
