"""Tests for the discrete-event execution simulator."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS, MemoryModel
from repro.runtime import LAPTOP4, MachineConfig, bind_dynamic_partitions, simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


def tiny_machine(**kw):
    defaults = dict(name="tiny", n_cores=2, cache_lines_per_core=64,
                    hit_cycles=1.0, miss_cycles=10.0, cycles_per_cost_unit=1.0,
                    p2p_sync_cycles=5.0)
    defaults.update(kw)
    return MachineConfig(**defaults)


def make_memory(g, stream=1.0, edge=1.0):
    return MemoryModel(
        stream_lines=np.full(g.n, stream),
        edge_lines=np.full(g.n_edges, edge),
    )


class TestBarrierTiming:
    def test_two_independent_vertices(self):
        g = DAG.empty(2)
        s = Schedule(
            n=2,
            levels=[[WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))]],
            sync="barrier", algorithm="t", n_cores=2,
        )
        m = tiny_machine()
        r = simulate(s, g, np.array([3.0, 5.0]), make_memory(g), m)
        # per-vertex: cost + 1 stream miss (10)
        assert r.makespan_cycles == pytest.approx(15.0)  # max(13, 15), 0 barriers
        assert r.core_busy_cycles.tolist() == [13.0, 15.0]
        assert r.n_barriers == 0

    def test_barrier_added_between_levels(self):
        g = DAG.from_edges(2, [0], [1])
        s = Schedule(
            n=2,
            levels=[[WidthPartition(0, np.array([0]))], [WidthPartition(0, np.array([1]))]],
            sync="barrier", algorithm="t", n_cores=2,
        )
        m = tiny_machine()
        r = simulate(s, g, np.ones(2), make_memory(g), m)
        assert r.n_barriers == 1
        # v0: 1 + 10; v1: 1 + 10 (stream) + 1 (edge hit, same core) + barrier
        assert r.makespan_cycles == pytest.approx(11 + 12 + m.barrier_cycles)
        assert r.hits == 1

    def test_cross_core_dependence_misses(self):
        g = DAG.from_edges(2, [0], [1])
        s = Schedule(
            n=2,
            levels=[[WidthPartition(0, np.array([0]))], [WidthPartition(1, np.array([1]))]],
            sync="barrier", algorithm="t", n_cores=2,
        )
        r = simulate(s, g, np.ones(2), make_memory(g), tiny_machine())
        assert r.hits == 0  # consumer on another core: coherence miss
        assert r.misses == 3  # two streams + one edge

    def test_window_eviction(self):
        # 0 -> 2 with a fat vertex 1 in between on the same core
        g = DAG.from_edges(3, [0], [2])
        s = Schedule(
            n=3, levels=[[WidthPartition(0, np.array([0, 1, 2]))]],
            sync="barrier", algorithm="t", n_cores=1,
        )
        mem = MemoryModel(
            stream_lines=np.array([1.0, 100.0, 1.0]), edge_lines=np.array([1.0])
        )
        hit_m = tiny_machine(n_cores=1, cache_lines_per_core=200)
        miss_m = tiny_machine(n_cores=1, cache_lines_per_core=50)
        assert simulate(s, g, np.ones(3), mem, hit_m).hits == 1
        assert simulate(s, g, np.ones(3), mem, miss_m).hits == 0


class TestConsumerReuse:
    def test_second_consumer_hits_even_cross_core_producer(self):
        # u=0 on core 0; consumers 1, 2 both on core 1
        g = DAG.from_edges(3, [0, 0], [1, 2])
        s = Schedule(
            n=3,
            levels=[
                [WidthPartition(0, np.array([0]))],
                [WidthPartition(1, np.array([1, 2]))],
            ],
            sync="barrier", algorithm="t", n_cores=2,
        )
        r = simulate(s, g, np.ones(3), make_memory(g), tiny_machine())
        # first consumer misses (cross core), second hits (data now local)
        assert r.hits == 1
        assert r.misses == 3 + 1  # 3 streams + first consumer


class TestP2PTiming:
    def test_pipeline_overlaps(self):
        # two independent chains on two cores: no sync at all
        g = DAG.from_edges(4, [0, 1], [2, 3])
        s = Schedule(
            n=4,
            levels=[
                [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))],
                [WidthPartition(0, np.array([2])), WidthPartition(1, np.array([3]))],
            ],
            sync="p2p", algorithm="t", n_cores=2,
        )
        r = simulate(s, g, np.ones(4), make_memory(g), tiny_machine())
        assert r.n_p2p_syncs == 0
        assert r.n_barriers == 0

    def test_cross_partition_wait(self):
        # 0 (core 0, heavy) -> 1 (core 1): core 1 waits + sync cost
        g = DAG.from_edges(2, [0], [1])
        s = Schedule(
            n=2,
            levels=[
                [WidthPartition(0, np.array([0]))],
                [WidthPartition(1, np.array([1]))],
            ],
            sync="p2p", algorithm="t", n_cores=2,
        )
        m = tiny_machine()
        r = simulate(s, g, np.array([100.0, 1.0]), make_memory(g), m)
        # v0 exec = 100 + 10; v1 starts at finish + sync, runs 1 + 10 + 10(miss)
        assert r.n_p2p_syncs == 1
        assert r.makespan_cycles == pytest.approx(110 + 5 + 1 + 20)

    def test_p2p_counts_unique_partition_pairs(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["spmp"](g, np.ones(g.n), 4)
        r = simulate(s, g, np.ones(g.n), make_memory(g), tiny_machine(n_cores=4))
        assert r.n_p2p_syncs > 0
        assert r.sync_cycles == pytest.approx(r.n_p2p_syncs * 5.0)


class TestBindDynamic:
    def test_static_schedule_untouched(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["wavefront"](g, np.ones(g.n), 4)
        assert bind_dynamic_partitions(s, np.ones(g.n)) is s

    def test_dynamic_partitions_bound(self):
        parts = [WidthPartition(-1, np.array([i])) for i in range(4)]
        s = Schedule(n=4, levels=[parts], sync="barrier", algorithm="t", n_cores=2)
        bound = bind_dynamic_partitions(s, np.ones(4))
        cores = sorted(p.core for p in bound.levels[0])
        assert all(c >= 0 for c in cores)
        assert set(cores) == {0, 1}
        assert bound.meta.get("bound_dynamic")

    def test_binding_balances_cost(self):
        parts = [WidthPartition(-1, np.array([i])) for i in range(4)]
        s = Schedule(n=4, levels=[parts], sync="barrier", algorithm="t", n_cores=2)
        cost = np.array([4.0, 4.0, 4.0, 4.0])
        bound = bind_dynamic_partitions(s, cost)
        loads = np.zeros(2)
        for p in bound.levels[0]:
            loads[p.core] += p.cost(cost)
        assert loads.tolist() == [8.0, 8.0]


class TestMetricsExposed:
    def test_result_properties(self, mesh_nd):
        kernel = KERNELS["sptrsv"]
        low = lower_triangle(mesh_nd)
        g = kernel.dag(low)
        s = SCHEDULERS["hdagg"](g, kernel.cost(low), 4)
        r = simulate(s, g, kernel.cost(low), kernel.memory_model(low, g), LAPTOP4)
        assert r.total_accesses == r.hits + r.misses
        assert 0 <= r.hit_rate <= 1
        assert LAPTOP4.hit_cycles <= r.avg_memory_access_latency <= LAPTOP4.miss_cycles
        assert 0 <= r.potential_gain < 1
        assert r.makespan_cycles > 0
        assert r.core_busy_cycles.shape == (4,)

    def test_serial_beats_nothing(self, mesh_nd):
        """Parallel makespan never exceeds serial by more than sync cost."""
        kernel = KERNELS["sptrsv"]
        low = lower_triangle(mesh_nd)
        g = kernel.dag(low)
        cost = kernel.cost(low)
        mem = kernel.memory_model(low, g)
        serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, mem, LAPTOP4.scaled(1))
        assert serial.potential_gain == 0.0  # single core is trivially balanced
        assert serial.n_barriers == 0

    def test_memory_model_mismatch_rejected(self, mesh):
        g = dag_from_matrix_lower(mesh)
        s = SCHEDULERS["serial"](g, np.ones(g.n))
        bad = MemoryModel(np.ones(g.n + 1), np.ones(g.n_edges))
        with pytest.raises(ValueError):
            simulate(s, g, np.ones(g.n), bad, LAPTOP4)
