"""Serial schedule: the sequential baseline every NRE computation needs."""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from .base import register_scheduler

__all__ = ["serial_schedule"]


@register_scheduler("serial")
def serial_schedule(g: DAG, cost: np.ndarray, p: int = 1) -> Schedule:
    """All iterations in ascending id order on core 0, no synchronisation."""
    if g.n == 0:
        return Schedule(n=0, levels=[], sync="barrier", algorithm="serial", n_cores=1)
    return run_scheduler_group("serial", g, cost, p)
