"""Generic pass-group executor.

Runs a :class:`~repro.passes.base.PassGroup` over a
:class:`~repro.passes.base.PassContext`, wrapping each pass with exactly
the instrumentation the inline inspector used: a :class:`StageTimer`
stage when ``timer_label`` is set, an ``inspect/<stage>`` span when the
ambient observability state is enabled, and an ``inspector.stage``
fault-injection point when ``fault_label`` is set.  The executor enforces
the *runtime* half of each contract (required artifacts present, returned
products exactly as declared); the *static* half — artifact dataflow over
the whole list, invariant propagation, backend-tier coverage — is
:func:`repro.statan.verify_pipeline`'s job and runs without executing
anything.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, ContextManager, Dict

from ..observability.state import STATE as _OBS_STATE
from ..resilience.faults import fault_point
from .base import Pass, PassContext, PassGroup

__all__ = ["PipelineExecutionError", "run_group"]

#: shared no-op context manager for the disabled-observability path
_NULL_CM: ContextManager[None] = nullcontext()


class PipelineExecutionError(RuntimeError):
    """A pass violated its contract at runtime.

    Static verification catches ill-formed *pipelines*; this error
    catches a pass whose implementation drifted from its own declaration
    (required artifact absent at run time, products not matching
    ``produces``).
    """

    def __init__(self, group: str, pass_name: str, message: str) -> None:
        super().__init__(f"group {group!r}, pass {pass_name!r}: {message}")
        self.group = group
        self.pass_name = pass_name


def _span(p: Pass, ctx: PassContext) -> ContextManager[Any]:
    """An ``inspect/<stage>`` span when observability is on, else a no-op."""
    if p.span is None or not _OBS_STATE.enabled:
        return _NULL_CM
    attrs: Dict[str, Any] = p.span_attrs(ctx) if p.span_attrs is not None else {}
    return _OBS_STATE.tracer.span(p.span, **attrs)


def _timer(p: Pass, ctx: PassContext) -> ContextManager[Any]:
    if p.timer_label is None or ctx.timer is None:
        return _NULL_CM
    return ctx.timer.stage(p.timer_label)


def run_group(group: PassGroup, ctx: PassContext) -> PassContext:
    """Execute every pass of ``group`` in order over ``ctx``.

    Returns the same context with all products stored.  Raises
    :class:`PipelineExecutionError` when a pass's runtime behaviour
    contradicts its contract — which, for a pipeline accepted by
    :func:`repro.statan.verify_pipeline`, indicates an implementation bug
    rather than a wiring bug.
    """
    for p in group.passes:
        missing = [a for a in p.contract.requires if not ctx.has(a)]
        if missing:
            raise PipelineExecutionError(
                group.name,
                p.name,
                f"required artifacts missing at run time: {missing} "
                f"(run repro.statan.verify_pipeline to catch this statically)",
            )
        with _timer(p, ctx), _span(p, ctx):
            if p.fault_label is not None:
                fault_point("inspector.stage", label=p.fault_label)
            products = p.run(ctx)
        declared = set(p.contract.produces)
        got = set(products)
        if got != declared:
            raise PipelineExecutionError(
                group.name,
                p.name,
                f"products {sorted(got)} do not match declared produces {sorted(declared)}",
            )
        for name, value in products.items():
            ctx.put(name, value)
    for out in group.outputs:
        if not ctx.has(out):
            raise PipelineExecutionError(
                group.name, "<outputs>", f"group output {out!r} was never produced"
            )
    return ctx
