"""Per-core cache model: the locality half of the execution simulator.

The paper's locality metric is the *average memory access latency* measured
with PAPI counters (Section V-A, Figure 6).  The model here reproduces that
metric from first principles: each core owns a private LRU-like cache of
``capacity`` 64-byte lines; every access in a kernel iteration's line trace
is a hit (``hit_cycles``) or a miss (``miss_cycles``), and the
access-weighted mean is the reported latency.

Two implementations with one contract:

* :class:`LRUCache` — an exact LRU simulator (ordered dict), used by the
  tests and available for small problems;
* :func:`reuse_window_hits` — the vectorized production path: an access
  hits iff its *reuse distance proxy* (number of accesses since the
  previous touch of the same line) is below the capacity window.  Time
  distance upper-bounds true LRU stack distance, so the approximation is
  conservative and — crucially for the paper's comparisons — identical
  across all schedulers, preserving relative locality.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

__all__ = ["LRUCache", "reuse_window_hits", "per_vertex_memory_cycles"]


class LRUCache:
    """Exact LRU set of line ids with hit/miss counting."""

    __slots__ = ("capacity", "_lines", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one line; returns True on hit."""
        cache = self._lines
        if line in cache:
            cache.move_to_end(line)
            self.hits += 1
            return True
        cache[line] = None
        if len(cache) > self.capacity:
            cache.popitem(last=False)
        self.misses += 1
        return False

    def access_trace(self, lines: np.ndarray) -> np.ndarray:
        """Touch a whole trace; returns the per-access hit mask."""
        out = np.empty(lines.shape[0], dtype=bool)
        for k, line in enumerate(lines.tolist()):
            out[k] = self.access(line)
        return out

    def __len__(self) -> int:
        return len(self._lines)


def reuse_window_hits(trace: np.ndarray, capacity: int) -> np.ndarray:
    """Vectorized hit mask: hit iff the same line was touched within the
    last ``capacity`` accesses (cold first touches always miss).

    O(N log N) from one stable argsort; no Python-level loop.
    """
    n = trace.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(trace, kind="stable")
    sorted_lines = trace[order]
    prev = np.full(n, -(10**18), dtype=np.int64)
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev[order[1:][same]] = order[:-1][same]
    dist = np.arange(n, dtype=np.int64) - prev
    return dist <= capacity


def per_vertex_memory_cycles(
    ptr: np.ndarray,
    hit_mask: np.ndarray,
    hit_cycles: float,
    miss_cycles: float,
) -> Tuple[np.ndarray, int, int]:
    """Fold a per-access hit mask back into per-vertex memory cycles.

    ``ptr`` is the ragged trace pointer (vertex ``i`` owns accesses
    ``ptr[i]:ptr[i+1]`` *of this core's concatenated trace*).  Returns
    ``(cycles_per_vertex, hits, misses)``.
    """
    lat = np.where(hit_mask, hit_cycles, miss_cycles)
    cum = np.concatenate(([0.0], np.cumsum(lat)))
    cycles = cum[ptr[1:]] - cum[ptr[:-1]]
    hits = int(np.count_nonzero(hit_mask))
    return cycles, hits, int(hit_mask.shape[0] - hits)
