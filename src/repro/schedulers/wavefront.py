"""Wavefront parallelism baseline (level-set scheduling with global barriers).

The classic inspector [2], [3]: traverse the DAG in topological order to
build the list of wavefronts; each wavefront's iterations run in parallel
and a global barrier follows every wavefront.  Within a wavefront, rows are
split into at most ``p`` contiguous cost-balanced chunks (the standard
``omp parallel for`` with static cost-aware chunking).

Weaknesses the paper calls out — a barrier per level (count grows with the
critical path), no reuse of dependent iterations on one core — fall out of
the structure and are measured by the metrics layer.

The stages live in :mod:`repro.passes.baselines` (the shared
``wavefronts`` pass plus a cost-chunking emit pass); this function is the
registered entry point that runs the ``"wavefront"`` pass group.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from .base import register_scheduler

__all__ = ["wavefront_schedule"]


@register_scheduler("wavefront")
def wavefront_schedule(g: DAG, cost: np.ndarray, p: int) -> Schedule:
    """One coarsened wavefront per level, cost-balanced chunks, barrier sync."""
    cost = np.asarray(cost, dtype=np.float64)
    return run_scheduler_group("wavefront", g, cost, p)
