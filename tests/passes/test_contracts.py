"""Contract and context model: closed catalogs, typo hints, artifact store."""

import pytest

from repro.passes import (
    ARTIFACTS,
    Contract,
    ContractError,
    INVARIANTS,
    MissingArtifactError,
    Pass,
    PassContext,
    PassGroup,
)


def _noop(ctx):
    return {}


def test_catalogs_are_nonempty_and_documented():
    for catalog in (ARTIFACTS, INVARIANTS):
        assert catalog
        for name, doc in catalog.items():
            assert name and doc, name


def test_contract_accepts_catalog_names():
    c = Contract(
        requires=("DAG", "Cost"),
        produces=("Schedule",),
        requires_invariants=("acyclic",),
        establishes=("vertex-cover",),
        preserves=("topo-ordered",),
        invalidates=("transitively-reduced",),
    )
    assert c.requires == ("DAG", "Cost")


def test_unknown_artifact_rejected_with_close_match_hint():
    with pytest.raises(ContractError) as exc_info:
        Contract(requires=("Schedul",))
    msg = str(exc_info.value)
    assert "unknown artifact 'Schedul'" in msg
    assert "did you mean 'Schedule'?" in msg


def test_unknown_invariant_rejected_with_close_match_hint():
    with pytest.raises(ContractError) as exc_info:
        Contract(establishes=("acyclical",))
    msg = str(exc_info.value)
    assert "unknown invariant 'acyclical'" in msg
    assert "did you mean 'acyclic'?" in msg


def test_unknown_name_without_neighbour_lists_catalog():
    with pytest.raises(ContractError) as exc_info:
        Contract(produces=("zzz-nothing-close",))
    assert "catalog:" in str(exc_info.value)


def test_establishes_and_invalidates_must_be_disjoint():
    with pytest.raises(ContractError, match="both establishes and invalidates"):
        Contract(establishes=("acyclic",), invalidates=("acyclic",))


def test_pass_rejects_unknown_repair_policy():
    with pytest.raises(ValueError, match="unknown repair policy"):
        Pass(name="p", contract=Contract(), run=_noop, repair="guess")


def test_pass_group_lookup_by_name():
    p = Pass(name="only", contract=Contract(produces=("Schedule",)), run=_noop)
    group = PassGroup(name="g", passes=(p,), inputs=("DAG",))
    assert group.pass_named("only") is p
    with pytest.raises(KeyError, match="no pass named 'missing'"):
        group.pass_named("missing")


def test_context_get_put_has_names():
    ctx = PassContext({"DAG": "g"}, options={"k": 2})
    assert ctx.has("DAG") and not ctx.has("Cost")
    assert ctx["DAG"] == "g"
    ctx.put("Cost", [1.0])
    assert set(ctx.names()) == {"DAG", "Cost"}
    assert ctx.options["k"] == 2


def test_context_missing_artifact_error_lists_available():
    ctx = PassContext({"DAG": "g", "Cores": 4})
    with pytest.raises(MissingArtifactError) as exc_info:
        ctx.get("Schedule")
    err = exc_info.value
    assert err.artifact == "Schedule"
    assert set(err.available) == {"DAG", "Cores"}
    assert "available: ['Cores', 'DAG']" in str(err)
    # it is still a KeyError, so existing `except KeyError` callers work
    assert isinstance(err, KeyError)


def test_registered_contracts_only_use_catalog_names():
    """Every registered group was constructed through the validating path."""
    from repro.passes import PASS_GROUPS

    for group in PASS_GROUPS.values():
        for p in group.passes:
            for a in p.contract.requires + p.contract.produces:
                assert a in ARTIFACTS, (group.name, p.name, a)
            for inv in (
                p.contract.requires_invariants
                + p.contract.establishes
                + p.contract.preserves
                + p.contract.invalidates
            ):
                assert inv in INVARIANTS, (group.name, p.name, inv)
