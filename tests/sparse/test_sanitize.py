"""CSR input hardening: structured repair/reject of malformed matrices."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    CSRSanitizeError,
    MatrixMarketParseError,
    loads_matrix_market,
    poisson2d,
    sanitize_csr,
)


def _codes(exc_or_report):
    report = getattr(exc_or_report, "report", exc_or_report)
    return {i.code for i in report.issues}


class TestStructuralRejection:
    """Structural corruption is never repairable."""

    def test_indptr_regression(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(
                n_rows=3, n_cols=3,
                indptr=[0, 2, 1, 3],
                indices=[0, 1, 2],
                data=[1.0, 1.0, 1.0],
            )
        assert _codes(e.value) == {"indptr_regression"}

    def test_indptr_wrong_length(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(n_rows=3, n_cols=3, indptr=[0, 1], indices=[0], data=[1.0])
        assert _codes(e.value) == {"indptr_length"}

    def test_indptr_bad_start(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(n_rows=2, n_cols=2, indptr=[1, 1, 2], indices=[0], data=[1.0])
        assert _codes(e.value) == {"indptr_start"}

    def test_truncated_arrays(self):
        # indptr promises 4 entries, arrays hold 2 — a truncated download
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(
                n_rows=2, n_cols=2, indptr=[0, 2, 4], indices=[0, 1], data=[1.0, 2.0]
            )
        assert _codes(e.value) == {"length_mismatch"}

    def test_negative_shape(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(n_rows=-1, n_cols=2, indptr=[0], indices=[], data=[])
        assert _codes(e.value) == {"bad_shape"}

    def test_uncoercible_arrays(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(
                n_rows=1, n_cols=1, indptr=[0, 1], indices=["x"], data=[1.0]
            )
        assert "bad_arrays" in _codes(e.value)

    def test_report_attached_and_described(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(
                n_rows=3, n_cols=3, indptr=[0, 2, 1, 3],
                indices=[0, 1, 2], data=[1.0, 1.0, 1.0], name="bad-case"
            )
        report = e.value.report
        assert report.name == "bad-case"
        assert "indptr_regression" in report.describe()
        assert report.as_dict()["ok"] is False


class TestRepair:
    def test_out_of_range_columns_dropped(self):
        m, report = sanitize_csr(
            n_rows=2, n_cols=2, indptr=[0, 2, 3], indices=[0, 7, 1],
            data=[1.0, 9.0, 2.0],
        )
        assert _codes(report) == {"col_out_of_range"}
        assert report.repaired
        assert m.nnz == 2 and m.indices.tolist() == [0, 1]

    def test_nonfinite_values_dropped(self):
        m, report = sanitize_csr(
            n_rows=2, n_cols=2, indptr=[0, 2, 3], indices=[0, 1, 1],
            data=[1.0, np.nan, np.inf],
        )
        assert _codes(report) == {"nonfinite_data"}
        assert m.nnz == 1 and np.isfinite(m.data).all()

    def test_unsorted_columns_sorted(self):
        m, report = sanitize_csr(
            n_rows=1, n_cols=3, indptr=[0, 3], indices=[2, 0, 1],
            data=[3.0, 1.0, 2.0],
        )
        assert "col_unsorted" in _codes(report)
        assert m.indices.tolist() == [0, 1, 2]
        assert m.data.tolist() == [1.0, 2.0, 3.0]

    def test_duplicates_summed(self):
        m, report = sanitize_csr(
            n_rows=1, n_cols=2, indptr=[0, 3], indices=[0, 0, 1],
            data=[1.0, 2.0, 5.0],
        )
        assert "col_duplicate" in _codes(report)
        assert m.nnz == 2
        assert m.data.tolist() == [3.0, 5.0]

    def test_missing_diagonal_inserted_on_request(self):
        m, report = sanitize_csr(
            n_rows=2, n_cols=2, indptr=[0, 1, 1], indices=[0], data=[4.0],
            ensure_diagonal=True,
        )
        assert "missing_diagonal" in _codes(report)
        assert m.indices.tolist() == [0, 1]
        assert m.data.tolist() == [4.0, 1.0]

    def test_repaired_matrix_satisfies_invariants(self):
        m, _ = sanitize_csr(
            n_rows=2, n_cols=2, indptr=[0, 3, 4], indices=[1, 0, 9, 1],
            data=[2.0, 1.0, np.nan, 3.0], ensure_diagonal=True,
        )
        # re-validate through the strict constructor
        CSRMatrix(m.n_rows, m.n_cols, m.indptr, m.indices, m.data)

    def test_repair_false_rejects_repairable_defects(self):
        with pytest.raises(CSRSanitizeError) as e:
            sanitize_csr(
                n_rows=1, n_cols=2, indptr=[0, 2], indices=[0, 0],
                data=[1.0, 2.0], repair=False,
            )
        assert all(not i.repaired for i in e.value.report.issues)


class TestCleanPassthrough:
    def test_clean_matrix_same_object_empty_report(self):
        a = poisson2d(6, seed=1)
        out, report = sanitize_csr(a, ensure_diagonal=True)
        assert out is a
        assert report.ok and not report.repaired and not report.issues

    def test_empty_matrix_is_clean(self):
        m, report = sanitize_csr(
            n_rows=0, n_cols=0, indptr=[0], indices=[], data=[],
            ensure_diagonal=True,
        )
        assert report.ok and m.nnz == 0

    def test_input_validation(self):
        with pytest.raises(TypeError):
            sanitize_csr()
        with pytest.raises(TypeError):
            sanitize_csr("nope")


class TestMatrixMarketIntegration:
    def test_truncated_file_structured_error(self):
        text = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n"
        with pytest.raises(MatrixMarketParseError, match="declared"):
            loads_matrix_market(text)

    def test_bad_entry_structured_error(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n"
        with pytest.raises(MatrixMarketParseError, match="bad entry"):
            loads_matrix_market(text)

    def test_out_of_range_entry_rejected_by_default(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1.0\n"
        with pytest.raises((MatrixMarketParseError, CSRSanitizeError)):
            loads_matrix_market(text)

    def test_out_of_range_entry_dropped_under_repair(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 1.0\n9 1 5.0\n"
        )
        m = loads_matrix_market(text, repair=True)
        assert m.nnz == 1 and m.indices.tolist() == [0]

    def test_duplicate_entries_rejected_then_repaired(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n1 1 1.0\n1 1 2.0\n2 2 4.0\n"
        )
        with pytest.raises(CSRSanitizeError):
            loads_matrix_market(text)
        m = loads_matrix_market(text, repair=True)
        assert m.nnz == 2
        assert m.data.tolist() == [3.0, 4.0]

    def test_nan_data_rejected_then_repaired(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 nan\n2 2 4.0\n"
        )
        with pytest.raises(CSRSanitizeError):
            loads_matrix_market(text)
        m = loads_matrix_market(text, repair=True)
        assert m.nnz == 1 and m.data.tolist() == [4.0]
