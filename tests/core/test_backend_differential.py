"""Differential backend tests: reference ≡ numpy ≡ compiled, bit for bit.

Every tier of every inspector stage must produce the same schedule —
same partitions, same cut positions, same packing-load floats — or the
backend registry is changing *answers*, not just speed.  The default run
covers a representative subset of the dataset grid; set
``REPRO_DIFF_FULL=1`` to sweep all 34 matrices (the CI ``compiled`` job
does).  When the native library has not been built the compiled rows are
skipped, never silently downgraded: a silent numpy fallback would make
this suite vacuous exactly when it matters.
"""

import os
import warnings

import numpy as np
import pytest

from repro.core import hdagg
from repro.core.backends import BackendSpec, BackendWarning
from repro.core.backends.native import available as native_available
from repro.suite import SUITE
from repro.suite.harness import build_cell

#: every family, both size buckets — the quick default grid
_SUBSET = [
    "mesh2d-s",
    "mesh2d-l",
    "mesh3d-s",
    "band-narrow",
    "rand-mid",
    "chain-pure",
    "blocks-many",
    "power-soft",
    "kite-small",
    "arrow-many",
]

MATRICES = (
    [s.name for s in SUITE] if os.environ.get("REPRO_DIFF_FULL") else _SUBSET
)

#: non-default tiers differenced against the numpy baseline; the compiled
#: tier only covers the two hot stages, so its spec names exactly those —
#: a bare "compiled" would (by design) warn-fallback on the others
TIER_SPECS = {
    "reference": "reference",
    "compiled": "lbp=compiled,coarsen=compiled",
}


def _schedule_for(cell, spec):
    g = cell.dag
    cost = np.asarray(cell.cost, dtype=np.float64)[: g.n]
    with warnings.catch_warnings():
        # a fallback warning here means the tier under test did not run
        warnings.simplefilter("error", BackendWarning)
        return hdagg(g, cost, cell.machine.n_cores, backend=spec)


def _assert_identical(a, b, context):
    assert a.n == b.n, context
    assert a.fine_grained == b.fine_grained, context
    assert len(a.levels) == len(b.levels), context
    for la, lb in zip(a.levels, b.levels):
        assert len(la) == len(lb), context
        for pa, pb in zip(la, lb):
            assert pa.core == pb.core, context
            assert np.array_equal(pa.vertices, pb.vertices), context
    # float bit-identity, not closeness: accumulated PGP is a sum of
    # packing-load means/maxima and must replay exactly across tiers
    assert a.meta["accumulated_pgp"] == b.meta["accumulated_pgp"], context
    assert list(a.meta["cut_positions"]) == list(b.meta["cut_positions"]), context
    assert a.meta["n_groups"] == b.meta["n_groups"], context


@pytest.fixture(scope="module")
def baseline_cells():
    """(cell, numpy schedule) per matrix, built once for every tier."""
    out = {}
    for name in MATRICES:
        cell = build_cell(name, kernel="sptrsv", machine="intel20")
        out[name] = (cell, _schedule_for(cell, BackendSpec()))
    return out


@pytest.mark.parametrize("matrix", MATRICES)
@pytest.mark.parametrize("tier", sorted(TIER_SPECS))
def test_tier_matches_numpy(baseline_cells, matrix, tier):
    if tier == "compiled" and not native_available():
        pytest.skip("native library not built (python -m repro.core.backends.build)")
    cell, base = baseline_cells[matrix]
    spec = BackendSpec.parse(TIER_SPECS[tier])
    other = _schedule_for(cell, spec)
    _assert_identical(base, other, f"{matrix}: {tier} vs numpy")
    # the schedule must advertise the tier that actually ran
    assert other.meta["backend"] == spec.describe()
    assert base.meta["backend"] == "numpy"


@pytest.mark.parametrize("matrix", _SUBSET[:4])
def test_mixed_specs_match_numpy(baseline_cells, matrix):
    """Per-stage mixes (the realistic production specs) agree too."""
    if not native_available():
        pytest.skip("native library not built (python -m repro.core.backends.build)")
    cell, base = baseline_cells[matrix]
    for raw in ("lbp=compiled", "coarsen=compiled", "lbp=compiled,coarsen=compiled",
                "aggregate=reference,lbp=compiled"):
        other = _schedule_for(cell, BackendSpec.parse(raw))
        _assert_identical(base, other, f"{matrix}: {raw} vs numpy")
        assert other.meta["backend"] == BackendSpec.parse(raw).describe()
