"""Derived reports over traces: utilization, sync cost, trace-vs-model.

These turn a :class:`~repro.observability.timeline.CoreTimeline` (wall
clock from the threaded executor, or model cycles from the simulator) into
the paper-style summaries:

* **per-core utilization** — busy / barrier-wait / p2p-wait / idle share
  per core (the per-core timeline view of Figures 7-9);
* **sync-cost breakdown** — total synchronisation time split by mechanism,
  with the most expensive point-to-point dependences attributed;
* **imbalance comparison** — potential gain measured from traced busy time
  against the schedule-side prediction
  (:func:`repro.core.pgp.accumulated_pgp` over the inspector's bins) and
  the simulator's measured PG, i.e. the trace-vs-model differential.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .timeline import CoreTimeline

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schedule import Schedule

# ..core and ..suite are imported lazily inside the functions below:
# instrumented modules (runtime, core, schedulers) import
# repro.observability.state, so this package must not import them back
# at module scope.

__all__ = [
    "utilization_rows",
    "utilization_report",
    "sync_breakdown",
    "sync_report",
    "imbalance_comparison",
    "imbalance_report",
    "stage_share_rows",
    "stage_share_report",
]


def utilization_rows(timeline: CoreTimeline) -> List[list]:
    """Per-core rows: core, busy, barrier wait, p2p wait, idle, busy %."""
    rows: List[list] = []
    wall = timeline.wall
    for core in sorted(timeline.cores):
        by_kind = timeline.seconds_by_kind(core)
        rows.append(
            [
                core,
                by_kind["busy"],
                by_kind["barrier_wait"],
                by_kind["p2p_wait"],
                by_kind["idle"],
                100.0 * by_kind["busy"] / wall if wall > 0 else 0.0,
            ]
        )
    return rows


def utilization_report(timeline: CoreTimeline, *, unit: str = "s") -> str:
    from ..suite.reporting import format_table

    headers = ["core", f"busy ({unit})", f"barrier ({unit})", f"p2p ({unit})",
               f"idle ({unit})", "busy %"]
    return format_table(headers, utilization_rows(timeline),
                        title="Per-core utilization", digits=4)


def sync_breakdown(timeline: CoreTimeline, *, top: int = 5) -> dict:
    """Synchronisation cost split by mechanism, with wait attribution.

    ``top_dependences`` ranks the vertices most waited *for* across all
    ``p2p_wait`` segments — the schedule's serialisation hot spots.
    """
    barrier = 0.0
    p2p = 0.0
    idle = 0.0
    busy = 0.0
    waited_on: Dict[int, float] = {}
    tally = _TallyCounter()
    for seg in (s for segs in timeline.cores.values() for s in segs):
        if seg.kind == "barrier_wait":
            barrier += seg.duration
        elif seg.kind == "p2p_wait":
            p2p += seg.duration
            if seg.dependence >= 0:
                waited_on[seg.dependence] = waited_on.get(seg.dependence, 0.0) + seg.duration
                tally[seg.dependence] += 1
        elif seg.kind == "idle":
            idle += seg.duration
        else:
            busy += seg.duration
    ranked = sorted(waited_on.items(), key=lambda kv: -kv[1])[:top]
    return {
        "busy": busy,
        "barrier_wait": barrier,
        "p2p_wait": p2p,
        "idle": idle,
        "sync_total": barrier + p2p,
        "top_dependences": [
            {"vertex": int(v), "waited": w, "n_waits": int(tally[v])} for v, w in ranked
        ],
    }


def sync_report(timeline: CoreTimeline, *, unit: str = "s") -> str:
    b = sync_breakdown(timeline)
    lines = [
        "Synchronisation cost breakdown",
        "==============================",
        f"busy         {b['busy']:.6g} {unit}",
        f"barrier wait {b['barrier_wait']:.6g} {unit}",
        f"p2p wait     {b['p2p_wait']:.6g} {unit}",
        f"idle         {b['idle']:.6g} {unit}",
        f"sync total   {b['sync_total']:.6g} {unit}",
    ]
    if b["top_dependences"]:
        lines.append("most-waited-on dependences:")
        for d in b["top_dependences"]:
            lines.append(
                f"  vertex {d['vertex']}: {d['waited']:.6g} {unit} over {d['n_waits']} waits"
            )
    return "\n".join(lines)


def stage_share_rows(stage_seconds: Dict[str, float]) -> List[list]:
    """Per-stage rows: stage, seconds, share of the summed leaf stages.

    Input is any ``{stage: seconds}`` mapping (a StageTimer dump, or the
    perf-lab's per-observation stage medians).  Aggregate entries whose
    children are also present (``inspect`` next to ``inspect/lbp``) are
    excluded from the share denominator so percentages add up to 100.
    """
    leaves = {
        name: float(s)
        for name, s in stage_seconds.items()
        if not any(other != name and other.startswith(f"{name}/")
                   for other in stage_seconds)
    }
    total = sum(leaves.values())
    return [
        [name, seconds, 100.0 * seconds / total if total > 0 else 0.0]
        for name, seconds in sorted(leaves.items(), key=lambda kv: -kv[1])
    ]


def stage_share_report(stage_seconds: Dict[str, float], *, unit: str = "s") -> str:
    from ..suite.reporting import format_table

    rows = stage_share_rows(stage_seconds)
    return format_table(["stage", unit, "share %"], rows,
                        title="Stage breakdown", digits=4)


def imbalance_comparison(
    timeline: CoreTimeline,
    schedule: Schedule,
    cost: np.ndarray,
    *,
    simulated_pg: Optional[float] = None,
) -> dict:
    """Trace-vs-model load-balance differential.

    * ``traced_pg`` — PG from the timeline's per-core busy time;
    * ``predicted_pgp`` — the inspector-side prediction
      (:func:`~repro.core.pgp.accumulated_pgp` over the schedule's bins
      with the kernel cost model);
    * ``simulated_pg`` — the simulator's measured PG when provided.

    Returns the three plus their pairwise absolute differences; the
    cross-check tests assert the trace agrees with the model within
    tolerance.
    """
    from ..core.pgp import accumulated_pgp

    traced = timeline.measured_pg()
    predicted = accumulated_pgp(schedule, np.asarray(cost, dtype=np.float64))
    out = {
        "traced_pg": traced,
        "predicted_pgp": predicted,
        "traced_vs_predicted": abs(traced - predicted),
    }
    if simulated_pg is not None:
        out["simulated_pg"] = simulated_pg
        out["traced_vs_simulated"] = abs(traced - simulated_pg)
    return out


def imbalance_report(
    timeline: CoreTimeline,
    schedule: Schedule,
    cost: np.ndarray,
    *,
    simulated_pg: Optional[float] = None,
) -> str:
    from ..suite.reporting import format_table

    c = imbalance_comparison(timeline, schedule, cost, simulated_pg=simulated_pg)
    rows = [["traced PG (timeline busy)", c["traced_pg"]],
            ["predicted PGP (inspector)", c["predicted_pgp"]],
            ["|traced - predicted|", c["traced_vs_predicted"]]]
    if simulated_pg is not None:
        rows.append(["simulated PG", c["simulated_pg"]])
        rows.append(["|traced - simulated|", c["traced_vs_simulated"]])
    return format_table(["quantity", "value"], rows,
                        title="Load imbalance: trace vs model", digits=4)
