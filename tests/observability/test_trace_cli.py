"""End-to-end tests for ``hdagg-bench trace`` and the dormant-path contract."""

import json

import pytest

from repro.observability.trace_cli import build_trace_parser, trace_main
from repro.suite.cli import main as suite_main

#: timing-derived RunRecord fields — wall-clock, so they differ between any
#: two runs regardless of instrumentation; everything else is deterministic
_TIMING_FIELDS = ("inspector_seconds", "inspector_cycles", "nre", "stage_seconds")


def test_parser_defaults():
    args = build_trace_parser().parse_args([])
    assert args.matrix == "mesh2d-s"
    assert args.kernel == "sptrsv"
    assert args.algorithm == "hdagg"
    assert args.out == "trace-out"


def test_trace_main_writes_all_artifacts(tmp_path, capsys):
    out = tmp_path / "traces"
    rc = trace_main(["--matrix", "mesh2d-s", "--machine", "laptop4",
                     "--out", str(out)])
    assert rc == 0
    spans = [json.loads(line)
             for line in (out / "spans.jsonl").read_text().splitlines()]
    assert any(s["name"] == "inspect/hdagg" for s in spans)
    assert any(s["name"].startswith("execute/wavefront[") for s in spans)
    assert any(s["name"].startswith("execute/partition[") for s in spans)

    trace = json.loads((out / "trace.json").read_text())
    model = json.loads((out / "model_trace.json").read_text())
    for doc in (trace, model):
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
    # the model trace carries the simulator's per-core rows
    model_meta = [e["args"]["name"] for e in model["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "core 0" in model_meta

    metrics = json.loads((out / "metrics.json").read_text())
    assert metrics["version"] == 1
    m = metrics["metrics"]
    assert m["inspector.runs.hdagg"]["value"] == 1.0
    assert "inspector.vertices_coarsened" in m
    assert "inspector.pgp_at_merge" in m
    assert "simulator.makespan_cycles" in m

    text = capsys.readouterr().out
    assert "per-core utilization" in text or "core" in text
    assert "sync" in text


def test_trace_main_model_only(tmp_path):
    out = tmp_path / "t"
    rc = trace_main(["--matrix", "mesh2d-s", "--machine", "laptop4",
                     "--algorithm", "spmp", "--no-threaded",
                     "--out", str(out)])
    assert rc == 0
    # no threaded run: no executor spans, but the model timeline exists
    spans = [json.loads(line)
             for line in (out / "spans.jsonl").read_text().splitlines()]
    assert not any(s["name"].startswith("execute/") for s in spans)
    assert (out / "model_trace.json").exists()


def test_trace_main_rejects_unknown_scheduler(capsys):
    assert trace_main(["--algorithm", "nope"]) == 2
    assert "unknown scheduler" in capsys.readouterr().err


def test_trace_subcommand_dispatches_through_hdagg_bench(tmp_path):
    rc = suite_main(["trace", "--matrix", "mesh2d-s", "--machine", "laptop4",
                     "--no-threaded", "--out", str(tmp_path / "o")])
    assert rc == 0


def test_records_identical_with_and_without_observability():
    """The enabled path must not perturb any deterministic record field.

    (The dormant path's byte-for-byte stability across runs is gated by
    ``benchmarks/smoke_observability.py``.)
    """
    from repro.observability.state import observed
    from repro.suite.harness import Harness
    from repro.suite.matrices import small_suite
    from repro.suite.storage import record_to_blob

    spec = min(small_suite(), key=lambda s: s.build().n_rows)

    def run():
        harness = Harness(machines=["laptop4"], kernels=["sptrsv"])
        return harness.run_suite([spec])

    plain = run()
    with observed() as (tracer, registry):
        traced = run()
    assert len(tracer.spans) > 0  # the instrumentation actually fired
    assert registry.counter("inspector.runs.hdagg").value >= 1

    assert len(plain) == len(traced)
    for a, b in zip(plain, traced):
        blob_a = {k: v for k, v in record_to_blob(a).items()
                  if k not in _TIMING_FIELDS}
        blob_b = {k: v for k, v in record_to_blob(b).items()
                  if k not in _TIMING_FIELDS}
        assert blob_a == blob_b
