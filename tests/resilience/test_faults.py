"""Deterministic fault injection: plans, sites, corruption primitives."""

import multiprocessing
import random

import numpy as np
import pytest

from repro.resilience.faults import (
    CSR_CORRUPTIONS,
    FAULT_EXIT_CODE,
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultSpec,
    active_plan,
    armed,
    corrupt_csr_arrays,
    corrupt_schedule,
    fault_point,
)
from repro.sparse import CSRSanitizeError, poisson2d, sanitize_csr


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no.such.site", "raise")

    def test_unsupported_action_rejected(self):
        with pytest.raises(ValueError, match="does not support action"):
            FaultSpec("inspector", "exit")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("inspector", "raise", at=-1)
        with pytest.raises(ValueError):
            FaultSpec("inspector", "raise", times=0)

    def test_fires_at_window(self):
        s = FaultSpec("inspector", "raise", at=2, times=2)
        assert [s.fires_at(i, None) for i in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_fires_at_unbounded_and_match(self):
        s = FaultSpec("inspector", "raise", at=1, times=-1, match="hdagg")
        assert not s.fires_at(5, "wavefront")
        assert not s.fires_at(0, "hdagg")
        assert s.fires_at(1, "hdagg") and s.fires_at(100, "hdagg")


class TestFaultPoint:
    def test_dormant_is_noop(self):
        assert active_plan() is None
        assert fault_point("inspector", label="hdagg") is None
        assert fault_point("harness.prepare", payload=object()) is None

    def test_raise_action_carries_context(self):
        plan = FaultPlan([FaultSpec("inspector", "raise", at=1)])
        with armed(plan):
            assert fault_point("inspector", label="a") is None
            with pytest.raises(FaultError) as exc_info:
                fault_point("inspector", label="b")
        err = exc_info.value
        assert (err.site, err.label, err.occurrence) == ("inspector", "b", 1)
        assert len(plan.fired) == 1
        assert plan.fired[0].action == "raise"

    def test_occurrence_counters_are_per_site(self):
        plan = FaultPlan([FaultSpec("suite.matrix", "raise", at=1)])
        with armed(plan):
            # occurrences at other sites must not advance suite.matrix's count
            fault_point("inspector")
            fault_point("inspector")
            assert fault_point("suite.matrix") is None
            with pytest.raises(FaultError):
                fault_point("suite.matrix")

    def test_nested_arming_refused(self):
        plan = FaultPlan([FaultSpec("inspector", "raise")])
        with armed(plan):
            with pytest.raises(RuntimeError, match="already armed"):
                with armed(FaultPlan([])):
                    pass
        assert active_plan() is None

    def test_armed_none_is_noop(self):
        with armed(None):
            assert active_plan() is None

    def test_disarmed_after_exception(self):
        plan = FaultPlan([FaultSpec("inspector", "raise", times=-1)])
        with pytest.raises(FaultError):
            with armed(plan):
                fault_point("inspector")
        assert active_plan() is None


class TestDeterminism:
    def test_chaos_plan_reproducible(self):
        for seed in (0, 7, 123):
            a, b = FaultPlan.chaos(seed), FaultPlan.chaos(seed)
            assert a.specs == b.specs
            assert a.describe() == b.describe()

    def test_chaos_plans_differ_across_seeds(self):
        assert {FaultPlan.chaos(s).describe() for s in range(8)} != {
            FaultPlan.chaos(0).describe()
        } or True  # at least one seed differs from seed 0
        assert any(
            FaultPlan.chaos(s).specs != FaultPlan.chaos(0).specs for s in range(1, 8)
        )

    def test_chaos_sites_stay_in_process(self):
        for seed in range(10):
            for spec in FaultPlan.chaos(seed).specs:
                assert spec.site in FAULT_SITES
                assert spec.action != "exit"

    def test_corruption_reproducible(self, mesh):
        out = []
        for _ in range(2):
            rng = random.Random(42)
            mode = rng.choice(CSR_CORRUPTIONS)
            out.append(corrupt_csr_arrays(mesh, mode, rng))
        for x, y in zip(out[0], out[1]):
            np.testing.assert_array_equal(x, y)


class TestCorruptionPrimitives:
    @pytest.mark.parametrize("mode", CSR_CORRUPTIONS)
    def test_every_mode_detected_by_sanitizer(self, mode, mesh):
        raw = corrupt_csr_arrays(mesh, mode, random.Random(5))
        assert isinstance(raw, tuple) and len(raw) == 5
        if mode == "indptr_regression":
            with pytest.raises(CSRSanitizeError) as exc_info:
                sanitize_csr(raw, repair=True, ensure_diagonal=True)
            codes = {i.code for i in exc_info.value.report.issues}
            assert "indptr_regression" in codes
        else:
            fixed, report = sanitize_csr(raw, repair=True, ensure_diagonal=True)
            assert not report.ok and report.repaired
            # the repaired matrix satisfies every CSR invariant again
            type(fixed)(fixed.n_rows, fixed.n_cols, fixed.indptr, fixed.indices, fixed.data)

    def test_unknown_mode_rejected(self, mesh):
        with pytest.raises(ValueError, match="unknown CSR corruption"):
            corrupt_csr_arrays(mesh, "nope", random.Random(0))

    def test_corrupt_schedule_drops_coverage(self, mesh):
        from repro.analysis.verifier import assert_schedule_safe
        from repro.core.schedule import ScheduleError
        from repro.kernels import KERNELS
        from repro.schedulers import SCHEDULERS
        from repro.sparse import lower_triangle

        operand = lower_triangle(mesh)
        g = KERNELS["sptrsv"].dag(operand)
        cost = KERNELS["sptrsv"].cost(operand)
        schedule = SCHEDULERS["wavefront"](g, cost, 4)
        broken = corrupt_schedule(schedule, random.Random(0))
        assert broken.n_levels == schedule.n_levels - 1
        with pytest.raises(ScheduleError):
            assert_schedule_safe(broken, g)


def _exit_fault_child() -> None:
    plan = FaultPlan([FaultSpec("pool.worker", "exit")])
    with armed(plan):
        fault_point("pool.worker")


def test_exit_action_uses_fault_exit_code():
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_exit_fault_child)
    proc.start()
    proc.join(30)
    assert proc.exitcode == FAULT_EXIT_CODE


@pytest.fixture
def mesh():
    return poisson2d(8, seed=3)
