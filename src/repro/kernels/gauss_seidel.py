"""Gauss-Seidel sweep: a fourth kernel with the same dependence class.

A forward Gauss-Seidel relaxation::

    for i in 0..n-1:
        x[i] = (b[i] - sum_{j < i} A[i,j] x_new[j]
                     - sum_{j > i} A[i,j] x_old[j]) / A[i,i]

reads freshly-updated values for columns below the diagonal — exactly the
loop-carried dependence pattern of SpTRSV, so the same inspectors schedule
it (SpMP's original evaluation includes Gauss-Seidel alongside the
triangular solve).  The kernel extends the framework beyond the paper's
three kernels and is used by the smoother example.

In-place semantics: upper-triangle reads see *old* values only when the
producing iteration has not run yet.  For a scheduled (out-of-order but
dependence-respecting) execution this is guaranteed for lower reads; upper
reads intentionally see whatever mix the order produced — the classic
"chaotic upper part" of parallel Gauss-Seidel.  To keep results
order-independent and testable, this implementation uses the *two-vector*
formulation: upper reads always come from ``x_old``, lower reads from the
new vector.  That makes any topological order produce bitwise-identical
sweeps (per-row reduction order fixed by the CSR layout).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.build import dag_from_matrix_lower
from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from .base import KernelError, SparseKernel
from .memory import MemoryModel

__all__ = ["GaussSeidel", "gauss_seidel_sweep", "gauss_seidel_in_order"]


def _check_diagonal(a: CSRMatrix) -> None:
    if not a.is_square:
        raise KernelError("gauss-seidel: matrix must be square")
    if not a.has_full_diagonal():
        raise KernelError("gauss-seidel: missing diagonal entry")
    if np.any(a.diagonal() == 0.0):
        raise KernelError("gauss-seidel: zero on the diagonal")


def gauss_seidel_sweep(
    a: CSRMatrix, b: np.ndarray, x_old: np.ndarray | None = None
) -> np.ndarray:
    """One sequential forward sweep; returns the new iterate."""
    _check_diagonal(a)
    n = a.n_rows
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x_old = np.zeros(n, dtype=VALUE_DTYPE) if x_old is None else np.asarray(x_old, dtype=VALUE_DTYPE)
    x_new = np.empty(n, dtype=VALUE_DTYPE)
    indptr, indices, data = a.indptr, a.indices, a.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        below = cols < i
        above = cols > i
        k = int(np.searchsorted(cols, i))
        s = b[i] - vals[below] @ x_new[cols[below]] - vals[above] @ x_old[cols[above]]
        x_new[i] = s / vals[k]
    return x_new


def gauss_seidel_in_order(
    a: CSRMatrix, order: np.ndarray, b: np.ndarray, x_old: np.ndarray | None = None
) -> np.ndarray:
    """One forward sweep with rows relaxed in ``order``; asserts dependences."""
    _check_diagonal(a)
    n = a.n_rows
    order = np.asarray(order, dtype=INDEX_DTYPE)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise KernelError("gauss-seidel: order must be a permutation of range(n)")
    b = np.asarray(b, dtype=VALUE_DTYPE)
    x_old = np.zeros(n, dtype=VALUE_DTYPE) if x_old is None else np.asarray(x_old, dtype=VALUE_DTYPE)
    x_new = np.empty(n, dtype=VALUE_DTYPE)
    done = np.zeros(n, dtype=bool)
    indptr, indices, data = a.indptr, a.indices, a.data
    for i in order:
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        below = cols < i
        deps = cols[below]
        if not np.all(done[deps]):
            missing = deps[~done[deps]][:5].tolist()
            raise KernelError(f"gauss-seidel: row {int(i)} relaxed before rows {missing}")
        above = cols > i
        k = int(np.searchsorted(cols, i))
        s = b[i] - vals[below] @ x_new[deps] - vals[above] @ x_old[cols[above]]
        x_new[i] = s / vals[k]
        done[i] = True
    return x_new


class GaussSeidel(SparseKernel):
    """Forward Gauss-Seidel as a schedulable kernel."""

    name = "gauss_seidel"

    def dag(self, a: CSRMatrix) -> DAG:
        """Lower-pattern dependence DAG (new-value reads)."""
        return dag_from_matrix_lower(a)

    def cost(self, a: CSRMatrix) -> np.ndarray:
        """Each relaxation streams its full row once."""
        return a.row_nnz().astype(np.float64)

    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        from ._trace import trace_self_plus_lower_neighbors

        return trace_self_plus_lower_neighbors(a, line_elems=line_elems)

    def memory_model(self, a: CSRMatrix, g: DAG | None = None, *, line_elems: int = 8) -> MemoryModel:
        """Stream the row; each lower dependence moves one x-line."""
        if g is None:
            g = self.dag(a)
        from .base import lines_of_rows

        per_row, _ = lines_of_rows(a, line_elems=line_elems)
        return MemoryModel(
            stream_lines=per_row.astype(np.float64) + 1.0,
            edge_lines=np.ones(g.n_edges, dtype=np.float64),
        )

    def reference(self, a: CSRMatrix, b: np.ndarray | None = None) -> np.ndarray:
        if b is None:
            b = np.ones(a.n_rows, dtype=VALUE_DTYPE)
        return gauss_seidel_sweep(a, b)

    def execute_in_order(
        self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None
    ) -> np.ndarray:
        if b is None:
            b = np.ones(a.n_rows, dtype=VALUE_DTYPE)
        return gauss_seidel_in_order(a, order, b)

    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        """Distance to the sequential sweep (order-independent by design)."""
        if b is None:
            b = np.ones(a.n_rows, dtype=VALUE_DTYPE)
        ref = gauss_seidel_sweep(a, b)
        denom = float(np.linalg.norm(ref)) or 1.0
        return float(np.linalg.norm(np.asarray(result) - ref)) / denom
