"""Traffic replay: determinism, report shape, perf-lab recording, CLI."""

import asyncio
import json

import numpy as np
import pytest

from repro.perflab.fingerprint import collect_fingerprint
from repro.perflab.history import HistoryStore, load_trajectory, write_trajectory
from repro.perflab.protocol import Observation, ObservationKey
from repro.service.cli import service_main
from repro.service.replay import (
    ReplayConfig,
    build_catalog,
    record_replay,
    run_replay,
    zipf_weights,
)

SMALL = dict(n_requests=40, n_structures=3, seed=0, p=4, concurrency=4)


@pytest.fixture(scope="module")
def report():
    return run_replay(ReplayConfig(**SMALL))


class TestTrafficModel:
    def test_zipf_weights_normalised_and_skewed(self):
        w = zipf_weights(6, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0), "popularity must fall with rank"
        flat = zipf_weights(6, 0.0)
        np.testing.assert_allclose(flat, np.full(6, 1 / 6))

    def test_catalog_is_seeded_and_distinct(self):
        a = build_catalog(4, "sptrsv", seed=0)
        b = build_catalog(4, "sptrsv", seed=0)
        assert [n for n, _, _ in a] == [n for n, _, _ in b]
        for (_, ga, _), (_, gb, _) in zip(a, b):
            np.testing.assert_array_equal(ga.indptr, gb.indptr)
        digests = {(g.n, g.n_edges, g.indices.tobytes()) for _, g, _ in a}
        assert len(digests) == 4, "structures must be distinct"

    def test_catalog_rejects_empty(self):
        with pytest.raises(ValueError):
            build_catalog(0, "sptrsv")


class TestReplay:
    def test_report_accounts_for_every_request(self, report):
        assert report.n_ok + report.n_rejected == SMALL["n_requests"]
        assert sum(report.sources.values()) == report.n_ok
        assert report.wall_seconds > 0

    def test_zipf_head_yields_hits(self, report):
        """With 40 requests over 3 structures, at most 3 fresh inspections
        happen; everything else must come from cache/coalescing."""
        assert report.sources.get("inspected", 0) <= SMALL["n_structures"]
        assert report.hit_rate > 0.5
        assert 0 < report.p50 <= report.p99

    def test_replay_traffic_is_deterministic(self, report):
        again = run_replay(ReplayConfig(**SMALL))
        # wall-clock numbers differ run to run; the traffic must not
        assert again.n_ok == report.n_ok
        assert again.sources.get("inspected", 0) == report.sources.get("inspected", 0)
        assert again.n_degraded == report.n_degraded

    def test_replay_with_store_and_pacing(self, tmp_path):
        cfg = ReplayConfig(
            n_requests=20, n_structures=2, seed=1, p=4,
            store_root=str(tmp_path / "store"), arrival_rate=2000.0,
        )
        first = run_replay(cfg)
        assert first.n_ok == 20
        # a second replay against the same store serves the catalog from
        # disk: zero fresh inspections
        second = run_replay(cfg)
        assert second.sources.get("inspected", 0) == 0
        assert second.hit_rate == 1.0

    def test_as_dict_is_json_clean(self, report):
        blob = json.dumps(report.as_dict())
        assert "p50_seconds" in blob and "hit_rate" in blob


class TestRecording:
    def test_observation_carries_the_roadmap_series(self, report):
        from repro.service.replay import replay_observation

        obs = replay_observation(report)
        assert obs.key.benchmark == "service_replay"
        assert len(obs.timings) == report.n_ok
        assert obs.stages["p50"] == [report.p50]
        assert obs.stages["p99"] == [report.p99]
        assert obs.stages["hit_rate"] == [report.hit_rate]

    def test_record_replay_appends_history_and_writes_trajectory(self, tmp_path, report):
        history = tmp_path / "svc.jsonl"
        trajectory = tmp_path / "traj.json"
        record_replay(report, str(history), str(trajectory))
        assert len(HistoryStore(str(history))) == 1
        doc = load_trajectory(str(trajectory))
        (series,) = doc["series"]
        assert series["key"]["benchmark"] == "service_replay"
        medians = series["latest"]["stage_medians"]
        for channel in ("p50", "p99", "hit_rate"):
            assert channel in medians
        assert medians["hit_rate"] == pytest.approx(report.hit_rate)

    def test_merge_preserves_foreign_series(self, tmp_path, report):
        """The replay must never clobber the inspector series already in
        BENCH_trajectory.json — merge, not rewrite."""
        trajectory = tmp_path / "traj.json"
        other = HistoryStore(str(tmp_path / "inspector.jsonl"))
        other.append(
            Observation(
                key=ObservationKey("inspector", "poisson2d", "sptrsv", "hdagg"),
                timings=[0.1, 0.11, 0.09],
                stages={},
                fingerprint=collect_fingerprint(benchmark="inspector"),
                warmup=1,
                target_rel_ci=0.05,
                confidence=0.95,
                seed=0,
                converged=True,
            )
        )
        write_trajectory(other, str(trajectory))
        record_replay(report, str(tmp_path / "svc.jsonl"), str(trajectory))
        doc = load_trajectory(str(trajectory))
        benchmarks = sorted(s["key"]["benchmark"] for s in doc["series"])
        assert benchmarks == ["inspector", "service_replay"]


class TestCli:
    def test_replay_command_reports_the_numbers(self, tmp_path, capsys):
        rc = service_main(
            [
                "replay", "--requests", "30", "--structures", "2", "--p", "4",
                "--history", str(tmp_path / "svc.jsonl"),
                "--trajectory", str(tmp_path / "traj.json"),
                "--json", str(tmp_path / "report.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50_ms" in out and "p99_ms" in out and "hit_rate" in out
        assert (tmp_path / "traj.json").exists()
        blob = json.loads((tmp_path / "report.json").read_text())
        assert blob["n_ok"] + blob["n_rejected"] == 30

    def test_audit_command(self, tmp_path, capsys, request_a):
        from repro.service import ScheduleBroker
        from repro.store import ScheduleStore

        root = tmp_path / "store"
        ScheduleBroker(ScheduleStore(root)).request(request_a)
        assert service_main(["audit", str(root), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "scanned" in out and "quarantined 0" in out

    def test_audit_strict_flags_quarantines(self, tmp_path, capsys, request_a):
        from repro.service import ScheduleBroker
        from repro.store import ScheduleStore

        root = tmp_path / "store"
        broker = ScheduleBroker(ScheduleStore(root))
        broker.request(request_a)
        record = next((root / "shards").rglob("*.sched"))
        record.write_bytes(record.read_bytes()[:-2])
        assert service_main(["audit", str(root), "--strict"]) == 1

    def test_suite_cli_dispatches_service(self, capsys):
        from repro.suite.cli import main

        with pytest.raises(SystemExit):
            main(["service"])  # argparse: missing subcommand


def test_frontdoor_loop_isolation(report):
    """run_replay owns its event loop; calling it from sync code with no
    running loop (the CLI path) must leave asyncio clean."""
    with pytest.raises(RuntimeError):
        asyncio.get_running_loop()


# ----------------------------------------------------------------------
# streaming latency aggregation
# ----------------------------------------------------------------------
class TestStreamingLatency:
    def test_reservoir_keeps_everything_under_cap(self):
        from repro.service.replay import LatencyReservoir

        r = LatencyReservoir(cap=16, seed=0)
        for v in range(10):
            r.add(float(v))
        assert sorted(r.values) == [float(v) for v in range(10)]
        assert r.seen == 10

    def test_reservoir_stays_bounded_and_samples_the_stream(self):
        from repro.service.replay import LatencyReservoir

        r = LatencyReservoir(cap=64, seed=1)
        r.add_many(np.arange(10_000, dtype=float))
        assert len(r.values) == 64
        assert r.seen == 10_000
        # a uniform sample's mean lands near the stream mean
        assert abs(np.mean(r.values) - 4999.5) < 1500

    def test_reservoir_add_many_matches_scalar_counting(self):
        from repro.service.replay import LatencyReservoir

        bulk, scalar = LatencyReservoir(cap=8, seed=2), LatencyReservoir(cap=8, seed=2)
        values = np.linspace(0.0, 1.0, 100)
        bulk.add_many(values)
        for v in values:
            scalar.add(float(v))
        assert bulk.seen == scalar.seen == 100
        assert len(bulk.values) == len(scalar.values) == 8

    def test_report_quantiles_come_from_the_histogram(self, report):
        assert report.latency.count == report.n_ok
        assert report.p50 > 0.0
        assert report.p99 >= report.p50
        assert set(report.tier_latency) == set(report.sources)
        for src, hist in report.tier_latency.items():
            assert hist.count == report.sources[src]

    def test_memory_bounded_million_request_ingest(self):
        """The roadmap's millions-of-requests regime: O(1) per request."""
        import tracemalloc

        from repro.service.replay import ReplayReport

        rng = np.random.default_rng(0)
        report = ReplayReport(config=ReplayConfig(**SMALL))
        tracemalloc.start()
        for _ in range(10):
            report.observe_many("memory", rng.exponential(0.002, size=100_000))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert report.n_ok == 1_000_000
        assert report.latency.count == 1_000_000
        assert len(report.sample.values) == report.sample.cap
        assert report.p99 > report.p50 > 0.0
        # the whole ingest fits in a few MB: histograms + the reservoir,
        # never a per-request list
        assert peak < 32 * 1024 * 1024

    def test_observe_many_matches_scalar_observe(self):
        from repro.service.replay import ReplayReport

        cfg = ReplayConfig(**SMALL)
        bulk, scalar = ReplayReport(config=cfg), ReplayReport(config=cfg)
        values = np.linspace(1e-4, 1e-2, 500)
        bulk.observe_many("memory", values)
        for v in values:
            scalar.observe("memory", float(v))
        assert bulk.n_ok == scalar.n_ok
        assert bulk.latency.bucket_counts == scalar.latency.bucket_counts
        assert bulk.sources == scalar.sources


# ----------------------------------------------------------------------
# telemetry replay artifacts
# ----------------------------------------------------------------------
class TestTelemetryReplay:
    @pytest.fixture(scope="class")
    def telemetry(self, tmp_path_factory):
        from repro.service.replay import run_replay_with_telemetry

        out = tmp_path_factory.mktemp("telemetry")
        report, tracer, registry = run_replay_with_telemetry(
            ReplayConfig(**SMALL), str(out)
        )
        return out, report, tracer, registry

    def test_all_artifacts_written(self, telemetry):
        out, *_ = telemetry
        for name in (
            "spans.jsonl", "trace.json", "metrics.jsonl", "metrics.prom",
            "replay.json",
        ):
            assert (out / name).exists(), name

    def test_spans_validate_and_match_the_report(self, telemetry):
        from repro.observability.telemetry import validate_request_trees

        out, report, tracer, _ = telemetry
        doc = json.loads((out / "replay.json").read_text())
        assert doc["span_problems"] == []
        assert validate_request_trees(tracer.spans) == []
        trees = doc["report"]
        assert trees["n_ok"] == report.n_ok
        assert set(trees["tiers"]) == set(report.sources)

    def test_chrome_trace_has_handoff_arrows(self, telemetry):
        out, *_ = telemetry
        events = json.loads((out / "trace.json").read_text())["traceEvents"]
        flows = [e for e in events if e.get("cat") == "handoff"]
        assert flows, "no cross-thread flow events in the trace"
        assert {e["ph"] for e in flows} == {"s", "f"}

    def test_prometheus_export_covers_the_tier_histograms(self, telemetry):
        out, *_ = telemetry
        text = (out / "metrics.prom").read_text()
        assert "repro_service_requests_total" in text
        assert "repro_service_latency_tier_memory_bucket" in text

    def test_metric_names_stay_in_the_catalog(self, telemetry):
        from repro.observability.telemetry import catalog_violations

        *_, registry = telemetry
        assert catalog_violations(registry.names()) == []

    def test_observation_carries_tier_breakdown_stages(self, telemetry):
        from repro.service.replay import replay_observation

        _, report, *_ = telemetry
        obs = replay_observation(report)
        for src in report.sources:
            for channel in ("p50", "p99", "share"):
                assert f"tier/{src}/{channel}" in obs.stages
        shares = [obs.stages[f"tier/{s}/share"][0] for s in report.sources]
        assert sum(shares) == pytest.approx(1.0)
        assert len(obs.timings) == min(report.n_ok, report.sample.cap)

    def test_stats_and_dash_cli_render_the_artifacts(self, telemetry, capsys, tmp_path):
        out, *_ = telemetry
        assert service_main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "service counters" in text
        assert "latency by tier" in text
        assert service_main(["dash", str(out), "-o", str(tmp_path / "d.html")]) == 0
        html = (tmp_path / "d.html").read_text()
        assert "Latency by tier" in html
        assert "request trees valid" in html
