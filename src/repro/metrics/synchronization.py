"""Synchronisation metrics.

The paper counts point-to-point synchronisations and converts global
barriers with ``p * log2(p)`` equivalent point-to-point operations
(Section V-A, following [4]).  :func:`equivalent_p2p_syncs` applies that
conversion so barrier-based and p2p-based schedules are comparable on one
axis (Figure 6 right, Table II bottom rows)."""

from __future__ import annotations

import math

from ..runtime.simulator import SimulationResult

__all__ = ["equivalent_p2p_syncs", "sync_improvement", "barrier_equivalent"]


def barrier_equivalent(n_barriers: int, p: int) -> float:
    """Equivalent point-to-point count of ``n_barriers`` global barriers.

    >>> barrier_equivalent(3, 8)   # 3 barriers on 8 cores: 3 * 8 * log2(8)
    72.0
    """
    return n_barriers * p * max(1.0, math.log2(p))


def equivalent_p2p_syncs(result: SimulationResult, p: int) -> float:
    """Total synchronisation in point-to-point units (barriers converted)."""
    return barrier_equivalent(result.n_barriers, p) + result.n_p2p_syncs


def sync_improvement(hdagg: SimulationResult, baseline: SimulationResult, p: int) -> float:
    """``baseline syncs / hdagg syncs`` — > 1 when HDagg synchronises less."""
    h = equivalent_p2p_syncs(hdagg, p)
    b = equivalent_p2p_syncs(baseline, p)
    if h <= 0.0:
        return float("inf") if b > 0 else 1.0
    return b / h
