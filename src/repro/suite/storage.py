"""Persist and reload harness run records.

Full-suite runs cost minutes of inspection; the tables and figures that
consume them cost milliseconds.  Storing the flat
:class:`~repro.suite.harness.RunRecord` list as JSON decouples the two:
run the grid once (CI, overnight, a beefier machine), regenerate any table
offline, diff records across commits.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields
from os import PathLike
from typing import List, Sequence, Union

from .harness import RunRecord

__all__ = [
    "records_to_json",
    "records_from_json",
    "save_records",
    "load_records",
    "record_to_blob",
    "record_from_blob",
    "encode_float",
    "decode_float",
]

_FLOAT_FIELDS = {
    f.name for f in fields(RunRecord) if f.type in ("float", float)
}

#: Resilience and provenance fields are serialised only when they carry
#: information, so records of non-degraded default-backend runs (and the
#: --json payloads built from them) stay byte-identical to those written
#: before the fields existed.
_DORMANT_DEFAULTS = {
    "degraded": False,
    "degraded_from": "",
    "backend": "",
    "schedule_repaired": False,
}


def encode_float(value):
    """Non-finite floats as portable strings (strict JSON has no NaN/Inf).

    Shared with the perf-lab's trajectory snapshot so every JSON artifact
    in the repo encodes non-finite values the same way.
    """
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
    return value


def decode_float(value):
    """Inverse of :func:`encode_float`."""
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    return value


_encode = encode_float


def _decode(name: str, value):
    return decode_float(value)


def record_to_blob(record: RunRecord, *, encode_floats: bool = True) -> dict:
    """One record as a JSON-ready dict (dormant default fields dropped)."""
    blob = {
        k: (_encode(v) if encode_floats else v)
        for k, v in record.__dict__.items()
        if k not in _DORMANT_DEFAULTS or v != _DORMANT_DEFAULTS[k]
    }
    return blob


def record_from_blob(blob: dict) -> RunRecord:
    """Inverse of :func:`record_to_blob`; validates the field set."""
    expected = {f.name for f in fields(RunRecord)}
    optional = set(_DORMANT_DEFAULTS)
    if not (expected - optional <= set(blob) <= expected):
        missing = (expected - optional) - set(blob)
        extra = set(blob) - expected
        raise ValueError(f"record fields mismatch (missing={missing}, extra={extra})")
    return RunRecord(**{k: _decode(k, v) for k, v in blob.items()})


def records_to_json(records: Sequence[RunRecord]) -> str:
    """Serialise records (non-finite floats encoded as strings)."""
    blobs = [record_to_blob(r) for r in records]
    return json.dumps({"version": 1, "records": blobs}, indent=1)


def records_from_json(text: str) -> List[RunRecord]:
    """Inverse of :func:`records_to_json`; validates the field set."""
    doc = json.loads(text)
    if doc.get("version") != 1:
        raise ValueError(f"unsupported records version {doc.get('version')!r}")
    return [record_from_blob(blob) for blob in doc["records"]]


def save_records(records: Sequence[RunRecord], path: Union[str, PathLike]) -> None:
    """Write run records to a JSON file (see :func:`records_to_json`)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(records_to_json(records))


def load_records(path: Union[str, PathLike]) -> List[RunRecord]:
    """Read run records from a JSON file written by :func:`save_records`."""
    with open(path, "r", encoding="utf-8") as fh:
        return records_from_json(fh.read())
