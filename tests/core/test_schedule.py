"""Tests for the Schedule container and its validation."""

import numpy as np
import pytest

from repro.core import Schedule, ScheduleError, WidthPartition
from repro.graph import DAG


@pytest.fixture
def g():
    # 0 -> 1 -> 3, 0 -> 2 -> 3
    return DAG.from_edges(4, [0, 0, 1, 2], [1, 2, 3, 3])


def make(levels, *, sync="barrier", p=2, n=4):
    return Schedule(n=n, levels=levels, sync=sync, algorithm="test", n_cores=p)


def test_basic_shape(g):
    s = make(
        [
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(0, np.array([1])), WidthPartition(1, np.array([2]))],
            [WidthPartition(0, np.array([3]))],
        ]
    )
    s.validate(g)
    assert s.n_levels == 3
    assert s.n_partitions == 4
    assert s.n_barriers() == 2
    assert s.execution_order().tolist() == [0, 1, 2, 3]


def test_per_vertex_maps(g):
    s = make(
        [
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(0, np.array([1, 3])), WidthPartition(1, np.array([2]))],
        ]
    )
    # structurally fine; edge 2 -> 3 crosses partitions within the level, so
    # only the structural half of validate() applies here
    s.validate(g, check_dependences=False)
    assert s.level_of().tolist() == [0, 1, 1, 1]
    assert s.partition_of().tolist() == [0, 1, 2, 1]
    assert s.position_of().tolist() == [0, 0, 0, 1]
    assert s.core_assignment().tolist() == [0, 0, 1, 0]


def test_p2p_has_no_barriers(g):
    s = make(
        [
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(0, np.array([1])), WidthPartition(1, np.array([2]))],
            [WidthPartition(0, np.array([3]))],
        ],
        sync="p2p",
    )
    assert s.n_barriers() == 0


def test_unknown_sync_rejected():
    with pytest.raises(ScheduleError):
        make([], sync="magic")


def test_bad_cores_rejected():
    with pytest.raises(ScheduleError):
        make([], p=0)


def test_empty_partition_rejected():
    with pytest.raises(ScheduleError):
        WidthPartition(0, np.array([], dtype=np.int64))


def test_validate_detects_missing_vertex(g):
    s = make([[WidthPartition(0, np.array([0, 1, 2]))]])
    with pytest.raises(ScheduleError, match="never scheduled|missing"):
        s.validate(g)


def test_validate_detects_duplicate_vertex(g):
    s = make(
        [
            [WidthPartition(0, np.array([0, 1, 2, 3]))],
            [WidthPartition(0, np.array([3]))],
        ]
    )
    with pytest.raises(ScheduleError, match="twice|duplicate"):
        s.validate(g)


def test_validate_detects_core_clash(g):
    s = make(
        [[WidthPartition(0, np.array([0, 1, 3])), WidthPartition(0, np.array([2]))]]
    )
    with pytest.raises(ScheduleError, match="core 0"):
        s.validate(g)


def test_validate_detects_same_level_dependence(g):
    s = make(
        [[WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1, 2, 3]))]]
    )
    with pytest.raises(ScheduleError, match="dependence violated"):
        s.validate(g)


def test_validate_detects_wrong_order_within_partition(g):
    s = make([[WidthPartition(0, np.array([3, 2, 1, 0]))]])
    with pytest.raises(ScheduleError, match="dependence violated"):
        s.validate(g)


def test_validate_accepts_in_partition_order(g):
    s = make([[WidthPartition(0, np.array([0, 1, 2, 3]))]])
    s.validate(g)


def test_validate_size_mismatch(g):
    s = make([[WidthPartition(0, np.array([0, 1, 2]))]], n=3)
    with pytest.raises(ScheduleError, match="covers"):
        s.validate(g)


def test_level_loads_and_dynamic(g):
    cost = np.array([1.0, 2.0, 3.0, 4.0])
    s = make(
        [
            [WidthPartition(-1, np.array([0])), WidthPartition(-1, np.array([1]))],
            [WidthPartition(0, np.array([2, 3]))],
        ]
    )
    loads = s.level_loads(cost)
    assert sorted(loads[0].tolist()) == [1.0, 2.0]  # dynamic -> least loaded
    assert loads[1].tolist() == [7.0, 0.0]


def test_summary(g):
    s = make([[WidthPartition(0, np.array([0, 1, 2, 3]))]])
    info = s.summary(np.ones(4))
    assert info["n_levels"] == 1
    assert info["n_partitions"] == 1
    assert "accumulated_pgp" in info
