"""End-to-end ``hdagg-bench perf``: run, gate, attribution, report.

This is the issue's acceptance scenario in miniature: two clean runs gate
quiet; a run with a deterministic stall injected into one inspector stage
gates red with that stage named.  One small matrix keeps each protocol
run to a fraction of a second.
"""

import json

import pytest

from repro.perflab.cli import perf_main
from repro.perflab.history import HistoryStore

# --no-repair-cell: these scenarios assert exact observation counts for
# the inspector cells; the repair smoke cell has its own test below
RUN = ["run", "--matrices", "mesh2d-s", "--warmup", "2",
       "--min-reps", "6", "--max-reps", "12", "--no-repair-cell"]
#: Shared-CI boxes drift 10-20% between back-to-back runs (frequency
#: ramp, cache state), so the e2e assertions use a 35% noise floor and an
#: injected stall far above it; the 0%/3%/10% calibration of the gate
#: itself runs on deterministic synthetic streams in test_stats.py.
GATE = ["gate", "--min-effect", "0.35"]
STALL = ["--stall-stage", "lbp:0.02"]


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def run_cli(*argv):
    return perf_main(list(argv))


def test_run_appends_and_writes_trajectory(workdir):
    assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "traj.json") == 0
    store = HistoryStore("h.jsonl")
    assert len(store) == 1
    ((key, digest),) = store.series_keys()
    assert key.benchmark == "inspector"
    assert key.matrix == "mesh2d-s"
    obs = store.latest(key, digest)
    assert obs.reps >= 6
    assert "inspect/lbp" in obs.stages
    assert "execute" in obs.stages
    doc = json.loads((workdir / "traj.json").read_text())
    assert doc["kind"] == "trajectory" and doc["schema"] == 2
    assert len(doc["series"]) == 1


def test_run_appends_repair_smoke_cell(workdir, capsys):
    argv = [a for a in RUN if a != "--no-repair-cell"]
    assert run_cli(*argv, "--history", "h.jsonl", "--trajectory", "") == 0
    store = HistoryStore("h.jsonl")
    assert len(store) == 2
    benchmarks = {key.benchmark for key, _ in store.series_keys()}
    assert benchmarks == {"inspector", "repair"}
    ((key, digest),) = [k for k in store.series_keys() if k[0].benchmark == "repair"]
    obs = store.latest(key, digest)
    assert "repair" in obs.stages and "full" in obs.stages
    err = capsys.readouterr().err
    assert "repair smoke cell: median repair" in err
    assert "25% budget" in err


def test_back_to_back_runs_gate_quiet(workdir, capsys):
    for _ in range(2):
        assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "") == 0
    assert run_cli(*GATE, "--history", "h.jsonl") == 0
    out = capsys.readouterr()
    assert "REGRESSED" not in out.out
    assert "no confirmed regressions" in out.err


def test_injected_stall_gates_red_with_stage_named(workdir, capsys):
    assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "") == 0
    # ~15ms inspector + a 20ms stall inside lbp: unambiguously confirmed
    assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "",
                   *STALL, "--note", "stalled") == 0
    assert run_cli(*GATE, "--history", "h.jsonl") == 1
    out = capsys.readouterr()
    assert "REGRESSED" in out.out
    assert "stage=inspect/lbp" in out.out
    assert run_cli(*GATE, "--warn-only", "--history", "h.jsonl") == 0


def test_gate_against_blessed_baseline(workdir):
    assert run_cli(*RUN, "--history", "baseline.jsonl", "--trajectory", "") == 0
    assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "", *STALL) == 0
    assert run_cli(*GATE, "--history", "h.jsonl",
                   "--baseline", "baseline.jsonl") == 1
    # and a clean run against the same baseline passes
    assert run_cli(*RUN, "--history", "clean.jsonl", "--trajectory", "") == 0
    assert run_cli(*GATE, "--history", "clean.jsonl",
                   "--baseline", "baseline.jsonl") == 0


def test_report_writes_markdown_and_html(workdir, capsys):
    for _ in range(2):
        assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "") == 0
    assert run_cli("report", "--history", "h.jsonl", "--out-dir", "out") == 0
    md = (workdir / "out" / "perf_report.md").read_text()
    html = (workdir / "out" / "perf_report.html").read_text()
    assert "inspector/mesh2d-s" in md
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html  # sparkline present with >= 2 observations
    assert "inspector/mesh2d-s" in html


def test_compare_prints_stage_tables(workdir, capsys):
    for _ in range(2):
        assert run_cli(*RUN, "--history", "h.jsonl", "--trajectory", "") == 0
    assert run_cli("compare", "--history", "h.jsonl") == 0
    out = capsys.readouterr().out
    assert "Stage breakdown" in out
    assert "inspect/lbp" in out


def test_migrate_is_idempotent(workdir, capsys):
    legacy = workdir / "BENCH_inspector.json"
    legacy.write_text(json.dumps({
        "version": 1,
        "sizes": [{"matrix": "poisson2d(32)", "n": 1024, "edges": 1984,
                   "inspector_ms": 10.0, "stage_ms": {"lbp": 6.0},
                   "coarse_wavefronts": 21}],
    }))
    argv = RUN + ["--history", "h.jsonl", "--trajectory", "",
                  "--migrate", str(legacy)]
    assert run_cli(*argv) == 0
    assert run_cli(*argv) == 0
    err = capsys.readouterr().err
    assert "migrated 1 legacy" in err
    assert "already migrated" in err
    store = HistoryStore("h.jsonl")
    # 1 migrated observation + 2 fresh runs, as separate series
    assert len(store) == 3
    assert len(store.series_keys()) == 2


def test_dispatch_via_hdagg_bench(workdir):
    from repro.suite.cli import main

    assert main(["perf", *RUN, "--history", "h.jsonl", "--trajectory", ""]) == 0
    assert len(HistoryStore("h.jsonl")) == 1
