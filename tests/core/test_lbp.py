"""Tests for HDagg step 2: load-balance preserving wavefront coarsening."""

import numpy as np
import pytest

from repro.core.lbp import lbp_coarsen
from repro.graph import DAG, dag_from_matrix_lower


def chain(n):
    return DAG.from_edges(n, list(range(n - 1)), list(range(1, n)))


def parallel_chains(k, depth):
    """k independent chains of the given depth (interleaved ids)."""
    src, dst = [], []
    for c in range(k):
        for d in range(depth - 1):
            src.append(d * k + c)
            dst.append((d + 1) * k + c)
    return DAG.from_edges(k * depth, src, dst)


def test_parallel_chains_merge_fully():
    """With >= p balanced components, every wavefront merges into one CW."""
    g = parallel_chains(4, 6)
    res = lbp_coarsen(g, np.ones(g.n), p=2, epsilon=0.2)
    assert len(res.coarsened) == 1
    cw = res.coarsened[0]
    assert cw.wave_lo == 0 and cw.wave_hi == 6
    assert len(cw.components) == 4
    assert not res.fine_grained


def test_single_chain_cannot_merge():
    """One chain = one component: merging never helps, every wave single."""
    g = chain(5)
    res = lbp_coarsen(g, np.ones(5), p=2, epsilon=0.2)
    # each wavefront has one vertex; merging any two gives 1 CC on 2 cores
    # with PGP 0.5 > eps, so all 5 waves stay separate
    assert len(res.coarsened) == 5
    assert res.fine_grained  # accumulated imbalance is 0.5 > eps


def test_epsilon_one_merges_everything():
    g = chain(5)
    res = lbp_coarsen(g, np.ones(5), p=2, epsilon=1.0)
    assert len(res.coarsened) == 1


def test_cut_positions_reported():
    g = parallel_chains(2, 4)
    res = lbp_coarsen(g, np.ones(g.n), p=2, epsilon=0.05)
    assert res.cut_positions == [cw.wave_lo for cw in res.coarsened[1:]]


def test_coverage_is_exact(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    res = lbp_coarsen(g, np.ones(g.n), p=4, epsilon=0.3)
    seen = np.concatenate(
        [np.concatenate(cw.components) for cw in res.coarsened]
    )
    assert np.array_equal(np.sort(seen), np.arange(g.n))
    # ranges tile [0, l)
    lo = 0
    for cw in res.coarsened:
        assert cw.wave_lo == lo
        assert cw.wave_hi > cw.wave_lo
        lo = cw.wave_hi
    assert lo == res.waves.n_levels


def test_imbalanced_costs_force_cut():
    """A heavy vertex mid-stream breaks the merge at that wavefront."""
    g = parallel_chains(2, 6)
    cost = np.ones(g.n)
    cost[2 * 3] = 100.0  # one chain's level-3 vertex is huge
    res = lbp_coarsen(g, cost, p=2, epsilon=0.1)
    assert len(res.coarsened) > 1


def test_accumulated_pgp_range(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    res = lbp_coarsen(g, np.ones(g.n), p=4)
    assert 0.0 <= res.accumulated_pgp <= 1.0


def test_fine_grained_flag_controlled():
    g = chain(5)
    res = lbp_coarsen(g, np.ones(5), p=2, epsilon=0.2, allow_fine_grained=False)
    assert not res.fine_grained


def test_empty_graph():
    res = lbp_coarsen(DAG.empty(0), np.zeros(0), p=2)
    assert res.coarsened == []
    assert not res.fine_grained


def test_cost_length_checked():
    with pytest.raises(ValueError):
        lbp_coarsen(chain(4), np.ones(3), p=2)


def test_single_wavefront_graph():
    g = DAG.empty(6)  # no edges: one wavefront
    res = lbp_coarsen(g, np.ones(6), p=3, epsilon=0.2)
    assert len(res.coarsened) == 1
    assert res.coarsened[0].packing.n_bins_used == 3
