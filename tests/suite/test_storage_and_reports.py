"""Tests for record storage, dataset report, and CLI load/save paths."""

import json

import numpy as np
import pytest

from repro.runtime import LAPTOP4
from repro.suite import (
    Harness,
    dataset_report,
    dataset_rows,
    load_records,
    records_from_json,
    records_to_json,
    save_records,
    suite_by_name,
    table1_speedups,
)


@pytest.fixture(scope="module")
def records():
    h = Harness(machines=(LAPTOP4,), kernels=("sptrsv",))
    return h.run_suite([suite_by_name()["mesh2d-s"]])


class TestStorage:
    def test_roundtrip(self, records):
        back = records_from_json(records_to_json(records))
        assert len(back) == len(records)
        for a, b in zip(records, back):
            assert a.__dict__ == b.__dict__

    def test_nonfinite_floats_survive(self, records):
        import dataclasses

        r = dataclasses.replace(records[0], nre=float("inf"), speedup=float("nan"))
        back = records_from_json(records_to_json([r]))[0]
        assert back.nre == float("inf")
        assert np.isnan(back.speedup)

    def test_file_roundtrip(self, records, tmp_path):
        path = tmp_path / "r.json"
        save_records(records, path)
        back = load_records(path)
        # loaded records feed the tables unchanged
        h1, rows1, _ = table1_speedups(records)
        h2, rows2, _ = table1_speedups(back)
        assert rows1 == rows2

    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            records_from_json(json.dumps({"version": 99, "records": []}))

    def test_field_mismatch_detected(self, records):
        doc = json.loads(records_to_json(records))
        del doc["records"][0]["speedup"]
        with pytest.raises(ValueError, match="mismatch"):
            records_from_json(json.dumps(doc))


class TestDatasetReport:
    def test_rows_shape(self):
        specs = [suite_by_name()["mesh2d-s"], suite_by_name()["kite-small"]]
        rows = dataset_rows(specs)
        assert len(rows) == 2
        name, family, n, nnz, waves, ap, npw, bucket = rows[0]
        assert name == "mesh2d-s"
        assert family == "mesh2d"
        assert n == 2304
        assert waves > 0 and ap > 0
        assert bucket in ("large", "small/high-AP", "small/low-AP")

    def test_report_text(self):
        text = dataset_report([suite_by_name()["mesh2d-s"]])
        assert "Evaluation dataset" in text
        assert "mesh2d-s" in text


class TestCLIRoundtrip:
    def test_save_then_load(self, tmp_path, capsys):
        from repro.suite.cli import main

        path = tmp_path / "recs.json"
        rc = main(["--experiment", "fig7", "--kernels", "sptrsv",
                   "--machines", "laptop4", "--matrices", "mesh2d-s",
                   "--save-records", str(path)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["--experiment", "fig7", "--load-records", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mesh2d-s" in out

    def test_dataset_experiment(self, capsys):
        from repro.suite.cli import main

        rc = main(["--experiment", "dataset", "--matrices", "mesh2d-s"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bucket" in out


class TestCLIScaling:
    def test_scaling_experiment(self, capsys):
        from repro.suite.cli import main

        rc = main(["--experiment", "scaling", "--matrices", "mesh2d-s",
                   "--kernels", "spilu0", "--machines", "laptop4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Strong scaling" in out
        assert "efficiency" in out
