"""Meta-tests over the public API surface.

Every ``__all__`` export must resolve and carry a docstring — the
"documented public API" contract — and the top-level package must re-export
the advertised entry points.
"""

import importlib
import inspect

import pytest

import repro

MODULES = [
    "repro",
    "repro.sparse",
    "repro.graph",
    "repro.kernels",
    "repro.core",
    "repro.schedulers",
    "repro.runtime",
    "repro.metrics",
    "repro.suite",
    "repro.resilience",
    "repro.store",
    "repro.service",
]


@pytest.mark.parametrize("modname", MODULES)
def test_all_exports_resolve(modname):
    mod = importlib.import_module(modname)
    assert hasattr(mod, "__all__"), modname
    for name in mod.__all__:
        assert hasattr(mod, name), f"{modname}.{name} missing"


@pytest.mark.parametrize("modname", MODULES)
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name in mod.__all__:
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{modname}: undocumented {undocumented}"


@pytest.mark.parametrize("modname", MODULES)
def test_module_docstrings(modname):
    mod = importlib.import_module(modname)
    assert (mod.__doc__ or "").strip(), f"{modname} has no module docstring"


def test_listing2_entry_points():
    """The paper's Listing 2 vocabulary is importable from the top level."""
    assert callable(repro.hdagg)
    assert callable(repro.num_cores)
    assert callable(repro.epsilon)
    assert repro.num_cores() >= 1
    assert 0.0 < repro.epsilon() < 1.0
    for kernel_name in ("sptrsv", "spic0", "spilu0", "gauss_seidel", "spchol"):
        assert kernel_name in repro.KERNELS


def test_scheduler_registry_complete():
    expected = {"hdagg", "wavefront", "spmp", "lbc", "dagp", "mkl", "serial", "coarsenk"}
    assert expected <= set(repro.SCHEDULERS)


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_machines_registry():
    assert {"intel20", "amd64", "laptop4"} <= set(repro.MACHINES)
    assert repro.INTEL20.n_cores == 20
    assert repro.AMD64.n_cores == 64
