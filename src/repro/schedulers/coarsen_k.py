"""Fixed-window wavefront coarsening — the prior art LBP improves on.

The paper cites wavefront-coarsening approaches [5], [6] that "merge
vertices across wavefronts to create well-balanced coarsened wavefronts"
with a *fixed* policy, contrasting them with LBP's balance-preserving
cuts.  This baseline merges every ``k`` consecutive wavefronts regardless
of what that does to the component structure, then packs the merged
range's connected components into ``p`` bins (packing components is
mandatory for correctness — partitions of one level must not depend on
each other).

Its failure mode is exactly what Section IV-C predicts: a window that
crosses a connectivity bottleneck produces a single giant component and a
serialised level.  The ablation benchmark uses it to quantify what the
PGP-driven cut policy is worth.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from .base import register_scheduler

__all__ = ["coarsen_k_schedule", "DEFAULT_WINDOW"]

#: Default merge window (levels per coarsened wavefront).
DEFAULT_WINDOW = 4


@register_scheduler("coarsenk")
def coarsen_k_schedule(g: DAG, cost: np.ndarray, p: int, k: int = DEFAULT_WINDOW) -> Schedule:
    """Merge every ``k`` wavefronts; pack each window's components into ``p`` bins.

    Runs the ``"coarsenk"`` pass group (``wavefronts`` → ``window-merge``
    → ``emit-windows`` — see :mod:`repro.passes.baselines`).
    """
    if k < 1:
        raise ValueError("window k must be >= 1")
    cost = np.asarray(cost, dtype=np.float64)
    return run_scheduler_group("coarsenk", g, cost, p, options={"k": k})
