"""Measurement protocol: warmup, adaptive repetition, stage alignment."""

import itertools

import pytest

from repro.perflab.protocol import MeasurementProtocol, Observation, ObservationKey

from .test_fingerprint import make_fp

KEY = ObservationKey("bench", "m", "sptrsv", "hdagg", "intel20")


def counting_rep(timings, stages=None):
    """Rep callable replaying a scripted stream; records how often called."""
    calls = itertools.count()

    def rep():
        i = next(calls)
        t = timings[min(i, len(timings) - 1)]
        return t, dict(stages[min(i, len(stages) - 1)]) if stages else (t, {})

    rep.calls = lambda: next(calls)  # next value == total calls so far
    return rep


def test_warmup_reps_are_discarded():
    seen = []

    def rep():
        seen.append(len(seen))
        return 0.01, {}

    proto = MeasurementProtocol(warmup=3, min_reps=5, max_reps=5)
    obs = proto.measure(KEY, rep, fingerprint=make_fp())
    assert len(seen) == 3 + 5
    assert obs.reps == 5
    assert obs.warmup == 3


def test_adaptive_stops_early_on_tight_data():
    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=30,
                                target_rel_ci=0.05)
    obs = proto.measure(KEY, lambda: (0.01, {}), fingerprint=make_fp())
    assert obs.reps == 5  # constant stream: converged immediately
    assert obs.converged


def test_adaptive_keeps_going_on_noisy_data():
    stream = itertools.cycle([0.001, 0.05, 0.002, 0.09, 0.01])

    def rep():
        return next(stream), {}

    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=11, batch=3,
                                target_rel_ci=0.01)
    obs = proto.measure(KEY, rep, fingerprint=make_fp())
    assert obs.reps == 11  # 5 + 2 batches of 3; 11 + 3 > 11 stops
    assert not obs.converged


def test_stage_lists_stay_rep_aligned():
    # stage "b" appears only from rep 2 on; earlier reps must back-fill 0.0
    script = [
        (0.01, {"a": 0.01}),
        (0.01, {"a": 0.01}),
        (0.02, {"a": 0.01, "b": 0.01}),
        (0.02, {"a": 0.01, "b": 0.01}),
        (0.01, {"a": 0.01}),
    ]
    stream = iter(script)
    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=5)
    obs = proto.measure(KEY, lambda: next(stream), fingerprint=make_fp())
    assert obs.stages["a"] == [0.01] * 5
    assert obs.stages["b"] == [0.0, 0.0, 0.01, 0.01, 0.0]
    assert all(len(v) == obs.reps for v in obs.stages.values())


def test_observation_roundtrip():
    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=5, seed=3)
    obs = proto.measure(KEY, lambda: (0.01, {"inspect": 0.007}),
                        fingerprint=make_fp(), note="hello")
    blob = obs.as_dict()
    again = Observation.from_dict(blob)
    assert again.key == obs.key
    assert again.timings == obs.timings
    assert again.stages == obs.stages
    assert again.note == "hello"
    assert again.stats.statistic == obs.stats.statistic
    assert again.fingerprint.digest == obs.fingerprint.digest


def test_from_dict_refuses_other_schemas():
    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=5)
    blob = proto.measure(KEY, lambda: (0.01, {}), fingerprint=make_fp()).as_dict()
    blob["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        Observation.from_dict(blob)
    blob["schema"] = 2
    blob["kind"] = "header"
    with pytest.raises(ValueError, match="kind"):
        Observation.from_dict(blob)


def test_protocol_validation():
    with pytest.raises(ValueError):
        MeasurementProtocol(min_reps=1)
    with pytest.raises(ValueError):
        MeasurementProtocol(min_reps=5, max_reps=4)
    with pytest.raises(ValueError):
        MeasurementProtocol(target_rel_ci=0.0)
