"""Failure injection: corrupted schedules must never pass validation.

Mutation-style tests: take a correct HDagg schedule and apply every
corruption an inspector bug could plausibly produce; each must be caught
by ``Schedule.validate`` or by the dependence-checking executor — never
silently accepted.
"""

import numpy as np
import pytest

from repro.core import Schedule, ScheduleError, WidthPartition, hdagg
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS, KernelError
from repro.sparse import lower_triangle


@pytest.fixture
def setup(mesh_nd):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    s = hdagg(g, kernel.cost(low), 4)
    return kernel, low, g, s


def clone(s: Schedule) -> Schedule:
    return Schedule.from_dict(s.to_dict())


def find_multi_vertex_partition(s):
    for k, level in enumerate(s.levels):
        for j, part in enumerate(level):
            if part.size >= 2:
                return k, j
    pytest.skip("no multi-vertex partition in this schedule")


def test_dropped_vertex_detected(setup):
    kernel, low, g, s = setup
    m = clone(s)
    k, j = find_multi_vertex_partition(m)
    part = m.levels[k][j]
    m.levels[k][j] = WidthPartition(part.core, part.vertices[1:])
    with pytest.raises(ScheduleError, match="never scheduled|missing"):
        m.validate(g)


def test_duplicated_vertex_detected(setup):
    kernel, low, g, s = setup
    m = clone(s)
    k, j = find_multi_vertex_partition(m)
    part = m.levels[k][j]
    dup = np.concatenate([part.vertices, part.vertices[:1]])
    m.levels[k][j] = WidthPartition(part.core, dup)
    with pytest.raises(ScheduleError, match="twice|duplicate"):
        m.validate(g)


def test_swapped_levels_detected(setup):
    kernel, low, g, s = setup
    if s.n_levels < 2:
        pytest.skip("single-level schedule")
    m = clone(s)
    m.levels[0], m.levels[-1] = m.levels[-1], m.levels[0]
    with pytest.raises(ScheduleError, match="dependence violated"):
        m.validate(g)


def test_reversed_partition_detected_somewhere(setup):
    """Reversing a partition's internal order breaks intra-partition deps
    (whenever the partition actually carries one)."""
    kernel, low, g, s = setup
    m = clone(s)
    tripped = False
    for k, level in enumerate(m.levels):
        for j, part in enumerate(level):
            if part.size < 2:
                continue
            m.levels[k][j] = WidthPartition(part.core, part.vertices[::-1].copy())
            try:
                m.validate(g)
            except ScheduleError:
                tripped = True
            m.levels[k][j] = part
    assert tripped


def test_core_collision_detected(setup):
    kernel, low, g, s = setup
    m = clone(s)
    target = None
    for k, level in enumerate(m.levels):
        if len(level) >= 2 and all(part.core >= 0 for part in level):
            target = k
            break
    if target is None:
        pytest.skip("no multi-partition static level")
    level = m.levels[target]
    m.levels[target][1] = WidthPartition(level[0].core, level[1].vertices)
    with pytest.raises(ScheduleError, match="core"):
        m.validate(g)


def test_executor_is_second_line_of_defence(setup):
    """Even without validate(), the kernels refuse a bad order."""
    kernel, low, g, s = setup
    order = s.execution_order()[::-1].copy()
    with pytest.raises(KernelError):
        kernel.execute_in_order(low, order)


def test_foreign_vertex_detected(setup):
    kernel, low, g, s = setup
    m = clone(s)
    k, j = find_multi_vertex_partition(m)
    part = m.levels[k][j]
    bad = part.vertices.copy()
    bad[0] = g.n - 1  # duplicate of some other partition's vertex
    m.levels[k][j] = WidthPartition(part.core, bad)
    with pytest.raises(ScheduleError):
        m.validate(g)


def test_wrong_graph_detected(setup):
    kernel, low, g, s = setup
    from repro.graph import DAG

    other = DAG.empty(g.n + 1)
    with pytest.raises(ScheduleError, match="covers"):
        s.validate(other)
