"""Longitudinal storage: append-only JSONL history + trajectory snapshot.

Two artifacts with two jobs:

* the **history store** (``perf_history.jsonl``) is the durable record —
  one observation per line, append-only, never rewritten.  A header line
  stamps the schema so a reader can refuse files from the future; every
  observation line is self-describing (key, fingerprint, samples, stats).
  Keys are ``(benchmark, matrix, kernel, algorithm, machine)`` plus the
  environment-fingerprint digest, so observations from different machines
  coexist without ever being compared as if they were one series;
* the **trajectory snapshot** (repo-root ``BENCH_trajectory.json``) is the
  derived, human-diffable view: per series, the median trajectory and the
  latest observation's statistics.  It is regenerated wholesale and
  written atomically (tmp file + ``os.replace``), so the repo always holds
  a consistent snapshot even if a run is killed mid-write.

:func:`migrate_bench_inspector` lifts the PR-1 era
``benchmarks/output/BENCH_inspector.json`` (schema 1: single-shot
timings, no fingerprint) into schema-2 observations so the pre-perf-lab
trajectory is not lost — migrated points carry a ``legacy`` note and a
placeholder fingerprint digest.
"""

from __future__ import annotations

import json
import os
from os import PathLike
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .fingerprint import PERF_SCHEMA_VERSION, EnvironmentFingerprint
from .protocol import Observation, ObservationKey

__all__ = [
    "HistoryStore",
    "SeriesKey",
    "LEGACY_DIGEST",
    "write_trajectory",
    "load_trajectory",
    "migrate_bench_inspector",
]

#: one longitudinal series: the observation key plus the environment digest.
SeriesKey = Tuple[ObservationKey, str]

#: the all-empty fingerprint carried by observations migrated from
#: schema-1 files (the originals recorded nothing about the machine); its
#: digest is the stable series key every legacy point lands under.
_LEGACY_FINGERPRINT = EnvironmentFingerprint(
    cpu_model="", cpu_count=0, governor="", os="", python="",
    numpy="", scipy="", blas="",
)
LEGACY_DIGEST = _LEGACY_FINGERPRINT.digest


class HistoryStore:
    """Append-only JSONL store of observations.

    The file starts with a header line ``{"kind": "header", "schema": 2}``;
    every subsequent line is one observation blob.  Opening an existing
    store validates the header and indexes the observations; appends go
    straight to disk (flushed per line) so a killed run loses at most the
    line being written.
    """

    def __init__(self, path: Union[str, PathLike]) -> None:
        self.path = os.fspath(path)
        self._series: Dict[SeriesKey, List[Observation]] = {}
        self._count = 0
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._load()
        else:
            os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"kind": "header", "schema": PERF_SCHEMA_VERSION}))
                fh.write("\n")

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            first = fh.readline()
            header = json.loads(first)
            if header.get("kind") != "header":
                raise ValueError(f"{self.path}: not a perf history file (no header line)")
            if header.get("schema") != PERF_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: schema {header.get('schema')!r} unsupported "
                    f"(this build reads {PERF_SCHEMA_VERSION})"
                )
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                self._index(Observation.from_dict(json.loads(line)))

    def _index(self, obs: Observation) -> None:
        self._series.setdefault((obs.key, obs.fingerprint.digest), []).append(obs)
        self._count += 1

    # ------------------------------------------------------------------
    def append(self, obs: Observation) -> None:
        """Append one observation (flushed to disk immediately)."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(obs.as_dict(), sort_keys=True))
            fh.write("\n")
            fh.flush()
        self._index(obs)

    def extend(self, observations: Iterable[Observation]) -> None:
        for obs in observations:
            self.append(obs)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def series_keys(self) -> List[SeriesKey]:
        """All (key, digest) series, stable order (by label then digest)."""
        return sorted(self._series, key=lambda sk: (sk[0].label(), sk[1]))

    def series(self, key: ObservationKey, digest: str) -> List[Observation]:
        """Observations of one series in append (chronological) order."""
        return list(self._series.get((key, digest), []))

    def latest(self, key: ObservationKey, digest: str) -> Optional[Observation]:
        seq = self._series.get((key, digest))
        return seq[-1] if seq else None

    def fingerprints(self) -> Dict[str, EnvironmentFingerprint]:
        """digest -> fingerprint of the latest observation carrying it."""
        out: Dict[str, EnvironmentFingerprint] = {}
        for (_, digest), seq in self._series.items():
            out[digest] = seq[-1].fingerprint
        return out


# ----------------------------------------------------------------------
def write_trajectory(
    store: HistoryStore,
    path: Union[str, PathLike],
    *,
    generated_by: str = "hdagg-bench perf run",
) -> dict:
    """Atomically (re)write the trajectory snapshot from a history store.

    Returns the document that was written.  The snapshot is derived state:
    deleting it loses nothing, rerunning this function restores it.
    """
    # strict-JSON float encoding shared with the record store, so a
    # degenerate series (all-zero timings -> non-finite stats) can never
    # poison the snapshot
    from ..suite.storage import encode_float

    fingerprints = {d: fp.as_dict() for d, fp in store.fingerprints().items()}
    series_docs = []
    for key, digest in store.series_keys():
        seq = store.series(key, digest)
        latest = seq[-1]
        series_docs.append(
            {
                "key": key.as_dict(),
                "fingerprint_digest": digest,
                "n_observations": len(seq),
                "median_seconds": [
                    encode_float(o.stats.statistic) if o.stats is not None else None
                    for o in seq
                ],
                "latest": {
                    "stats": latest.stats.as_dict() if latest.stats is not None else None,
                    "reps": latest.reps,
                    "converged": latest.converged,
                    "git_sha": latest.fingerprint.git_sha,
                    "note": latest.note,
                    "stage_medians": {
                        name: _median(vals) for name, vals in latest.stages.items()
                    },
                },
            }
        )
    doc = {
        "schema": PERF_SCHEMA_VERSION,
        "kind": "trajectory",
        "generated_by": generated_by,
        "fingerprints": fingerprints,
        "series": series_docs,
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def load_trajectory(path: Union[str, PathLike]) -> dict:
    """Read a trajectory snapshot, validating its schema."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != "trajectory" or doc.get("schema") != PERF_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: not a schema-{PERF_SCHEMA_VERSION} trajectory snapshot"
        )
    from ..suite.storage import decode_float

    for series in doc.get("series", []):
        series["median_seconds"] = [
            None if v is None else decode_float(v) for v in series["median_seconds"]
        ]
    return doc


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    return ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])


# ----------------------------------------------------------------------
def migrate_bench_inspector(
    path: Union[str, PathLike],
    *,
    benchmark: str = "inspector_scaling",
) -> List[Observation]:
    """Lift a ``BENCH_inspector.json`` file into schema-2 observations.

    Schema-1 files (PR 1-4) carry one single-shot timing per size and no
    environment information; the migrated observations hold that one
    sample (``reps == 1``, so every statistical comparison against them is
    ``indeterminate`` — correctly: a point has no interval) under the
    :data:`LEGACY_DIGEST` placeholder fingerprint.  Schema-2 files written
    by :mod:`benchmarks.bench_inspector_scaling` already embed their
    fingerprint and per-stage milliseconds and migrate losslessly.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    version = doc.get("version", doc.get("schema"))
    if version not in (1, PERF_SCHEMA_VERSION):
        raise ValueError(f"{path}: unsupported BENCH_inspector version {version!r}")
    fp_blob = doc.get("fingerprint")
    if fp_blob is not None:
        fingerprint = EnvironmentFingerprint.from_dict(fp_blob)
    else:
        # extra{} is provenance, not part of the digest: every legacy file
        # migrates onto the shared LEGACY_DIGEST series
        fingerprint = EnvironmentFingerprint(
            cpu_model="", cpu_count=0, governor="", os="", python="",
            numpy="", scipy="", blas="", extra={"migrated_from": os.fspath(path)},
        )
    out: List[Observation] = []
    for row in doc.get("sizes", []):
        total = float(row["inspector_ms"]) / 1e3
        stages = {
            f"inspect/{name}": [float(ms) / 1e3]
            for name, ms in row.get("stage_ms", {}).items()
        }
        stages["inspect"] = [total]
        out.append(
            Observation(
                key=ObservationKey(
                    benchmark=benchmark,
                    matrix=str(row["matrix"]),
                    kernel="sptrsv",
                    algorithm="hdagg",
                ),
                timings=[total],
                stages=stages,
                fingerprint=fingerprint,
                warmup=0,
                target_rel_ci=1.0,
                confidence=0.95,
                seed=0,
                converged=False,
                note="migrated from BENCH_inspector.json"
                if fp_blob is None
                else doc.get("note", ""),
            )
        )
    return out
