"""Correlation helpers for the paper's scatter figures.

Figure 4 reports PGP vs measured PG with R² = 0.83; Figure 8 reports
speedup vs locality improvement with R² = 0.95.  Both are ordinary
least-squares fits through a 2-D point cloud."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "linear_fit", "r_squared"]


@dataclass(frozen=True)
class LinearFit:
    """OLS fit ``y ≈ slope * x + intercept`` with its R²."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x):
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x, y) -> LinearFit:
    """Least-squares line through ``(x, y)``; needs at least two points."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if x.shape[0] < 2:
        raise ValueError("need at least two points")
    xm, ym = x.mean(), y.mean()
    sxx = float(((x - xm) ** 2).sum())
    if sxx == 0.0:
        raise ValueError("x is constant; fit undefined")
    slope = float(((x - xm) * (y - ym)).sum()) / sxx
    intercept = ym - slope * xm
    resid = y - (slope * x + intercept)
    syy = float(((y - ym) ** 2).sum())
    r2 = 1.0 - float((resid**2).sum()) / syy if syy > 0 else 1.0
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2, n=x.shape[0])


def r_squared(x, y) -> float:
    """Coefficient of determination of the OLS fit of ``y`` on ``x``."""
    return linear_fit(x, y).r_squared
