"""Tests for machine models."""

import math

import pytest

from repro.runtime import AMD64, INTEL20, LAPTOP4, MACHINES, MachineConfig


def test_presets_registered():
    assert MACHINES["intel20"] is INTEL20
    assert MACHINES["amd64"] is AMD64
    assert MACHINES["laptop4"] is LAPTOP4


def test_core_counts_match_paper():
    assert INTEL20.n_cores == 20
    assert AMD64.n_cores == 64


def test_amd_has_bigger_cache_share():
    # EPYC's 256MB LLC dwarfs the Xeon's 28MB even per-core
    assert AMD64.cache_lines_per_core > INTEL20.cache_lines_per_core


def test_barrier_cost_formula():
    # p * log2(p) point-to-point syncs (Section V-A conversion)
    expected = 20 * math.log2(20) * INTEL20.p2p_sync_cycles
    assert INTEL20.barrier_cycles == pytest.approx(expected)


def test_barrier_cost_single_core():
    m = MachineConfig(name="one", n_cores=1, cache_lines_per_core=10)
    assert m.barrier_cycles == pytest.approx(m.p2p_sync_cycles)


def test_scaled_to_one_core_gets_whole_llc():
    one = INTEL20.scaled(1)
    assert one.n_cores == 1
    assert one.cache_lines_per_core > INTEL20.cache_lines_per_core
    # latency constants carried over
    assert one.miss_cycles == INTEL20.miss_cycles


def test_scaled_preserves_total_shared_capacity():
    half = INTEL20.scaled(10)
    assert half.cache_lines_per_core > INTEL20.cache_lines_per_core


def test_validation():
    with pytest.raises(ValueError):
        MachineConfig(name="bad", n_cores=0, cache_lines_per_core=1)
    with pytest.raises(ValueError):
        MachineConfig(name="bad", n_cores=1, cache_lines_per_core=0)


def test_frozen():
    with pytest.raises(Exception):
        INTEL20.n_cores = 4
