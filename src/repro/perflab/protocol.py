"""Measurement protocol: warmup, adaptive repetition, stage breakdown.

One :class:`Observation` is the perf-lab's unit of evidence: a keyed,
fingerprinted set of per-rep wall-clock timings with a per-stage
breakdown, plus the bootstrap statistics derived from them.  The
:class:`MeasurementProtocol` produces observations the same way every
time:

1. **warmup** reps run and are discarded (imports, allocator, branch
   predictors, BLAS thread spin-up);
2. **measured** reps accumulate until either the BCa interval of the
   median total is narrower than ``target_rel_ci`` (relative halfwidth)
   or ``max_reps`` is reached — adaptive repetition spends time only on
   noisy cells;
3. each rep reports its **stage breakdown** alongside the total
   (``inspect`` plus the inspector's :class:`~repro.runtime.perf.StageTimer`
   sub-stages as ``inspect/<stage>``, ``execute``, …), so a later
   regression can be attributed to the stage whose distribution moved.

The rep callable owns the timing: it returns ``(total_seconds, stages)``
for one repetition.  This keeps the protocol generic — inspector cells,
executor cells, and synthetic test streams all measure the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .fingerprint import PERF_SCHEMA_VERSION, EnvironmentFingerprint, collect_fingerprint
from .stats import BootstrapCI, bootstrap_ci

__all__ = ["ObservationKey", "Observation", "MeasurementProtocol", "RepResult"]

#: what one rep callable returns: (total_seconds, {stage: seconds}).
RepResult = Tuple[float, Dict[str, float]]


@dataclass(frozen=True)
class ObservationKey:
    """Identity of a benchmarked cell — what history entries are keyed by."""

    benchmark: str
    matrix: str
    kernel: str
    algorithm: str
    machine: str = ""

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "matrix": self.matrix,
            "kernel": self.kernel,
            "algorithm": self.algorithm,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, blob: dict) -> "ObservationKey":
        return cls(**blob)

    def label(self) -> str:
        parts = [self.benchmark, self.matrix, self.kernel, self.algorithm]
        if self.machine:
            parts.append(self.machine)
        return "/".join(parts)


@dataclass
class Observation:
    """One durable, comparable benchmark measurement."""

    key: ObservationKey
    timings: List[float]
    stages: Dict[str, List[float]]
    fingerprint: EnvironmentFingerprint
    warmup: int
    target_rel_ci: float
    confidence: float
    seed: int
    converged: bool
    note: str = ""
    #: wall-clock seconds the whole protocol spent on this cell
    protocol_seconds: float = 0.0
    stats: Optional[BootstrapCI] = None

    def __post_init__(self) -> None:
        if self.stats is None and self.timings:
            self.stats = bootstrap_ci(
                self.timings, confidence=self.confidence, seed=self.seed
            )

    @property
    def reps(self) -> int:
        return len(self.timings)

    def stage_names(self) -> List[str]:
        return sorted(self.stages)

    def as_dict(self) -> dict:
        """JSON-ready blob (one history line)."""
        return {
            "schema": PERF_SCHEMA_VERSION,
            "kind": "observation",
            "key": self.key.as_dict(),
            "fingerprint": self.fingerprint.as_dict(),
            "fingerprint_digest": self.fingerprint.digest,
            "protocol": {
                "warmup": self.warmup,
                "reps": self.reps,
                "target_rel_ci": self.target_rel_ci,
                "confidence": self.confidence,
                "seed": self.seed,
                "converged": self.converged,
                "protocol_seconds": self.protocol_seconds,
            },
            "timings": list(self.timings),
            "stages": {k: list(v) for k, v in self.stages.items()},
            "stats": self.stats.as_dict() if self.stats is not None else None,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, blob: dict) -> "Observation":
        if blob.get("kind") != "observation":
            raise ValueError(f"not an observation blob (kind={blob.get('kind')!r})")
        if blob.get("schema") != PERF_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported observation schema {blob.get('schema')!r} "
                f"(this build reads {PERF_SCHEMA_VERSION})"
            )
        proto = blob["protocol"]
        stats_blob = blob.get("stats")
        return cls(
            key=ObservationKey.from_dict(blob["key"]),
            timings=[float(t) for t in blob["timings"]],
            stages={k: [float(v) for v in vs] for k, vs in blob["stages"].items()},
            fingerprint=EnvironmentFingerprint.from_dict(blob["fingerprint"]),
            warmup=int(proto["warmup"]),
            target_rel_ci=float(proto["target_rel_ci"]),
            confidence=float(proto["confidence"]),
            seed=int(proto["seed"]),
            converged=bool(proto["converged"]),
            note=blob.get("note", ""),
            protocol_seconds=float(proto.get("protocol_seconds", 0.0)),
            stats=BootstrapCI(**stats_blob) if stats_blob else None,
        )


@dataclass
class MeasurementProtocol:
    """How a cell is measured; identical across cells, runs, and machines.

    ``target_rel_ci`` is the adaptive-stop criterion: repetition continues
    (in batches of ``batch``) until the BCa interval of the median total is
    relatively narrower than this, or ``max_reps`` is hit — a cell that
    stops early because its interval never tightened is stamped
    ``converged=False`` so the comparison engine can weigh it accordingly.
    """

    warmup: int = 2
    min_reps: int = 5
    max_reps: int = 30
    batch: int = 3
    target_rel_ci: float = 0.05
    confidence: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_reps < 2:
            raise ValueError("min_reps must be >= 2 (one sample has no interval)")
        if self.max_reps < self.min_reps:
            raise ValueError("max_reps must be >= min_reps")
        if not (0.0 < self.target_rel_ci < 1.0):
            raise ValueError("target_rel_ci must be in (0, 1)")

    # ------------------------------------------------------------------
    def measure(
        self,
        key: ObservationKey,
        rep: Callable[[], RepResult],
        *,
        fingerprint: Optional[EnvironmentFingerprint] = None,
        note: str = "",
    ) -> Observation:
        """Run the protocol over one rep callable; returns the observation.

        Stage lists are kept rep-aligned: a stage missing from one rep
        records 0.0 for it, so ``stages[s][i]`` always belongs to
        ``timings[i]``.
        """
        t_start = time.perf_counter()
        for _ in range(self.warmup):
            rep()
        timings: List[float] = []
        stages: Dict[str, List[float]] = {}

        def take(n: int) -> None:
            for _ in range(n):
                total, stage_seconds = rep()
                timings.append(float(total))
                seen = set()
                for name, seconds in stage_seconds.items():
                    series = stages.setdefault(name, [0.0] * (len(timings) - 1))
                    series.append(float(seconds))
                    seen.add(name)
                for name in stages.keys() - seen:
                    stages[name].append(0.0)

        take(self.min_reps)
        converged = self._tight_enough(timings)
        while not converged and len(timings) + self.batch <= self.max_reps:
            take(self.batch)
            converged = self._tight_enough(timings)
        fp = fingerprint if fingerprint is not None else collect_fingerprint()
        return Observation(
            key=key,
            timings=timings,
            stages=stages,
            fingerprint=fp,
            warmup=self.warmup,
            target_rel_ci=self.target_rel_ci,
            confidence=self.confidence,
            seed=self.seed,
            converged=converged,
            note=note,
            protocol_seconds=time.perf_counter() - t_start,
        )

    def _tight_enough(self, timings: List[float]) -> bool:
        ci = bootstrap_ci(timings, confidence=self.confidence, seed=self.seed)
        return ci.rel_halfwidth <= self.target_rel_ci
