"""Parallel experiment grid: pool-enabled runs must reproduce serial rows.

The harness fans matrices over a fork pool when ``n_jobs > 1``; every
metric field of every record must be identical to the serial run — only
wall-clock timing fields (and the cache flag) may differ between modes.
"""

import numpy as np
import pytest

from repro.core import ScheduleCache
from repro.suite import Harness
from repro.suite.matrices import SUITE
from repro.suite.storage import records_from_json, records_to_json

#: fields that legitimately differ between two runs of the same grid
TIMING_FIELDS = {"inspector_seconds", "stage_seconds", "schedule_cached"}


def _strip(record):
    return {k: v for k, v in record.__dict__.items() if k not in TIMING_FIELDS}


@pytest.fixture(scope="module")
def small_specs():
    return SUITE[:3]


@pytest.fixture(scope="module")
def harness_kwargs():
    return dict(kernels=("sptrsv",), algorithms=("hdagg", "wavefront"))


def test_parallel_rows_match_serial(small_specs, harness_kwargs):
    serial = Harness(**harness_kwargs).run_suite(small_specs)
    parallel = Harness(**harness_kwargs).run_suite(small_specs, n_jobs=3)
    assert len(serial) == len(parallel) > 0
    for a, b in zip(serial, parallel):
        assert _strip(a) == _strip(b)


def test_parallel_rows_serialize_identically(small_specs, harness_kwargs):
    serial = Harness(**harness_kwargs).run_suite(small_specs)
    parallel = Harness(**harness_kwargs).run_suite(small_specs, n_jobs=2)
    # byte-identical JSON once timing fields are normalised away
    for records in (serial, parallel):
        for r in records:
            r.inspector_seconds = 0.0
            r.stage_seconds = {}
            r.schedule_cached = False
    assert records_to_json(serial) == records_to_json(parallel)
    # and the round-trip preserves the new fields
    back = records_from_json(records_to_json(parallel))
    assert [r.__dict__ for r in back] == [r.__dict__ for r in parallel]


def test_n_jobs_validation(small_specs, harness_kwargs):
    with pytest.raises(ValueError):
        Harness(**harness_kwargs).run_suite(small_specs, n_jobs=0)


def test_schedule_cache_hits_on_repeat(small_specs, harness_kwargs):
    cache = ScheduleCache()
    h = Harness(**harness_kwargs, schedule_cache=cache)
    first = h.run_suite(small_specs)
    assert cache.stats.misses == len(first)
    assert not any(r.schedule_cached for r in first)
    second = h.run_suite(small_specs)
    assert all(r.schedule_cached for r in second)
    assert cache.stats.hits == len(second)
    for a, b in zip(first, second):
        assert _strip(a) == _strip(b)


def test_hdagg_rows_carry_stage_timings(small_specs, harness_kwargs):
    records = Harness(**harness_kwargs).run_suite(small_specs[:1])
    hd = [r for r in records if r.algorithm == "hdagg"]
    assert hd
    for r in hd:
        assert {"transitive_reduction", "aggregation", "lbp", "expand"} <= set(
            r.stage_seconds
        )
        assert all(v >= 0.0 for v in r.stage_seconds.values())
        assert sum(r.stage_seconds.values()) <= r.inspector_seconds * 1.5 + 1.0
