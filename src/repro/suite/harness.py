"""Experiment harness: run (matrix x kernel x algorithm x machine) grids.

This is the programmatic engine behind every table and figure benchmark.
For one matrix it:

1. builds and ND-reorders the matrix (the paper's METIS pre-pass,
   Section V);
2. derives the kernel inputs: operand matrix, dependence DAG, cost vector,
   memory model;
3. runs each inspector, validates its schedule against the DAG (structural
   + dependence safety), and simulates it on each machine;
4. records the paper's metrics per run (speedup vs the simulated sequential
   execution, locality, measured PG, sync counts, imbalance ratio, NRE).

Everything is cached per matrix so the grid costs one DAG build and one
memory model per kernel, not one per algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.pgp import DEFAULT_EPSILON, accumulated_pgp
from ..kernels import KERNELS
from ..metrics.load_balance import imbalance_ratio
from ..metrics.nre import inspector_cost_model, nre
from ..metrics.parallelism import dag_shape
from ..metrics.synchronization import equivalent_p2p_syncs
from ..runtime.machine import MACHINES, MachineConfig
from ..runtime.simulator import SimulationResult, simulate
from ..schedulers import SCHEDULERS
from ..sparse.csr import CSRMatrix
from ..sparse.ordering import apply_ordering
from ..sparse.triangular import lower_triangle
from .matrices import MatrixSpec

__all__ = ["RunRecord", "MatrixContext", "Harness", "DEFAULT_ALGORITHMS"]

#: The paper's comparison set (MKL is SpTRSV-only, handled by the harness).
DEFAULT_ALGORITHMS = ("hdagg", "spmp", "wavefront", "lbc", "dagp", "mkl")


@dataclass
class RunRecord:
    """Metrics of one (matrix, kernel, algorithm, machine) execution."""

    matrix: str
    family: str
    kernel: str
    algorithm: str
    machine: str
    n: int
    nnz: int
    n_wavefronts: int
    average_parallelism: float
    nnz_per_wavefront: float
    speedup: float
    makespan_cycles: float
    serial_cycles: float
    avg_memory_access_latency: float
    hit_rate: float
    potential_gain: float
    pgp: float
    equivalent_syncs: float
    n_barriers: int
    n_p2p_syncs: int
    imbalance_ratio: float
    inspector_cycles: float
    nre: float
    schedule_levels: int
    schedule_partitions: int
    fine_grained: bool
    inspector_seconds: float


@dataclass
class MatrixContext:
    """Cached per-matrix artefacts shared across algorithms/machines."""

    spec: MatrixSpec
    matrix: CSRMatrix  # reordered full SPD matrix
    kernels: Dict[str, dict] = field(default_factory=dict)  # kernel -> artefacts


class Harness:
    """Grid runner over the suite.

    Parameters
    ----------
    machines:
        Machine names (keys of :data:`repro.runtime.machine.MACHINES`) or
        :class:`MachineConfig` objects.
    kernels:
        Kernel names among ``{"sptrsv", "spic0", "spilu0"}``.
    algorithms:
        Scheduler names; ``"mkl"`` is automatically restricted to SpTRSV
        (MKL has no parallel SpIC0/SpILU0, Section V).
    ordering:
        Symmetric pre-ordering applied to every matrix (paper: METIS; here
        ``"nd"`` by default).
    epsilon:
        HDagg/LBC load-balance threshold.
    """

    def __init__(
        self,
        machines: Sequence = ("intel20",),
        kernels: Sequence[str] = ("sptrsv", "spic0", "spilu0"),
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        *,
        ordering: str = "nd",
        epsilon: float = DEFAULT_EPSILON,
        validate: bool = True,
    ) -> None:
        self.machines: List[MachineConfig] = [
            m if isinstance(m, MachineConfig) else MACHINES[m] for m in machines
        ]
        for k in kernels:
            if k not in KERNELS:
                raise KeyError(f"unknown kernel {k!r}")
        self.kernels = tuple(kernels)
        for a in algorithms:
            if a not in SCHEDULERS:
                raise KeyError(f"unknown algorithm {a!r}")
        self.algorithms = tuple(algorithms)
        self.ordering = ordering
        self.epsilon = epsilon
        self.validate = validate

    # ------------------------------------------------------------------
    def prepare(self, spec: MatrixSpec) -> MatrixContext:
        """Build, reorder, and derive kernel artefacts for one matrix."""
        raw = spec.build()
        ordered, _ = apply_ordering(raw, self.ordering)
        ctx = MatrixContext(spec=spec, matrix=ordered)
        for kname in self.kernels:
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            g = kernel.dag(operand)
            cost = kernel.cost(operand)
            memory = kernel.memory_model(operand, g)
            shape = dag_shape(g)
            ctx.kernels[kname] = {
                "kernel": kernel,
                "operand": operand,
                "dag": g,
                "cost": cost,
                "memory": memory,
                "shape": shape,
            }
        return ctx

    def _algorithms_for(self, kernel: str) -> Iterable[str]:
        for a in self.algorithms:
            if a == "mkl" and kernel != "sptrsv":
                continue  # MKL's SpIC0/SpILU0 are not parallel (Section V)
            yield a

    # ------------------------------------------------------------------
    def run_matrix(self, spec: MatrixSpec) -> List[RunRecord]:
        """All records for one matrix across the configured grid."""
        ctx = self.prepare(spec)
        records: List[RunRecord] = []
        for kname in self.kernels:
            art = ctx.kernels[kname]
            g, cost, memory = art["dag"], art["cost"], art["memory"]
            shape = art["shape"]

            # serial reference per machine (sequential run owns the machine)
            serial_schedule = SCHEDULERS["serial"](g, cost)
            serial_results: Dict[str, SimulationResult] = {}
            for machine in self.machines:
                serial_results[machine.name] = simulate(
                    serial_schedule, g, cost, memory, machine.scaled(1)
                )

            for algo in self._algorithms_for(kname):
                for machine in self.machines:
                    t0 = time.perf_counter()
                    if algo in ("hdagg", "lbc"):
                        schedule = SCHEDULERS[algo](g, cost, machine.n_cores, epsilon=self.epsilon)
                    else:
                        schedule = SCHEDULERS[algo](g, cost, machine.n_cores)
                    inspector_seconds = time.perf_counter() - t0
                    if self.validate:
                        schedule.validate(g)
                    sim = simulate(schedule, g, cost, memory, machine)
                    serial = serial_results[machine.name]
                    insp_cycles = inspector_cost_model(algo, g, schedule)
                    records.append(
                        RunRecord(
                            matrix=spec.name,
                            family=spec.family,
                            kernel=kname,
                            algorithm=algo,
                            machine=machine.name,
                            n=g.n,
                            nnz=ctx.matrix.nnz,
                            n_wavefronts=shape.n_wavefronts,
                            average_parallelism=shape.average_parallelism,
                            nnz_per_wavefront=ctx.matrix.nnz / max(1, shape.n_wavefronts),
                            speedup=serial.makespan_cycles / sim.makespan_cycles
                            if sim.makespan_cycles > 0
                            else float("inf"),
                            makespan_cycles=sim.makespan_cycles,
                            serial_cycles=serial.makespan_cycles,
                            avg_memory_access_latency=sim.avg_memory_access_latency,
                            hit_rate=sim.hit_rate,
                            potential_gain=sim.potential_gain,
                            pgp=accumulated_pgp(schedule, cost),
                            equivalent_syncs=equivalent_p2p_syncs(sim, machine.n_cores),
                            n_barriers=sim.n_barriers,
                            n_p2p_syncs=sim.n_p2p_syncs,
                            imbalance_ratio=imbalance_ratio(schedule, machine.n_cores),
                            inspector_cycles=insp_cycles,
                            nre=nre(insp_cycles, serial, sim),
                            schedule_levels=schedule.n_levels,
                            schedule_partitions=schedule.n_partitions,
                            fine_grained=schedule.fine_grained,
                            inspector_seconds=inspector_seconds,
                        )
                    )
        return records

    def run_suite(self, specs: Sequence[MatrixSpec], *, progress: bool = False) -> List[RunRecord]:
        """Run the grid over many matrices; flat record list."""
        out: List[RunRecord] = []
        for i, spec in enumerate(specs):
            if progress:
                print(f"[{i + 1}/{len(specs)}] {spec.name}", flush=True)
            out.extend(self.run_matrix(spec))
        return out
