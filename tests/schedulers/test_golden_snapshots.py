"""Golden-snapshot tests: every scheduler's partitions are frozen (S1).

Schedulers must be bit-deterministic — the schedule cache, the resumable
journal, and every paper table depend on a (matrix, kernel, algorithm,
cores) cell always producing the *same* partitioning.  This suite hashes
the full schedule structure (sync model, fine-grained flag, every level's
partitions with their core assignments and exact vertex arrays) for every
scheduler x kernel over four fixed seeded matrices and compares against
``golden_schedules.json``.

A digest mismatch means the inspector's output changed.  If the change is
intentional, regenerate the snapshot and review the diff like any other
behavioural change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/schedulers/test_golden_snapshots.py
"""

import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import (
    apply_ordering,
    banded_spd,
    lower_triangle,
    poisson2d,
    power_law_spd,
    random_spd,
)

GOLDEN_PATH = Path(__file__).with_name("golden_schedules.json")
CORES = 8
KERNEL_NAMES = ("sptrsv", "spic0", "spilu0")

#: name -> builder; seeds are pinned so the matrices never drift
MATRICES = {
    "poisson2d-12": lambda: poisson2d(12, seed=0),
    "banded-160": lambda: banded_spd(160, 6, seed=3),
    "random-150": lambda: random_spd(150, 4.0, seed=7),
    "powerlaw-150": lambda: power_law_spd(150, 5.0, seed=11),
}


def _schedulers_for(kernel: str):
    # MKL's SpIC0/SpILU0 are not parallel (Section V): sptrsv only
    return [a for a in sorted(SCHEDULERS) if not (a == "mkl" and kernel != "sptrsv")]


def schedule_digest(schedule) -> str:
    """SHA-256 over the canonical byte encoding of a schedule's structure."""
    h = hashlib.sha256()
    h.update(f"sync={schedule.sync};fine={schedule.fine_grained};"
             f"n={schedule.n};levels={schedule.n_levels};".encode())
    for k, level in enumerate(schedule.levels):
        for part in level:
            h.update(f"L{k}c{int(part.core)}:".encode())
            h.update(np.ascontiguousarray(part.vertices, dtype=np.int64).tobytes())
            h.update(b";")
    return h.hexdigest()


def compute_digests() -> dict:
    """The full snapshot: matrix -> kernel -> algorithm -> digest."""
    out = {}
    for mname, build in MATRICES.items():
        ordered, _ = apply_ordering(build(), "nd")
        per_kernel = {}
        for kname in KERNEL_NAMES:
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            g = kernel.dag(operand)
            cost = kernel.cost(operand)
            per_kernel[kname] = {
                algo: schedule_digest(SCHEDULERS[algo](g, cost, CORES))
                for algo in _schedulers_for(kname)
            }
        out[mname] = per_kernel
    return out


@pytest.fixture(scope="module")
def current_digests():
    digests = compute_digests()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    return digests


@pytest.fixture(scope="module")
def golden(current_digests):
    # depends on current_digests so REGEN_GOLDEN writes before any read
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — generate it with REGEN_GOLDEN=1"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_snapshot_covers_the_full_grid(golden):
    assert sorted(golden) == sorted(MATRICES)
    for mname, per_kernel in golden.items():
        assert sorted(per_kernel) == sorted(KERNEL_NAMES)
        for kname, per_algo in per_kernel.items():
            assert sorted(per_algo) == _schedulers_for(kname)


@pytest.mark.parametrize("mname", sorted(MATRICES))
def test_schedules_match_golden_snapshot(mname, current_digests, golden):
    assert current_digests[mname] == golden[mname], (
        f"schedule drift on {mname}: an inspector now partitions this matrix "
        f"differently; if intentional, regenerate with REGEN_GOLDEN=1 and "
        f"review the diff"
    )


def test_digests_are_stable_within_a_process():
    """Back-to-back runs of one cell must agree (no hidden RNG state)."""
    ordered, _ = apply_ordering(MATRICES["random-150"](), "nd")
    operand = lower_triangle(ordered)
    kernel = KERNELS["sptrsv"]
    g, cost = kernel.dag(operand), kernel.cost(operand)
    for algo in _schedulers_for("sptrsv"):
        d1 = schedule_digest(SCHEDULERS[algo](g, cost, CORES))
        d2 = schedule_digest(SCHEDULERS[algo](g, cost, CORES))
        assert d1 == d2, f"{algo} is nondeterministic"
