"""ScheduleStore behaviour: round trips, sharding, recovery, quarantine.

Everything here runs without fault injection — the seeded chaos sweep
lives in ``test_crash_consistency.py``.  These tests hand-craft each
on-disk damage pattern instead, so every recovery path is pinned
independently of the fault machinery.
"""

import json

import pytest

from repro.core.schedule_cache import ScheduleCache, schedule_key
from repro.store import ScheduleStore, StoreError, encode_schedule

KEY_A = "00" * 32
KEY_B = "ff" * 32


@pytest.fixture()
def schedule(corpus):
    return corpus[("hdagg", "poisson2d")][0]


@pytest.fixture()
def store(tmp_path):
    return ScheduleStore(tmp_path / "store", durable=False)


class TestRoundTrip:
    def test_put_get_bit_identical(self, store, corpus):
        for i, ((sname, mname), (schedule, _)) in enumerate(sorted(corpus.items())):
            key = f"{i:064x}"
            store.put(key, schedule)
            back = store.get(key)
            assert back is not None, (sname, mname)
            assert encode_schedule(back) == encode_schedule(schedule)

    def test_persists_across_reopen(self, tmp_path, schedule):
        root = tmp_path / "store"
        ScheduleStore(root, durable=False).put(KEY_A, schedule)
        back = ScheduleStore(root).get(KEY_A)
        assert back is not None
        assert encode_schedule(back) == encode_schedule(schedule)

    def test_absent_key_is_a_miss(self, store):
        assert store.get(KEY_A) is None
        assert store.stats.misses == 1
        assert KEY_A not in store

    def test_real_schedule_keys_round_trip(self, store, corpus):
        schedule, g = corpus[("hdagg", "banded")]
        key = schedule_key(g, kernel="sptrsv", algorithm="hdagg", p=4)
        store.put(key, schedule)
        assert store.get(key) is not None
        assert key in store and store.keys() == [key]

    def test_stats_and_hit_rate(self, store, schedule):
        store.put(KEY_A, schedule)
        store.get(KEY_A)
        store.get(KEY_B)
        s = store.stats
        assert (s.hits, s.misses, s.writes) == (1, 1, 1)
        assert s.hit_rate == 0.5


class TestLayout:
    def test_shard_mapping_is_stable_and_in_range(self, store):
        for key in (KEY_A, KEY_B, "0123abcd" + "00" * 28):
            assert 0 <= store.shard_of(key) < store.n_shards
            assert store.shard_of(key) == store.shard_of(key)

    def test_non_hex_key_rejected(self, store):
        with pytest.raises(StoreError, match="hex digest"):
            store.shard_of("not a digest")

    def test_existing_shard_count_is_authoritative(self, tmp_path, schedule):
        root = tmp_path / "store"
        ScheduleStore(root, n_shards=4, durable=False).put(KEY_B, schedule)
        reopened = ScheduleStore(root, n_shards=32)
        assert reopened.n_shards == 4
        assert reopened.get(KEY_B) is not None

    def test_records_live_under_their_shard(self, tmp_path, schedule):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_B, schedule)
        shard = st.shard_of(KEY_B)
        assert (root / "shards" / f"{shard:02x}" / f"{KEY_B}.sched").exists()

    def test_format_mismatch_rejected(self, tmp_path):
        root = tmp_path / "store"
        ScheduleStore(root, durable=False)
        (root / "store.json").write_text(json.dumps({"format": 99, "n_shards": 4}))
        with pytest.raises(StoreError, match="format"):
            ScheduleStore(root)

    def test_open_is_lazy(self, tmp_path, schedule):
        """Opening reads only store.json; shard manifests load per touch."""
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        reopened = ScheduleStore(root)
        assert reopened._manifests == {}
        reopened.get(KEY_A)
        assert list(reopened._manifests) == [reopened.shard_of(KEY_A)]


class TestRecovery:
    def test_bit_flip_on_disk_quarantines(self, tmp_path, schedule):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        path = root / "shards" / f"{st.shard_of(KEY_A):02x}" / f"{KEY_A}.sched"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        fresh = ScheduleStore(root)
        assert fresh.get(KEY_A) is None
        assert fresh.stats.quarantined == 1
        assert "CRC" in fresh.events[0].reason
        assert not path.exists()  # moved aside, not served, not deleted
        assert list((root / "quarantine").glob(f"{KEY_A}.*")), "no audit trail"
        assert fresh.get(KEY_A) is None  # and stays a plain miss afterwards

    def test_truncated_record_quarantines(self, tmp_path, schedule):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        path = root / "shards" / f"{st.shard_of(KEY_A):02x}" / f"{KEY_A}.sched"
        path.write_bytes(path.read_bytes()[:10])
        fresh = ScheduleStore(root)
        assert fresh.get(KEY_A) is None
        assert fresh.events and "size mismatch" in fresh.events[0].reason

    def test_stale_manifest_is_repaired_by_probe(self, tmp_path, schedule):
        """Crash between record rename and manifest write: the record is
        on disk, the index missed it.  A read must find and re-index it."""
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        shard_dir = root / "shards" / f"{st.shard_of(KEY_A):02x}"
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        del manifest["records"][KEY_A]
        (shard_dir / "manifest.json").write_text(json.dumps(manifest))
        fresh = ScheduleStore(root)
        assert fresh.get(KEY_A) is not None
        assert fresh.stats.manifest_repairs == 1
        # the repair was persisted: a third open hits the manifest directly
        third = ScheduleStore(root)
        assert third.get(KEY_A) is not None
        assert third.stats.manifest_repairs == 0

    def test_corrupt_manifest_is_rebuilt_from_directory(self, tmp_path, schedule):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        shard_dir = root / "shards" / f"{st.shard_of(KEY_A):02x}"
        (shard_dir / "manifest.json").write_text('{"format": 1, "recor')  # torn
        fresh = ScheduleStore(root)
        assert fresh.get(KEY_A) is not None  # codec CRC still guards the blob
        assert fresh.stats.manifest_repairs >= 1

    def test_manifest_entry_without_record_is_dropped(self, tmp_path, schedule):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        st.put(KEY_A, schedule)
        path = root / "shards" / f"{st.shard_of(KEY_A):02x}" / f"{KEY_A}.sched"
        path.unlink()
        fresh = ScheduleStore(root)
        assert fresh.get(KEY_A) is None
        assert KEY_A not in fresh  # the dangling index entry is gone

    def test_quarantine_key_is_idempotent(self, store, schedule):
        store.put(KEY_A, schedule)
        assert store.quarantine_key(KEY_A, "caller-side safety failure")
        assert store.get(KEY_A) is None
        assert not store.quarantine_key(KEY_A, "again")
        assert store.stats.quarantined == 1

    def test_audit_sweeps_good_and_bad(self, tmp_path, corpus):
        root = tmp_path / "store"
        st = ScheduleStore(root, durable=False)
        schedules = [corpus[("hdagg", m)][0] for m in ("poisson2d", "banded", "random")]
        keys = [f"{i:064x}" for i in range(3)]
        for key, s in zip(keys, schedules):
            st.put(key, s)
        bad = root / "shards" / f"{st.shard_of(keys[1]):02x}" / f"{keys[1]}.sched"
        bad.write_bytes(b"\x00" + bad.read_bytes()[1:])
        report = ScheduleStore(root).audit()
        assert report.scanned == 3
        assert report.ok == 2
        assert [q.key for q in report.quarantined] == [keys[1]]


class TestCacheIntegration:
    """The write-through / fall-through contract of ScheduleCache(store=...)."""

    def test_put_writes_through_and_miss_promotes(self, tmp_path, corpus):
        schedule, g = corpus[("hdagg", "random")]
        key = schedule_key(g, kernel="sptrsv", algorithm="hdagg", p=4)
        root = tmp_path / "store"
        ScheduleCache(store=ScheduleStore(root, durable=False)).put(key, schedule)
        # a different process (fresh cache, fresh store handle) sees it
        cache = ScheduleCache(max_entries=4, store=ScheduleStore(root))
        got = cache.get(key)
        assert got is not None
        assert encode_schedule(got) == encode_schedule(schedule)
        assert cache.stats.hits == 1 and len(cache) == 1  # promoted into L1

    def test_store_write_failure_never_fails_put(self, corpus):
        schedule, g = corpus[("hdagg", "random")]

        class ExplodingStore:
            def put(self, key, s):
                raise OSError("disk on fire")

            def get(self, key):
                return None

        cache = ScheduleCache(store=ExplodingStore())
        cache.put("00" * 32, schedule)  # must not raise
        assert cache.get("00" * 32) is not None


class TestEviction:
    def _fill(self, store, corpus, n):
        schedules = [s for (s, _) in corpus.values()][:1] * n
        keys = [f"{i:064x}" for i in range(n)]
        for key, sched in zip(keys, schedules):
            store.put(key, sched)
        return keys

    def test_unbounded_store_never_evicts(self, store, corpus):
        self._fill(store, corpus, 6)
        assert store.stats.evictions == 0
        assert len(store) == 6

    def test_over_budget_put_evicts_down_to_budget(self, tmp_path, schedule):
        probe = ScheduleStore(tmp_path / "probe", durable=False)
        probe.put("aa" * 32, schedule)
        record = probe.total_bytes()
        store = ScheduleStore(
            tmp_path / "store", durable=False, max_bytes=3 * record
        )
        keys = self._fill(store, {("a", "b"): (schedule, None)}, 5)
        assert store.total_bytes() <= store.max_bytes
        assert store.stats.evictions == 2
        assert len(store) == 3
        # evicted records are clean deletes, not quarantines
        assert store.stats.quarantined == 0
        assert store.events == []
        for key in keys:
            got = store.get(key)
            assert got is None or got is not None  # never raises

    def test_hot_records_survive_cold_ones_go(self, tmp_path, schedule):
        probe = ScheduleStore(tmp_path / "probe", durable=False)
        probe.put("aa" * 32, schedule)
        record = probe.total_bytes()
        store = ScheduleStore(
            tmp_path / "store", durable=False, max_bytes=int(2.5 * record)
        )
        hot, cold = "00" * 32, "11" * 32
        store.put(hot, schedule)
        store.put(cold, schedule)
        for _ in range(3):
            assert store.get(hot) is not None
        store.put("22" * 32, schedule)  # over budget: the cold key goes
        assert store.get(hot) is not None
        assert cold not in store
        assert store.stats.evictions == 1

    def test_eviction_is_deterministic_without_access_history(self, tmp_path, schedule):
        def run():
            store = ScheduleStore(
                tmp_path / f"store{len(list(tmp_path.iterdir()))}",
                durable=False, max_bytes=1,
            )
            for i in range(4):
                store.put(f"{i:064x}", schedule)
            return store.keys()

        assert run() == run()

    def test_protected_key_survives_even_alone_over_budget(self, tmp_path, schedule):
        store = ScheduleStore(tmp_path / "store", durable=False, max_bytes=1)
        store.put("aa" * 32, schedule)
        # the freshly written record is never its own victim
        assert store.get("aa" * 32) is not None
        assert store.stats.evictions == 0

    def test_audit_reports_the_eviction_counter(self, tmp_path, schedule):
        store = ScheduleStore(tmp_path / "store", durable=False, max_bytes=1)
        store.put("aa" * 32, schedule)
        store.put("bb" * 32, schedule)
        report = store.audit()
        assert report.evictions == store.stats.evictions == 1
        assert report.as_dict()["evictions"] == 1

    def test_eviction_survives_reopen(self, tmp_path, schedule):
        root = tmp_path / "store"
        store = ScheduleStore(root, durable=False, max_bytes=1)
        store.put("aa" * 32, schedule)
        store.put("bb" * 32, schedule)
        survivors = store.keys()
        back = ScheduleStore(root, durable=False)
        assert back.keys() == survivors
        assert back.audit().quarantined == []

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ScheduleStore(tmp_path / "store", durable=False, max_bytes=0)

    def test_eviction_metrics_are_in_the_catalog(self, tmp_path, schedule):
        from repro.observability import observed
        from repro.observability.telemetry import catalog_violations

        with observed() as (_, registry):
            store = ScheduleStore(tmp_path / "store", durable=False, max_bytes=1)
            store.put("aa" * 32, schedule)
            store.put("bb" * 32, schedule)
        assert registry.counter("store.evictions").value == 1
        assert registry.gauge("store.occupancy_bytes").value == store.total_bytes()
        assert catalog_violations(registry.names()) == []
