"""Figure 9: NRE — kernel executions needed to amortise the inspector.

Paper values (SpTRSV averages): DAGP ~5305 (off the chart), LBC 24,
SpMP 21, HDagg 16, Wavefront 9.4.  For SpIC0/SpILU0 HDagg's NRE drops
below 1 (0.38 / 0.41): a factorisation is so much heavier than its
inspection that one run already amortises it.
"""

import math

import numpy as np

from _common import write_report
from repro.suite import fig9_nre, format_kv, format_table

PAPER_SPTRSV = {"wavefront": 9.4, "hdagg": 16.0, "spmp": 21.0, "lbc": 24.0, "dagp": 5305.0}


def test_fig9(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(fig9_nre, records_intel, machine="intel20")
    text = "\n\n".join(
        [
            format_table(headers, rows, title="Figure 9: NRE per matrix (SpTRSV, intel20)"),
            format_kv(data["sptrsv"], title="average NRE (SpTRSV)"),
            format_kv(
                {k: v["hdagg"] for k, v in data.items() if k != "sptrsv"},
                title="average NRE of HDagg (factorisations)",
            ),
            format_kv(PAPER_SPTRSV, title="paper averages (SpTRSV)"),
        ]
    )
    write_report(output_dir, "fig9_intel20", text)

    avg = data["sptrsv"]
    # ordering claims from the paper
    assert avg["wavefront"] < avg["hdagg"], avg
    assert avg["dagp"] > 20 * avg["hdagg"], avg
    # level-set family amortises within tens of executions
    for algo in ("wavefront", "hdagg", "spmp", "lbc"):
        assert avg[algo] < 500, (algo, avg[algo])
    # factorisations amortise faster than the solve (paper: NRE < 1; the
    # simulated cost model compresses the kernel-weight gap, so the claim
    # kept here is the ordering for the heavier SpILU0)
    assert data["spilu0"]["hdagg"] < avg["hdagg"]
    assert math.isfinite(data["spic0"]["hdagg"])
