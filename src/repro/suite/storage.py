"""Persist and reload harness run records.

Full-suite runs cost minutes of inspection; the tables and figures that
consume them cost milliseconds.  Storing the flat
:class:`~repro.suite.harness.RunRecord` list as JSON decouples the two:
run the grid once (CI, overnight, a beefier machine), regenerate any table
offline, diff records across commits.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields
from os import PathLike
from typing import List, Sequence, Union

from .harness import RunRecord

__all__ = ["records_to_json", "records_from_json", "save_records", "load_records"]

_FLOAT_FIELDS = {
    f.name for f in fields(RunRecord) if f.type in ("float", float)
}


def _encode(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
    return value


def _decode(name: str, value):
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    return value


def records_to_json(records: Sequence[RunRecord]) -> str:
    """Serialise records (non-finite floats encoded as strings)."""
    blobs = [
        {k: _encode(v) for k, v in r.__dict__.items()} for r in records
    ]
    return json.dumps({"version": 1, "records": blobs}, indent=1)


def records_from_json(text: str) -> List[RunRecord]:
    """Inverse of :func:`records_to_json`; validates the field set."""
    doc = json.loads(text)
    if doc.get("version") != 1:
        raise ValueError(f"unsupported records version {doc.get('version')!r}")
    expected = {f.name for f in fields(RunRecord)}
    out: List[RunRecord] = []
    for blob in doc["records"]:
        if set(blob) != expected:
            missing = expected - set(blob)
            extra = set(blob) - expected
            raise ValueError(f"record fields mismatch (missing={missing}, extra={extra})")
        out.append(RunRecord(**{k: _decode(k, v) for k, v in blob.items()}))
    return out


def save_records(records: Sequence[RunRecord], path: Union[str, PathLike]) -> None:
    """Write run records to a JSON file (see :func:`records_to_json`)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(records_to_json(records))


def load_records(path: Union[str, PathLike]) -> List[RunRecord]:
    """Read run records from a JSON file written by :func:`save_records`."""
    with open(path, "r", encoding="utf-8") as fh:
        return records_from_json(fh.read())
