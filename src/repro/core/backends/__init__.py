"""Per-stage inspector backend registry.

Every stage of the HDagg inspector pipeline (transitive reduction,
subtree aggregation, DAG coarsening, LBP wavefront coarsening, bin
packing, schedule expansion) is a named, swappable implementation.  A
:class:`BackendSpec` selects one *tier* per stage:

``reference``
    The literal loop oracles retained next to every fast path
    (``lbp_coarsen_reference``, ``subtree_grouping_reference``, ...).
``numpy``
    The vectorized fast paths — the default, unchanged behaviour.
``compiled``
    A C shared library (:mod:`repro.core.backends.native`) covering the
    two stages that dominate inspector time on mesh matrices,
    ``lbp`` and ``coarsen``.  When the library has not been built the
    registry falls back to ``numpy`` with a one-time warning — imports
    and schedules never depend on the extension being present.

All three tiers are **bit-identical** by contract: the same DAG and
parameters produce the same schedule down to every float in the packing
loads (enforced by the differential test suite).  The spec therefore
changes only *speed*; it still participates in cache keys and perf-lab
fingerprints so measurements from different tiers are never mixed.

Selection sources, in precedence order: explicit ``backend=`` argument
to :func:`repro.core.hdagg.hdagg`, the ``REPRO_BACKENDS`` environment
variable, the all-``numpy`` default.  The string grammar is
``"lbp=compiled,coarsen=compiled"`` (per-stage), ``"compiled"`` /
``"all=compiled"`` (every stage), or ``"numpy"`` (explicit default).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "STAGES",
    "TIERS",
    "DEFAULT_TIER",
    "ENV_VAR",
    "BackendSpec",
    "BackendWarning",
    "available_tiers",
    "registered_tiers",
    "resolve_stage",
    "register_backend",
    "reset_fallback_warnings",
]

#: pipeline stages, in execution order
STAGES = ("reduce", "aggregate", "coarsen", "lbp", "binpack", "expand")

#: implementation tiers
TIERS = ("reference", "numpy", "compiled")

DEFAULT_TIER = "numpy"

ENV_VAR = "REPRO_BACKENDS"

#: accepted aliases for stage names (StageTimer / span spellings)
_STAGE_ALIASES = {
    "transitive_reduction": "reduce",
    "aggregation": "aggregate",
    "bin_pack": "binpack",
}


class BackendWarning(RuntimeWarning):
    """Raised (as a warning) when a requested tier falls back to numpy."""


def _canon_stage(name: str) -> str:
    stage = _STAGE_ALIASES.get(name.strip(), name.strip())
    if stage not in STAGES:
        raise ValueError(f"unknown inspector stage {name!r}; expected one of {STAGES}")
    return stage


def _canon_tier(name: str) -> str:
    tier = name.strip()
    if tier not in TIERS:
        raise ValueError(f"unknown backend tier {name!r}; expected one of {TIERS}")
    return tier


@dataclass(frozen=True)
class BackendSpec:
    """Immutable per-stage tier selection.

    ``entries`` holds only the non-default assignments, sorted by stage
    name — two specs selecting the same tiers always compare (and hash,
    and ``describe()``) equal regardless of how they were written.
    """

    entries: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        canon = tuple(
            sorted(
                (s, t)
                for s, t in {_canon_stage(s): _canon_tier(t) for s, t in self.entries}.items()
                if t != DEFAULT_TIER
            )
        )
        object.__setattr__(self, "entries", canon)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str | None) -> "BackendSpec":
        """Parse the CLI/env grammar; ``None``/empty means all-numpy.

        >>> BackendSpec.parse("lbp=compiled,coarsen=compiled").describe()
        'coarsen=compiled,lbp=compiled'
        >>> BackendSpec.parse("compiled").describe()
        'compiled'
        >>> BackendSpec.parse("").describe()
        'numpy'
        """
        if not text or not text.strip():
            return cls()
        text = text.strip()
        if "=" not in text and "," not in text:
            return cls(tuple((s, _canon_tier(text)) for s in STAGES))
        entries = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad backend entry {part!r}: expected 'stage=tier' or a bare tier name"
                )
            stage, tier = part.split("=", 1)
            if stage.strip() == "all":
                entries.extend((s, _canon_tier(tier)) for s in STAGES)
            else:
                entries.append((_canon_stage(stage), _canon_tier(tier)))
        return cls(tuple(entries))

    @classmethod
    def from_env(cls) -> "BackendSpec":
        """Spec selected by the ``REPRO_BACKENDS`` environment variable."""
        return cls.parse(os.environ.get(ENV_VAR))

    @classmethod
    def coerce(cls, value: "BackendSpec | str | None") -> "BackendSpec":
        """Normalise an API argument: spec, grammar string, or None (env)."""
        if value is None:
            return cls.from_env()
        if isinstance(value, BackendSpec):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise TypeError(f"backend must be a BackendSpec, str, or None, not {type(value)!r}")

    # ------------------------------------------------------------------
    def tier(self, stage: str) -> str:
        """Requested tier for one stage (before availability fallback)."""
        stage = _canon_stage(stage)
        for s, t in self.entries:
            if s == stage:
                return t
        return DEFAULT_TIER

    def with_stage(self, stage: str, tier: str) -> "BackendSpec":
        """A copy with one stage reassigned."""
        stage = _canon_stage(stage)
        kept = tuple((s, t) for s, t in self.entries if s != stage)
        return BackendSpec(kept + ((stage, _canon_tier(tier)),))

    def describe(self) -> str:
        """Canonical string form: the inverse of :meth:`parse`.

        ``'numpy'`` when everything is default; a bare tier name when all
        stages share one non-default tier; else sorted ``stage=tier``
        entries joined by commas.
        """
        if not self.entries:
            return DEFAULT_TIER
        tiers = {t for _, t in self.entries}
        if len(self.entries) == len(STAGES) and len(tiers) == 1:
            return next(iter(tiers))
        return ",".join(f"{s}={t}" for s, t in self.entries)

    def effective(self) -> "BackendSpec":
        """The spec after availability fallback (what actually runs)."""
        spec = self
        for stage in STAGES:
            tier = self.tier(stage)
            if tier != DEFAULT_TIER and _lookup(stage, tier) is None:
                spec = spec.with_stage(stage, DEFAULT_TIER)
        return spec

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: (stage, tier) -> zero-arg loader returning the implementation callable,
#: or None when the tier cannot serve the stage right now (e.g. the
#: compiled library is absent).  Loaders are lazy to keep import cycles
#: out of ``repro.core`` (the expand stage lives in ``hdagg`` itself).
_LOADERS: Dict[Tuple[str, str], Callable[[], Callable | None]] = {}

#: resolved-callable cache; invalidated by register_backend
_RESOLVED: Dict[Tuple[str, str], Callable | None] = {}

#: (stage, tier) pairs already warned about, for one-time fallback warnings
_WARNED: set = set()


def register_backend(stage: str, tier: str, loader: Callable[[], Callable | None]) -> None:
    """Register (or replace) the loader for one (stage, tier) cell."""
    key = (_canon_stage(stage), _canon_tier(tier))
    _LOADERS[key] = loader
    _RESOLVED.pop(key, None)


def reset_fallback_warnings() -> None:
    """Forget which fallbacks have warned (tests re-arm the one-time warning)."""
    _WARNED.clear()


def _lookup(stage: str, tier: str) -> Callable | None:
    key = (stage, tier)
    if key not in _RESOLVED:
        loader = _LOADERS.get(key)
        _RESOLVED[key] = loader() if loader is not None else None
    return _RESOLVED[key]


def available_tiers(stage: str) -> Tuple[str, ...]:
    """Tiers that can currently serve ``stage`` (compiled only if built)."""
    stage = _canon_stage(stage)
    return tuple(t for t in TIERS if _lookup(stage, t) is not None)


def registered_tiers(stage: str) -> Tuple[str, ...]:
    """Tiers with a *registered loader* for ``stage``, built or not.

    Unlike :func:`available_tiers` this never imports or loads anything:
    it answers "does the registry even know this (stage, tier) cell?",
    which is what static pipeline verification needs — a pass declaring a
    tier with no loader is a wiring bug regardless of what is built on
    this machine.
    """
    stage = _canon_stage(stage)
    return tuple(t for t in TIERS if (stage, t) in _LOADERS)


def resolve_stage(spec: BackendSpec, stage: str) -> Tuple[Callable, str]:
    """Implementation for one stage under ``spec``: ``(callable, tier)``.

    A tier that cannot serve the stage (compiled library absent, or a
    stage the tier never covered) degrades to ``numpy`` and emits one
    :class:`BackendWarning` per (stage, tier) per process.
    """
    stage = _canon_stage(stage)
    tier = spec.tier(stage)
    fn = _lookup(stage, tier)
    if fn is None:
        if (stage, tier) not in _WARNED:
            _WARNED.add((stage, tier))
            warnings.warn(
                f"backend tier {tier!r} is unavailable for stage {stage!r}; "
                f"falling back to {DEFAULT_TIER!r} (build the native library with "
                f"'python -m repro.core.backends.build' for the compiled tier)",
                BackendWarning,
                stacklevel=2,
            )
        tier = DEFAULT_TIER
        fn = _lookup(stage, tier)
    if fn is None:  # pragma: no cover - numpy tier is always registered
        raise RuntimeError(f"no implementation registered for stage {stage!r}")
    return fn, tier


# ----------------------------------------------------------------------
# built-in loaders
# ----------------------------------------------------------------------
def _numpy_reduce() -> Callable:
    from ...graph.transitive_reduction import transitive_reduction_two_hop

    return transitive_reduction_two_hop


def _reference_reduce() -> Callable:
    from ...graph.transitive_reduction import transitive_reduction_reference

    return transitive_reduction_reference


def _numpy_aggregate() -> Callable:
    from ..aggregation import subtree_grouping

    return subtree_grouping


def _reference_aggregate() -> Callable:
    from ..aggregation import subtree_grouping_reference

    return subtree_grouping_reference


def _numpy_coarsen() -> Callable:
    from ...graph.coarsen import coarsen_dag

    def coarsen(g_base: Any, grouping: Any, cost: Any) -> Tuple[Any, Any]:
        return coarsen_dag(g_base, grouping), grouping.group_costs(cost)

    return coarsen


def _compiled_coarsen() -> Optional[Callable]:
    from .native import available

    if not available():
        return None
    from .compiled import coarsen_compiled

    return coarsen_compiled


def _numpy_lbp() -> Callable:
    from ..lbp import lbp_coarsen

    return lbp_coarsen


def _reference_lbp() -> Callable:
    from ..lbp import lbp_coarsen_reference

    return lbp_coarsen_reference


def _compiled_lbp() -> Optional[Callable]:
    from .native import available

    if not available():
        return None
    from .compiled import lbp_coarsen_compiled

    return lbp_coarsen_compiled


def _numpy_binpack() -> Callable:
    from ..binpack import first_fit_pack

    return first_fit_pack


def _reference_binpack() -> Callable:
    from ..binpack import first_fit_pack_reference

    return first_fit_pack_reference


def _numpy_expand() -> Callable:
    from ..hdagg import expand_lbp_to_schedule

    return expand_lbp_to_schedule


register_backend("reduce", "numpy", _numpy_reduce)
register_backend("reduce", "reference", _reference_reduce)
register_backend("aggregate", "numpy", _numpy_aggregate)
register_backend("aggregate", "reference", _reference_aggregate)
register_backend("coarsen", "numpy", _numpy_coarsen)
# the coarsen/expand "reference" tier is the numpy path itself: these stages
# never grew a separate loop oracle (their outputs are integer-exact), so
# selecting reference must not warn — it aliases numpy by design.
register_backend("coarsen", "reference", _numpy_coarsen)
register_backend("coarsen", "compiled", _compiled_coarsen)
register_backend("lbp", "numpy", _numpy_lbp)
register_backend("lbp", "reference", _reference_lbp)
register_backend("lbp", "compiled", _compiled_lbp)
register_backend("binpack", "numpy", _numpy_binpack)
register_backend("binpack", "reference", _reference_binpack)
register_backend("expand", "numpy", _numpy_expand)
register_backend("expand", "reference", _numpy_expand)
