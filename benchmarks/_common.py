"""Helpers shared by the benchmark modules (kept out of conftest so the
module name never collides with the test-suite conftest)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.suite import SUITE, suite_by_name

#: Representative subset: every family, both size buckets, both AP buckets.
SUBSET = [
    "mesh2d-s",
    "mesh2d-xl",
    "mesh3d-m",
    "mesh3d-xl",
    "band-narrow",
    "rand-mid",
    "rand-large",
    "chain-pure",
    "blocks-many",
    "power-soft",
    "kite-small",
    "arrow-many",
]

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_specs():
    """Dataset for the bench session: 12-matrix subset, or all 34 with
    ``HDAGG_BENCH_FULL=1``."""
    if os.environ.get("HDAGG_BENCH_FULL"):
        return list(SUITE)
    by_name = suite_by_name()
    return [by_name[n] for n in SUBSET]


def write_report(output_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure under benchmarks/output/."""
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
