"""Tests for triangular extraction."""

import numpy as np
import pytest

from repro.sparse import (
    csr_from_dense,
    is_lower_triangular,
    is_upper_triangular,
    lower_triangle,
    strict_lower_triangle,
    strict_upper_triangle,
    unit_diagonal_lower,
    upper_triangle,
)


@pytest.fixture
def a(rng):
    dense = rng.random((6, 6))
    dense[dense < 0.4] = 0.0
    np.fill_diagonal(dense, 1.0)
    return csr_from_dense(dense)


def test_lower_triangle(a):
    np.testing.assert_array_equal(lower_triangle(a).to_dense(), np.tril(a.to_dense()))


def test_upper_triangle(a):
    np.testing.assert_array_equal(upper_triangle(a).to_dense(), np.triu(a.to_dense()))


def test_strict_variants(a):
    np.testing.assert_array_equal(
        strict_lower_triangle(a).to_dense(), np.tril(a.to_dense(), -1)
    )
    np.testing.assert_array_equal(
        strict_upper_triangle(a).to_dense(), np.triu(a.to_dense(), 1)
    )


def test_lower_plus_strict_upper_reassembles(a):
    low = lower_triangle(a).to_dense()
    up = strict_upper_triangle(a).to_dense()
    np.testing.assert_array_equal(low + up, a.to_dense())


def test_predicates(a):
    assert is_lower_triangular(lower_triangle(a))
    assert is_upper_triangular(upper_triangle(a))
    assert not is_lower_triangular(a)
    assert not is_upper_triangular(a)


def test_predicates_diagonal_only():
    d = csr_from_dense(np.diag([1.0, 2.0]))
    assert is_lower_triangular(d)
    assert is_upper_triangular(d)


def test_unit_diagonal_lower(a):
    u = unit_diagonal_lower(a)
    np.testing.assert_array_equal(u.diagonal(), np.ones(6))
    # off-diagonal values unchanged
    np.testing.assert_array_equal(
        np.tril(u.to_dense(), -1), np.tril(a.to_dense(), -1)
    )


def test_unit_diagonal_requires_diagonal():
    a = csr_from_dense(np.array([[0.0, 0], [1, 1]]))
    with pytest.raises(ValueError, match="diagonal"):
        unit_diagonal_lower(a)


def test_triangles_of_spd_suite(all_small_matrices):
    for name, a in all_small_matrices.items():
        low = lower_triangle(a)
        assert is_lower_triangular(low), name
        assert low.has_full_diagonal(), name
        # pattern symmetry: lower nnz == upper nnz
        assert low.nnz == upper_triangle(a).nnz, name
