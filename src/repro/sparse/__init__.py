"""Sparse-matrix substrate: CSR storage, IO, generators, orderings.

This subpackage is the foundation every other layer builds on.  It is
self-contained (no imports from the rest of :mod:`repro`) so it can be reused
independently of the scheduling machinery.
"""

from .csc import CSCMatrix, csc_from_csr, csr_from_csc, sptrsv_csc_in_order, sptrsv_csc_reference
from .csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE, csr_from_coo, csr_from_dense, csr_from_scipy
from .generators import (
    arrowhead_spd,
    banded_spd,
    block_diagonal_spd,
    kite_chain_spd,
    ladder_spd,
    poisson2d,
    poisson3d,
    power_law_spd,
    random_spd,
    spd_from_pattern,
    tridiagonal_spd,
)
from .io_mm import (
    MatrixMarketParseError,
    dumps_matrix_market,
    loads_matrix_market,
    read_matrix_market,
    write_matrix_market,
)
from .linalg import CGResult, conjugate_gradient, dense_lower_solve, dense_upper_solve, residual_norm
from .ordering import apply_ordering, natural, nested_dissection, random_permutation, rcm
from .sanitize import CSRSanitizeError, SanitizeIssue, SanitizeReport, sanitize_csr
from .properties import (
    MatrixSummary,
    bandwidth,
    density,
    diagonal_dominance_ratio,
    is_numerically_symmetric,
    is_structurally_symmetric,
    profile,
    summarize,
)
from .symbolic import (
    column_counts,
    elimination_tree_from_matrix,
    factor_pattern_spd,
    fill_in,
    is_chordal_pattern,
    supernodes,
    symbolic_cholesky,
)
from .triangular import (
    is_lower_triangular,
    is_upper_triangular,
    lower_triangle,
    strict_lower_triangle,
    strict_upper_triangle,
    unit_diagonal_lower,
    upper_triangle,
)

__all__ = [
    "CSRMatrix",
    "CSCMatrix",
    "csc_from_csr",
    "csr_from_csc",
    "sptrsv_csc_reference",
    "sptrsv_csc_in_order",
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "read_matrix_market",
    "write_matrix_market",
    "loads_matrix_market",
    "dumps_matrix_market",
    "MatrixMarketParseError",
    "sanitize_csr",
    "CSRSanitizeError",
    "SanitizeIssue",
    "SanitizeReport",
    "poisson2d",
    "poisson3d",
    "banded_spd",
    "random_spd",
    "tridiagonal_spd",
    "block_diagonal_spd",
    "arrowhead_spd",
    "power_law_spd",
    "ladder_spd",
    "kite_chain_spd",
    "spd_from_pattern",
    "rcm",
    "nested_dissection",
    "natural",
    "random_permutation",
    "apply_ordering",
    "lower_triangle",
    "upper_triangle",
    "strict_lower_triangle",
    "strict_upper_triangle",
    "is_lower_triangular",
    "is_upper_triangular",
    "unit_diagonal_lower",
    "is_structurally_symmetric",
    "is_numerically_symmetric",
    "bandwidth",
    "profile",
    "density",
    "diagonal_dominance_ratio",
    "MatrixSummary",
    "summarize",
    "elimination_tree_from_matrix",
    "symbolic_cholesky",
    "column_counts",
    "fill_in",
    "is_chordal_pattern",
    "factor_pattern_spd",
    "supernodes",
    "dense_lower_solve",
    "dense_upper_solve",
    "residual_norm",
    "conjugate_gradient",
    "CGResult",
]
