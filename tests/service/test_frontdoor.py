"""FrontDoor: async gateway semantics — dispatch, shedding, lifecycle.

asyncio is driven with ``asyncio.run`` directly (no pytest-asyncio
dependency); blocking interleavings are forced with events, as in the
broker suite.
"""

import asyncio
import threading

import pytest

from repro.service import AdmissionRejected, FrontDoor, ScheduleBroker, ServeResult
from repro.service import broker as broker_mod


def test_submit_serves_through_the_broker(request_a):
    broker = ScheduleBroker()
    with FrontDoor(broker) as door:
        result = asyncio.run(door.submit(request_a))
    assert isinstance(result, ServeResult)
    assert result.source == "inspected"
    assert broker.stats.requests == 1


def test_submit_many_buckets_results_and_rejections(request_a, request_b):
    with FrontDoor(ScheduleBroker()) as door:
        out = asyncio.run(door.submit_many([request_a, request_b, request_a]))
    assert [type(r) for r in out] == [ServeResult] * 3
    assert {r.source for r in out} <= {"inspected", "memory", "coalesced"}


def test_overload_sheds_immediately_without_queueing(request_a, request_b, monkeypatch):
    entered = threading.Event()
    release = threading.Event()
    real = broker_mod.inspect_with_fallback

    def slow(algorithm, g, cost, p, **kwargs):
        entered.set()
        assert release.wait(10)
        return real(algorithm, g, cost, p, **kwargs)

    monkeypatch.setattr(broker_mod, "inspect_with_fallback", slow)

    async def drive():
        async with FrontDoor(ScheduleBroker(), max_workers=2, max_pending=1) as door:
            first = asyncio.ensure_future(door.submit(request_a))
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: entered.wait(5)
            )
            assert door.pending == 1
            with pytest.raises(AdmissionRejected) as exc_info:
                await door.submit(request_b)
            payload = exc_info.value.as_dict()
            assert payload["reason"] == "admission_full"
            assert payload["pending"] == 1 and payload["capacity"] == 1
            release.set()
            result = await first
            assert result.source == "inspected"
            assert door.pending == 0
            # capacity freed: the shed request is admitted on retry
            assert (await door.submit(request_b)).source == "inspected"

    asyncio.run(drive())


def test_closed_door_refuses(request_a):
    door = FrontDoor(ScheduleBroker())
    door.close()
    with pytest.raises(RuntimeError, match="closed"):
        asyncio.run(door.submit(request_a))


def test_bad_capacity_rejected():
    with pytest.raises(ValueError, match="max_pending"):
        FrontDoor(ScheduleBroker(), max_pending=0)


def test_concurrent_submissions_coalesce(request_a):
    """Many async clients, one key: the broker's single-flight shows
    through the front door as one inspection plus coalesced/memory hits."""
    broker = ScheduleBroker()

    async def drive():
        async with FrontDoor(broker, max_workers=4, max_pending=16) as door:
            return await door.submit_many([request_a] * 8)

    out = asyncio.run(drive())
    assert [type(r) for r in out] == [ServeResult] * 8
    assert broker.stats.inspected == 1
