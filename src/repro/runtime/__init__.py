"""Runtime layer: machine models, cache model, simulator, executors."""

from .cache import LRUCache, per_vertex_memory_cycles, reuse_window_hits
from .exact import ExactCacheStats, simulate_cache_exact
from .executor import execute_schedule, interleaved_order
from .machine import AMD64, INTEL20, LAPTOP4, MACHINES, MachineConfig
from .perf import StageTimer
from .simulator import SimulationResult, bind_dynamic_partitions, simulate
from .threaded import ThreadedExecutionError, run_threaded

__all__ = [
    "MachineConfig",
    "INTEL20",
    "AMD64",
    "LAPTOP4",
    "MACHINES",
    "StageTimer",
    "LRUCache",
    "reuse_window_hits",
    "per_vertex_memory_cycles",
    "simulate",
    "simulate_cache_exact",
    "ExactCacheStats",
    "SimulationResult",
    "bind_dynamic_partitions",
    "execute_schedule",
    "run_threaded",
    "ThreadedExecutionError",
    "interleaved_order",
]
