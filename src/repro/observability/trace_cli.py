"""``hdagg-bench trace``: one observed run, exported for Perfetto.

Enables the ambient observability state, runs the full inspector-executor
pipeline for one (matrix, kernel, algorithm, machine) cell, and writes:

* ``spans.jsonl`` — every recorded span, one JSON object per line;
* ``trace.json`` — Chrome ``trace_event`` file combining the inspector /
  executor spans with the *threaded* executor's wall-clock per-core
  timeline (load it in ``chrome://tracing`` or https://ui.perfetto.dev);
* ``model_trace.json`` — the simulator's deterministic per-core timeline
  in model cycles (same format, 1 cycle exported as 1 µs);
* ``metrics.json`` — the metrics registry (vertices coarsened, PGP at
  each merge decision, bin-pack occupancy, cache hits, fault triggers).

It also prints the derived reports: per-core utilization, the sync-cost
breakdown with point-to-point wait attribution, and the trace-vs-model
load-imbalance comparison.  See EXPERIMENTS.md for the Perfetto recipe.

Examples::

    hdagg-bench trace --matrix mesh2d-s --kernel sptrsv --algorithm hdagg
    hdagg-bench trace --matrix band-wide --algorithm spmp --out traces/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from . import reports
from .export import write_chrome_trace, write_spans_jsonl
from .state import observed
from .timeline import TimelineRecorder

__all__ = ["trace_main", "build_trace_parser"]


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="hdagg-bench trace", description=__doc__)
    p.add_argument("--matrix", default="mesh2d-s", help="dataset matrix name")
    p.add_argument("--kernel", default="sptrsv",
                   choices=["sptrsv", "spic0", "spilu0"])
    p.add_argument("--algorithm", default="hdagg",
                   help="scheduler name (default: hdagg)")
    p.add_argument("--machine", default="intel20",
                   help="machine model for the simulator (intel20, amd64, laptop4)")
    p.add_argument("--cores", type=int, default=None,
                   help="core count (default: the machine model's)")
    p.add_argument("--epsilon", type=float, default=None,
                   help="HDagg/LBC balance threshold")
    p.add_argument("--ordering", default="nd",
                   choices=["nd", "rcm", "natural", "random"])
    p.add_argument("--out-dir", "--out", dest="out", default="trace-out",
                   help="output directory (created if missing); --out is an "
                        "accepted alias so perf-lab and trace artifacts can "
                        "share one run directory")
    p.add_argument("--no-threaded", action="store_true",
                   help="skip the threaded execution (model timeline only)")
    return p


def _build_cell(args):
    """Matrix -> (g, cost, memory, machine, operand, kernel) for one cell."""
    from ..suite.harness import build_cell

    cell = build_cell(
        args.matrix,
        kernel=args.kernel,
        machine=args.machine,
        cores=args.cores,
        ordering=args.ordering,
    )
    return cell.dag, cell.cost, cell.memory, cell.machine, cell.operand, cell.kernel


def trace_main(argv: Optional[List[str]] = None) -> int:
    args = build_trace_parser().parse_args(argv)
    from ..runtime.simulator import simulate
    from ..runtime.threaded import run_threaded
    from ..schedulers import SCHEDULERS

    if args.algorithm not in SCHEDULERS:
        print(f"# unknown scheduler {args.algorithm!r}; "
              f"available: {sorted(SCHEDULERS)}", file=sys.stderr)
        return 2
    g, cost, memory, machine, operand, kernel = _build_cell(args)
    p = machine.n_cores
    os.makedirs(args.out, exist_ok=True)

    wall_recorder = TimelineRecorder()
    with observed() as (tracer, registry):
        kwargs = {}
        if args.epsilon is not None and args.algorithm in ("hdagg", "lbc"):
            kwargs["epsilon"] = args.epsilon
        schedule = SCHEDULERS[args.algorithm](g, cost, p, **kwargs)
        sim = simulate(schedule, g, cost, memory, machine,
                       collect_timeline=True)
        wall_timeline = None
        if not args.no_threaded:
            with tracer.span("execute/threaded", n=g.n, p=p):
                touched = np.zeros(g.n, dtype=np.int64)

                def process_vertex(v: int) -> None:
                    touched[v] += 1

                run_threaded(schedule, g, process_vertex, cost=cost,
                             timeline=wall_recorder)
            wall_timeline = wall_recorder.finalize()
        registry.gauge("simulator.makespan_cycles").set(sim.makespan_cycles)
        registry.gauge("simulator.potential_gain").set(sim.potential_gain)

    spans_path = os.path.join(args.out, "spans.jsonl")
    trace_path = os.path.join(args.out, "trace.json")
    model_path = os.path.join(args.out, "model_trace.json")
    metrics_path = os.path.join(args.out, "metrics.json")
    label = f"{args.matrix}/{args.kernel}/{args.algorithm}"
    write_spans_jsonl(tracer.spans, spans_path)
    write_chrome_trace(trace_path, tracer.spans, wall_timeline,
                       time_unit="s", label=label)
    write_chrome_trace(model_path, None, sim.timeline,
                       time_unit="cycles", label=f"{label} (model)")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_json())
        fh.write("\n")

    print(f"# {label}: n={g.n} p={p} sync={schedule.sync} "
          f"levels={schedule.n_levels}")
    print(f"# spans: {len(tracer.spans)} -> {spans_path}")
    print(f"# chrome trace (wall): {trace_path}")
    print(f"# chrome trace (model cycles): {model_path}")
    print(f"# metrics: {len(registry)} -> {metrics_path}")
    print()
    print(reports.utilization_report(sim.timeline, unit="cycles"))
    print()
    print(reports.sync_report(sim.timeline, unit="cycles"))
    print()
    print(reports.imbalance_report(sim.timeline, schedule, cost,
                                   simulated_pg=sim.potential_gain))
    if wall_timeline is not None:
        print()
        print(reports.utilization_report(wall_timeline, unit="s"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(trace_main())
