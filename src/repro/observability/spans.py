"""Span-based tracing: nested, monotonically timestamped execution spans.

A :class:`Tracer` records *spans* — named intervals with monotonic start
and end timestamps — organised into a per-thread nesting tree, exactly the
shape Chrome's ``trace_event`` format (and therefore Perfetto) renders as
a flame chart.  Span names follow a ``stage/substage[args]`` convention:
``inspect/transitive_reduction``, ``inspect/lbp``,
``execute/wavefront[3]``, ``execute/partition[3,1]``.

Nesting is tracked per thread (executor workers trace concurrently without
locks on the hot path: each thread appends to its own list and the tracer
merges on read).  Timestamps come from an injectable ``clock`` — the
default is :func:`time.perf_counter` — so tests can drive a deterministic
virtual clock and assert exact span trees.

The disabled path is :data:`NULL_TRACER`: ``span()`` hands back one shared
no-op context manager, ``instant()`` returns immediately, and nothing is
ever allocated — the zero-overhead-when-off guarantee the benchmark gate
(``benchmarks/smoke_observability.py``) enforces.

Cross-thread parenting (the serving path's asyncio → worker-thread hop)
rides on *span ids*: every tracer-recorded span gets a process-unique
``span_id`` and remembers its parent's id in ``parent_span_id``, which —
unlike the per-thread ``parent`` index — survives thread boundaries.  The
handoff protocol is ``ctx = span.context`` on the producing side and
``with tracer.attach(ctx): ...`` on the consuming thread, which makes that
thread's top-level spans children of ``ctx``.  Event-loop code, where
``with``-nesting would interleave across tasks, uses the explicitly ended
:meth:`Tracer.begin` / :meth:`ManualSpan.end` pair instead.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "ManualSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class SpanContext:
    """Portable handle to a span, for parenting across threads and tasks."""

    span_id: int


@dataclass
class Span:
    """One named interval of work.

    ``t0``/``t1`` are clock readings (seconds for the default clock);
    ``parent`` is the index of the enclosing span *within the same thread's
    span list* (-1 for top level), ``depth`` its nesting depth, and ``tid``
    the recording thread's ident.  ``attrs`` holds small JSON-safe
    key/values (core ids, level indices, vertex counts).

    ``span_id``/``parent_span_id`` are the cross-thread identity: a
    process-unique id the tracer assigns (0 for hand-built spans) and the
    id of the logical parent, which may live on another thread (-1 for
    roots).  Within one thread they agree with ``parent``; across the
    asyncio → worker hop only the id link exists.
    """

    name: str
    t0: float
    t1: float
    tid: int
    parent: int = -1
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    span_id: int = 0
    parent_span_id: int = -1

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        """JSON-ready form (the JSONL exporter writes one of these per line)."""
        out = {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "tid": self.tid,
            "parent": self.parent,
            "depth": self.depth,
        }
        if self.span_id:
            out["span_id"] = self.span_id
            out["parent_span_id"] = self.parent_span_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class _OpenSpan:
    """Context manager for one in-flight span (reused API, per-call object)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_parent", "_depth", "_sid", "_psid")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        local = self._tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        ids = getattr(local, "ids", None)
        if ids is None:
            ids = local.ids = []
        self._parent = stack[-1] if stack else -1
        self._depth = len(stack)
        self._sid = next(self._tracer._ids)
        # top-level spans on this thread parent under an attached foreign
        # context (the cross-thread handoff); nested spans under the stack
        self._psid = ids[-1] if ids else getattr(local, "adopted", -1)
        # reserve the slot *before* timing starts so children know their parent
        spans = self._tracer._spans_for_thread()
        stack.append(len(spans))
        ids.append(self._sid)
        spans.append(None)  # placeholder, filled on exit
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = self._tracer.clock()
        local = self._tracer._local
        index = local.stack.pop()
        local.ids.pop()
        spans = self._tracer._spans_for_thread()
        spans[index] = Span(
            name=self._name,
            t0=self._t0,
            t1=t1,
            tid=threading.get_ident(),
            parent=self._parent,
            depth=self._depth,
            attrs=self._attrs or {},
            span_id=self._sid,
            parent_span_id=self._psid,
        )

    @property
    def context(self) -> SpanContext:
        """Handle for parenting work on another thread (valid once entered)."""
        return SpanContext(self._sid)

    def annotate(self, **attrs) -> "_OpenSpan":
        """Attach attributes while the span is open (e.g. the final outcome)."""
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)
        return self


class ManualSpan:
    """A span with an explicit :meth:`end`, outside the thread-local stack.

    Event-loop code cannot use ``with tracer.span(...)`` around an
    ``await`` — interleaved tasks on the loop thread would mis-nest on the
    shared stack.  A manual span starts timing at construction, is
    parented explicitly, never appears on any stack, and may be ended from
    any thread (it records under the thread that *began* it).
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_sid", "_psid", "_tid", "_done")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional[SpanContext],
        attrs: Optional[dict],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._sid = next(tracer._ids)
        self._psid = parent.span_id if parent is not None else -1
        self._tid = threading.get_ident()
        self._done = False
        self._t0 = tracer.clock()

    @property
    def context(self) -> SpanContext:
        return SpanContext(self._sid)

    def annotate(self, **attrs) -> "ManualSpan":
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close the span (idempotent); records it with the tracer."""
        if self._done:
            return
        self._done = True
        t1 = self._tracer.clock()
        self._tracer._spans_for_thread().append(
            Span(
                name=self._name,
                t0=self._t0,
                t1=t1,
                tid=self._tid,
                attrs=self._attrs or {},
                span_id=self._sid,
                parent_span_id=self._psid,
            )
        )


class _NullSpan:
    """The shared do-nothing span of the disabled tracer.

    One object serves every role: context manager (``span``), manual span
    (``begin``/``end``), and attach token — all no-ops, nothing allocated.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    @property
    def context(self) -> None:
        return None

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def end(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans from any number of threads.

    ``clock`` must be monotonic; tests may inject a fake.  ``enabled`` is
    True — instrumented code checks this single attribute (or the ambient
    state's flag) before doing any per-event work.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._local = threading.local()
        #: one span list per recording thread, kept by identity — thread
        #: idents are reused by the OS, so a dict keyed on them would drop
        #: a finished thread's spans when a later thread inherits its ident
        self._lists: List[List[Optional[Span]]] = []
        self._threads_lock = threading.Lock()
        #: process-unique span ids; ``next()`` on a count is atomic under
        #: the GIL, so the hot path takes no lock
        self._ids = itertools.count(1)

    def _spans_for_thread(self) -> List[Optional[Span]]:
        local = self._local
        spans = getattr(local, "spans", None)
        if spans is None:
            spans = local.spans = []
            with self._threads_lock:
                self._lists.append(spans)
        return spans

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _OpenSpan:
        """Open a nested span: ``with tracer.span("inspect/lbp"): ...``."""
        return _OpenSpan(self, name, attrs or None)

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration marker span."""
        t = self.clock()
        spans = self._spans_for_thread()
        local = self._local
        stack = getattr(local, "stack", None) or []
        ids = getattr(local, "ids", None) or []
        spans.append(
            Span(
                name=name,
                t0=t,
                t1=t,
                tid=threading.get_ident(),
                parent=stack[-1] if stack else -1,
                depth=len(stack),
                attrs=attrs,
                span_id=next(self._ids),
                parent_span_id=ids[-1] if ids else getattr(local, "adopted", -1),
            )
        )

    # ------------------------------------------------------------------
    # cross-thread / cross-task parenting
    def begin(self, name: str, *, parent: Optional[SpanContext] = None, **attrs) -> ManualSpan:
        """Open an explicitly ended span (for event-loop code; see ManualSpan)."""
        return ManualSpan(self, name, parent, attrs or None)

    def current_context(self) -> Optional[SpanContext]:
        """Context of this thread's innermost open (or attached) span."""
        local = self._local
        ids = getattr(local, "ids", None)
        if ids:
            return SpanContext(ids[-1])
        adopted = getattr(local, "adopted", -1)
        return SpanContext(adopted) if adopted >= 0 else None

    @contextmanager
    def attach(self, ctx: Optional[SpanContext]) -> Iterator[None]:
        """Adopt ``ctx`` as the parent of this thread's top-level spans.

        The worker-thread half of the handoff: the producing side captures
        ``span.context``, ships it with the work item, and the consumer
        wraps its processing in ``attach`` so its spans parent under the
        originating request.  ``None`` detaches (spans become roots),
        which lets call sites pass an optional context unconditionally.
        """
        local = self._local
        prev = getattr(local, "adopted", -1)
        local.adopted = ctx.span_id if ctx is not None else -1
        try:
            yield
        finally:
            local.adopted = prev

    def record_span(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        parent: Optional[SpanContext] = None,
        **attrs,
    ) -> None:
        """Record an already-measured interval retrospectively.

        For waits that are only known once they end on another component's
        clock — e.g. the queue wait between front-door admission and the
        worker picking the request up, recorded by the worker.
        """
        self._spans_for_thread().append(
            Span(
                name=name,
                t0=t0,
                t1=t1,
                tid=threading.get_ident(),
                attrs=attrs,
                span_id=next(self._ids),
                parent_span_id=parent.span_id if parent is not None else -1,
            )
        )

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """All *closed* spans, grouped by thread, in per-thread record order."""
        with self._threads_lock:
            lists = list(self._lists)
        return [s for spans in lists for s in spans if s is not None]

    def spans_named(self, prefix: str) -> List[Span]:
        """Closed spans whose name starts with ``prefix``, in record order."""
        return [s for s in self.spans if s.name.startswith(prefix)]

    def clear(self) -> None:
        """Drop all recorded spans (open spans in other threads are lost)."""
        with self._threads_lock:
            self._lists.clear()
        self._local = threading.local()

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """Disabled tracer: every operation is a no-op returning shared objects."""

    enabled = False
    spans: List[Span] = []
    clock = staticmethod(time.perf_counter)

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        return None

    def begin(self, name: str, *, parent: Optional[SpanContext] = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_context(self) -> None:
        return None

    def attach(self, ctx: Optional[SpanContext]) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        parent: Optional[SpanContext] = None,
        **attrs,
    ) -> None:
        return None

    def spans_named(self, prefix: str) -> List[Span]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The process-wide disabled tracer (never collects anything).
NULL_TRACER = NullTracer()
