"""Step 2 of HDagg: Load-balance Preserving (LBP) wavefront coarsening.

Algorithm 1, Lines 21-38.  Starting from the first wavefront of the coarsened
DAG ``G''``, LBP keeps merging the next wavefront into the current coarsened
wavefront while the merged range's connected components can be first-fit
bin-packed into ``p`` bins with PGP below the threshold ``ε``.  When a merge
would break balance, the current range is emitted (a *cut*) and coarsening
restarts from the wavefront that broke it.  A range stuck at a single
unbalanced wavefront is emitted as-is (Line 27-28: "Single Unbalanced Wave").

Implementation note: the paper's listing advances ``cut`` to ``i`` in the
general branch, which would drop wavefront ``i-1`` from every range; we keep
it (cut to the first unmerged wavefront and re-pack the single-wave
candidate), which matches the worked example in Figure 2/3 — W1,W2 merge,
W3 and W4 are emitted alone — and the prose "a cut occurs if continuing to
merge with the next wavefront results in load imbalance".

Lines 36-38: if the PGP accumulated across all coarsened wavefronts still
exceeds ``ε``, bin packing is disabled and every connected component becomes
a fine-grained task for the runtime scheduler to balance dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.connected_components import components_as_lists
from ..graph.dag import DAG
from ..graph.wavefronts import Wavefronts, compute_wavefronts
from .binpack import BinPacking, first_fit_pack
from .pgp import DEFAULT_EPSILON, pgp

__all__ = ["CoarsenedWavefront", "LBPDecision", "LBPResult", "lbp_coarsen"]


@dataclass
class CoarsenedWavefront:
    """One merged wavefront range with its packing.

    ``components`` are arrays of *coarse* vertex ids (ordered by smallest
    member); ``packing.assignment[k]`` is the bin of ``components[k]``.
    """

    wave_lo: int
    wave_hi: int  # exclusive
    components: List[np.ndarray]
    packing: BinPacking

    @property
    def n_waves(self) -> int:
        return self.wave_hi - self.wave_lo

    @property
    def pgp(self) -> float:
        return self.packing.pgp()


@dataclass
class LBPDecision:
    """One step of the Figure-3 decision walk: try to merge wavefront ``wave``."""

    wave: int
    pgp: float
    merged: bool


@dataclass
class LBPResult:
    """Outcome of LBP coarsening over ``G''``."""

    coarsened: List[CoarsenedWavefront]
    waves: Wavefronts
    fine_grained: bool
    accumulated_pgp: float
    #: the merge/cut choice made at every wavefront (the paper's Figure 3
    #: highlighted path); empty for <= 1 wavefront
    decisions: List[LBPDecision] = None

    @property
    def cut_positions(self) -> List[int]:
        """Wavefront indices where cuts were placed."""
        return [cw.wave_lo for cw in self.coarsened[1:]]


def _pack_range(
    g2: DAG, waves: Wavefronts, cost: np.ndarray, p: int, lo: int, hi: int
) -> CoarsenedWavefront:
    """``BinPack(CC(W[lo:hi]), C, p)`` — Lines 23/25 of Algorithm 1."""
    verts = waves.vertices_in_range(lo, hi)
    components = components_as_lists(g2, verts)
    comp_costs = np.array([float(cost[c].sum()) for c in components], dtype=np.float64)
    packing = first_fit_pack(comp_costs, p)
    return CoarsenedWavefront(wave_lo=lo, wave_hi=hi, components=components, packing=packing)


def lbp_coarsen(
    g2: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    allow_fine_grained: bool = True,
) -> LBPResult:
    """Run LBP on the coarsened DAG ``g2`` with per-coarse-vertex ``cost``.

    Parameters mirror Algorithm 1: ``p`` is the core count, ``epsilon`` the
    load-balance threshold.  ``allow_fine_grained=False`` suppresses the
    Lines 36-38 fallback (used by ablation benchmarks).
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.shape[0] != g2.n:
        raise ValueError(f"cost has length {cost.shape[0]}, expected {g2.n}")
    waves = compute_wavefronts(g2)
    l = waves.n_levels
    coarsened: List[CoarsenedWavefront] = []
    decisions: List[LBPDecision] = []
    if l == 0:
        return LBPResult(
            coarsened=[], waves=waves, fine_grained=False,
            accumulated_pgp=0.0, decisions=decisions,
        )

    cut = 0
    prev = _pack_range(g2, waves, cost, p, 0, 1)  # Line 23 seed
    i = 1
    while i < l:
        cand = _pack_range(g2, waves, cost, p, cut, i + 1)  # Line 25
        score = pgp(cand.packing.loads)
        if score > epsilon:  # Line 26
            decisions.append(LBPDecision(wave=i, pgp=score, merged=False))
            coarsened.append(prev)  # Lines 27-31 (single wave == prev here)
            cut = i  # cut before the wavefront that broke balance
            prev = _pack_range(g2, waves, cost, p, cut, i + 1)
        else:
            decisions.append(LBPDecision(wave=i, pgp=score, merged=True))
            prev = cand  # Line 34
        i += 1
    coarsened.append(prev)

    # Lines 36-38: accumulated imbalance across the whole schedule.
    total_mean = sum(float(cw.packing.loads.mean()) for cw in coarsened)
    total_max = sum(float(cw.packing.loads.max()) for cw in coarsened)
    accumulated = 1.0 - total_mean / total_max if total_max > 0 else 0.0
    fine = allow_fine_grained and accumulated > epsilon
    return LBPResult(
        coarsened=coarsened, waves=waves, fine_grained=fine,
        accumulated_pgp=accumulated, decisions=decisions,
    )
