"""Human-readable schedule analysis: per-level stats and utilisation charts.

Inspectors are opaque without tooling; this module renders what a schedule
actually looks like — the per-coarsened-wavefront width, load spread, and
PGP — and turns a simulation result into a text utilisation chart, the
terminal stand-in for the paper's per-matrix bar figures.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..runtime.simulator import SimulationResult
from .pgp import pgp
from .schedule import Schedule

__all__ = ["level_table", "schedule_report", "utilization_chart"]


def level_table(schedule: Schedule, cost: np.ndarray) -> List[dict]:
    """Per-level statistics: width, vertex count, load spread, PGP."""
    cost = np.asarray(cost, dtype=np.float64)
    rows = []
    for k, (level, loads) in enumerate(zip(schedule.levels, schedule.level_loads(cost))):
        sizes = [part.size for part in level]
        rows.append(
            {
                "level": k,
                "width": len(level),
                "vertices": int(sum(sizes)),
                "max_load": float(loads.max()),
                "mean_load": float(loads.mean()),
                "pgp": pgp(loads),
            }
        )
    return rows


def schedule_report(schedule: Schedule, cost: np.ndarray, *, max_rows: int = 40) -> str:
    """Multi-line description of a schedule for logs and examples."""
    cost = np.asarray(cost, dtype=np.float64)
    rows = level_table(schedule, cost)
    lines = [
        f"schedule {schedule.algorithm}: n={schedule.n}, "
        f"{schedule.n_levels} coarsened wavefronts, "
        f"{schedule.n_partitions} width-partitions, sync={schedule.sync}"
        f"{', fine-grained' if schedule.fine_grained else ''}",
        f"{'level':>5}  {'width':>5}  {'verts':>6}  {'max load':>10}  {'PGP':>5}",
    ]
    shown = rows if len(rows) <= max_rows else rows[: max_rows - 1]
    for r in shown:
        lines.append(
            f"{r['level']:>5}  {r['width']:>5}  {r['vertices']:>6}  "
            f"{r['max_load']:>10.1f}  {r['pgp']:>5.2f}"
        )
    if len(rows) > max_rows:
        lines.append(f"  ... {len(rows) - max_rows + 1} more levels")
    return "\n".join(lines)


def utilization_chart(result: SimulationResult, *, width: int = 40) -> str:
    """Text bar chart of per-core busy cycles (the simulator's PG visual).

    Bars are scaled to the busiest core; the summary line restates the
    measured potential gain those bars imply.
    """
    busy = result.core_busy_cycles
    mx = float(busy.max()) if busy.size else 0.0
    lines = [f"core utilisation ({result.algorithm} on {result.machine}):"]
    for c, cycles in enumerate(busy):
        bar = "#" * (int(round(width * cycles / mx)) if mx > 0 else 0)
        lines.append(f"  core {c:>3} |{bar:<{width}}| {cycles:>12.0f}")
    lines.append(
        f"  potential gain {result.potential_gain:.2f}, "
        f"makespan {result.makespan_cycles:.0f} cycles, "
        f"hit rate {result.hit_rate:.2f}"
    )
    return "\n".join(lines)
