"""``hdagg-bench lint``: run the repo lint rules and the pipeline verifier.

Examples::

    hdagg-bench lint                          # lint src/repro, verify pipelines
    hdagg-bench lint --strict                 # warnings fail too (CI gate)
    hdagg-bench lint --rules L003,L007        # a rule subset
    hdagg-bench lint --no-verify-pipelines    # AST rules only
    hdagg-bench lint --format json            # machine-readable output
    hdagg-bench lint --write-baseline         # accept current findings
    hdagg-bench lint src/repro/passes         # restrict the scanned paths

Exit status: 0 when nothing (above the severity gate) fired, 1 when
findings remain, 2 on usage errors.  The baseline file (default
``statan-baseline.json`` at the repo root, only consulted when present)
grandfathers known findings by fingerprint; inline
``statan: ignore[RULE]`` comments suppress single lines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .diagnostics import Baseline, Diagnostic, render_json, render_text
from .engine import run_lint
from .verify import verify_registered_groups

__all__ = ["lint_main", "build_lint_parser"]

DEFAULT_BASELINE = "statan-baseline.json"


def build_lint_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="hdagg-bench lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--root", default=".", help="repo root (default: cwd)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--format", dest="fmt", default="text", choices=["text", "json"])
    p.add_argument("--baseline", default=None,
                   help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when present)")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings as the accepted baseline and exit 0")
    verify = p.add_mutually_exclusive_group()
    verify.add_argument("--verify-pipelines", dest="verify", action="store_true",
                        default=True, help="also verify every registered pass group (default)")
    verify.add_argument("--no-verify-pipelines", dest="verify", action="store_false")
    return p


def _collect(args: argparse.Namespace, root: Path) -> List[Diagnostic]:
    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    diags = run_lint(root, rule_ids=rule_ids, paths=args.paths or None)
    if args.verify and rule_ids is None:
        for _name, group_diags in verify_registered_groups().items():
            diags.extend(group_diags)
    return diags


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_lint_parser().parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"# not a directory: {root}", file=sys.stderr)
        return 2
    try:
        diags = _collect(args, root)
    except ValueError as exc:  # unknown rule ids
        print(f"# {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline:
        baseline = Baseline()
        baseline.record(diags)
        baseline.save(baseline_path)
        print(f"# wrote {len(baseline.fingerprints)} fingerprint(s) to {baseline_path}")
        return 0
    if baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        diags, grandfathered = baseline.filter(diags)
        if grandfathered:
            print(f"# {len(grandfathered)} baselined finding(s) suppressed", file=sys.stderr)

    if args.fmt == "json":
        print(render_json(diags))
    elif diags:
        print(render_text(diags))
    else:
        print("statan: clean")
    gate = diags if args.strict else [d for d in diags if d.severity == "error"]
    return 1 if gate else 0
