"""Tests for the SPD matrix generators."""

import numpy as np
import pytest

from repro.sparse import (
    arrowhead_spd,
    banded_spd,
    bandwidth,
    block_diagonal_spd,
    is_numerically_symmetric,
    kite_chain_spd,
    ladder_spd,
    poisson2d,
    poisson3d,
    power_law_spd,
    random_spd,
    spd_from_pattern,
    tridiagonal_spd,
)

GENERATORS = [
    ("poisson2d", lambda: poisson2d(7, seed=1)),
    ("poisson2d-rect", lambda: poisson2d(9, 4, seed=1)),
    ("poisson3d", lambda: poisson3d(4, seed=2)),
    ("banded", lambda: banded_spd(40, 5, seed=3)),
    ("banded-partial", lambda: banded_spd(40, 5, fill=0.5, seed=3)),
    ("random", lambda: random_spd(60, 4.0, seed=4)),
    ("tridiagonal", lambda: tridiagonal_spd(30, seed=5)),
    ("blocks", lambda: block_diagonal_spd(5, 6, seed=6)),
    ("arrowhead", lambda: arrowhead_spd(25, 2, seed=7)),
    ("powerlaw", lambda: power_law_spd(50, 4.0, seed=8)),
    ("ladder", lambda: ladder_spd(15, seed=9)),
    ("kite", lambda: kite_chain_spd(4, 5, seed=10)),
]


@pytest.mark.parametrize("name,build", GENERATORS, ids=[g[0] for g in GENERATORS])
def test_generator_is_spd(name, build):
    a = build()
    assert a.is_square
    assert is_numerically_symmetric(a)
    assert a.has_full_diagonal()
    eig = np.linalg.eigvalsh(a.to_dense())
    assert eig.min() > 0, f"{name}: smallest eigenvalue {eig.min()}"


@pytest.mark.parametrize("name,build", GENERATORS, ids=[g[0] for g in GENERATORS])
def test_generator_deterministic(name, build):
    assert build() == build()


def test_seed_changes_values_not_pattern():
    a = poisson2d(6, seed=1)
    b = poisson2d(6, seed=2)
    np.testing.assert_array_equal(a.indices, b.indices)
    assert not np.array_equal(a.data, b.data)


def test_poisson2d_structure():
    a = poisson2d(4, 3)
    assert a.n_rows == 12
    # interior vertex has 4 neighbours + diagonal
    assert int(a.row_nnz().max()) == 5
    assert bandwidth(a) == 4  # nx


def test_poisson3d_structure():
    a = poisson3d(3)
    assert a.n_rows == 27
    assert int(a.row_nnz().max()) == 7  # 6 neighbours + diagonal


def test_banded_is_banded():
    a = banded_spd(50, 4, seed=0)
    assert bandwidth(a) <= 4


def test_banded_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        banded_spd(10, 0)
    with pytest.raises(ValueError):
        banded_spd(10, 10)


def test_tridiagonal_is_tridiagonal():
    a = tridiagonal_spd(20)
    assert bandwidth(a) == 1
    assert a.nnz == 3 * 20 - 2


def test_block_diagonal_no_cross_edges():
    a = block_diagonal_spd(4, 5, seed=1)
    dense = a.to_dense()
    for b in range(4):
        lo, hi = b * 5, (b + 1) * 5
        outside = dense[lo:hi, :].copy()
        outside[:, lo:hi] = 0.0
        assert np.all(outside == 0.0)


def test_arrowhead_structure():
    a = arrowhead_spd(12, 2, seed=1)
    dense = a.to_dense()
    assert np.count_nonzero(dense[-1]) == 12  # dense last row
    body = dense[:10, :10]
    assert np.count_nonzero(body - np.diag(np.diag(body))) == 0


def test_arrowhead_rejects_too_many_heads():
    with pytest.raises(ValueError):
        arrowhead_spd(5, 5)


def test_ladder_degree_bound():
    a = ladder_spd(10, seed=1)
    assert a.n_rows == 20
    assert int(a.row_nnz().max()) <= 4  # two chain + one rung + diagonal


def test_kite_chain_cliques():
    a = kite_chain_spd(3, 4, seed=1)
    dense = a.to_dense()
    # each clique block fully dense
    for k in range(3):
        lo, hi = k * 4, (k + 1) * 4
        assert np.all(dense[lo:hi, lo:hi] != 0.0)
    # single bridge between consecutive cliques
    assert np.count_nonzero(dense[4:8, 0:4]) == 1


def test_spd_from_pattern_rejects_upper_entries():
    with pytest.raises(ValueError, match="strictly lower"):
        spd_from_pattern(3, np.array([0]), np.array([1]), seed=0)


def test_spd_from_pattern_dominance():
    a = spd_from_pattern(4, np.array([1, 2, 3]), np.array([0, 1, 2]), seed=0, dominance=2.0)
    dense = a.to_dense()
    for i in range(4):
        off = np.abs(dense[i]).sum() - abs(dense[i, i])
        assert dense[i, i] >= off + 2.0 - 1e-12


def test_power_law_has_skewed_degrees():
    a = power_law_spd(200, 5.0, exponent=2.1, seed=3)
    deg = a.row_nnz()
    assert deg.max() >= 4 * np.median(deg)
