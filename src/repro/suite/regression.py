"""A/B comparison of two harness runs — the development regression tool.

Calibration work on the model or changes to an inspector shift numbers
everywhere; this module diffs two record sets (e.g. saved before and after
a change with :mod:`repro.suite.storage`) and reports per-algorithm speedup
movement, flagged regressions, and the headline Table-I ratios side by
side.

Verdicts delegate to :func:`repro.perflab.compare.classify_point_ratio`:
a cell whose baseline speedup is non-positive or non-finite is
``indeterminate`` (``ratio`` is ``nan``), not an infinite "improvement" —
those cells are counted and listed separately so a broken baseline can
never wave a regression through.  For distribution-level verdicts with
confidence intervals and stage attribution, use the perf-lab
(``hdagg-bench perf``); this module remains the cheap single-point diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..perflab.compare import classify_point_ratio
from .harness import RunRecord
from .tables import index_records

__all__ = ["RecordDelta", "diff_records", "regression_report"]


@dataclass(frozen=True)
class RecordDelta:
    """Speedup movement of one (matrix, kernel, algorithm, machine) cell."""

    key: tuple
    old_speedup: float
    new_speedup: float

    @property
    def ratio(self) -> float:
        """new/old, or ``nan`` when the baseline supports no ratio."""
        if self.indeterminate:
            return float("nan")
        return self.new_speedup / self.old_speedup

    @property
    def indeterminate(self) -> bool:
        """True when no verdict is possible (bad or non-finite baseline)."""
        return classify_point_ratio(self.old_speedup, self.new_speedup) == "indeterminate"

    @property
    def regressed(self) -> bool:
        """More than 5% slower counts as a regression."""
        return classify_point_ratio(self.old_speedup, self.new_speedup) == "regressed"


def diff_records(
    old: Sequence[RunRecord], new: Sequence[RunRecord]
) -> Tuple[List[RecordDelta], List[tuple], List[tuple]]:
    """Match cells by key; returns (deltas, only_in_old, only_in_new)."""
    old_idx = index_records(old)
    new_idx = index_records(new)
    deltas = [
        RecordDelta(key=k, old_speedup=old_idx[k].speedup, new_speedup=new_idx[k].speedup)
        for k in sorted(set(old_idx) & set(new_idx))
    ]
    return (
        deltas,
        sorted(set(old_idx) - set(new_idx)),
        sorted(set(new_idx) - set(old_idx)),
    )


def regression_report(
    old: Sequence[RunRecord], new: Sequence[RunRecord], *, threshold: float = 0.95
) -> str:
    """Human-readable diff: per-algorithm movement and flagged regressions."""
    deltas, gone, added = diff_records(old, new)
    lines = [f"record diff: {len(deltas)} matched cells"]
    if gone:
        lines.append(f"  cells only in OLD: {len(gone)} (e.g. {gone[0]})")
    if added:
        lines.append(f"  cells only in NEW: {len(added)} (e.g. {added[0]})")

    comparable = [d for d in deltas if not d.indeterminate]
    indeterminate = [d for d in deltas if d.indeterminate]
    by_algo: Dict[str, List[float]] = {}
    for d in comparable:
        by_algo.setdefault(d.key[2], []).append(d.ratio)
    for algo in sorted(by_algo):
        ratios = np.array(by_algo[algo])
        lines.append(
            f"  {algo:>10}: mean ratio {ratios.mean():.3f} "
            f"(min {ratios.min():.3f}, max {ratios.max():.3f})"
        )

    regressions = [d for d in comparable if d.ratio < threshold]
    if regressions:
        lines.append(f"  {len(regressions)} regression(s) below {threshold:.2f}x:")
        for d in sorted(regressions, key=lambda d: d.ratio)[:10]:
            lines.append(
                f"    {d.key}: {d.old_speedup:.2f} -> {d.new_speedup:.2f} "
                f"({d.ratio:.2f}x)"
            )
    else:
        lines.append(f"  no regressions below {threshold:.2f}x")
    if indeterminate:
        lines.append(
            f"  {len(indeterminate)} cell(s) indeterminate (non-positive or "
            f"non-finite baseline speedup):"
        )
        for d in indeterminate[:10]:
            lines.append(
                f"    {d.key}: {d.old_speedup:.2f} -> {d.new_speedup:.2f}"
            )
    return "\n".join(lines)
