"""Registry of scheduler pass groups, and the driver that runs one.

``PASS_GROUPS`` maps every scheduler name in
:data:`repro.schedulers.SCHEDULERS` to its declarative pass group.  CI
verifies each registered group with :func:`repro.statan.verify_pipeline`
before any of them run, so an ill-formed recombination (a successor
scheduler wired from existing passes, a compiled stage dropped in) is a
structured diagnostic, not a runtime crash.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from .base import PassContext, PassGroup
from .baselines import (
    build_coarsen_k_group,
    build_dagp_group,
    build_lbc_group,
    build_mkl_group,
    build_serial_group,
    build_spmp_group,
    build_wavefront_group,
)
from .executor import run_group
from .hdagg import build_hdagg_group

__all__ = ["PASS_GROUPS", "register_pass_group", "get_pass_group", "run_scheduler_group"]

#: scheduler name -> declarative pass group
PASS_GROUPS: Dict[str, PassGroup] = {}


def register_pass_group(group: PassGroup, *, name: Optional[str] = None) -> PassGroup:
    """Add (or replace) a group in the registry under ``name`` or its own."""
    PASS_GROUPS[name or group.name] = group
    return group


def get_pass_group(name: str) -> PassGroup:
    """Look up a registered group; raises ``KeyError`` with choices listed."""
    try:
        return PASS_GROUPS[name]
    except KeyError:
        raise KeyError(
            f"unknown pass group {name!r}; registered: {sorted(PASS_GROUPS)}"
        ) from None


def run_scheduler_group(
    name: str,
    g: Any,
    cost: Any,
    p: int,
    *,
    epsilon: Optional[float] = None,
    backend: Any = None,
    options: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Build a context for one scheduler group and execute it.

    This is the uniform driver the baseline scheduler functions delegate
    to.  The HDagg driver (:func:`repro.core.hdagg._hdagg_pipeline`)
    builds a richer context (stage timer, ablation switches), but the
    ``"hdagg"`` group runs here too: when a group declares ``Backend``
    among its inputs the driver coerces ``backend`` (spec, grammar
    string, or ``None`` for the ambient default) and seeds the artifact.
    ``epsilon`` may come as the keyword or as ``options["epsilon"]``.
    """
    group = get_pass_group(name)
    artifacts: Dict[str, Any] = {"DAG": g, "Cost": cost, "Cores": p}
    opts = dict(options or {})
    if epsilon is None and "epsilon" in opts:
        epsilon = opts.pop("epsilon")
    if epsilon is not None:
        artifacts["Epsilon"] = epsilon
    spec: Any = None
    if "Backend" in group.inputs:
        from ..core.backends import BackendSpec

        spec = BackendSpec.coerce(backend)
        artifacts["Backend"] = spec.effective().describe()
    ctx = PassContext(artifacts, spec=spec, options=opts)
    run_group(group, ctx)
    return ctx["Schedule"]


register_pass_group(build_hdagg_group())
register_pass_group(build_wavefront_group())
register_pass_group(build_spmp_group())
register_pass_group(build_mkl_group())
register_pass_group(build_coarsen_k_group())
register_pass_group(build_serial_group())
register_pass_group(build_lbc_group())
register_pass_group(build_dagp_group())
