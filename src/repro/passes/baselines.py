"""The baseline schedulers as declarative pass groups.

The level-set family (wavefront, SpMP, MKL-style) shares one
``wavefronts`` pass and differs only in its emit pass — chunking policy
and synchronisation model are *configuration*.  ``coarsenk`` adds a
fixed-window merge pass between the two.  LBC and DAGP keep their
monolithic algorithms as single passes with full contracts: the verifier
still checks their dataflow, and decomposing them further is a follow-up,
not a prerequisite.

Pass bodies here are the moved bodies of the original scheduler
functions; the functions in :mod:`repro.schedulers` now build a context
and run their registered group, so golden-schedule snapshots prove the
refactor changed nothing byte for byte.
"""

from __future__ import annotations

from typing import Any, List, Mapping

import numpy as np

from .base import Pass, PassContext, PassGroup
from .contracts import Contract

__all__ = [
    "build_wavefront_group",
    "build_spmp_group",
    "build_mkl_group",
    "build_coarsen_k_group",
    "build_serial_group",
    "build_lbc_group",
    "build_dagp_group",
]


# ----------------------------------------------------------------------
# shared pass: level decomposition
# ----------------------------------------------------------------------
def _run_wavefronts(ctx: PassContext) -> Mapping[str, Any]:
    from ..graph.wavefronts import compute_wavefronts

    return {"Wavefronts": compute_wavefronts(ctx["DAG"])}


_WAVEFRONTS_PASS = Pass(
    name="wavefronts",
    contract=Contract(
        requires=("DAG",),
        produces=("Wavefronts",),
        requires_invariants=("acyclic",),
        preserves=("acyclic", "topo-ordered"),
    ),
    run=_run_wavefronts,
    repair="recompute",
)


# ----------------------------------------------------------------------
# wavefront / spmp / mkl emit passes
# ----------------------------------------------------------------------
def _emit_levels(ctx: PassContext, *, chunk: str, sync: str, algorithm: str) -> Mapping[str, Any]:
    from ..core.schedule import Schedule, WidthPartition
    from ..schedulers.base import chunk_by_cost, chunk_by_count

    g = ctx["DAG"]
    p = ctx["Cores"]
    waves = ctx["Wavefronts"]
    levels: List[List[WidthPartition]] = []
    for k in range(waves.n_levels):
        verts = waves.wavefront(k)
        if chunk == "cost":
            chunks = chunk_by_cost(verts, ctx["Cost"], p)
        else:
            chunks = chunk_by_count(verts, p)
        levels.append(
            [WidthPartition(core=i, vertices=ch) for i, ch in enumerate(chunks)]
        )
    schedule = Schedule(
        n=g.n,
        levels=levels,
        sync=sync,
        algorithm=algorithm,
        n_cores=p,
        meta={"n_wavefronts": waves.n_levels},
    )
    return {"Schedule": schedule}


def _run_emit_wavefront(ctx: PassContext) -> Mapping[str, Any]:
    return _emit_levels(ctx, chunk="cost", sync="barrier", algorithm="wavefront")


def _run_emit_spmp(ctx: PassContext) -> Mapping[str, Any]:
    return _emit_levels(ctx, chunk="cost", sync="p2p", algorithm="spmp")


def _run_emit_mkl(ctx: PassContext) -> Mapping[str, Any]:
    return _emit_levels(ctx, chunk="count", sync="barrier", algorithm="mkl")


def _level_emit_pass(name: str, run: Any, requires: tuple) -> Pass:
    return Pass(
        name=name,
        contract=Contract(
            requires=requires,
            produces=("Schedule",),
            requires_invariants=("acyclic", "topo-ordered"),
            establishes=("dependence-closed", "vertex-cover"),
        ),
        run=run,
        repair="splice",
    )


def build_wavefront_group() -> PassGroup:
    return PassGroup(
        name="wavefront",
        passes=(
            _WAVEFRONTS_PASS,
            _level_emit_pass(
                "emit-cost-chunks", _run_emit_wavefront, ("Wavefronts", "DAG", "Cost", "Cores")
            ),
        ),
        inputs=("DAG", "Cost", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="level sets, cost-balanced chunks, one barrier per level",
    )


def build_spmp_group() -> PassGroup:
    return PassGroup(
        name="spmp",
        passes=(
            _WAVEFRONTS_PASS,
            _level_emit_pass(
                "emit-p2p-chunks", _run_emit_spmp, ("Wavefronts", "DAG", "Cost", "Cores")
            ),
        ),
        inputs=("DAG", "Cost", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="level grouping with point-to-point synchronisation",
    )


def build_mkl_group() -> PassGroup:
    return PassGroup(
        name="mkl",
        passes=(
            _WAVEFRONTS_PASS,
            _level_emit_pass(
                "emit-count-chunks", _run_emit_mkl, ("Wavefronts", "DAG", "Cores")
            ),
        ),
        inputs=("DAG", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="vendor-style level sets with cost-oblivious chunking",
    )


# ----------------------------------------------------------------------
# coarsenk: fixed-window merge between the shared passes
# ----------------------------------------------------------------------
def _run_window_merge(ctx: PassContext) -> Mapping[str, Any]:
    from ..core.binpack import first_fit_pack
    from ..graph.connected_components import components_as_lists

    g = ctx["DAG"]
    cost = ctx["Cost"]
    p = ctx["Cores"]
    waves = ctx["Wavefronts"]
    k = ctx.options["k"]
    windows = []
    for lo in range(0, waves.n_levels, k):
        hi = min(lo + k, waves.n_levels)
        verts = waves.vertices_in_range(lo, hi)
        comps = components_as_lists(g, verts)
        packing = first_fit_pack([float(cost[c].sum()) for c in comps], p)
        windows.append((lo, hi, comps, packing))
    return {"LBPPartition": windows}


def _run_emit_windows(ctx: PassContext) -> Mapping[str, Any]:
    from ..core.schedule import Schedule, WidthPartition

    g = ctx["DAG"]
    p = ctx["Cores"]
    waves = ctx["Wavefronts"]
    levels: List[List[WidthPartition]] = []
    for _lo, _hi, comps, packing in ctx["LBPPartition"]:
        parts = []
        for core, items in enumerate(packing.items_per_bin(p)):
            if items.size == 0:
                continue
            members = np.sort(np.concatenate([comps[int(t)] for t in items]))
            parts.append(WidthPartition(core=core, vertices=members))
        if parts:
            levels.append(parts)
    schedule = Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="coarsenk",
        n_cores=p,
        meta={"window": ctx.options["k"], "n_wavefronts": waves.n_levels},
    )
    return {"Schedule": schedule}


def build_coarsen_k_group() -> PassGroup:
    return PassGroup(
        name="coarsenk",
        passes=(
            _WAVEFRONTS_PASS,
            Pass(
                name="window-merge",
                contract=Contract(
                    requires=("Wavefronts", "DAG", "Cost", "Cores"),
                    produces=("LBPPartition",),
                    requires_invariants=("acyclic", "topo-ordered"),
                ),
                run=_run_window_merge,
                repair="splice",
            ),
            Pass(
                name="emit-windows",
                contract=Contract(
                    requires=("LBPPartition", "Wavefronts", "DAG", "Cores"),
                    produces=("Schedule",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    establishes=("dependence-closed", "vertex-cover"),
                ),
                run=_run_emit_windows,
                repair="splice",
            ),
        ),
        inputs=("DAG", "Cost", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="fixed-window wavefront coarsening with component packing",
    )


# ----------------------------------------------------------------------
# serial / lbc / dagp: single-pass groups
# ----------------------------------------------------------------------
def _run_serial(ctx: PassContext) -> Mapping[str, Any]:
    from ..core.schedule import Schedule, WidthPartition
    from ..sparse.csr import INDEX_DTYPE

    g = ctx["DAG"]
    part = WidthPartition(core=0, vertices=np.arange(g.n, dtype=INDEX_DTYPE))
    schedule = Schedule(
        n=g.n, levels=[[part]], sync="barrier", algorithm="serial", n_cores=1
    )
    return {"Schedule": schedule}


def build_serial_group() -> PassGroup:
    return PassGroup(
        name="serial",
        passes=(
            Pass(
                name="emit-serial",
                contract=Contract(
                    requires=("DAG",),
                    produces=("Schedule",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    establishes=("dependence-closed", "vertex-cover"),
                ),
                run=_run_serial,
                repair="recompute",
            ),
        ),
        inputs=("DAG", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="ascending-id order on one core (NRE denominator)",
    )


def _run_lbc(ctx: PassContext) -> Mapping[str, Any]:
    from ..schedulers.lbc import lbc_body

    return {
        "Schedule": lbc_body(ctx["DAG"], ctx["Cost"], ctx["Cores"], ctx["Epsilon"])
    }


def build_lbc_group() -> PassGroup:
    return PassGroup(
        name="lbc",
        passes=(
            Pass(
                name="lbc-etree-cut",
                contract=Contract(
                    requires=("DAG", "Cost", "Cores", "Epsilon"),
                    produces=("Schedule",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    establishes=("dependence-closed", "vertex-cover"),
                ),
                run=_run_lbc,
                repair="recompute",
            ),
        ),
        inputs=("DAG", "Cost", "Cores", "Epsilon"),
        assumes=("acyclic", "topo-ordered"),
        description="elimination-tree cut with packed subtrees (ParSy)",
    )


def _run_dagp(ctx: PassContext) -> Mapping[str, Any]:
    from ..schedulers.dagp import dagp_body

    return {
        "Schedule": dagp_body(ctx["DAG"], ctx["Cost"], ctx["Cores"], ctx.options["k"])
    }


def build_dagp_group() -> PassGroup:
    return PassGroup(
        name="dagp",
        passes=(
            Pass(
                name="dagp-partition-quotient",
                contract=Contract(
                    requires=("DAG", "Cost", "Cores"),
                    produces=("Schedule",),
                    requires_invariants=("acyclic", "topo-ordered"),
                    establishes=("dependence-closed", "vertex-cover"),
                ),
                run=_run_dagp,
                repair="recompute",
            ),
        ),
        inputs=("DAG", "Cost", "Cores"),
        assumes=("acyclic", "topo-ordered"),
        description="acyclic partitioning with a list-scheduled quotient DAG",
    )
