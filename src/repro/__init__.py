"""HDagg reproduction: hybrid aggregation of loop-carried dependence iterations.

A full Python implementation of *HDagg: Hybrid Aggregation of Loop-carried
Dependence Iterations in Sparse Matrix Computations* (Zarebavani, Cheshmi,
Liu, Strout, Mehri Dehnavi — IPDPS 2022), including every substrate the
paper depends on: a CSR sparse-matrix layer, DAG machinery (transitive
reduction, wavefronts, connected components), the three kernels (SpTRSV,
SpIC0, SpILU0), the four baseline inspectors (Wavefront, SpMP, LBC, DAGP)
plus an MKL-style vendor stand-in, an execution simulator that reproduces
the paper's locality / load-balance / synchronisation metrics, and a
34-matrix evaluation harness regenerating every table and figure.

Quick start (the paper's Listing 2 in Python)::

    from repro import SpILU0, hdagg, num_cores, epsilon
    from repro.sparse import poisson2d

    A = poisson2d(64)                 # or read_matrix_market("mat.mtx")
    kernel = SpILU0()
    # ------------ inspector ------------
    G = kernel.dag(A)
    C = kernel.cost(A)
    S = hdagg(G, C, num_cores(), epsilon())
    # ------------ executor -------------
    factor = kernel.execute_in_order(A, S.execution_order())
"""

from __future__ import annotations

import os

from .analysis import (
    check_trace,
    detect_races,
    kernel_footprint,
    run_mutation_suite,
    verify_dependences,
)
from .core import (
    DEFAULT_EPSILON,
    DependenceWitness,
    Schedule,
    ScheduleError,
    WidthPartition,
    accumulated_pgp,
    hdagg,
    pgp,
)
from .graph import DAG, compute_wavefronts, transitive_reduction_two_hop
from .kernels import KERNELS, SpIC0, SpILU0, SpTRSV, SparseKernel
from .runtime import (
    AMD64,
    INTEL20,
    LAPTOP4,
    MACHINES,
    MachineConfig,
    SimulationResult,
    execute_schedule,
    simulate,
)
from .schedulers import SCHEDULERS, get_scheduler
from .sparse import CSRMatrix, csr_from_coo, csr_from_dense, read_matrix_market

__version__ = "1.0.0"

__all__ = [
    "hdagg",
    "pgp",
    "accumulated_pgp",
    "DEFAULT_EPSILON",
    "Schedule",
    "WidthPartition",
    "ScheduleError",
    "DependenceWitness",
    "verify_dependences",
    "detect_races",
    "kernel_footprint",
    "check_trace",
    "run_mutation_suite",
    "DAG",
    "compute_wavefronts",
    "transitive_reduction_two_hop",
    "CSRMatrix",
    "csr_from_coo",
    "csr_from_dense",
    "read_matrix_market",
    "SparseKernel",
    "SpTRSV",
    "SpIC0",
    "SpILU0",
    "KERNELS",
    "SCHEDULERS",
    "get_scheduler",
    "MachineConfig",
    "MACHINES",
    "INTEL20",
    "AMD64",
    "LAPTOP4",
    "simulate",
    "SimulationResult",
    "execute_schedule",
    "num_cores",
    "epsilon",
    "__version__",
]


def num_cores() -> int:
    """Number of physical cores (Listing 2's ``num_cores()``)."""
    return os.cpu_count() or 1


def epsilon() -> float:
    """The predefined load-balance threshold (Listing 2's ``epsilon()``)."""
    return DEFAULT_EPSILON
