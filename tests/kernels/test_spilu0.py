"""Tests for the SpILU0 kernel."""

import numpy as np
import pytest

from repro.kernels import KernelError, SpILU0, ilu0_defect, spilu0_in_order, spilu0_reference, split_lu
from repro.sparse import csr_from_dense


@pytest.fixture
def kernel():
    return SpILU0()


class TestReference:
    def test_dense_matches_lu(self, rng):
        """On a dense pattern ILU(0) is exact LU (Doolittle)."""
        dense = rng.random((7, 7)) + 7 * np.eye(7)
        a = csr_from_dense(dense)
        factor = spilu0_reference(a)
        l, u = split_lu(factor)
        np.testing.assert_allclose((l @ u).toarray(), dense, rtol=1e-10)

    def test_defect_zero_on_pattern(self, all_small_matrices):
        for name, a in all_small_matrices.items():
            factor = spilu0_reference(a)
            assert ilu0_defect(a, factor) < 1e-10, name

    def test_matches_scipy_spilu_on_dense_pattern(self, rng):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        dense = rng.random((6, 6)) + 6 * np.eye(6)
        a = csr_from_dense(dense)
        factor = spilu0_reference(a)
        l, u = split_lu(factor)
        lu = spla.splu(sp.csc_matrix(dense), permc_spec="NATURAL",
                       diag_pivot_thresh=0.0, options={"SymmetricMode": True})
        np.testing.assert_allclose((l @ u).toarray(), dense, rtol=1e-10)

    def test_structure_preserved(self, mesh):
        factor = spilu0_reference(mesh)
        np.testing.assert_array_equal(factor.indptr, mesh.indptr)
        np.testing.assert_array_equal(factor.indices, mesh.indices)

    def test_zero_pivot_raises(self):
        # u[1,1] becomes 0 after eliminating row 1; row 2 then divides by it
        a = csr_from_dense(np.array([[1.0, 1, 0], [1, 1, 1], [0, 1, 1]]))
        with pytest.raises(KernelError, match="pivot"):
            spilu0_reference(a)

    def test_missing_diagonal_raises(self):
        a = csr_from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(KernelError, match="diagonal"):
            spilu0_reference(a)

    def test_tridiagonal_exact(self, chain):
        """Tridiagonal has no fill, so ILU(0) factors exactly."""
        factor = spilu0_reference(chain)
        l, u = split_lu(factor)
        np.testing.assert_allclose((l @ u).toarray(), chain.to_dense(), rtol=1e-10)


class TestSplitLU:
    def test_unit_lower(self, mesh):
        l, u = split_lu(spilu0_reference(mesh))
        np.testing.assert_allclose(l.diagonal(), np.ones(mesh.n_rows))
        assert (abs(sp_triu_strict(l)) > 0).nnz == 0

    def test_upper_has_no_lower(self, mesh):
        _, u = split_lu(spilu0_reference(mesh))
        assert (abs(sp_tril_strict(u)) > 0).nnz == 0


def sp_triu_strict(m):
    import scipy.sparse as sp

    return sp.triu(m, k=1)


def sp_tril_strict(m):
    import scipy.sparse as sp

    return sp.tril(m, k=-1)


class TestInOrder:
    def test_identity_order_matches(self, mesh):
        ref = spilu0_reference(mesh)
        got = spilu0_in_order(mesh, np.arange(mesh.n_rows))
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-12)

    def test_topological_order_matches(self, irregular, kernel):
        from repro.graph import topological_order

        order = topological_order(kernel.dag(irregular))
        np.testing.assert_allclose(
            spilu0_in_order(irregular, order).data,
            spilu0_reference(irregular).data,
            rtol=1e-10,
        )

    def test_violation_raises(self, mesh):
        with pytest.raises(KernelError, match="eliminated before"):
            spilu0_in_order(mesh, np.arange(mesh.n_rows)[::-1].copy())

    def test_non_permutation_rejected(self, mesh):
        with pytest.raises(KernelError, match="permutation"):
            spilu0_in_order(mesh, np.zeros(mesh.n_rows, dtype=int))


class TestInspectorInterface:
    def test_cost_counts_full_rows(self, mesh, kernel):
        c = kernel.cost(mesh)
        assert c.shape == (mesh.n_rows,)
        assert np.all(c >= mesh.row_nnz())

    def test_memory_model(self, mesh, kernel):
        g = kernel.dag(mesh)
        m = kernel.memory_model(mesh, g)
        m.validate(g)
        assert m.total_accesses > 0

    def test_verify_detects_wrong_factor(self, tiny_spd, kernel):
        factor = spilu0_reference(tiny_spd)
        bad = factor.with_data(factor.data + 1.0)
        assert kernel.verify(tiny_spd, bad) > 0.1
