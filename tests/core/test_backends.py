"""Backend registry: spec grammar, canonicalisation, resolution, fallback."""

import warnings

import numpy as np
import pytest

from repro.core import hdagg
from repro.core.backends import (
    DEFAULT_TIER,
    ENV_VAR,
    STAGES,
    TIERS,
    BackendSpec,
    BackendWarning,
    available_tiers,
    register_backend,
    reset_fallback_warnings,
    resolve_stage,
)
from repro.graph import dag_from_matrix_lower
from repro.sparse import poisson2d


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
def test_empty_spec_is_all_numpy():
    for raw in (None, "", "  "):
        spec = BackendSpec.parse(raw)
        assert spec.entries == ()
        assert spec.describe() == DEFAULT_TIER
        assert all(spec.tier(s) == DEFAULT_TIER for s in STAGES)


def test_bare_tier_applies_to_every_stage():
    spec = BackendSpec.parse("compiled")
    assert all(spec.tier(s) == "compiled" for s in STAGES)
    assert spec.describe() == "compiled"
    assert BackendSpec.parse("all=compiled") == spec


def test_per_stage_entries_are_canonically_sorted():
    a = BackendSpec.parse("lbp=compiled,coarsen=compiled")
    b = BackendSpec.parse("coarsen=compiled, lbp=compiled")
    assert a == b
    assert hash(a) == hash(b)
    assert a.describe() == "coarsen=compiled,lbp=compiled"


def test_default_tier_entries_are_dropped():
    # writing `lbp=numpy` selects nothing non-default: same spec as empty
    assert BackendSpec.parse("lbp=numpy") == BackendSpec()
    assert BackendSpec.parse("lbp=numpy,coarsen=compiled").describe() == (
        "coarsen=compiled"
    )


def test_stage_aliases_accept_timer_spellings():
    assert BackendSpec.parse("aggregation=reference") == BackendSpec.parse(
        "aggregate=reference"
    )
    assert BackendSpec.parse("transitive_reduction=reference").tier("reduce") == (
        "reference"
    )
    assert BackendSpec.parse("bin_pack=reference").tier("binpack") == "reference"


def test_describe_parse_roundtrip():
    for raw in ("", "compiled", "reference", "lbp=compiled",
                "lbp=compiled,coarsen=compiled", "aggregate=reference,lbp=compiled"):
        spec = BackendSpec.parse(raw)
        assert BackendSpec.parse(spec.describe()) == spec


def test_bad_specs_raise():
    with pytest.raises(ValueError):
        BackendSpec.parse("warp=compiled")  # unknown stage
    with pytest.raises(ValueError):
        BackendSpec.parse("lbp=cuda")  # unknown tier
    with pytest.raises(ValueError):
        BackendSpec.parse("lbp compiled")  # missing '='
    with pytest.raises(TypeError):
        BackendSpec.coerce(42)


def test_coerce_sources(monkeypatch):
    spec = BackendSpec.parse("lbp=reference")
    assert BackendSpec.coerce(spec) is spec
    assert BackendSpec.coerce("lbp=reference") == spec
    monkeypatch.setenv(ENV_VAR, "lbp=reference")
    assert BackendSpec.coerce(None) == spec
    monkeypatch.delenv(ENV_VAR)
    assert BackendSpec.coerce(None) == BackendSpec()


def test_with_stage_reassigns_one_cell():
    spec = BackendSpec.parse("lbp=compiled").with_stage("lbp", "reference")
    assert spec.tier("lbp") == "reference"
    assert spec.with_stage("lbp", "numpy") == BackendSpec()


# ----------------------------------------------------------------------
# registry and fallback
# ----------------------------------------------------------------------
def test_numpy_and_reference_tiers_always_available():
    for stage in STAGES:
        tiers = available_tiers(stage)
        assert DEFAULT_TIER in tiers
        fn, tier = resolve_stage(BackendSpec(), stage)
        assert callable(fn)
        assert tier == DEFAULT_TIER


def test_reference_coarsen_aliases_numpy_without_warning():
    # coarsen/expand never grew a loop oracle; reference aliases numpy by
    # design and must not trip the fallback warning
    with warnings.catch_warnings():
        warnings.simplefilter("error", BackendWarning)
        fn, tier = resolve_stage(BackendSpec.parse("coarsen=reference"), "coarsen")
    assert tier == "reference"
    assert callable(fn)


def test_unavailable_tier_warns_once_then_stays_quiet():
    # binpack has no compiled implementation: requesting it must degrade
    # to numpy with exactly one BackendWarning per process
    spec = BackendSpec.parse("binpack=compiled")
    reset_fallback_warnings()
    with pytest.warns(BackendWarning, match="falling back"):
        fn, tier = resolve_stage(spec, "binpack")
    assert tier == DEFAULT_TIER
    assert callable(fn)
    with warnings.catch_warnings():
        warnings.simplefilter("error", BackendWarning)
        fn2, tier2 = resolve_stage(spec, "binpack")  # second call: silent
    assert tier2 == DEFAULT_TIER
    reset_fallback_warnings()
    with pytest.warns(BackendWarning):
        resolve_stage(spec, "binpack")  # re-armed after reset
    reset_fallback_warnings()


def test_effective_folds_unavailable_tiers_to_numpy():
    eff = BackendSpec.parse("binpack=compiled").effective()
    assert eff.tier("binpack") == DEFAULT_TIER


def test_register_backend_overrides_a_cell():
    sentinel = object()

    def loader():
        return lambda *a, **k: sentinel

    try:
        register_backend("binpack", "compiled", loader)
        fn, tier = resolve_stage(BackendSpec.parse("binpack=compiled"), "binpack")
        assert tier == "compiled"
        assert fn() is sentinel
    finally:
        # restore the unavailable state (loader returning None == absent)
        register_backend("binpack", "compiled", lambda: None)
        reset_fallback_warnings()


# ----------------------------------------------------------------------
# end-to-end selection
# ----------------------------------------------------------------------
def test_hdagg_stamps_effective_backend(monkeypatch):
    g = dag_from_matrix_lower(poisson2d(12, seed=3))
    cost = np.ones(g.n)
    s = hdagg(g, cost, 4)
    assert s.meta["backend"] == DEFAULT_TIER
    s_ref = hdagg(g, cost, 4, backend="reference")
    assert s_ref.meta["backend"] == "reference"
    monkeypatch.setenv(ENV_VAR, "lbp=reference")
    s_env = hdagg(g, cost, 4)
    assert s_env.meta["backend"] == "lbp=reference"
    # env selection must not change the schedule itself
    assert [len(lv) for lv in s_env.levels] == [len(lv) for lv in s.levels]
