"""Compressed Sparse Column (CSC) matrix container.

SuiteSparse, Sympiler, and most direct solvers are CSC-first; this
container completes the substrate so CSC-shaped workloads can be expressed
natively.  It shares the conventions of :class:`~repro.sparse.csr.CSRMatrix`
(int64 indices, float64 values, sorted unique indices per column, read-only
arrays) and converts losslessly in both directions.

The column-oriented (left-looking) triangular solve lives here too: it is
the dual of the CSR row solve — once ``x[j]`` is final, column ``j``'s
entries are scattered into the pending right-hand side.  Its dependence
DAG is identical (edge ``j -> i`` per stored ``L[i, j]``), so every
scheduler output drives both executors unchanged.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["CSCMatrix", "csc_from_csr", "csr_from_csc", "sptrsv_csc_reference", "sptrsv_csc_in_order"]


class CSCMatrix:
    """An ``n_rows x n_cols`` sparse matrix in CSC format.

    Column ``j`` occupies ``indices[indptr[j]:indptr[j+1]]`` (row ids,
    strictly increasing) with values aligned in ``data``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(self, n_rows: int, n_cols: int, indptr, indices, data, *, check: bool = True):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if check:
            self._validate()
        for arr in (self.indptr, self.indices, self.data):
            arr.flags.writeable = False

    def _validate(self) -> None:
        if self.indptr.shape[0] != self.n_cols + 1 or self.indptr[0] != 0:
            raise ValueError("bad indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise ValueError("indices/data length mismatch")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.n_rows:
                raise ValueError("row index out of range")
            if nnz > 1:
                interior = np.ones(nnz - 1, dtype=bool)
                boundaries = self.indptr[1:-1]
                interior[boundaries[(boundaries > 0) & (boundaries < nnz)] - 1] = False
                if np.any((np.diff(self.indices) <= 0) & interior):
                    raise ValueError("row indices must be strictly increasing per column")

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, values)`` views of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        col_of = np.repeat(np.arange(self.n_cols, dtype=INDEX_DTYPE), np.diff(self.indptr))
        out[self.indices, col_of] = self.data
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` by column-scaled scatter (the CSC-natural kernel)."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        col_of = np.repeat(np.arange(self.n_cols, dtype=INDEX_DTYPE), np.diff(self.indptr))
        out = np.zeros(self.n_rows, dtype=VALUE_DTYPE)
        np.add.at(out, self.indices, self.data * x[col_of])
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self):
        raise TypeError("CSCMatrix is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"


def csc_from_csr(a: CSRMatrix) -> CSCMatrix:
    """Convert CSR -> CSC (the transpose trick with the shape kept)."""
    t = a.transpose()  # CSR of A^T == CSC arrays of A
    return CSCMatrix(a.n_rows, a.n_cols, t.indptr, t.indices, t.data, check=False)


def csr_from_csc(a: CSCMatrix) -> CSRMatrix:
    """Convert CSC -> CSR."""
    as_csr_of_t = CSRMatrix(a.n_cols, a.n_rows, a.indptr, a.indices, a.data, check=False)
    return as_csr_of_t.transpose()


def sptrsv_csc_reference(low: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Column-oriented (left-looking) forward substitution on CSC ``L``.

    The dual of the CSR row kernel: finalise ``x[j]``, then scatter column
    ``j`` into the pending right-hand side.  Diagonal-first column layout
    is guaranteed by sortedness (``rows >= j`` in a lower-triangular CSC).
    """
    if not low.is_square:
        raise ValueError("sptrsv: matrix must be square")
    n = low.n_cols
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    indptr, indices, data = low.indptr, low.indices, low.data
    for j in range(n):
        lo, hi = indptr[j], indptr[j + 1]
        if hi == lo or indices[lo] != j:
            raise ValueError(f"sptrsv: column {j} is missing its diagonal entry")
        if np.any(indices[lo:hi] < j):
            raise ValueError("sptrsv: matrix has entries above the diagonal")
        x[j] /= data[lo]
        rows = indices[lo + 1 : hi]
        x[rows] -= data[lo + 1 : hi] * x[j]
    return x


def sptrsv_csc_in_order(low: CSCMatrix, order: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Left-looking solve with columns finalised in ``order``.

    Correctness needs the *scatter* of column ``j`` to land before any
    dependent ``x[i]`` is finalised — the same DAG constraint as the row
    kernel, checked here explicitly.
    """
    n = low.n_cols
    order = np.asarray(order, dtype=INDEX_DTYPE)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise ValueError("sptrsv: order must be a permutation of range(n)")
    b = np.asarray(b, dtype=VALUE_DTYPE)
    x = b.copy()
    done = np.zeros(n, dtype=bool)
    indptr, indices, data = low.indptr, low.indices, low.data
    # dependence check needs the row view: column j of L holds the
    # *consumers* of x[j]; producers of x[j] are the columns k < j with
    # L[j, k] != 0, i.e. the rows seen while scanning columns.  Build the
    # per-row producer counts once.
    produced_by = [[] for _ in range(n)]
    for j in range(n):
        for r in indices[indptr[j] + 1 : indptr[j + 1]].tolist():
            produced_by[r].append(j)
    for j in order:
        deps = produced_by[int(j)]
        missing = [k for k in deps if not done[k]]
        if missing:
            raise ValueError(f"sptrsv: column {int(j)} finalised before {missing[:5]}")
        lo, hi = indptr[j], indptr[j + 1]
        if hi == lo or indices[lo] != j:
            raise ValueError(f"sptrsv: column {int(j)} is missing its diagonal entry")
        x[j] /= data[lo]
        rows = indices[lo + 1 : hi]
        x[rows] -= data[lo + 1 : hi] * x[j]
        done[j] = True
    return x
