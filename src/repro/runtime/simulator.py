"""Discrete-event execution simulator: the paper's testbed substitute.

Given a schedule, the kernel's dependence DAG, per-iteration costs, and the
kernel's :class:`~repro.kernels.memory.MemoryModel`, the simulator produces
exactly the quantities the paper measures on hardware (Section V-A):

* **runtime** — the makespan in model cycles, from which speedups are
  computed;
* **locality** — average memory access latency from the coherence-aware
  memory model below;
* **load balance** — per-core busy cycles, from which the measured
  potential gain ``PG = 1 - mean/max`` is derived (Section IV-D);
* **synchronisation** — global-barrier and point-to-point counts plus the
  cycles they cost.

Memory model
------------
Two access classes per iteration ``v`` (see :mod:`repro.kernels.memory`):

* *streaming* — ``stream_lines[v]`` cold lines (own row of the operand):
  always miss; identical for every scheduler.
* *dependence* — for each DAG edge ``u -> v``, ``edge_lines[e]`` lines of
  data produced by ``u``.  A **hit** requires (a) ``u`` and ``v`` on the
  same core — on any other core the data arrives via the coherence fabric,
  a miss regardless of capacity — and (b) fewer than
  ``machine.cache_lines_per_core`` lines accessed on that core in between
  (LRU eviction window).  This is the paper's central locality mechanism:
  only executing dependent iterations on the same core, soon after one
  another, turns their data reuse into cache hits.

Timing model
------------
A vertex costs ``cost[v] * cycles_per_cost_unit`` compute cycles plus the
latency of all its accesses.  Width-partitions run their vertices back to
back on their core.

``sync="barrier"``: a level ends when its slowest core finishes; a barrier
(``machine.barrier_cycles``) separates consecutive levels.

``sync="p2p"``: partitions are the synchronisation granularity (SpMP groups
/ DAGP parts).  A partition starts at ``max(core clock, finish of every
cross-partition dependence (+sync cost when cross-core))``; cores never
wait at level boundaries, reproducing SpMP's overlap (Figure 1(b)).

Fine-grained schedules (HDagg with bin packing disabled) are *bound* first:
within each level, partitions are LPT-assigned to the least-loaded core —
what a work-stealing OpenMP runtime achieves — then simulated as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.schedule import Schedule, WidthPartition
from ..graph.dag import DAG
from ..kernels.memory import MemoryModel
from ..observability.timeline import CoreTimeline, TimelineRecorder
from ..sparse.csr import INDEX_DTYPE
from .machine import MachineConfig

__all__ = ["SimulationResult", "simulate", "bind_dynamic_partitions"]


@dataclass
class SimulationResult:
    """Everything the metrics layer needs from one simulated execution."""

    algorithm: str
    machine: str
    makespan_cycles: float
    core_busy_cycles: np.ndarray
    hits: int
    misses: int
    n_barriers: int
    n_p2p_syncs: int
    sync_cycles: float
    hit_cycles: float = 4.0
    miss_cycles: float = 150.0
    #: Per-level spans (slowest core per coarsened wavefront) for barrier
    #: schedules; empty for p2p schedules (no level boundaries at run time).
    level_spans: list = None
    #: Deterministic per-core model timeline (``CoreTimeline`` in cycles)
    #: when ``simulate(..., collect_timeline=True)``; ``None`` otherwise.
    timeline: Optional[CoreTimeline] = None

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def memory_cycles(self) -> float:
        return self.hit_cycles * self.hits + self.miss_cycles * self.misses

    @property
    def avg_memory_access_latency(self) -> float:
        """The paper's locality metric (lower is better)."""
        if self.total_accesses == 0:
            return 0.0
        return self.memory_cycles / self.total_accesses

    @property
    def potential_gain(self) -> float:
        """Measured PG: ``1 - mean(busy) / max(busy)`` over cores (Section IV-D)."""
        busy = self.core_busy_cycles
        mx = float(busy.max()) if busy.size else 0.0
        if mx <= 0.0:
            return 0.0
        return 1.0 - float(busy.mean()) / mx

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total_accesses if self.total_accesses else 0.0


def bind_dynamic_partitions(schedule: Schedule, cost: np.ndarray) -> Schedule:
    """Assign ``core = -1`` partitions to concrete cores per level.

    Models what an OpenMP dynamic-scheduling runtime achieves on HDagg's
    fine-grained tasks: tasks are claimed roughly in submission order
    (smallest-id first — the inspector's spatial-locality order), so each
    core ends up with a *contiguous* cost-balanced run of tasks.  Static
    partitions keep their cores; dynamic ones fill the remaining capacity.
    Returns a new schedule (or the original when nothing is dynamic).
    """
    if all(part.core >= 0 for _, part in schedule.iter_partitions()):
        return schedule
    cost = np.asarray(cost, dtype=np.float64)
    p = schedule.n_cores
    new_levels: List[List[WidthPartition]] = []
    for level in schedule.levels:
        loads = np.zeros(p, dtype=np.float64)
        static = [part for part in level if part.core >= 0]
        dynamic = [part for part in level if part.core < 0]
        for part in static:
            loads[part.core % p] += part.cost(cost)
        bound = list(static)
        if dynamic:
            # submission order: smallest member id first
            dynamic.sort(key=lambda part: int(part.vertices[0]))
            costs = np.array([part.cost(cost) for part in dynamic])
            total = float(costs.sum()) + float(loads.sum())
            target = total / p
            core = 0
            for part, w in zip(dynamic, costs):
                # advance to the next core once this one is full
                while core < p - 1 and loads[core] >= target:
                    core += 1
                loads[core] += w
                bound.append(WidthPartition(core=core, vertices=part.vertices))
        new_levels.append(bound)
    return Schedule(
        n=schedule.n,
        levels=new_levels,
        sync=schedule.sync,
        algorithm=schedule.algorithm,
        n_cores=p,
        fine_grained=schedule.fine_grained,
        meta=dict(schedule.meta, bound_dynamic=True),
    )


def _flatten_partitions(
    schedule: Schedule,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a schedule's partitions into parallel arrays (one pass).

    Returns ``(verts, ptr, part_core, part_level)``: partition ``k`` (in
    schedule iteration order) owns ``verts[ptr[k]:ptr[k+1]]`` and runs on
    ``part_core[k]`` at level ``part_level[k]``.  Every downstream batch
    pass works off these arrays instead of re-walking the partition lists.
    """
    chunks: List[np.ndarray] = []
    cores: List[int] = []
    lvls: List[int] = []
    for lvl, part in schedule.iter_partitions():
        chunks.append(part.vertices)
        cores.append(part.core)
        lvls.append(lvl)
    n_parts = len(chunks)
    ptr = np.zeros(n_parts + 1, dtype=INDEX_DTYPE)
    if n_parts:
        sizes = np.fromiter((c.shape[0] for c in chunks), dtype=INDEX_DTYPE, count=n_parts)
        np.cumsum(sizes, out=ptr[1:])
        verts = np.concatenate(chunks).astype(INDEX_DTYPE, copy=False)
    else:
        verts = np.empty(0, dtype=INDEX_DTYPE)
    return (
        verts,
        ptr,
        np.asarray(cores, dtype=INDEX_DTYPE),
        np.asarray(lvls, dtype=INDEX_DTYPE),
    )


def _memory_cycles(
    schedule: Schedule,
    g: DAG,
    memory: MemoryModel,
    machine: MachineConfig,
    flat: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, int, int, float]:
    """Per-vertex memory cycles under the coherence-aware model.

    Returns ``(mem_cycles, hits, misses, effective_miss_cycles)`` — the
    last reflects optional bandwidth contention.
    """
    n = schedule.n
    p = machine.n_cores
    verts_all, part_ptr, part_core, _ = flat
    vert_core = np.repeat(part_core % p, np.diff(part_ptr))
    core = np.zeros(n, dtype=INDEX_DTYPE)
    core[verts_all] = vert_core
    # optional bandwidth model: misses slow down with concurrently active
    # cores (docs/MODEL.md); active count approximated by the schedule's
    # mean level width
    miss_cycles = machine.miss_cycles
    if machine.bandwidth_contention > 0.0 and schedule.n_levels:
        widths = [len(level) for level in schedule.levels if level]
        active = float(np.mean(widths)) if widths else 1.0
        miss_cycles = machine.miss_cycles * (
            1.0 + machine.bandwidth_contention * max(0.0, active - 1.0)
        )

    # Per-vertex access volume (stream + incoming dependence lines), then
    # per-core cumulative access position in execution order.  One stable
    # sort by core keeps each core's vertices in schedule order; the cumsum
    # then runs per contiguous core segment (identical accumulation order
    # to a per-core gather, without re-walking the schedule per core).
    src, dst = g.edge_list()
    acc = memory.stream_lines.astype(np.float64).copy()
    if src.size:
        np.add.at(acc, dst, memory.edge_lines)
    position = np.zeros(n, dtype=np.float64)  # end-of-vertex access offset on its core
    if verts_all.size:
        exec_order = np.argsort(vert_core, kind="stable")
        sv = verts_all[exec_order]
        sc = vert_core[exec_order]
        acc_sv = acc[sv]
        seg = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.flatnonzero(sc[1:] != sc[:-1]) + 1,
                np.asarray([sv.shape[0]], dtype=np.int64),
            )
        )
        for a, b in zip(seg[:-1].tolist(), seg[1:].tolist()):
            position[sv[a:b]] = np.cumsum(acc_sv[a:b])

    hits_lines = 0.0
    miss_lines = float(memory.stream_lines.sum())
    mem_cycles = memory.stream_lines * miss_cycles
    if src.size:
        cap = machine.cache_lines_per_core
        # Two ways an edge u -> v hits in v's core cache:
        #   producer reuse — u itself ran on v's core within the window;
        #   consumer reuse — an earlier consumer of u's data ran on v's
        #   core within the window (the data is already resident no matter
        #   where u ran).  Sorted-by-id width-partitions exploit the second
        #   heavily: adjacent rows share dependence sources.
        # Group edges by (source, consumer core) in consumer execution
        # order; the first edge of each group uses the producer rule, the
        # rest chain off the previous consumer.
        order = np.lexsort((position[dst], core[dst], src))
        s_o, d_o = src[order], dst[order]
        first = np.ones(order.shape[0], dtype=bool)
        first[1:] = (s_o[1:] != s_o[:-1]) | (core[d_o[1:]] != core[d_o[:-1]])
        prev_pos = np.empty(order.shape[0], dtype=np.float64)
        prev_pos[0] = 0.0
        prev_pos[1:] = position[d_o[:-1]]
        producer_hit = first & (core[s_o] == core[d_o]) & (
            position[d_o] - position[s_o] <= cap
        )
        consumer_hit = ~first & (position[d_o] - prev_pos <= cap)
        hit_sorted = producer_hit | consumer_hit
        hit = np.empty_like(hit_sorted)
        hit[order] = hit_sorted
        lat = np.where(hit, machine.hit_cycles, miss_cycles)
        np.add.at(mem_cycles, dst, memory.edge_lines * lat)
        hits_lines = float(memory.edge_lines[hit].sum())
        miss_lines += float(memory.edge_lines[~hit].sum())
    return mem_cycles, int(round(hits_lines)), int(round(miss_lines)), miss_cycles


def _p2p_dependencies(schedule: Schedule, g: DAG) -> tuple[np.ndarray, np.ndarray]:
    """Unique cross-partition dependence pairs ``(src_pid, dst_pid)``."""
    pid = schedule.partition_of()
    src, dst = g.edge_list()
    ps, pd = pid[src], pid[dst]
    cross = ps != pd
    if not np.any(cross):
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE)
    pairs = np.unique(np.stack([ps[cross], pd[cross]], axis=1), axis=0)
    return np.ascontiguousarray(pairs[:, 0]), np.ascontiguousarray(pairs[:, 1])


def simulate(
    schedule: Schedule,
    g: DAG,
    cost: np.ndarray,
    memory: MemoryModel,
    machine: MachineConfig,
    *,
    collect_timeline: bool = False,
) -> SimulationResult:
    """Simulate one schedule on one machine model; see module docstring.

    With ``collect_timeline=True`` the result additionally carries a
    deterministic :class:`~repro.observability.timeline.CoreTimeline` in
    model cycles — per-partition ``busy`` segments, ``barrier_wait`` for
    early finishers and barrier crossings, ``p2p_wait`` attributed to the
    blocking dependence — consistent with ``core_busy_cycles`` and
    ``makespan_cycles`` by construction.
    """
    cost = np.asarray(cost, dtype=np.float64)
    memory.validate(g)
    schedule = bind_dynamic_partitions(schedule, cost)
    p = machine.n_cores

    flat = _flatten_partitions(schedule)
    verts_all, part_ptr, part_core, part_level = flat
    n_parts = part_core.shape[0]

    mem_cycles, hits, misses, effective_miss = _memory_cycles(
        schedule, g, memory, machine, flat
    )
    exec_cycles = cost * machine.cycles_per_cost_unit + mem_cycles

    # Per-partition execution cycles in one pass (prefix sums over the
    # flattened vertex array) — both sync modes consume these.
    if n_parts:
        ecs = np.concatenate(
            (np.zeros(1, dtype=np.float64), np.cumsum(exec_cycles[verts_all]))
        )
        w_part = ecs[part_ptr[1:]] - ecs[part_ptr[:-1]]
        part_core_mod = (part_core % p).astype(INDEX_DTYPE)
    else:
        w_part = np.zeros(0, dtype=np.float64)
        part_core_mod = np.zeros(0, dtype=INDEX_DTYPE)

    busy = np.zeros(p, dtype=np.float64)
    n_p2p = 0
    sync_cycles = 0.0
    recorder = None
    if collect_timeline:
        recorder = TimelineRecorder()
        recorder.open(p)

    level_spans: list = []
    if schedule.sync == "barrier":
        # Batched per-level accounting: scatter partition cycles into a
        # (level, core) grid, then reduce — no per-partition Python work.
        n_levels = len(schedule.levels)
        if n_parts:
            loads2d = np.bincount(
                part_level * p + part_core_mod,
                weights=w_part,
                minlength=n_levels * p,
            ).reshape(n_levels, p)
            nonempty = np.flatnonzero(np.bincount(part_level, minlength=n_levels))
            busy = loads2d.sum(axis=0)
            spans = loads2d[nonempty].max(axis=1)
            level_spans = [float(s) for s in spans]
            makespan = float(spans.sum())
            n_levels_nonempty = int(nonempty.shape[0])
        else:
            makespan = 0.0
            n_levels_nonempty = 0
        n_barriers = max(0, n_levels_nonempty - 1)
        sync_cycles = n_barriers * machine.barrier_cycles
        makespan += sync_cycles
        if recorder is not None and n_parts:
            # timeline pass (off the vectorized path, opt-in only): replay
            # the same level accounting into per-partition segments
            ne = nonempty.tolist()
            level_start = {}
            t = 0.0
            for i, lvl in enumerate(ne):
                level_start[lvl] = t
                t += float(spans[i])
                if i < len(ne) - 1:
                    t += machine.barrier_cycles
            cursors: dict = {}
            for k in range(n_parts):
                lvl = int(part_level[k])
                c = int(part_core_mod[k])
                w = float(w_part[k])
                cur = cursors.setdefault((lvl, c), level_start[lvl])
                if w > 0.0:
                    recorder.record(
                        c, "busy", cur, cur + w,
                        vertex=int(verts_all[part_ptr[k]]), level=lvl,
                    )
                cursors[(lvl, c)] = cur + w
            for i, lvl in enumerate(ne):
                end = level_start[lvl] + float(spans[i])
                for c in range(p):
                    fin = cursors.get((lvl, c), level_start[lvl])
                    if end > fin:  # early finisher stalls at the barrier
                        recorder.record(c, "barrier_wait", fin, end, level=lvl)
                if i < len(ne) - 1 and machine.barrier_cycles > 0.0:
                    for c in range(p):
                        recorder.record(
                            c, "barrier_wait", end, end + machine.barrier_cycles,
                            level=lvl,
                        )
        if recorder is not None:
            recorder.wall_t0, recorder.wall_t1 = 0.0, makespan
    else:  # p2p
        n_barriers = 0
        dep_src, dep_dst = _p2p_dependencies(schedule, g)
        dep_ptr = np.zeros(n_parts + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(dep_dst, minlength=n_parts), out=dep_ptr[1:])
        order = np.argsort(dep_dst, kind="stable")
        dep_src_sorted = dep_src[order]

        # The clock recurrence is inherently sequential (a partition's start
        # depends on earlier finishes), but each step now reads precomputed
        # partition sums instead of gathering exec_cycles per partition.
        finish = np.zeros(n_parts, dtype=np.float64)
        core_clock = np.zeros(p, dtype=np.float64)
        w_list = w_part.tolist()
        core_list = part_core_mod.tolist()
        dep_ptr_list = dep_ptr.tolist()
        for k in range(n_parts):
            c = core_list[k]
            w = w_list[k]
            deps = dep_src_sorted[dep_ptr_list[k] : dep_ptr_list[k + 1]]
            start = core_clock[c]
            blocking = -1
            if deps.size:
                cross_core = part_core_mod[deps] != c
                n_cross = int(np.count_nonzero(cross_core))
                n_p2p += n_cross
                sync_cycles += machine.p2p_sync_cycles * n_cross
                dep_finish = finish[deps] + np.where(
                    cross_core, machine.p2p_sync_cycles, 0.0
                )
                dep_max = float(dep_finish.max())
                if recorder is not None and dep_max > start:
                    blocking = int(deps[int(np.argmax(dep_finish))])
                start = max(start, dep_max)
            if recorder is not None:
                if start > core_clock[c]:  # stalled on the blocking dependence
                    recorder.record(
                        c, "p2p_wait", float(core_clock[c]), start,
                        vertex=int(verts_all[part_ptr[k]])
                        if part_ptr[k + 1] > part_ptr[k] else -1,
                        dependence=int(verts_all[part_ptr[blocking]])
                        if blocking >= 0 else -1,
                    )
                if w > 0.0:
                    recorder.record(
                        c, "busy", start, start + w,
                        vertex=int(verts_all[part_ptr[k]])
                        if part_ptr[k + 1] > part_ptr[k] else -1,
                    )
            finish[k] = start + w
            core_clock[c] = finish[k]
            busy[c] += w
        makespan = float(core_clock.max()) if n_parts else 0.0
        if recorder is not None:
            recorder.wall_t0, recorder.wall_t1 = 0.0, makespan

    return SimulationResult(
        algorithm=schedule.algorithm,
        machine=machine.name,
        makespan_cycles=makespan,
        core_busy_cycles=busy,
        hits=hits,
        misses=misses,
        n_barriers=n_barriers,
        n_p2p_syncs=n_p2p,
        sync_cycles=sync_cycles,
        hit_cycles=machine.hit_cycles,
        miss_cycles=effective_miss,
        level_spans=level_spans,
        timeline=recorder.finalize() if recorder is not None else None,
    )
