"""Tests for RCM / nested dissection orderings."""

import numpy as np
import pytest

from repro.sparse import (
    apply_ordering,
    bandwidth,
    natural,
    nested_dissection,
    random_permutation,
    rcm,
)


def is_permutation(perm, n):
    return perm.shape[0] == n and np.array_equal(np.sort(perm), np.arange(n))


@pytest.mark.parametrize("method", ["rcm", "nd", "natural", "random"])
def test_returns_valid_permutation(method, all_small_matrices):
    for name, a in all_small_matrices.items():
        _, perm = apply_ordering(a, method)
        assert is_permutation(perm, a.n_rows), (method, name)


def test_apply_ordering_preserves_spd(mesh):
    ordered, _ = apply_ordering(mesh, "nd")
    assert ordered.nnz == mesh.nnz
    eig = np.linalg.eigvalsh(ordered.to_dense())
    assert eig.min() > 0


def test_rcm_reduces_bandwidth_of_shuffled_band(banded):
    shuffled = banded.permute_symmetric(
        np.random.default_rng(1).permutation(banded.n_rows)
    )
    ordered, _ = apply_ordering(shuffled, "rcm")
    assert bandwidth(ordered) < bandwidth(shuffled)


def test_rcm_deterministic(mesh):
    np.testing.assert_array_equal(rcm(mesh), rcm(mesh))


def test_nd_deterministic(mesh):
    np.testing.assert_array_equal(nested_dissection(mesh), nested_dissection(mesh))


def test_nd_separators_last_within_subproblem(mesh):
    """After ND the lower-triangular DAG becomes shallower (more parallel)
    than natural order for mesh problems."""
    from repro.graph import dag_from_matrix_lower
    from repro.metrics import average_parallelism

    natural_ap = average_parallelism(dag_from_matrix_lower(mesh))
    nd_mat, _ = apply_ordering(mesh, "nd")
    nd_ap = average_parallelism(dag_from_matrix_lower(nd_mat))
    assert nd_ap >= natural_ap


def test_nd_handles_disconnected(blocks):
    perm = nested_dissection(blocks)
    assert is_permutation(perm, blocks.n_rows)


def test_natural_is_identity(mesh):
    np.testing.assert_array_equal(natural(mesh), np.arange(mesh.n_rows))


def test_random_permutation_seeded(mesh):
    p1 = random_permutation(mesh, seed=4)
    p2 = random_permutation(mesh, seed=4)
    p3 = random_permutation(mesh, seed=5)
    np.testing.assert_array_equal(p1, p2)
    assert not np.array_equal(p1, p3)


def test_unknown_method_rejected(mesh):
    with pytest.raises(ValueError, match="unknown ordering"):
        apply_ordering(mesh, "metis")


def test_rcm_covers_multiple_components(blocks):
    perm = rcm(blocks)
    assert is_permutation(perm, blocks.n_rows)
