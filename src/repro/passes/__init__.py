"""Composable inspector pass pipeline (ROADMAP item 5).

Every inspector stage is a :class:`Pass` with a declared
:class:`Contract` — the typed artifacts it consumes and produces, and the
pipeline invariants it requires, establishes, preserves, or invalidates.
A scheduler is a :class:`PassGroup`: an ordered pass list plus the
driver-supplied inputs and assumptions.  ``PASS_GROUPS`` registers one
group per scheduler; :func:`repro.statan.verify_pipeline` proves a group
well-formed before anything runs, and :func:`plan_repair` derives the
incremental-repair boundary from the contracts alone.
"""

from .base import MissingArtifactError, Pass, PassContext, PassGroup
from .contracts import ARTIFACTS, INVARIANTS, Contract, ContractError
from .executor import PipelineExecutionError, run_group
from .hdagg import build_hdagg_group
from .incremental import RepairPlan, plan_repair
from .registry import (
    PASS_GROUPS,
    get_pass_group,
    register_pass_group,
    run_scheduler_group,
)

__all__ = [
    "ARTIFACTS",
    "INVARIANTS",
    "Contract",
    "ContractError",
    "MissingArtifactError",
    "Pass",
    "PassContext",
    "PassGroup",
    "PipelineExecutionError",
    "run_group",
    "build_hdagg_group",
    "RepairPlan",
    "plan_repair",
    "PASS_GROUPS",
    "get_pass_group",
    "register_pass_group",
    "run_scheduler_group",
]
