"""Per-iteration memory footprints derived directly from matrix structure.

The dependence DAG every inspector consumes is itself *derived* — from the
sparsity pattern, by :meth:`SparseKernel.dag`.  If that derivation is wrong
(a dropped edge class, an off-by-one in the lower-triangle scan), every
edge-level check downstream certifies garbage.  This module rebuilds, from
the CSR arrays alone and independently of ``kernel.dag``, the exact sets of
mutable memory locations each kernel iteration reads and writes:

========  =========================  ==================================
kernel    location space             iteration ``i``
========  =========================  ==================================
sptrsv    solution-vector slots      writes ``x[i]``; reads ``x[j]`` for
          (``n`` locations)          every stored strictly-lower ``L[i,j]``
spic0     value slots of the lower   writes row ``i`` of ``L``; reads all
          factor (``nnz`` slots)     of factor row ``j`` for every stored
                                     strictly-lower ``A[i,j]`` (the
                                     prefix dot plus the diagonal pivot)
spilu0    value slots of the full    writes row ``i``; reads the diagonal
          pattern (``nnz`` slots)    and strict-upper slots of row ``k``
                                     for every stored ``A[i,k]``, k < i
========  =========================  ==================================

Static read-only state (the numeric values of ``b``, the input matrix
entries for SpTRSV) is excluded: read/read sharing can never race.

:func:`implied_dag` recovers the loop-carried dependence DAG from the
footprints alone, which gives the cross-check that catches a buggy
``kernel.dag`` construction: the race detector (:mod:`repro.analysis.races`)
uses footprints, the schedule was built from ``kernel.dag`` — any
disagreement between the two surfaces as a same-wavefront conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE
from ..sparse.triangular import lower_triangle

__all__ = [
    "Footprint",
    "sptrsv_footprint",
    "spic0_footprint",
    "spilu0_footprint",
    "kernel_footprint",
    "implied_dag",
    "FOOTPRINTS",
]


@dataclass(frozen=True)
class Footprint:
    """Ragged-CSR read/write sets over an abstract location space.

    Iteration ``i`` reads ``read_loc[read_ptr[i]:read_ptr[i+1]]`` and writes
    ``write_loc[write_ptr[i]:write_ptr[i+1]]``.  Location ids are dense in
    ``[0, n_locations)``; what a location *is* (a vector slot, a stored
    factor entry) is kernel-specific and irrelevant to the race analysis.
    """

    n: int
    n_locations: int
    read_ptr: np.ndarray
    read_loc: np.ndarray
    write_ptr: np.ndarray
    write_loc: np.ndarray

    def __post_init__(self) -> None:
        for ptr, loc in ((self.read_ptr, self.read_loc), (self.write_ptr, self.write_loc)):
            if ptr.shape[0] != self.n + 1 or int(ptr[-1]) != loc.shape[0]:
                raise ValueError("footprint CSR arrays are inconsistent")
        if self.read_loc.size and (
            int(self.read_loc.min()) < 0 or int(self.read_loc.max()) >= self.n_locations
        ):
            raise ValueError("read location out of range")
        if self.write_loc.size and (
            int(self.write_loc.min()) < 0 or int(self.write_loc.max()) >= self.n_locations
        ):
            raise ValueError("write location out of range")

    @property
    def n_accesses(self) -> int:
        """Total recorded reads + writes."""
        return int(self.read_loc.shape[0] + self.write_loc.shape[0])

    def reads(self, i: int) -> np.ndarray:
        return self.read_loc[self.read_ptr[i] : self.read_ptr[i + 1]]

    def writes(self, i: int) -> np.ndarray:
        return self.write_loc[self.write_ptr[i] : self.write_ptr[i + 1]]


def _ragged(counts: np.ndarray) -> tuple:
    """CSR pointer plus (repeat-starts, within-offset) expansion helpers."""
    ptr = np.zeros(counts.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=ptr[1:])
    total = int(ptr[-1])
    if total == 0:
        return ptr, np.empty(0, dtype=INDEX_DTYPE)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
    return ptr, within


def _strict_lower_pairs(a: CSRMatrix) -> tuple:
    """(row, col) arrays of the stored strictly-lower entries of ``a``."""
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_nnz())
    strict = a.indices < row_of
    return row_of[strict], a.indices[strict]


def sptrsv_footprint(low: CSRMatrix) -> Footprint:
    """Forward-substitution footprint over the ``x``-vector slots.

    ``low`` is the lower-triangular operand (the same matrix handed to
    :meth:`SpTRSV.dag`).  O(nnz).
    """
    n = low.n_rows
    rows, cols = _strict_lower_pairs(low)
    read_counts = np.bincount(rows, minlength=n).astype(INDEX_DTYPE)
    read_ptr, _ = _ragged(read_counts)
    # strict-lower entries are already grouped by row in CSR order
    read_loc = cols.astype(INDEX_DTYPE, copy=True)
    write_ptr = np.arange(n + 1, dtype=INDEX_DTYPE)
    write_loc = np.arange(n, dtype=INDEX_DTYPE)
    return Footprint(
        n=n,
        n_locations=n,
        read_ptr=read_ptr,
        read_loc=read_loc,
        write_ptr=write_ptr,
        write_loc=write_loc,
    )


def _factor_row_footprint(
    low: CSRMatrix, dep_starts: np.ndarray, dep_counts: np.ndarray, dep_rows_of: np.ndarray
) -> Footprint:
    """Shared shape for the factorisation kernels.

    Iteration ``i`` writes every stored slot of its own row and reads the
    slot range ``[dep_starts[d], dep_starts[d] + dep_counts[d])`` for each
    dependence ``d`` whose consuming row is ``dep_rows_of[d]``.
    """
    n = low.n_rows
    nnz = low.nnz
    # writes: own row slots
    write_counts = low.row_nnz().astype(INDEX_DTYPE)
    write_ptr, w_within = _ragged(write_counts)
    write_loc = np.repeat(low.indptr[:-1].astype(INDEX_DTYPE), write_counts) + w_within
    # reads: dependence-row slot ranges, grouped by consuming row
    read_counts = np.zeros(n, dtype=INDEX_DTYPE)
    np.add.at(read_counts, dep_rows_of, dep_counts)
    read_ptr, _ = _ragged(read_counts)
    _, r_within = _ragged(dep_counts)
    read_loc = np.repeat(dep_starts, dep_counts) + r_within
    return Footprint(
        n=n,
        n_locations=nnz,
        read_ptr=read_ptr,
        read_loc=read_loc.astype(INDEX_DTYPE),
        write_ptr=write_ptr,
        write_loc=write_loc.astype(INDEX_DTYPE),
    )


def spic0_footprint(a: CSRMatrix) -> Footprint:
    """IC(0) footprint over the value slots of the lower factor storage.

    Factoring row ``i`` reads, for every stored strictly-lower ``A[i, j]``,
    the whole factor row ``j`` (sparse prefix dot over columns ``< j`` plus
    the diagonal pivot ``L[j, j]``), and overwrites row ``i``'s slots.
    Accepts the full SPD matrix (the kernel's own operand convention) or an
    already-lower-triangular matrix.  O(nnz).
    """
    low = lower_triangle(a)
    rows, cols = _strict_lower_pairs(low)
    dep_starts = low.indptr[cols].astype(INDEX_DTYPE)
    dep_counts = (low.indptr[cols + 1] - low.indptr[cols]).astype(INDEX_DTYPE)
    return _factor_row_footprint(low, dep_starts, dep_counts, rows)


def spilu0_footprint(a: CSRMatrix) -> Footprint:
    """ILU(0) footprint over the value slots of the full in-place pattern.

    Eliminating row ``i`` reads, for every stored ``A[i, k]`` with
    ``k < i``, the diagonal and strict-upper slots of row ``k``, and
    writes row ``i``'s slots.  O(nnz log max-row) for the diagonal search.
    """
    n = a.n_rows
    row_of = np.repeat(np.arange(n, dtype=INDEX_DTYPE), a.row_nnz())
    diag_flat = np.nonzero(a.indices == row_of)[0]
    if diag_flat.shape[0] != n:
        raise ValueError("spilu0 footprint requires a full diagonal")
    rows, cols = _strict_lower_pairs(a)
    dep_starts = diag_flat[cols].astype(INDEX_DTYPE)
    dep_counts = (a.indptr[cols + 1] - dep_starts).astype(INDEX_DTYPE)
    return _factor_row_footprint(a, dep_starts, dep_counts, rows)


#: kernel name -> footprint builder over the kernel's operand matrix.
FOOTPRINTS: Dict[str, Callable[[CSRMatrix], Footprint]] = {
    "sptrsv": sptrsv_footprint,
    "spic0": spic0_footprint,
    "spilu0": spilu0_footprint,
}


def kernel_footprint(kernel_name: str, operand: CSRMatrix) -> Footprint:
    """Footprint for a registered kernel; ``KeyError`` lists the choices."""
    try:
        builder = FOOTPRINTS[kernel_name]
    except KeyError:
        raise KeyError(
            f"no footprint model for kernel {kernel_name!r}; available: {sorted(FOOTPRINTS)}"
        ) from None
    return builder(operand)


def implied_dag(fp: Footprint) -> DAG:
    """The dependence DAG the footprints imply under iteration-id order.

    For the id-topological kernels here (iteration order is a topological
    order), iteration ``u < v`` must be ordered iff their footprints
    conflict: one writes a location the other touches.  Useful as an
    independent cross-check of ``kernel.dag`` — the two must agree up to
    transitive edges.
    """
    # accesses as (location, iteration, is_write)
    loc = np.concatenate([fp.read_loc, fp.write_loc])
    it = np.concatenate(
        [
            np.repeat(np.arange(fp.n, dtype=INDEX_DTYPE), np.diff(fp.read_ptr)),
            np.repeat(np.arange(fp.n, dtype=INDEX_DTYPE), np.diff(fp.write_ptr)),
        ]
    )
    isw = np.concatenate(
        [np.zeros(fp.read_loc.shape[0], dtype=bool), np.ones(fp.write_loc.shape[0], dtype=bool)]
    )
    order = np.lexsort((it, loc))
    loc, it, isw = loc[order], it[order], isw[order]
    src_parts = []
    dst_parts = []
    # within one location, accesses sorted by iteration id: every pair
    # (write, later access) and (access, later write) is an edge; it is
    # enough to link consecutive accesses through the most recent writer
    # and each reader to the next writer, transitivity covers the rest.
    boundaries = np.nonzero(np.diff(loc))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [loc.shape[0]]])
    for s, e in zip(starts.tolist(), ends.tolist()):
        last_writer = -1
        pending_readers: list = []
        for k in range(s, e):
            i = int(it[k])
            if isw[k]:
                if last_writer >= 0 and last_writer != i:
                    src_parts.append(last_writer)
                    dst_parts.append(i)
                for r in pending_readers:
                    if r != i:
                        src_parts.append(r)
                        dst_parts.append(i)
                pending_readers = []
                last_writer = i
            else:
                if last_writer >= 0 and last_writer != i:
                    src_parts.append(last_writer)
                    dst_parts.append(i)
                pending_readers.append(i)
    return DAG.from_edges(fp.n, src_parts, dst_parts)
