"""Step 1 of HDagg: aggregating densely connected vertices.

Algorithm 1, Lines 1-20.  After removing transitive edges (two-hop
approximation), densely connected regions of the DAG become subtrees.  A
modified BFS grows each subtree from a *sink* vertex: a vertex ``v``'s
parents join ``v``'s group when ``{v} ∪ parents(v)`` forms a tree — i.e.
every parent has exactly one outgoing edge (necessarily into the group).
Parents that fail the test are seeded as sinks of their own future groups.

**Group-size cap.**  On inputs whose reduced DAG *is* a tree (chordal
patterns — e.g. the filled factor of a complete Cholesky — reduce exactly
to the elimination tree), the literal Lines 2-19 would absorb the entire
tree into a single group and serialise the whole kernel.  The paper never
meets this case (its kernels run on no-fill patterns), but a production
aggregator must: ``max_group_cost`` stops a group from growing beyond a
fraction of one core's fair share, so aggregation buys locality without
destroying the parallelism step 2 needs.  Pass ``None`` to reproduce the
uncapped paper listing.

The resulting :class:`~repro.graph.coarsen.Grouping` guarantees:

* groups are disjoint and cover every vertex;
* within a group, only the seed (group sink) may have out-edges leaving the
  group — every other member's single out-edge stays inside;
* consequently the coarsened DAG ``G''`` is acyclic (any quotient cycle
  would need an edge leaving a non-sink member).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.coarsen import Grouping, grouping_from_groups
from ..graph.dag import DAG
from ..graph.transitive_reduction import transitive_reduction_two_hop
from ..sparse.csr import INDEX_DTYPE

__all__ = ["aggregate_densely_connected", "subtree_grouping", "subtree_grouping_reference"]


def _grouping_from_root_labels(n: int, roots: np.ndarray) -> Grouping:
    """Build a :class:`Grouping` from per-vertex root labels.

    Groups are renumbered by smallest member id (not by root id — a group's
    sink can carry a larger id than another group's smallest member), which
    reproduces ``trees.sort(key=min)`` of the reference listing.
    """
    order = np.argsort(roots, kind="stable")  # ids ascending within a root
    sorted_roots = roots[order]
    boundaries = np.flatnonzero(sorted_roots[1:] != sorted_roots[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    min_members = order[starts]  # first id per segment == smallest member
    seg_rank = np.empty(min_members.shape[0], dtype=INDEX_DTYPE)
    seg_rank[np.argsort(min_members)] = np.arange(min_members.shape[0], dtype=INDEX_DTYPE)
    seg_of_sorted = np.zeros(n, dtype=INDEX_DTYPE)
    seg_of_sorted[boundaries] = 1
    np.cumsum(seg_of_sorted, out=seg_of_sorted)
    labels = np.empty(n, dtype=INDEX_DTYPE)
    labels[order] = seg_rank[seg_of_sorted]
    # member arrays are built lazily by Grouping from the labels; the hot
    # path (coarsen + group costs + expansion) never touches them
    return Grouping(labels=labels, n_groups=min_members.shape[0])


def subtree_grouping(
    g_reduced: DAG,
    cost: np.ndarray | None = None,
    max_group_cost: float | None = None,
) -> Grouping:
    """Grow subtree groups on an (already reduced) DAG — Lines 2-19.

    With ``cost`` and ``max_group_cost`` set, a group stops absorbing
    parents once its accumulated cost would exceed the cap (the parents are
    seeded as new groups instead); see the module docstring.

    Fast path (bit-identical to :func:`subtree_grouping_reference`): the
    BFS's merge test is *structural*.  A parent with out-degree 1 can only
    ever be visited through its single child, so the "all parents
    unvisited" clause is implied by "all parents have out-degree 1" — group
    membership reduces to following ``v -> child(v)`` pointers wherever the
    child's merge test passes, evaluated for all vertices at once with
    pointer jumping.  Only groups whose *total* cost exceeds the cap can
    deviate (the cap check depends on BFS order), so the sequential worklist
    replay runs on those few trees alone.
    """
    n = g_reduced.n
    if n == 0:
        return grouping_from_groups(0, [])
    capped = cost is not None and max_group_cost is not None

    out_deg = g_reduced.out_degree()
    in_ptr, in_idx = g_reduced.in_ptr, g_reduced.in_idx
    in_deg = np.diff(in_ptr)
    # merge test per vertex: has parents, and every parent has out-degree 1
    bad_csum = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(out_deg[in_idx] != 1))
    )
    mergeable = (in_deg > 0) & (bad_csum[in_ptr[1:]] == bad_csum[in_ptr[:-1]])

    # follow pointer: a chain vertex joins its single child's group when the
    # child's merge test passes; everyone else roots its own group
    nxt = np.arange(n, dtype=INDEX_DTYPE)
    chain = np.flatnonzero(out_deg == 1)
    child = g_reduced.indices[g_reduced.indptr[chain]]
    follow = mergeable[child]
    nxt[chain[follow]] = child[follow]

    roots = nxt.copy()
    limit = max(1, int(n).bit_length()) + 2  # doubling halves depth per round
    for _ in range(limit):
        hop = roots[roots]
        if np.array_equal(hop, roots):
            break
        roots = hop
    if not bool(np.all(nxt[roots] == roots)):
        # Follow pointers only cycle when the input graph does.
        raise ValueError("subtree grouping did not cover the graph; input may be cyclic")

    if capped:
        cost64 = np.asarray(cost, dtype=np.float64)
        tree_cost = np.bincount(roots, weights=cost64, minlength=n)
        oversized = np.flatnonzero(tree_cost > max_group_cost)
        if oversized.shape[0]:
            # Sequential cap replay, restricted to the oversized trees: the
            # exact FIFO walk of the reference (parents appended in
            # ascending id order), with each cap failure re-seeding the
            # parents as fresh roots with their own budget.
            pc_csum = np.concatenate(
                (np.zeros(1, dtype=np.float64), np.cumsum(cost64[in_idx]))
            )
            parent_cost = pc_csum[in_ptr[1:]] - pc_csum[in_ptr[:-1]]
            roots = roots.copy()
            mergeable_list = mergeable.tolist()
            in_ptr_list = in_ptr.tolist()
            in_idx_list = in_idx.tolist()
            cost_list = cost64.tolist()
            parent_cost_list = parent_cost.tolist()
            cap = float(max_group_cost)
            for r in oversized.tolist():
                seeds = [r]
                si = 0
                while si < len(seeds):
                    root = seeds[si]
                    si += 1
                    budget = cost_list[root]
                    members = [root]
                    j = 0
                    while j < len(members):
                        v = members[j]
                        j += 1
                        if not mergeable_list[v]:
                            continue
                        added = parent_cost_list[v]
                        parents = in_idx_list[in_ptr_list[v] : in_ptr_list[v + 1]]
                        if budget + added <= cap:
                            budget += added
                            members.extend(parents)
                        else:
                            seeds.extend(parents)
                    roots[members] = root

    return _grouping_from_root_labels(n, roots)


def subtree_grouping_reference(
    g_reduced: DAG,
    cost: np.ndarray | None = None,
    max_group_cost: float | None = None,
) -> Grouping:
    """Literal Lines 2-19 worklist BFS — the retained oracle for the fast path."""
    n = g_reduced.n
    out_deg = g_reduced.out_degree()
    visited = np.zeros(n, dtype=bool)
    capped = cost is not None and max_group_cost is not None

    trees: List[List[int]] = []
    tree_costs: List[float] = []
    sinks = g_reduced.sinks()
    visited[sinks] = True
    for s in sinks:
        trees.append([int(s)])
        tree_costs.append(float(cost[s]) if capped else 0.0)

    t = 0
    while t < len(trees):  # T grows while we iterate (Line 3)
        h = trees[t]
        j = 0
        while j < len(h):  # H grows while we iterate (Line 5)
            v = h[j]
            parents = g_reduced.parents(v)
            if parents.shape[0]:
                unvisited = parents[~visited[parents]]
                # {v} ∪ A is a tree iff every parent has out-degree 1 (its
                # single edge is the one into v) and none is claimed by
                # another group already.
                mergeable = (
                    unvisited.shape[0] == parents.shape[0]
                    and np.all(out_deg[parents] == 1)
                )
                if mergeable and capped:
                    added = float(cost[parents].sum())
                    if tree_costs[t] + added > max_group_cost:
                        mergeable = False
                    else:
                        tree_costs[t] += added
                if mergeable:
                    visited[parents] = True
                    h.extend(int(x) for x in parents)
                else:
                    for c in parents:
                        ci = int(c)
                        if not visited[ci]:
                            visited[ci] = True
                            trees.append([ci])  # new sink seed (Line 13)
                            tree_costs.append(float(cost[ci]) if capped else 0.0)
            j += 1
        t += 1

    if not bool(visited.all()):
        # Unreached vertices can only occur on graphs with no sink below
        # them, impossible on a finite DAG — guard against misuse with a
        # clear error instead of a silent partial grouping.
        raise ValueError("subtree grouping did not cover the graph; input may be cyclic")
    # Number groups by smallest member id, not BFS discovery order: step 2
    # orders components and bins "smallest ID first" (Section IV-C), which
    # only yields spatial locality if coarse ids track original ids.
    trees.sort(key=min)
    return grouping_from_groups(n, trees)


def aggregate_densely_connected(
    g: DAG,
    cost: np.ndarray | None = None,
    max_group_cost: float | None = None,
) -> tuple[DAG, Grouping]:
    """Full step 1: transitive reduction + subtree grouping (Lines 1-20).

    Returns ``(g_reduced, grouping)``; the caller builds the coarsened DAG
    ``G''`` from them via :func:`repro.graph.coarsen.coarsen_dag`.
    """
    g_reduced = transitive_reduction_two_hop(g)
    return g_reduced, subtree_grouping(g_reduced, cost, max_group_cost)
