"""CSR input hardening: repair or reject malformed matrices, with a report.

:class:`~repro.sparse.csr.CSRMatrix` *enforces* its invariants — which
means malformed input (a truncated download, a buggy exporter, an injected
corruption) surfaces as a bare ``ValueError`` deep in a numpy check.  For
a production ingest path that is the wrong failure shape twice over: the
error names no defect class, and classes that are mechanically repairable
(unsorted columns, duplicates, droppable junk entries) kill the run
anyway.

:func:`sanitize_csr` is the structured front door.  It classifies every
defect into a :class:`SanitizeIssue` and then either

* **repairs** the repairable classes (``repair=True``): sorts columns,
  merges duplicates by summation, drops out-of-range columns and
  non-finite values, inserts missing unit diagonals when asked; or
* **rejects** with a :class:`CSRSanitizeError` carrying the full
  :class:`SanitizeReport` — one exception type, machine-readable issues,
  no raw numpy tracebacks.

Structural defects (wrong ``indptr`` length, regression, array-length
mismatch) are never repairable: once the row pointer lies, entry ownership
is unrecoverable.

Well-formed input passes through untouched — same object, empty report —
so wiring the sanitizer into hot ingest paths costs one vectorized
validation sweep and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "SanitizeIssue",
    "SanitizeReport",
    "CSRSanitizeError",
    "sanitize_csr",
]

@dataclass(frozen=True)
class SanitizeIssue:
    """One defect class found in the input."""

    code: str
    count: int
    detail: str
    repaired: bool = False

    def describe(self) -> str:
        """``code x count: detail [repaired|rejected]``."""
        verdict = "repaired" if self.repaired else "rejected"
        return f"{self.code} x{self.count}: {self.detail} [{verdict}]"


@dataclass
class SanitizeReport:
    """Everything :func:`sanitize_csr` found (and did) for one matrix."""

    name: str = ""
    n_rows: int = 0
    n_cols: int = 0
    issues: List[SanitizeIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the input was well-formed as given."""
        return not self.issues

    @property
    def repaired(self) -> bool:
        """True when at least one defect was repaired."""
        return any(i.repaired for i in self.issues)

    def describe(self) -> str:
        """Multi-line account for logs and error messages."""
        head = f"sanitize {self.name or '<matrix>'} ({self.n_rows}x{self.n_cols})"
        if self.ok:
            return f"{head}: clean"
        return "\n".join([f"{head}: {len(self.issues)} issue(s)"] + [f"  {i.describe()}" for i in self.issues])

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "ok": self.ok,
            "repaired": self.repaired,
            "issues": [i.__dict__.copy() for i in self.issues],
        }


class CSRSanitizeError(ValueError):
    """Malformed CSR input that was rejected; carries the full report."""

    def __init__(self, report: SanitizeReport) -> None:
        super().__init__(report.describe())
        self.report = report


def _reject(report: SanitizeReport) -> "CSRSanitizeError":
    return CSRSanitizeError(report)


ArraysLike = Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]


def _coerce_input(
    matrix: Union[CSRMatrix, ArraysLike, None],
    n_rows: Optional[int],
    n_cols: Optional[int],
    indptr,
    indices,
    data,
) -> Tuple[Optional[CSRMatrix], int, int, np.ndarray, np.ndarray, np.ndarray]:
    if matrix is not None:
        if isinstance(matrix, CSRMatrix):
            return (
                matrix,
                matrix.n_rows,
                matrix.n_cols,
                matrix.indptr,
                matrix.indices,
                matrix.data,
            )
        if isinstance(matrix, tuple) and len(matrix) == 5:
            n_rows, n_cols, indptr, indices, data = matrix
            return None, int(n_rows), int(n_cols), indptr, indices, data
        raise TypeError("matrix must be a CSRMatrix or a (n_rows, n_cols, indptr, indices, data) tuple")
    if n_rows is None or n_cols is None or indptr is None or indices is None or data is None:
        raise TypeError("pass a matrix or all of n_rows/n_cols/indptr/indices/data")
    return None, int(n_rows), int(n_cols), indptr, indices, data


def sanitize_csr(
    matrix: Union[CSRMatrix, ArraysLike, None] = None,
    *,
    n_rows: Optional[int] = None,
    n_cols: Optional[int] = None,
    indptr=None,
    indices=None,
    data=None,
    repair: bool = True,
    ensure_diagonal: bool = False,
    name: str = "",
) -> Tuple[CSRMatrix, SanitizeReport]:
    """Validate, and optionally repair, CSR input.

    Accepts a :class:`CSRMatrix`, a raw ``(n_rows, n_cols, indptr,
    indices, data)`` tuple (the shape fault injection and file readers
    produce), or the five pieces as keywords.  Returns ``(matrix,
    report)``; a well-formed :class:`CSRMatrix` input is returned as the
    same object.

    With ``repair=False`` any defect rejects; with ``repair=True`` the
    repairable classes are fixed (recorded in the report) and only
    structural corruption rejects.  ``ensure_diagonal=True`` additionally
    demands a fully stored main diagonal, inserting unit entries under
    repair — the triangular kernels require the diagonal to exist.

    Raises :class:`CSRSanitizeError` on rejection; never raises raw numpy
    errors for malformed content.
    """
    original, n_rows_, n_cols_, indptr_a, indices_a, data_a = _coerce_input(
        matrix, n_rows, n_cols, indptr, indices, data
    )
    report = SanitizeReport(name=name, n_rows=n_rows_, n_cols=n_cols_)

    def fatal(code: str, detail: str, count: int = 1) -> "CSRSanitizeError":
        report.issues.append(SanitizeIssue(code, count, detail, repaired=False))
        return _reject(report)

    try:
        indptr_a = np.ascontiguousarray(indptr_a, dtype=INDEX_DTYPE)
        indices_a = np.ascontiguousarray(indices_a, dtype=INDEX_DTYPE)
        data_a = np.ascontiguousarray(data_a, dtype=VALUE_DTYPE)
    except (TypeError, ValueError) as exc:
        raise fatal("bad_arrays", f"arrays not coercible to CSR dtypes: {exc}") from exc

    # ---- structural checks: never repairable -------------------------
    if n_rows_ < 0 or n_cols_ < 0:
        raise fatal("bad_shape", f"negative dimensions ({n_rows_}, {n_cols_})")
    if indptr_a.ndim != 1 or indices_a.ndim != 1 or data_a.ndim != 1:
        raise fatal("bad_arrays", "indptr/indices/data must be one-dimensional")
    if indptr_a.shape[0] != n_rows_ + 1:
        raise fatal(
            "indptr_length", f"indptr has length {indptr_a.shape[0]}, expected {n_rows_ + 1}"
        )
    if n_rows_ >= 0 and indptr_a.shape[0] and indptr_a[0] != 0:
        raise fatal("indptr_start", f"indptr[0] is {int(indptr_a[0])}, expected 0")
    regressions = int(np.count_nonzero(np.diff(indptr_a) < 0))
    if regressions:
        raise fatal(
            "indptr_regression",
            f"indptr decreases at {regressions} position(s) — row ownership is unrecoverable",
            count=regressions,
        )
    nnz = int(indptr_a[-1]) if indptr_a.shape[0] else 0
    if indices_a.shape[0] != nnz or data_a.shape[0] != nnz:
        raise fatal(
            "length_mismatch",
            f"indices/data lengths ({indices_a.shape[0]}, {data_a.shape[0]}) "
            f"do not match indptr[-1] ({nnz})",
        )

    # ---- entry-level checks: repairable ------------------------------
    def issue(code: str, count: int, detail: str) -> None:
        report.issues.append(SanitizeIssue(code, count, detail, repaired=repair))

    row_of = np.repeat(np.arange(n_rows_, dtype=INDEX_DTYPE), np.diff(indptr_a))
    cols = indices_a
    vals = data_a
    dirty = False

    bad_range = (cols < 0) | (cols >= n_cols_)
    n_bad_range = int(np.count_nonzero(bad_range))
    if n_bad_range:
        issue("col_out_of_range", n_bad_range, f"column indices outside [0, {n_cols_})")
    bad_finite = ~np.isfinite(vals)
    n_bad_finite = int(np.count_nonzero(bad_finite))
    if n_bad_finite:
        issue("nonfinite_data", n_bad_finite, "NaN/Inf stored values")
    drop = bad_range | bad_finite
    if drop.any():
        keep = ~drop
        row_of, cols, vals = row_of[keep], cols[keep], vals[keep]
        dirty = True

    # per-row ordering (column must strictly increase inside a row)
    if cols.shape[0] > 1:
        same_row = np.diff(row_of) == 0
        n_unsorted = int(np.count_nonzero((np.diff(cols) < 0) & same_row))
        if n_unsorted:
            issue("col_unsorted", n_unsorted, "columns not sorted within rows")
            order = np.lexsort((cols, row_of))
            row_of, cols, vals = row_of[order], cols[order], vals[order]
            dirty = True
        dup = (np.diff(cols) == 0) & (np.diff(row_of) == 0)
        n_dup = int(np.count_nonzero(dup))
        if n_dup:
            issue("col_duplicate", n_dup, "duplicate (row, col) entries (summed under repair)")
            first = np.concatenate(([True], ~dup))
            group = np.cumsum(first) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=VALUE_DTYPE)
            np.add.at(summed, group, vals)
            row_of, cols, vals = row_of[first], cols[first], summed
            dirty = True

    if ensure_diagonal and n_rows_ == n_cols_ and n_rows_ > 0:
        present = np.zeros(n_rows_, dtype=bool)
        present[row_of[cols == row_of]] = True
        missing = np.nonzero(~present)[0]
        if missing.size:
            issue(
                "missing_diagonal",
                int(missing.size),
                "rows without a stored (i, i) entry (unit entries inserted under repair)",
            )
            row_of = np.concatenate([row_of, missing.astype(INDEX_DTYPE)])
            cols = np.concatenate([cols, missing.astype(INDEX_DTYPE)])
            vals = np.concatenate([vals, np.ones(missing.size, dtype=VALUE_DTYPE)])
            order = np.lexsort((cols, row_of))
            row_of, cols, vals = row_of[order], cols[order], vals[order]
            dirty = True

    if report.issues and not repair:
        # mark nothing as repaired: the caller asked for reject-only
        report.issues = [
            SanitizeIssue(i.code, i.count, i.detail, repaired=False) for i in report.issues
        ]
        raise _reject(report)

    if not dirty:
        if original is not None:
            return original, report
        return CSRMatrix(n_rows_, n_cols_, indptr_a, indices_a, data_a, check=False), report

    new_indptr = np.zeros(n_rows_ + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(row_of, minlength=n_rows_), out=new_indptr[1:])
    return CSRMatrix(n_rows_, n_cols_, new_indptr, cols, vals, check=False), report
