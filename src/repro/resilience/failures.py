"""Structured failure rows for fault-isolated suite runs.

When :meth:`repro.suite.harness.Harness.run_suite` runs with failure
isolation, a matrix that dies — malformed input, inspector bug, crashed
pool worker — must degrade to *one structured row* rather than killing the
whole grid.  :class:`FailureRecord` is that row: enough context to
reproduce (matrix, stage, error type/message, retry count) and a stable
dict form for the JSONL journal and ``--json`` dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = ["FailureRecord"]


@dataclass
class FailureRecord:
    """One matrix's failure in a fault-isolated suite run.

    ``stage`` names where it died: ``"prepare"`` (build/sanitize),
    ``"run"`` (inspection/simulation in-process), or ``"worker"`` (a fork
    pool worker crashed or returned an error).  ``attempts`` counts how
    many executions were tried before giving up (retries included).
    """

    matrix: str
    family: str
    stage: str
    error_type: str
    message: str
    attempts: int = 1
    site: Optional[str] = field(default=None)

    def describe(self) -> str:
        """One-line human account for progress logs and stderr summaries."""
        where = f" [site={self.site}]" if self.site else ""
        tries = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"{self.matrix} ({self.stage}{where}): {self.error_type}: {self.message}{tries}"

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, blob: dict) -> "FailureRecord":
        """Inverse of :meth:`as_dict` (journal reload)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in blob.items() if k in names})
