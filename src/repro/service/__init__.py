"""Fault-tolerant serving front door for schedules (scheduling-as-a-service).

The serving stack, bottom-up:

* :class:`~repro.service.broker.ScheduleBroker` — synchronous core:
  L1 cache → persistent store → fresh inspection, with single-flight
  coalescing of concurrent requests for one key, per-request deadlines
  wired into the ``hdagg→wavefront→serial`` degradation chain, retry
  with backoff on transient store/worker failures, and bounded-queue
  admission control that sheds load with structured rejections;
* :class:`~repro.service.frontdoor.FrontDoor` — asyncio gateway
  dispatching onto a bounded thread pool, shedding before queueing;
* :mod:`repro.service.replay` — Zipf/Poisson traffic replay reporting
  p50/p99 latency and hit rate into the perf-lab trajectory.

``hdagg-bench service replay|audit`` drives both from the CLI.
"""

from .broker import (
    AdmissionRejected,
    BrokerStats,
    DeadlineExceeded,
    ScheduleBroker,
    ServeRequest,
    ServeResult,
    ServiceRejected,
)
from .frontdoor import FrontDoor
from .replay import ReplayConfig, ReplayReport, record_replay, run_replay

__all__ = [
    "AdmissionRejected",
    "BrokerStats",
    "DeadlineExceeded",
    "ScheduleBroker",
    "ServeRequest",
    "ServeResult",
    "ServiceRejected",
    "FrontDoor",
    "ReplayConfig",
    "ReplayReport",
    "record_replay",
    "run_replay",
]
