"""DAG-structure metrics: average parallelism and per-wavefront volume.

Section V uses two structural indicators to bucket the dataset (Table III):

* **average parallelism** — vertices divided by wavefront count ("an
  indicator for load balance");
* **average nnz per wavefront** — non-zeros touched per level ("a measure
  for potential locality improvement": more data per level means more reuse
  available to whoever groups dependent iterations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.dag import DAG
from ..graph.wavefronts import compute_wavefronts
from ..sparse.csr import CSRMatrix

__all__ = [
    "average_parallelism",
    "avg_nnz_per_wavefront",
    "DagShape",
    "dag_shape",
    "weighted_critical_path",
    "span_speedup_bound",
]


def average_parallelism(g: DAG) -> float:
    """``n_vertices / n_wavefronts`` of the dependence DAG."""
    if g.n == 0:
        return 0.0
    waves = compute_wavefronts(g)
    return g.n / waves.n_levels


def avg_nnz_per_wavefront(a: CSRMatrix, g: DAG) -> float:
    """Matrix non-zeros divided by the DAG's wavefront count."""
    if g.n == 0:
        return 0.0
    waves = compute_wavefronts(g)
    return a.nnz / waves.n_levels


@dataclass(frozen=True)
class DagShape:
    """Structural summary of one kernel DAG (used for Table III bucketing)."""

    n_vertices: int
    n_edges: int
    n_wavefronts: int
    critical_path: int
    average_parallelism: float
    max_wavefront: int


def dag_shape(g: DAG) -> DagShape:
    """Compute a :class:`DagShape` in one wavefront pass."""
    if g.n == 0:
        return DagShape(0, 0, 0, 0, 0.0, 0)
    waves = compute_wavefronts(g)
    sizes = waves.sizes()
    return DagShape(
        n_vertices=g.n,
        n_edges=g.n_edges,
        n_wavefronts=waves.n_levels,
        critical_path=waves.n_levels,
        average_parallelism=g.n / waves.n_levels,
        max_wavefront=int(sizes.max()),
    )


def weighted_critical_path(g: DAG, weights) -> float:
    """Longest weighted path through the DAG (the *span* of the computation).

    ``weights[v]`` is the cost of vertex ``v``; the span lower-bounds every
    execution's makespan regardless of core count (the span law), and
    ``total / span`` upper-bounds any speedup.  Computed with one
    vectorized Kahn sweep.
    """
    import numpy as np

    from ..graph.dag import gather_slices
    from ..graph.topological import CycleError

    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape[0] != g.n:
        raise ValueError(f"weights has length {weights.shape[0]}, expected {g.n}")
    if g.n == 0:
        return 0.0
    indeg = g.in_degree().copy()
    finish = weights.copy()  # earliest possible finish of each vertex
    frontier = np.nonzero(indeg == 0)[0]
    seen = 0
    while frontier.size:
        seen += frontier.size
        children = gather_slices(g.indptr, g.indices, frontier)
        if children.size:
            # relax child finishes against each frontier parent
            src = np.repeat(frontier, np.diff(g.indptr)[frontier])
            cand = finish[src] + weights[children]
            np.maximum.at(finish, children, cand)
            dec = np.bincount(children, minlength=g.n)
            indeg -= dec
            frontier = np.nonzero((indeg == 0) & (dec > 0))[0]
        else:
            frontier = np.empty(0, dtype=np.int64)
    if seen != g.n:
        raise CycleError("graph has a cycle")
    return float(finish.max())


def span_speedup_bound(g: DAG, weights) -> float:
    """The span-law speedup ceiling: ``sum(weights) / critical path``."""
    import numpy as np

    span = weighted_critical_path(g, weights)
    total = float(np.asarray(weights, dtype=np.float64).sum())
    return total / span if span > 0 else float("inf")
