"""Tests for DAG edge-list and dot export."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.graph import (
    DAG,
    dag_from_matrix_lower,
    from_edge_list,
    read_edge_list,
    to_dot,
    to_edge_list,
    write_edge_list,
)


def test_edge_list_roundtrip(diamond_dag):
    assert from_edge_list(to_edge_list(diamond_dag)) == diamond_dag


def test_edge_list_roundtrip_real(mesh):
    g = dag_from_matrix_lower(mesh)
    assert from_edge_list(to_edge_list(g)) == g


def test_edge_list_empty_graph():
    g = DAG.empty(4)
    text = to_edge_list(g)
    assert text.splitlines()[0] == "4 0"
    assert from_edge_list(text) == g


def test_edge_list_comments_ignored():
    text = "# header comment\n3 1\n0 2\n"
    g = from_edge_list(text)
    assert g.has_edge(0, 2)


def test_edge_list_validation():
    with pytest.raises(ValueError, match="header"):
        from_edge_list("")
    with pytest.raises(ValueError, match="declared"):
        from_edge_list("3 2\n0 1\n")


def test_file_roundtrip(tmp_path, diamond_dag):
    path = tmp_path / "g.txt"
    write_edge_list(diamond_dag, path)
    assert read_edge_list(path) == diamond_dag


def test_dot_plain(diamond_dag):
    dot = to_dot(diamond_dag)
    assert dot.startswith("digraph dag {")
    assert "0 -> 1;" in dot
    assert dot.count("->") == diamond_dag.n_edges


def test_dot_with_schedule(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 4)
    dot = to_dot(g, s, name="mesh")
    assert "digraph mesh" in dot
    assert "rank=same" in dot
    assert "@" in dot  # core annotations
    assert dot.count("->") == g.n_edges


def test_dot_schedule_size_mismatch(diamond_dag, mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 2)
    with pytest.raises(ValueError, match="match"):
        to_dot(diamond_dag, s)
