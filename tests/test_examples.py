"""Smoke-run every example script as a subprocess.

Examples are the front door of the repository; these tests keep them
working against API changes.  Each run asserts exit code 0 plus one
load-bearing line of expected output (a correctness statement, not timing).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", [], "defect"),
    ("motivating_example.py", [], "HDagg uses"),
    ("iterative_solver.py", [], "PCG iterations"),
    ("scheduler_comparison.py", ["mesh2d-s", "sptrsv"], "algorithm"),
    ("direct_solver.py", [], "relative residual"),
    ("gauss_seidel_smoother.py", [], "threaded == sequential: True"),
    ("inspector_reuse.py", [], "scheduler choice"),
]


@pytest.mark.parametrize("script,args,expect", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, expect):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout, proc.stdout[-2000:]


def test_example_list_matches_directory():
    """Every example on disk is exercised here (no orphaned scripts)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    tested = {c[0] for c in CASES}
    assert on_disk == tested
