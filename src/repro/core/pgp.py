"""Potential Gain Proxy (PGP) — the paper's static load-balance metric.

Section IV-D, Equation 1::

    PGP = 1 - mean(B) / max(B)

where ``B = {B_1 .. B_p}`` are per-core workloads (``B_i`` = summed vertex
cost on core ``i``).  PGP is 0 for a perfectly balanced assignment and
approaches ``1 - 1/p`` when one core carries everything; it estimates the
fraction of runtime that perfect balancing would recover, and Figure 4 shows
it tracks the measured potential gain with R² ≈ 0.83.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .schedule import Schedule

__all__ = ["pgp", "pgp_worst_case", "accumulated_pgp", "DEFAULT_EPSILON"]

#: Default load-balance threshold epsilon (Listing 2's ``epsilon()``):
#: coarsened wavefronts whose PGP exceeds this are cut.  0.3 tolerates the
#: mild first-fit unevenness of packing a few hundred components into p
#: bins while still cutting genuinely imbalanced merges; the ablation
#: benchmark sweeps it (see benchmarks/bench_ablation.py).
DEFAULT_EPSILON = 0.3


def pgp(bin_loads: Sequence[float] | np.ndarray) -> float:
    """PGP of one set of per-core loads (Equation 1); 0 when all loads are 0.

    >>> pgp([5.0, 5.0])
    0.0
    >>> pgp([10.0, 0.0])   # the paper's p = 2 worked example
    0.5
    >>> pgp([])
    0.0
    """
    b = np.asarray(bin_loads, dtype=np.float64)
    if b.size == 0:
        return 0.0
    mx = float(b.max())
    if mx <= 0.0:
        return 0.0
    # clamp: floating-point summation can push mean/max a few ulp past 1
    return max(0.0, 1.0 - float(b.mean()) / mx)


def pgp_worst_case(p: int) -> float:
    """PGP when one of ``p`` cores carries all work: ``1 - 1/p``.

    >>> pgp_worst_case(4)
    0.75
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    return 1.0 - 1.0 / p


def accumulated_pgp(schedule: "Schedule", vertex_cost: np.ndarray) -> float:
    """Schedule-wide PGP (Algorithm 1, Lines 36-38).

    Accumulates loads across coarsened wavefronts: the executor runs levels
    sequentially, so the effective span is the sum over levels of each
    level's maximum load while the useful work is the sum of means::

        PGP(S) = 1 - (sum_k mean(B^k)) / (sum_k max(B^k))

    This is the "accumulation of imbalance cost across all coarsened
    wavefronts" that decides whether bin packing is disabled.
    """
    vertex_cost = np.asarray(vertex_cost, dtype=np.float64)
    total_mean = 0.0
    total_max = 0.0
    for loads in schedule.level_loads(vertex_cost):
        total_mean += float(loads.mean())
        total_max += float(loads.max())
    if total_max <= 0.0:
        return 0.0
    return max(0.0, 1.0 - total_mean / total_max)
