"""Property-based tests for the observability layer (satellite S2).

Four families of invariants, explored by hypothesis well past what the
unit tests pin down:

* spans strictly nest per thread — every child interval lies inside its
  parent's, depths count enclosing spans, parents close after children;
* finalized timelines never overlap and are gapless — per core,
  ``busy + barrier_wait + p2p_wait + idle == wall`` exactly;
* the threaded executor's recorded busy segments match the schedule —
  one per vertex, levels agree with ``Schedule.level_of``, and per-core
  level order is non-decreasing (the wavefront order);
* the simulator's model timeline reproduces its own scalar outputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DAG
from repro.observability.spans import Tracer
from repro.observability.timeline import TimelineRecorder
from repro.schedulers import SCHEDULERS


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw, max_n=24, max_edges=80):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_edges))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src < dst
    return DAG.from_edges(n, src[keep], dst[keep])


@st.composite
def span_programs(draw, max_ops=30):
    """A balanced push/pop program driving one tracer thread."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(1, max_ops))):
        if depth == 0 or draw(st.booleans()):
            ops.append("push")
            depth += 1
        else:
            ops.append("pop")
            depth -= 1
    ops.extend(["pop"] * depth)
    return ops


@st.composite
def recorded_segments(draw, max_cores=4, max_segments=12):
    """Per-core non-overlapping (kind, t0, t1) records plus a wall span."""
    n_cores = draw(st.integers(1, max_cores))
    cores = {}
    t_max = 0.0
    for c in range(n_cores):
        cursor = 0.0
        segs = []
        for _ in range(draw(st.integers(0, max_segments))):
            gap = draw(st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False))
            width = draw(st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False))
            kind = draw(st.sampled_from(["busy", "barrier_wait", "p2p_wait"]))
            t0 = cursor + gap
            segs.append((kind, t0, t0 + width))
            cursor = t0 + width
        cores[c] = segs
        t_max = max(t_max, cursor)
    slack = draw(st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False))
    return cores, t_max + slack


# ----------------------------------------------------------------------
# spans strictly nest
# ----------------------------------------------------------------------
@given(span_programs())
@settings(max_examples=100, deadline=None)
def test_spans_strictly_nest(ops):
    clock_t = [0.0]

    def clock():
        clock_t[0] += 1.0
        return clock_t[0]

    tracer = Tracer(clock=clock)
    stack = []
    for i, op in enumerate(ops):
        if op == "push":
            cm = tracer.span(f"s{i}")
            cm.__enter__()
            stack.append(cm)
        else:
            stack.pop().__exit__(None, None, None)
    spans = tracer.spans
    assert len(spans) == ops.count("push")
    for idx, s in enumerate(spans):
        assert s.t1 > s.t0  # the fake clock strictly advances
        if s.parent == -1:
            assert s.depth == 0
            continue
        parent = spans[s.parent]
        assert s.depth == parent.depth + 1
        # strict containment: children open after and close before parents
        assert parent.t0 < s.t0 and s.t1 < parent.t1
    # siblings of one parent never overlap
    by_parent = {}
    for s in spans:
        by_parent.setdefault(s.parent, []).append(s)
    for sibs in by_parent.values():
        sibs.sort(key=lambda s: s.t0)
        for a, b in zip(sibs, sibs[1:]):
            assert a.t1 <= b.t0


# ----------------------------------------------------------------------
# timelines: non-overlap and exact wall cover
# ----------------------------------------------------------------------
@given(recorded_segments())
@settings(max_examples=100, deadline=None)
def test_finalized_timelines_cover_wall_exactly(case):
    cores, wall_t1 = case
    rec = TimelineRecorder()
    rec.open(len(cores))
    rec.wall_t0, rec.wall_t1 = 0.0, wall_t1
    for c, segs in cores.items():
        for kind, t0, t1 in segs:
            rec.record(c, kind, t0, t1)
    tl = rec.finalize()
    tl.check_invariants(tol=1e-9)
    for c in tl.cores:
        by_kind = tl.seconds_by_kind(c)
        total = sum(by_kind[k] for k in ("busy", "barrier_wait", "p2p_wait", "idle"))
        assert total == approx_wall(tl.wall)
        # segments sorted and disjoint
        segs = tl.cores[c]
        for a, b in zip(segs, segs[1:]):
            assert a.t1 <= b.t0 + 1e-12


def approx_wall(wall):
    import pytest

    return pytest.approx(wall, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# executor timelines match the schedule
# ----------------------------------------------------------------------
@given(random_dags(max_n=20, max_edges=60),
       st.integers(1, 4),
       st.sampled_from(["hdagg", "wavefront", "spmp"]))
@settings(max_examples=20, deadline=None)
def test_executor_timeline_matches_schedule(g, p, algo):
    from repro.runtime.threaded import run_threaded

    cost = np.ones(g.n)
    schedule = SCHEDULERS[algo](g, cost, p)
    rec = TimelineRecorder()
    seen = []
    run_threaded(schedule, g, seen.append, cost=cost, timeline=rec)
    tl = rec.finalize()
    tl.check_invariants(tol=1e-6)
    assert sorted(seen) == list(range(g.n))

    busy = [s for segs in tl.cores.values() for s in segs if s.kind == "busy"]
    # exactly one busy segment per vertex, each naming its vertex
    assert sorted(s.vertex for s in busy) == list(range(g.n))
    level_of = schedule.level_of()
    for s in busy:
        assert s.level == int(level_of[s.vertex])
    # per core, the wavefront order is respected: levels never decrease
    for c, segs in tl.cores.items():
        levels = [s.level for s in segs if s.kind == "busy"]
        assert levels == sorted(levels)


@given(random_dags(max_n=20, max_edges=60), st.integers(2, 4))
@settings(max_examples=15, deadline=None)
def test_executor_wavefront_spans_are_ordered(g, p):
    """Observed `execute/wavefront[k]` spans appear in schedule order."""
    from repro.observability.state import observed
    from repro.runtime.threaded import run_threaded

    cost = np.ones(g.n)
    schedule = SCHEDULERS["hdagg"](g, cost, p)
    with observed() as (tracer, _):
        run_threaded(schedule, g, lambda v: None, cost=cost)
    ks = [s.attrs["level"] for s in tracer.spans_named("execute/wavefront[")]
    assert ks == list(range(schedule.n_levels))


# ----------------------------------------------------------------------
# simulator timelines reproduce the scalar results
# ----------------------------------------------------------------------
@given(random_dags(max_n=20, max_edges=60),
       st.sampled_from(["hdagg", "spmp", "dagp"]))
@settings(max_examples=20, deadline=None)
def test_simulator_timeline_reproduces_results(g, algo):
    from repro.kernels import MemoryModel
    from repro.runtime import LAPTOP4, simulate

    cost = np.ones(g.n)
    mem = MemoryModel(np.ones(g.n), np.ones(g.n_edges))
    schedule = SCHEDULERS[algo](g, cost, LAPTOP4.n_cores)
    r = simulate(schedule, g, cost, mem, LAPTOP4, collect_timeline=True)
    tl = r.timeline
    assert tl is not None
    tl.check_invariants(tol=1e-6)
    assert tl.n_cores == LAPTOP4.n_cores
    assert tl.wall == approx_wall(r.makespan_cycles)
    np.testing.assert_allclose(tl.busy_per_core(), r.core_busy_cycles,
                               rtol=1e-9, atol=1e-6)
    assert tl.measured_pg() == approx_wall(r.potential_gain)
