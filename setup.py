from pathlib import Path

from setuptools import Command, setup


class build_native(Command):
    """Build the optional compiled inspector backend (plain C via ctypes).

    `python setup.py build_native` == `python -m repro.core.backends.build`.
    The library is optional: nothing at import or run time requires it, and
    the backend registry falls back to the numpy tier when it is absent.
    """

    description = "build the optional native inspector library"
    user_options = [("force", "f", "rebuild even when up to date")]

    def initialize_options(self):
        self.force = False

    def finalize_options(self):
        pass

    def run(self):
        import sys

        sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
        from repro.core.backends.build import build

        build(force=bool(self.force))


# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs ("pip install -e .") on environments without the `wheel` package
# and carries the optional native-build command.
setup(cmdclass={"build_native": build_native})
