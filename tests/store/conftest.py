"""Shared fixtures for the schedule-store suite.

``corpus`` is the cross-product the ISSUE pins: every registered
scheduler over four seeded matrices (one per generator family, the
golden-snapshot set).  Building it is the expensive part of the suite, so
it is session-scoped.
"""

import pytest

from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import banded_spd, lower_triangle, poisson2d, power_law_spd, random_spd

MATRICES = {
    "poisson2d": lambda: poisson2d(12, seed=0),
    "banded": lambda: banded_spd(160, 6, seed=3),
    "random": lambda: random_spd(150, 4.0, seed=7),
    "power_law": lambda: power_law_spd(150, 5.0, seed=11),
}


@pytest.fixture(scope="session")
def corpus():
    """``{(scheduler, matrix): (schedule, dag)}`` for every combination."""
    kernel = KERNELS["sptrsv"]
    out = {}
    for mname, build in MATRICES.items():
        low = lower_triangle(build())
        g = kernel.dag(low)
        cost = kernel.cost(low)
        for sname, scheduler in SCHEDULERS.items():
            out[(sname, mname)] = (scheduler(g, cost, 4), g)
    return out
