"""Bounded retry with exponential backoff.

Used by the harness to recover matrices whose fork pool worker crashed:
the matrix is re-run (serially, in the parent) a bounded number of times
with exponentially growing delays, and the final failure propagates with
the full attempt history attached.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

__all__ = ["RetryExhausted", "retry_with_backoff"]

T = TypeVar("T")


class RetryExhausted(RuntimeError):
    """Every attempt failed; ``attempts`` counts them, ``last`` is the cause."""

    def __init__(self, message: str, *, attempts: int, last: BaseException) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    retries: int = 2,
    base_delay: float = 0.1,
    factor: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` up to ``1 + retries`` times, backing off between attempts.

    The delay before retry ``k`` (1-based) is ``base_delay * factor**(k-1)``.
    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.  After the final failure a
    :class:`RetryExhausted` is raised from the last error, carrying the
    attempt count — callers (the harness) fold that into their
    :class:`~repro.resilience.failures.FailureRecord`.

    ``sleep`` is injectable so tests assert the backoff sequence without
    actually waiting.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    attempts = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempts += 1
            if attempts > retries:
                raise RetryExhausted(
                    f"all {attempts} attempts failed; last error: {type(exc).__name__}: {exc}",
                    attempts=attempts,
                    last=exc,
                ) from exc
            if on_retry is not None:
                on_retry(attempts, exc)
            sleep(base_delay * factor ** (attempts - 1))
