"""Dependence verifier: certification, refutation witnesses, meta stamping."""

import numpy as np
import pytest

from repro.analysis import assert_schedule_safe, find_dependence_witnesses, verify_dependences
from repro.core.schedule import Schedule, ScheduleError, WidthPartition
from repro.graph import DAG, dag_from_matrix_lower
from repro.schedulers import SCHEDULERS


def _serial(order, n, *, algorithm="manual"):
    return Schedule(
        n=n,
        levels=[[WidthPartition(0, np.asarray(order, dtype=np.int64))]],
        sync="barrier",
        algorithm=algorithm,
        n_cores=1,
    )


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_every_scheduler_certified(algo, mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS[algo](g, np.ones(g.n), 4)
    report = verify_dependences(s, g)
    assert report.ok and report.certified
    assert report.n_edges == g.n_edges
    assert report.n_violations == 0 and not report.witnesses
    assert "certified" in report.describe()


def test_reversed_serial_schedule_refuted(diamond_dag):
    g = diamond_dag
    s = _serial(np.arange(g.n)[::-1], g.n)
    report = verify_dependences(s, g)
    assert not report.ok
    assert report.n_violations == g.n_edges  # every edge is backwards
    w = report.witnesses[0]
    assert (w.src, w.dst) in {(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)}
    assert "dependence violated" in w.describe()
    d = w.as_dict()
    assert d["src"] == w.src and d["dst_position"] == w.dst_position


def test_witnesses_minimal_first():
    # chain 0 -> 1 -> 2 -> 3 executed fully reversed: the witness whose
    # violation bites earliest (smallest dst level, then src) comes first
    g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
    levels = [
        [WidthPartition(0, np.array([v]))] for v in (3, 2, 1, 0)
    ]
    s = Schedule(n=4, levels=levels, sync="barrier", algorithm="manual", n_cores=1)
    ws = find_dependence_witnesses(s, g, max_witnesses=3)
    assert [(w.src, w.dst) for w in ws] == [(2, 3), (1, 2), (0, 1)]
    assert ws[0].dst_level < ws[1].dst_level < ws[2].dst_level


def test_structural_error_reported(diamond_dag):
    # vertex 3 never scheduled: a cover defect, not an edge defect
    s = _serial([0, 1, 2], diamond_dag.n)
    report = verify_dependences(s, diamond_dag)
    assert not report.ok
    assert report.structural_error is not None
    assert not report.witnesses
    assert "structural" in report.describe()


def test_skip_structural_check(diamond_dag):
    s = _serial([0, 1, 2], diamond_dag.n)
    report = verify_dependences(s, diamond_dag, structural=False)
    # even without the structural pass the missing vertex is not silently
    # waved through: its sentinel coordinates violate every incoming edge
    assert not report.ok and report.structural_error is None
    assert all(w.dst == 3 and w.dst_level == -1 for w in report.witnesses)


def test_empty_dag_certified():
    g = DAG.from_edges(3, [], [])
    s = _serial([2, 0, 1], 3)
    assert verify_dependences(s, g).ok


def test_meta_stamping_accumulates(diamond_dag):
    g = diamond_dag
    s = _serial(np.arange(g.n), g.n)
    r1 = verify_dependences(s, g)
    first = s.meta["stage_seconds"]["verify"]
    assert first >= r1.seconds > 0.0 or first == pytest.approx(r1.seconds)
    verify_dependences(s, g)
    assert s.meta["stage_seconds"]["verify"] > first


def test_stamp_meta_opt_out(diamond_dag):
    s = _serial(np.arange(4), 4)
    verify_dependences(s, diamond_dag, stamp_meta=False)
    assert "stage_seconds" not in s.meta


def test_assert_schedule_safe_raises_with_witness(diamond_dag):
    bad = _serial(np.arange(4)[::-1], 4)
    with pytest.raises(ScheduleError, match="dependence violated") as exc_info:
        assert_schedule_safe(bad, diamond_dag)
    w = exc_info.value.witness
    assert w is not None and w.src_level >= w.dst_level
    good = _serial(np.arange(4), 4)
    assert_schedule_safe(good, diamond_dag)
    assert good.meta["stage_seconds"]["verify"] > 0.0


def test_schedule_validate_carries_witness(diamond_dag):
    bad = _serial(np.arange(4)[::-1], 4)
    with pytest.raises(ScheduleError, match="dependence violated") as exc_info:
        bad.validate(diamond_dag)
    assert exc_info.value.witness is not None
