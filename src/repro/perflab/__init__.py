"""Perf-lab: longitudinal benchmark telemetry with statistical gating.

Every benchmark run becomes a durable, comparable observation:

* :mod:`repro.perflab.fingerprint` — environment identity (CPU model,
  governor, BLAS, python/numpy/scipy versions) hashed into a series
  digest, with git SHA / observability / fault switches stamped as
  provenance;
* :mod:`repro.perflab.protocol` — warmup + adaptive repetition until the
  BCa bootstrap interval of the median is tight enough, with per-stage
  (``inspect/<sub>``, ``execute``) breakdown per rep;
* :mod:`repro.perflab.stats` — BCa bootstrap intervals, bootstrap shift
  verdicts, rank-CUSUM change-point detection;
* :mod:`repro.perflab.history` — append-only JSONL store + the atomic
  ``BENCH_trajectory.json`` snapshot, plus schema-1 migration;
* :mod:`repro.perflab.compare` — regression verdicts with per-stage
  attribution ("the inspector got slower because lbp did");
* :mod:`repro.perflab.bench` — the measured cells (``perf run`` smoke
  subset);
* :mod:`repro.perflab.report` / :mod:`repro.perflab.cli` — markdown +
  self-contained HTML reports and the ``hdagg-bench perf`` driver.

Everything re-exported here resolves lazily so that arming perf-lab — or
merely having it importable — costs the rest of the system nothing.
"""

from __future__ import annotations

__all__ = [
    "PERF_SCHEMA_VERSION",
    "EnvironmentFingerprint",
    "collect_fingerprint",
    "BootstrapCI",
    "bootstrap_ci",
    "ShiftVerdict",
    "shift_verdict",
    "ChangePoint",
    "detect_change_point",
    "ObservationKey",
    "Observation",
    "MeasurementProtocol",
    "HistoryStore",
    "LEGACY_DIGEST",
    "write_trajectory",
    "load_trajectory",
    "migrate_bench_inspector",
    "StageShift",
    "ObservationComparison",
    "compare_observations",
    "compare_series",
    "classify_point_ratio",
    "stage_series",
    "PERF_SMOKE",
    "run_inspector_benchmarks",
    "markdown_report",
    "html_report",
    "sparkline",
    "perf_main",
]

_HOMES = {
    "PERF_SCHEMA_VERSION": "fingerprint",
    "EnvironmentFingerprint": "fingerprint",
    "collect_fingerprint": "fingerprint",
    "BootstrapCI": "stats",
    "bootstrap_ci": "stats",
    "ShiftVerdict": "stats",
    "shift_verdict": "stats",
    "ChangePoint": "stats",
    "detect_change_point": "stats",
    "ObservationKey": "protocol",
    "Observation": "protocol",
    "MeasurementProtocol": "protocol",
    "HistoryStore": "history",
    "LEGACY_DIGEST": "history",
    "write_trajectory": "history",
    "load_trajectory": "history",
    "migrate_bench_inspector": "history",
    "StageShift": "compare",
    "ObservationComparison": "compare",
    "compare_observations": "compare",
    "compare_series": "compare",
    "classify_point_ratio": "compare",
    "stage_series": "compare",
    "PERF_SMOKE": "bench",
    "run_inspector_benchmarks": "bench",
    "markdown_report": "report",
    "html_report": "report",
    "sparkline": "report",
    "perf_main": "cli",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{home}", __name__), name)
