"""Tests for the Shiloach-Vishkin connected components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DAG,
    components_as_lists,
    connected_components_of_subset,
    dag_from_matrix_lower,
    shiloach_vishkin,
)


class TestShiloachVishkin:
    def test_no_edges(self):
        labels = shiloach_vishkin(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert labels.tolist() == [0, 1, 2, 3]

    def test_single_component(self):
        labels = shiloach_vishkin(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert len(set(labels.tolist())) == 1
        assert labels[0] == 0  # label = smallest member

    def test_two_components(self):
        labels = shiloach_vishkin(5, np.array([0, 3]), np.array([1, 4]))
        assert labels.tolist() == [0, 0, 2, 3, 3]

    def test_edge_direction_irrelevant(self):
        a = shiloach_vishkin(3, np.array([0]), np.array([2]))
        b = shiloach_vishkin(3, np.array([2]), np.array([0]))
        np.testing.assert_array_equal(a, b)

    def test_star(self):
        n = 10
        src = np.zeros(n - 1, dtype=np.int64)
        dst = np.arange(1, n, dtype=np.int64)
        labels = shiloach_vishkin(n, src, dst)
        assert np.all(labels == 0)

    @given(st.integers(2, 30), st.integers(0, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx(self, n, m, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        labels = shiloach_vishkin(n, src, dst)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        for comp in nx.connected_components(g):
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1
            assert comp_labels.pop() == min(comp)


class TestSubsetComponents:
    def test_subset_excludes_outside_edges(self):
        # path 0-1-2-3; subset {0, 2, 3}: 0 alone, {2, 3} together
        g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
        comps = components_as_lists(g, np.array([0, 2, 3]))
        assert [c.tolist() for c in comps] == [[0], [2, 3]]

    def test_labels_ordered_by_smallest_member(self):
        g = DAG.from_edges(6, [4, 0], [5, 1])
        labels, verts = connected_components_of_subset(g, np.array([4, 5, 0, 1]))
        assert verts.tolist() == [0, 1, 4, 5]
        assert labels.tolist() == [0, 0, 1, 1]

    def test_empty_subset(self):
        g = DAG.from_edges(3, [0], [1])
        assert components_as_lists(g, np.array([], dtype=np.int64)) == []

    def test_full_graph_components(self, blocks):
        g = dag_from_matrix_lower(blocks)
        comps = components_as_lists(g, np.arange(g.n))
        assert len(comps) == 12  # 12 diagonal blocks
        assert all(c.shape[0] == 8 for c in comps)

    def test_members_sorted(self, irregular):
        g = dag_from_matrix_lower(irregular)
        comps = components_as_lists(g, np.arange(0, g.n, 2))
        seen = np.concatenate(comps)
        assert np.array_equal(np.sort(seen), np.arange(0, g.n, 2))
        for c in comps:
            assert np.all(np.diff(c) > 0)
        # ordered by smallest member
        firsts = [int(c[0]) for c in comps]
        assert firsts == sorted(firsts)
