"""Service telemetry gate for CI: dormancy, identity, catalog, trees.

Four promises from the request-level telemetry layer, checked on a
smoke-sized seeded traffic replay:

1. **<2% dormant overhead.**  With the ambient switch off, every
   instrumentation site in the serving path costs one guard (an attribute
   read on the module-global state slot).  As in
   ``smoke_observability.py``, the gate measures the per-guard cost
   directly and bounds ``guards x cost_per_guard`` against the measured
   replay wall time with a *generous upper bound* on guarded sites per
   request — deterministic on shared runners, unlike diffing two noisy
   wall-clock runs.

2. **Identical deterministic results with telemetry on or off.**  Two
   dormant replays and one fully-instrumented replay of the same seeded
   config must agree byte-for-byte on every deterministic report field
   (served/shed/degraded counts, hit rate, inspection count) once
   wall-clock fields are dropped and the timing-dependent
   memory/coalesced split is merged.

3. **No registry drift.**  Every metric the instrumented replay actually
   registered must be declared in the closed catalog
   (``catalog_violations``), and the static L009 lint rule must hold over
   ``src/repro`` — the runtime and static views of the catalog gate each
   other.

4. **Valid request trees + consumable artifacts.**  The instrumented run
   must produce one structurally valid span tree per request and all five
   telemetry artifacts, and the dashboard must render from them.

Usage::

    PYTHONPATH=src python benchmarks/smoke_telemetry.py [budget_ms]

``budget_ms`` is a generous tripwire on the instrumented replay's wall
time; the four gates above are absolute.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.observability.dashboard import render_dashboard
from repro.observability.state import STATE
from repro.observability.telemetry import catalog_violations, validate_request_trees
from repro.service.replay import ReplayConfig, run_replay, run_replay_with_telemetry
from repro.statan import run_lint

DEFAULT_BUDGET_MS = 30_000.0
OVERHEAD_LIMIT = 0.02
DORMANT_ROUNDS = 2

#: upper bound on guarded instrumentation sites executed per request:
#: front-door admission + queue-wait + root span bookkeeping, broker tier
#: spans and latency observes, store read/write counters and gauges —
#: each a handful of guards; 200 is far above any real count
GUARDS_PER_REQUEST = 200
GUARDS_CONSTANT = 20_000

ARTIFACTS = ("spans.jsonl", "trace.json", "metrics.jsonl", "metrics.prom", "replay.json")


def _config(store_root: str) -> ReplayConfig:
    return ReplayConfig(
        n_requests=160,
        n_structures=4,
        zipf_s=1.2,
        seed=0,
        kernel="sptrsv",
        algorithm="hdagg",
        p=8,
        concurrency=8,
        max_pending=256,
        max_inflight=8,
        store_root=store_root,
    )


def _normalised_json(report) -> str:
    """Deterministic report fields only, as canonical JSON.

    Wall-clock fields (latency quantiles, wall time, per-tier rows) are
    dropped; ``memory`` and ``coalesced`` are merged into one ``cached``
    bucket because the split between them depends on request timing, while
    their sum (everything served without a fresh inspection) is seeded.
    """
    blob = report.as_dict()
    for f in ("p50_seconds", "p99_seconds", "wall_seconds", "tiers"):
        blob.pop(f, None)
    sources = blob.pop("sources", {})
    blob["sources"] = {
        "inspected": sources.get("inspected", 0),
        "store": sources.get("store", 0),
        "cached": sources.get("memory", 0) + sources.get("coalesced", 0),
    }
    return json.dumps(blob, sort_keys=True)


def _guard_cost_seconds(iterations: int = 1_000_000) -> float:
    """Amortised cost of one dormant guard (`STATE.enabled` read)."""
    sink = False
    t0 = time.perf_counter()
    for _ in range(iterations):
        if STATE.enabled:
            sink = True  # pragma: no cover - state is dormant here
    elapsed = time.perf_counter() - t0
    assert not sink
    return elapsed / iterations


def main(budget_ms: float = DEFAULT_BUDGET_MS) -> int:
    ok = True

    # --- dormant rounds ----------------------------------------------
    dormant_blobs = []
    best_s = float("inf")
    for _ in range(DORMANT_ROUNDS):
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            report = run_replay(_config(f"{tmp}/store"))
            best_s = min(best_s, time.perf_counter() - t0)
        dormant_blobs.append(_normalised_json(report))
        if report.n_rejected or report.n_ok != report.config.n_requests:
            print(f"FAIL: dormant replay shed {report.n_rejected} requests "
                  "despite being sized under the admission bounds", file=sys.stderr)
            ok = False

    # --- gate 1: dormant guard overhead bound -------------------------
    per_guard = _guard_cost_seconds()
    n_guards = _config("x").n_requests * GUARDS_PER_REQUEST + GUARDS_CONSTANT
    overhead_s = n_guards * per_guard
    ratio = overhead_s / best_s
    print(f"replay: best dormant wall = {best_s * 1e3:.1f} ms, "
          f"guard = {per_guard * 1e9:.1f} ns, "
          f"bound = {n_guards} guards -> {overhead_s * 1e3:.2f} ms "
          f"({ratio * 100:.2f}% of replay)")
    if ratio > OVERHEAD_LIMIT:
        print(f"FAIL: dormant overhead bound {ratio * 100:.2f}% exceeds "
              f"{OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
        ok = False

    # --- instrumented round -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp) / "telemetry"
        t0 = time.perf_counter()
        report, tracer, registry = run_replay_with_telemetry(
            _config(f"{tmp}/store"), str(out_dir)
        )
        traced_s = time.perf_counter() - t0

        # --- gate 2: deterministic fields identical off/off/on --------
        traced_blob = _normalised_json(report)
        for blob, label in zip(
            dormant_blobs + [traced_blob],
            [f"dormant run {i + 2}" for i in range(DORMANT_ROUNDS - 1)] + ["instrumented run"],
        ):
            if blob != dormant_blobs[0]:
                print(f"FAIL: {label} changed deterministic report fields:\n"
                      f"  base: {dormant_blobs[0]}\n  got:  {blob}", file=sys.stderr)
                ok = False

        # --- gate 3: registry drift (runtime + static) -----------------
        undeclared = catalog_violations(registry.names())
        if undeclared:
            print(f"FAIL: metrics outside the closed catalog: {undeclared}",
                  file=sys.stderr)
            ok = False
        repo_root = Path(__file__).resolve().parents[1]
        drift = run_lint(repo_root, rule_ids=["L009"])
        if drift:
            for d in drift:
                print(f"FAIL: L009 {d.path}:{d.line}: {d.message}", file=sys.stderr)
            ok = False

        # --- gate 4: request trees + artifacts -------------------------
        problems = validate_request_trees(
            tracer.spans, expect=report.config.n_requests
        )
        if problems:
            for p in problems[:10]:
                print(f"FAIL: span tree: {p}", file=sys.stderr)
            ok = False
        for name in ARTIFACTS:
            if not (out_dir / name).exists():
                print(f"FAIL: missing telemetry artifact {name}", file=sys.stderr)
                ok = False
        dash = render_dashboard(out_dir, title="smoke telemetry")
        if not dash.read_text().strip():
            print("FAIL: dashboard rendered empty", file=sys.stderr)
            ok = False

    print(f"instrumented replay: {report.n_ok}/{report.config.n_requests} served, "
          f"hit_rate {report.hit_rate:.3f}, {traced_s * 1e3:.1f} ms wall, "
          f"{len(tracer.spans)} spans, {len(registry.names())} metrics")
    if traced_s * 1e3 > budget_ms:
        print(f"FAIL: instrumented replay took {traced_s * 1e3:.0f} ms "
              f"(budget {budget_ms:.0f} ms)", file=sys.stderr)
        ok = False

    if ok:
        print("OK: dormant <2% bound, off/off/on reports identical, "
              "catalog closed, request trees valid")
    return 0 if ok else 1


if __name__ == "__main__":
    budget = DEFAULT_BUDGET_MS
    if len(sys.argv) > 1:
        try:
            budget = float(sys.argv[1])
        except ValueError:
            print(f"usage: {sys.argv[0]} [budget_ms]", file=sys.stderr)
            raise SystemExit(2)
    raise SystemExit(main(budget))
