"""Sparse kernels with loop-carried dependence: SpTRSV, SpIC0, SpILU0."""

from .base import KernelError, SparseKernel, lines_of_rows
from .memory import MemoryModel, factor_memory_model, sptrsv_memory_model
from .cost import spic0_cost, spilu0_cost, sptrsv_cost, uniform_cost
from .cholesky import SpChol, cholesky_in_order, cholesky_reference, embed_in_fill_pattern
from .gauss_seidel import GaussSeidel, gauss_seidel_in_order, gauss_seidel_sweep
from .spic0 import SpIC0, ic0_defect, spic0_in_order, spic0_reference
from .spilu0 import SpILU0, ilu0_defect, spilu0_in_order, spilu0_reference, split_lu
from .sptrsv import (
    SpTRSV,
    check_solvable,
    sptrsv_levelwise,
    sptrsv_levelwise_multi,
    sptrsv_reference,
    sptrsv_transpose_levelwise,
    sptrsv_transpose_reference,
)

__all__ = [
    "SparseKernel",
    "KernelError",
    "lines_of_rows",
    "SpTRSV",
    "SpIC0",
    "SpILU0",
    "GaussSeidel",
    "SpChol",
    "cholesky_reference",
    "cholesky_in_order",
    "embed_in_fill_pattern",
    "gauss_seidel_sweep",
    "gauss_seidel_in_order",
    "sptrsv_reference",
    "sptrsv_levelwise",
    "sptrsv_levelwise_multi",
    "sptrsv_transpose_reference",
    "sptrsv_transpose_levelwise",
    "check_solvable",
    "spic0_reference",
    "spic0_in_order",
    "ic0_defect",
    "spilu0_reference",
    "spilu0_in_order",
    "ilu0_defect",
    "split_lu",
    "MemoryModel",
    "sptrsv_memory_model",
    "factor_memory_model",
    "sptrsv_cost",
    "spic0_cost",
    "spilu0_cost",
    "uniform_cost",
]

#: Registry used by the harness and CLI ("sptrsv" -> kernel instance).
KERNELS = {k.name: k for k in (SpTRSV(), SpIC0(), SpILU0(), GaussSeidel(), SpChol())}
