"""Happens-before trace checker for the threaded executor.

The verifier and race detector certify the *schedule*; this module checks
the *executor*.  :func:`repro.runtime.threaded.run_threaded` optionally
records an event log through a :class:`TraceRecorder`:

* ``("exec", core, v)`` — ``v``'s kernel body finished on ``core``
  (recorded *before* the completion flag is published);
* ``("acquire", core, u)`` — p2p sync only: the spin on ``done[u]``
  completed on ``core`` (recorded after observing the flag, hence always
  after ``u``'s exec record);
* ``("barrier", core, k)`` — ``core`` passed the barrier closing level
  ``k``.

:func:`check_trace` replays the log through a vector-clock analysis: each
core owns a clock component; exec increments the owner's component and
snapshots the clock as the vertex's *write clock*; acquire joins the
dependence's write clock into the reader (the release/acquire pair of the
flag spin); a barrier joins every core's clock.  A dependence ``u -> v``
is satisfied iff ``u``'s write clock happens-before ``v``'s exec — checked
componentwise.  Anything the synchronisation operations that *actually
happened* cannot order is a violation, even when the run produced correct
numbers by timing luck.  That is the gap this closes: the flag check in the
executor only sees one interleaving; the vector clocks certify all of them
consistent with the recorded synchronisation.

Complexity: O(events * p + E * p) for p cores.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.dag import DAG

__all__ = ["TraceRecorder", "HappensBeforeViolation", "TraceReport", "check_trace"]


class TraceRecorder:
    """Thread-safe, totally ordered event log (the executor's tracing hook).

    The lock gives every event a unique, monotonically increasing sequence
    number; per-core subsequences are therefore in program order, which is
    all the checker relies on.
    """

    __slots__ = ("events", "_lock", "_seq")

    def __init__(self) -> None:
        self.events: List[Tuple[int, str, int, int]] = []
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, kind: str, core: int, a: int) -> None:
        """Append ``(seq, kind, core, a)``; called from worker threads."""
        with self._lock:
            self.events.append((self._seq, kind, core, int(a)))
            self._seq += 1

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class HappensBeforeViolation:
    """One ordering defect observed in the replayed execution."""

    kind: str  # "unordered-dependence", "missing-dependence", "duplicate-exec",
    #            "never-executed", "barrier-mismatch", "acquire-before-exec"
    vertex: int
    dependence: int
    core: int
    dep_core: int

    def describe(self) -> str:
        if self.kind == "unordered-dependence":
            return (
                f"vertex {self.vertex} (core {self.core}) read dependence "
                f"{self.dependence} (core {self.dep_core}) without a happens-before edge"
            )
        if self.kind == "missing-dependence":
            return (
                f"vertex {self.vertex} (core {self.core}) executed before its "
                f"dependence {self.dependence} executed at all"
            )
        if self.kind == "duplicate-exec":
            return f"vertex {self.vertex} executed twice (cores {self.dep_core}, {self.core})"
        if self.kind == "never-executed":
            return f"vertex {self.vertex} never executed"
        if self.kind == "acquire-before-exec":
            return (
                f"core {self.core} acquired flag of vertex {self.dependence} "
                f"before that vertex's exec event"
            )
        return f"barrier count mismatch across cores (core {self.core})"


@dataclass
class TraceReport:
    """Outcome of :func:`check_trace`."""

    ok: bool
    n_events: int
    n_executed: int
    violations: List[HappensBeforeViolation] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"trace clean: {self.n_events} events, {self.n_executed} vertices ordered"
        lines = [f"TRACE VIOLATIONS ({len(self.violations)}):"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def check_trace(
    events: List[Tuple[int, str, int, int]],
    g: DAG,
    *,
    n_cores: Optional[int] = None,
    expect_all: bool = True,
    max_violations: int = 16,
) -> TraceReport:
    """Vector-clock replay of a recorded execution against the DAG ``g``.

    ``events`` is :attr:`TraceRecorder.events` (or any iterable of
    ``(seq, kind, core, arg)`` tuples).  ``expect_all`` additionally demands
    that every DAG vertex was executed exactly once.
    """
    if n_cores is None:
        n_cores = max((e[2] for e in events), default=0) + 1
    p = max(1, int(n_cores))
    violations: List[HappensBeforeViolation] = []

    def add(v: HappensBeforeViolation) -> None:
        if len(violations) < max_violations:
            violations.append(v)

    # split per core, preserving seq order; count barriers per core
    per_core: List[List[Tuple[int, str, int]]] = [[] for _ in range(p)]
    for seq, kind, core, a in sorted(events):
        per_core[core].append((seq, kind, a))
    barrier_counts = [sum(1 for e in stream if e[1] == "barrier") for stream in per_core]
    n_epochs = max(barrier_counts, default=0) + 1
    if len(set(barrier_counts)) > 1:
        worst = int(np.argmin(barrier_counts))
        add(HappensBeforeViolation("barrier-mismatch", -1, -1, worst, -1))

    # epoch-partitioned streams: epoch e of a core is everything between its
    # (e-1)-th and e-th barrier events
    epochs: List[List[Tuple[int, str, int, int]]] = [[] for _ in range(n_epochs)]
    for core, stream in enumerate(per_core):
        e = 0
        for seq, kind, a in stream:
            if kind == "barrier":
                e += 1
                continue
            epochs[e].append((seq, kind, core, a))

    vc = np.zeros((p, p), dtype=np.int64)
    write_clock: Dict[int, np.ndarray] = {}
    exec_core: Dict[int, int] = {}
    in_ptr, in_idx = g.in_ptr, g.in_idx

    for epoch_events in epochs:
        # a barrier epoch boundary joins all clocks; within an epoch the
        # global sequence order is a valid serialisation because acquire
        # records always follow the exec record they observed
        for _, kind, core, a in sorted(epoch_events):
            if kind == "acquire":
                w = write_clock.get(a)
                if w is None:
                    add(HappensBeforeViolation("acquire-before-exec", -1, a, core, -1))
                else:
                    np.maximum(vc[core], w, out=vc[core])
            elif kind == "exec":
                v = a
                if v in exec_core:
                    add(HappensBeforeViolation("duplicate-exec", v, -1, core, exec_core[v]))
                vc[core, core] += 1
                for u in in_idx[in_ptr[v] : in_ptr[v + 1]].tolist():
                    w = write_clock.get(u)
                    if w is None:
                        add(HappensBeforeViolation("missing-dependence", v, u, core, -1))
                    elif not bool(np.all(w <= vc[core])):
                        add(
                            HappensBeforeViolation(
                                "unordered-dependence", v, u, core, exec_core.get(u, -1)
                            )
                        )
                write_clock[v] = vc[core].copy()
                exec_core[v] = core
        # barrier: every core's clock joins to the common maximum
        joined = vc.max(axis=0)
        vc[:] = joined

    if expect_all:
        for v in range(g.n):
            if v not in exec_core:
                add(HappensBeforeViolation("never-executed", v, -1, -1, -1))

    return TraceReport(
        ok=not violations,
        n_events=len(events),
        n_executed=len(exec_core),
        violations=violations,
    )
