"""Graceful inspector degradation: budgets and fallback chains.

Böhnlein et al. (PAPERS.md) show scheduler cost and quality vary wildly
across adversarial DAG shapes; an inspector that is excellent on meshes
can stall or misbehave on a pathological input.  In a serving setting the
right response is not a crash but a *declared downgrade*: run the
requested inspector under a wall-clock budget, and on timeout, exception,
or a schedule that fails :func:`~repro.analysis.verifier.assert_schedule_safe`,
fall down a fixed chain toward schedules that cannot fail:

    hdagg / spmp / lbc / dagp / mkl / coarsenk  →  wavefront  →  serial

``wavefront`` is the universal mid-point (one Kahn sweep, no balancing
heuristics to go wrong) and ``serial`` the terminal fallback (trivially
safe for any DAG).  The harness stamps the downgrade into
``RunRecord.degraded`` / ``degraded_from`` so a degraded grid cell is
visible in every table instead of silently wrong or fatally absent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from .faults import fault_point

__all__ = [
    "FALLBACK_CHAIN",
    "TERMINAL_FALLBACK",
    "fallback_chain",
    "InspectorTimeout",
    "DegradationError",
    "AttemptFailure",
    "InspectionOutcome",
    "run_with_budget",
    "inspect_with_fallback",
]

#: Next algorithm to try when one fails.  Anything unlisted falls straight
#: to the terminal fallback.
FALLBACK_CHAIN: Dict[str, str] = {
    "hdagg": "wavefront",
    "spmp": "wavefront",
    "lbc": "wavefront",
    "dagp": "wavefront",
    "mkl": "wavefront",
    "coarsenk": "wavefront",
    "wavefront": "serial",
}

#: The end of every chain: a sequential schedule is safe for any DAG.
TERMINAL_FALLBACK = "serial"


def fallback_chain(algorithm: str) -> List[str]:
    """The full attempt order for ``algorithm`` (itself first)."""
    chain = [algorithm]
    seen = {algorithm}
    cur = algorithm
    while cur != TERMINAL_FALLBACK:
        cur = FALLBACK_CHAIN.get(cur, TERMINAL_FALLBACK)
        if cur in seen:  # defensive: a mis-edited chain must not loop
            break
        chain.append(cur)
        seen.add(cur)
    return chain


class InspectorTimeout(RuntimeError):
    """An inspector exceeded its wall-clock budget."""

    def __init__(self, algorithm: str, budget: float) -> None:
        super().__init__(f"inspector {algorithm!r} exceeded its {budget:.3f}s budget")
        self.algorithm = algorithm
        self.budget = budget


class DegradationError(RuntimeError):
    """Every algorithm in the fallback chain failed (including serial)."""

    def __init__(self, requested: str, failures: List["AttemptFailure"]) -> None:
        detail = "; ".join(f"{f.algorithm}: {f.error_type}: {f.message}" for f in failures)
        super().__init__(f"no fallback produced a safe schedule for {requested!r} ({detail})")
        self.requested = requested
        self.failures = failures


@dataclass(frozen=True)
class AttemptFailure:
    """Why one link of the chain was abandoned."""

    algorithm: str
    error_type: str
    message: str


@dataclass
class InspectionOutcome:
    """Result of :func:`inspect_with_fallback`.

    ``algorithm`` is the inspector that actually produced ``schedule``;
    ``degraded_from`` is the comma-joined list of algorithms that failed
    before it (empty when the requested inspector succeeded — the dormant
    case, in which the outcome is indistinguishable from a direct call).
    """

    schedule: Schedule
    algorithm: str
    requested: str
    degraded: bool = False
    degraded_from: str = ""
    failures: List[AttemptFailure] = field(default_factory=list)


def run_with_budget(fn: Callable[[], Schedule], budget: Optional[float], *, algorithm: str = "") -> Schedule:
    """Run ``fn`` under a wall-clock budget.

    With ``budget=None`` this is a direct call (zero overhead — the
    dormant path).  Otherwise ``fn`` runs on a daemon thread and a budget
    overrun raises :class:`InspectorTimeout`; the abandoned thread is left
    to finish in the background (CPython offers no safe preemption), which
    is acceptable because inspectors hold no locks and write nothing
    shared.
    """
    if budget is None:
        return fn()
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # re-raised on the caller's thread
            box["error"] = exc

    t = threading.Thread(target=target, daemon=True, name=f"inspector-{algorithm}")
    t.start()
    t.join(budget)
    if t.is_alive():
        raise InspectorTimeout(algorithm, budget)
    if "error" in box:
        raise box["error"]
    return box["result"]


def _call_inspector(
    algorithm: str,
    g: DAG,
    cost: np.ndarray,
    p: int,
    *,
    epsilon: Optional[float],
    backend=None,
) -> Schedule:
    from ..schedulers import SCHEDULERS

    fault_point("inspector", label=algorithm)
    # only the hdagg pipeline has a backend registry; fallbacks further
    # down the chain must not receive (and would reject) the kwarg
    extra = {"backend": backend} if backend is not None and algorithm == "hdagg" else {}
    if epsilon is not None and algorithm in ("hdagg", "lbc"):
        return SCHEDULERS[algorithm](g, cost, p, epsilon=epsilon, **extra)
    return SCHEDULERS[algorithm](g, cost, p, **extra)


def inspect_with_fallback(
    algorithm: str,
    g: DAG,
    cost: np.ndarray,
    p: int,
    *,
    epsilon: Optional[float] = None,
    budget: Optional[float] = None,
    validate: bool = True,
    backend=None,
) -> InspectionOutcome:
    """Build a schedule for ``algorithm``, degrading down the chain on failure.

    Each link runs under ``budget`` (when set) and, with ``validate``, must
    pass ``assert_schedule_safe`` before being accepted — an inspector that
    *returns* an unsafe schedule is treated exactly like one that raised.
    The terminal ``serial`` link failing too raises
    :class:`DegradationError`; ``KeyboardInterrupt``/``SystemExit`` always
    propagate.
    """
    from ..analysis.verifier import assert_schedule_safe

    failures: List[AttemptFailure] = []
    for algo in fallback_chain(algorithm):
        try:
            schedule = run_with_budget(
                lambda a=algo: _call_inspector(
                    a, g, cost, p, epsilon=epsilon, backend=backend
                ),
                budget,
                algorithm=algo,
            )
            if validate:
                assert_schedule_safe(schedule, g)
        except Exception as exc:
            failures.append(AttemptFailure(algo, type(exc).__name__, str(exc)))
            continue
        degraded = algo != algorithm
        return InspectionOutcome(
            schedule=schedule,
            algorithm=algo,
            requested=algorithm,
            degraded=degraded,
            degraded_from=",".join(f.algorithm for f in failures) if degraded else "",
            failures=failures,
        )
    raise DegradationError(algorithm, failures)
