#!/usr/bin/env python
"""End-to-end scheduled direct solver: reorder, factor, solve, verify.

The full pipeline a sparse direct solver runs, with every dependence-bound
stage driven by an HDagg schedule:

1. nested-dissection reordering (the METIS pre-pass);
2. symbolic Cholesky (fill pattern + elimination tree);
3. numeric Cholesky through the scheduled executor;
4. forward solve ``L y = b`` and backward solve ``L^T x = y`` via the
   level-wise kernels;
5. residual check against the original system.

Run:  python examples/direct_solver.py
"""

import numpy as np

from repro import INTEL20, hdagg, simulate
from repro.graph import compute_wavefronts
from repro.kernels import SpChol, SpTRSV
from repro.kernels.sptrsv import sptrsv_levelwise, sptrsv_transpose_levelwise
from repro.schedulers import serial_schedule
from repro.sparse import apply_ordering, fill_in, poisson2d

# Row-granular complete factorisation moves whole factor rows between
# cores; at this demo scale the coherence traffic eats most of the
# parallel gain (real solvers go supernodal/BLAS3 for exactly this
# reason), so simulate a few fat cores rather than the full socket.
MACHINE = INTEL20.scaled(4)


def main() -> None:
    raw = poisson2d(48, seed=9)
    rng = np.random.default_rng(4)
    b_raw = rng.normal(size=raw.n_rows)
    print(f"system: n={raw.n_rows}, nnz={raw.nnz}")

    # 1. reorder (and permute the right-hand side with it)
    a, perm = apply_ordering(raw, "nd")
    b = b_raw[perm]
    print(f"nested dissection: fill {fill_in(raw)} -> {fill_in(a)} entries")

    # 2 + 3. symbolic + scheduled numeric factorisation
    chol = SpChol()
    g = chol.dag(a)
    schedule = hdagg(g, chol.cost(a), MACHINE.n_cores)
    schedule.validate(g)
    factor = chol.execute_in_order(a, schedule.execution_order())
    print(
        f"factor: nnz={factor.nnz} "
        f"({schedule.meta['n_wavefronts']} wavefronts -> {schedule.n_levels} CWs), "
        f"defect={chol.verify(a, factor):.2e}"
    )

    # 4. triangular solves (forward + transpose) on the factor
    waves = compute_wavefronts(SpTRSV().dag(factor))
    y = sptrsv_levelwise(factor, b, waves)
    x = sptrsv_transpose_levelwise(factor, y, waves)

    # 5. verify against the *original* system
    x_raw = np.empty_like(x)
    x_raw[perm] = x
    residual = np.linalg.norm(raw.matvec(x_raw) - b_raw) / np.linalg.norm(b_raw)
    print(f"relative residual on the original system: {residual:.2e}")

    # bonus: what the machine model says about the factorisation schedule
    mem = chol.memory_model(a, g)
    cost = chol.cost(a)
    serial = simulate(serial_schedule(g, cost), g, cost, mem, MACHINE.scaled(1))
    par = simulate(schedule, g, cost, mem, MACHINE)
    print(
        f"simulated factorisation speedup on {MACHINE.name}: "
        f"{serial.makespan_cycles / par.makespan_cycles:.2f}x"
    )


if __name__ == "__main__":
    main()
