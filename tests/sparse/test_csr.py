"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    INDEX_DTYPE,
    VALUE_DTYPE,
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
)


def dense_roundtrip(dense):
    return csr_from_dense(np.asarray(dense, dtype=float))


class TestConstruction:
    def test_basic(self):
        a = CSRMatrix(2, 3, [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        assert a.shape == (2, 3)
        assert a.nnz == 3
        np.testing.assert_array_equal(a.to_dense(), [[1, 0, 2], [0, 3, 0]])

    def test_empty_matrix(self):
        a = CSRMatrix(0, 0, [0], [], [])
        assert a.nnz == 0
        assert a.shape == (0, 0)

    def test_empty_rows(self):
        a = CSRMatrix(3, 3, [0, 0, 1, 1], [2], [5.0])
        assert a.row_nnz().tolist() == [0, 1, 0]

    def test_dtypes(self):
        a = dense_roundtrip(np.eye(3))
        assert a.indptr.dtype == INDEX_DTYPE
        assert a.indices.dtype == INDEX_DTYPE
        assert a.data.dtype == VALUE_DTYPE

    def test_arrays_readonly(self):
        a = dense_roundtrip(np.eye(3))
        with pytest.raises(ValueError):
            a.data[0] = 9.0
        with pytest.raises(ValueError):
            a.indices[0] = 1

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(2, 2, [0, 1], [0], [1.0])

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(1, 2, [1, 2], [0], [1.0])

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_column_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix(1, 2, [0, 1], [5], [1.0])

    def test_unsorted_columns_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 2.0])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            CSRMatrix(1, 3, [0, 2], [1, 1], [1.0, 2.0])

    def test_row_boundary_allows_reset(self):
        # col sequence 2 | 0 across a row boundary is legal
        a = CSRMatrix(2, 3, [0, 1, 2], [2, 0], [1.0, 2.0])
        assert a.nnz == 2


class TestAccessors:
    def test_row_view(self):
        a = dense_roundtrip([[1, 0, 2], [0, 0, 0], [3, 4, 5]])
        cols, vals = a.row(2)
        np.testing.assert_array_equal(cols, [0, 1, 2])
        np.testing.assert_array_equal(vals, [3, 4, 5])

    def test_iter_rows(self):
        a = dense_roundtrip([[1, 0], [0, 2]])
        rows = list(a.iter_rows())
        assert rows[0][0] == 0 and rows[1][0] == 1
        assert rows[0][1].tolist() == [0]

    def test_diagonal(self):
        a = dense_roundtrip([[1, 2], [0, 0]])
        np.testing.assert_array_equal(a.diagonal(), [1, 0])

    def test_has_full_diagonal(self):
        assert dense_roundtrip(np.eye(4)).has_full_diagonal()
        assert not dense_roundtrip([[1, 0], [1, 0]]).has_full_diagonal()

    def test_row_nnz(self):
        a = dense_roundtrip([[1, 1, 1], [0, 0, 0], [1, 0, 0]])
        assert a.row_nnz().tolist() == [3, 0, 1]


class TestDerived:
    def test_transpose_roundtrip(self, rng):
        dense = rng.random((7, 5))
        dense[dense < 0.5] = 0.0
        a = csr_from_dense(dense)
        np.testing.assert_allclose(a.transpose().to_dense(), dense.T)
        assert a.transpose().transpose() == a

    def test_transpose_empty(self):
        a = CSRMatrix(2, 3, [0, 0, 0], [], [])
        assert a.transpose().shape == (3, 2)

    def test_matvec_matches_dense(self, rng):
        dense = rng.random((6, 6))
        dense[dense < 0.4] = 0.0
        a = csr_from_dense(dense)
        x = rng.random(6)
        np.testing.assert_allclose(a.matvec(x), dense @ x)

    def test_matvec_shape_check(self):
        a = dense_roundtrip(np.eye(3))
        with pytest.raises(ValueError):
            a.matvec(np.ones(4))

    def test_with_data(self):
        a = dense_roundtrip(np.eye(2))
        b = a.with_data(np.array([5.0, 6.0]))
        assert b.data.tolist() == [5.0, 6.0]
        assert a.data.tolist() == [1.0, 1.0]  # original untouched

    def test_with_data_length_check(self):
        a = dense_roundtrip(np.eye(2))
        with pytest.raises(ValueError):
            a.with_data(np.ones(3))

    def test_copy_is_deep(self):
        a = dense_roundtrip(np.eye(2))
        b = a.copy()
        assert b == a
        assert b.data is not a.data

    def test_permute_symmetric(self, rng):
        dense = rng.random((5, 5))
        dense = dense + dense.T
        a = csr_from_dense(dense)
        perm = np.array([3, 1, 4, 0, 2])
        p = a.permute_symmetric(perm)
        np.testing.assert_allclose(p.to_dense(), dense[np.ix_(perm, perm)])

    def test_permute_requires_square(self):
        a = dense_roundtrip(np.ones((2, 3)))
        with pytest.raises(ValueError):
            a.permute_symmetric(np.array([0, 1]))

    def test_permute_rejects_non_permutation(self):
        a = dense_roundtrip(np.eye(3))
        with pytest.raises(ValueError):
            a.permute_symmetric(np.array([0, 0, 1]))

    def test_scipy_roundtrip(self, rng):
        dense = rng.random((4, 6))
        dense[dense < 0.5] = 0.0
        a = csr_from_dense(dense)
        assert csr_from_scipy(a.to_scipy()) == a


class TestFromCoo:
    def test_sorting(self):
        a = csr_from_coo(2, 2, [1, 0], [0, 1], [3.0, 4.0])
        np.testing.assert_array_equal(a.to_dense(), [[0, 4], [3, 0]])

    def test_duplicates_summed(self):
        a = csr_from_coo(1, 1, [0, 0], [0, 0], [1.0, 2.0])
        assert a.to_dense()[0, 0] == 3.0

    def test_duplicates_rejected_when_disabled(self):
        with pytest.raises(ValueError, match="duplicate"):
            csr_from_coo(1, 1, [0, 0], [0, 0], [1.0, 2.0], sum_duplicates=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            csr_from_coo(2, 2, [2], [0], [1.0])
        with pytest.raises(ValueError):
            csr_from_coo(2, 2, [0], [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            csr_from_coo(2, 2, [0, 1], [0], [1.0])

    def test_empty(self):
        a = csr_from_coo(3, 3, [], [], [])
        assert a.nnz == 0


class TestEquality:
    def test_eq(self):
        a = dense_roundtrip(np.eye(2))
        b = dense_roundtrip(np.eye(2))
        assert a == b

    def test_neq_values(self):
        a = dense_roundtrip(np.eye(2))
        b = a.with_data(np.array([2.0, 1.0]))
        assert a != b

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(dense_roundtrip(np.eye(2)))

    def test_csr_from_dense_tolerance(self):
        a = csr_from_dense(np.array([[1.0, 1e-12], [0.0, 2.0]]), tol=1e-9)
        assert a.nnz == 2
