"""ctypes loader for the compiled backend library.

The shared object is optional: :func:`available` probes for it without
raising, and the registry falls back to numpy when it is absent.  The
search order is the ``REPRO_NATIVE_LIB`` environment variable (explicit
path, for packaged installs) then the in-tree build location
(``_native/libhdagg_native.so``, produced by
``python -m repro.core.backends.build``).
"""

from __future__ import annotations

import ctypes
import os
from pathlib import Path
from typing import Optional

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["available", "load", "reset", "library_path"]

ENV_LIB = "REPRO_NATIVE_LIB"

_i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_f64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_u8 = ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")

_lib: Optional[ctypes.CDLL] = None
_load_failed = False


def library_path() -> Optional[Path]:
    """Path the loader would use, or None when no library file exists."""
    env = os.environ.get(ENV_LIB)
    if env:
        p = Path(env)
        return p if p.exists() else None
    p = Path(__file__).resolve().parent / "_native" / "libhdagg_native.so"
    return p if p.exists() else None


def reset() -> None:
    """Drop the cached handle (after a rebuild, or in tests)."""
    global _lib, _load_failed
    _lib = None
    _load_failed = False


def load() -> Optional[ctypes.CDLL]:
    """The loaded library, or None when absent/unloadable.  Never raises."""
    global _lib, _load_failed
    if _lib is not None:
        return _lib
    if _load_failed:
        return None
    path = library_path()
    if path is None:
        _load_failed = True
        return None
    try:
        lib = ctypes.CDLL(str(path))
        _bind(lib)
    except OSError:
        _load_failed = True
        return None
    _lib = lib
    return lib


def available() -> bool:
    """True when the compiled tier can actually serve calls."""
    return load() is not None


def _bind(lib: ctypes.CDLL) -> None:
    lib.hd_wavefronts.restype = ctypes.c_int
    lib.hd_wavefronts.argtypes = [
        ctypes.c_int64, _i64, _i64,  # n, indptr, indices
        _i64, _i64, _i64,            # level, order, wptr
        ctypes.POINTER(ctypes.c_int64),  # n_levels_out
    ]
    lib.hd_lbp.restype = ctypes.c_int
    lib.hd_lbp.argtypes = [
        ctypes.c_int64, _i64, _i64,          # n, indptr, indices
        _f64, ctypes.c_int64, ctypes.c_double, ctypes.c_int,  # cost, p, eps, fine
        _i64, _i64, _i64, ctypes.c_int64,    # level, order, wptr, n_levels
        _i64, _i64, _i64, _i64,              # cw_lo, cw_hi, cw_vptr, cw_verts
        _i64, _i64, _i64, _f64,              # cw_cptr, cw_sizes, cw_assign, cw_loads
        _f64, _u8,                           # dec_pgp, dec_merged
        ctypes.POINTER(ctypes.c_int64),      # n_cw_out
        ctypes.POINTER(ctypes.c_double),     # acc_out
        ctypes.POINTER(ctypes.c_uint8),      # fine_out
    ]
    lib.hd_coarsen.restype = ctypes.c_int
    lib.hd_coarsen.argtypes = [
        ctypes.c_int64, _i64, _i64,          # n, indptr, indices
        _i64, ctypes.c_int64, _f64,          # labels, n_groups, cost
        _i64, _i64, ctypes.POINTER(ctypes.c_int64),  # out_indptr, out_indices, out_nedges
        _f64,                                # group_cost
    ]
