"""Step 2 of HDagg: Load-balance Preserving (LBP) wavefront coarsening.

Algorithm 1, Lines 21-38.  Starting from the first wavefront of the coarsened
DAG ``G''``, LBP keeps merging the next wavefront into the current coarsened
wavefront while the merged range's connected components can be first-fit
bin-packed into ``p`` bins with PGP below the threshold ``ε``.  When a merge
would break balance, the current range is emitted (a *cut*) and coarsening
restarts from the wavefront that broke it.  A range stuck at a single
unbalanced wavefront is emitted as-is (Line 27-28: "Single Unbalanced Wave").

Implementation note: the paper's listing advances ``cut`` to ``i`` in the
general branch, which would drop wavefront ``i-1`` from every range; we keep
it (cut to the first unmerged wavefront and re-pack the single-wave
candidate), which matches the worked example in Figure 2/3 — W1,W2 merge,
W3 and W4 are emitted alone — and the prose "a cut occurs if continuing to
merge with the next wavefront results in load imbalance".

Lines 36-38: if the PGP accumulated across all coarsened wavefronts still
exceeds ``ε``, bin packing is disabled and every connected component becomes
a fine-grained task for the runtime scheduler to balance dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.connected_components import components_as_lists
from ..graph.dag import DAG, gather_slices
from ..graph.wavefronts import Wavefronts, compute_wavefronts
from .binpack import BinPacking, first_fit_pack
from .pgp import DEFAULT_EPSILON, pgp

__all__ = [
    "CoarsenedWavefront",
    "LBPDecision",
    "LBPResult",
    "lbp_coarsen",
    "lbp_coarsen_reference",
]


@dataclass
class CoarsenedWavefront:
    """One merged wavefront range with its packing.

    ``components`` are arrays of *coarse* vertex ids (ordered by smallest
    member); ``packing.assignment[k]`` is the bin of ``components[k]``.
    """

    wave_lo: int
    wave_hi: int  # exclusive
    components: List[np.ndarray]
    packing: BinPacking

    @property
    def n_waves(self) -> int:
        return self.wave_hi - self.wave_lo

    @property
    def pgp(self) -> float:
        return self.packing.pgp()


@dataclass
class LBPDecision:
    """One step of the Figure-3 decision walk: try to merge wavefront ``wave``."""

    wave: int
    pgp: float
    merged: bool


@dataclass
class LBPResult:
    """Outcome of LBP coarsening over ``G''``."""

    coarsened: List[CoarsenedWavefront]
    waves: Wavefronts
    fine_grained: bool
    accumulated_pgp: float
    #: the merge/cut choice made at every wavefront (the paper's Figure 3
    #: highlighted path); empty for <= 1 wavefront
    decisions: List[LBPDecision] = None

    @property
    def cut_positions(self) -> List[int]:
        """Wavefront indices where cuts were placed."""
        return [cw.wave_lo for cw in self.coarsened[1:]]


def _pack_range(
    g2: DAG, waves: Wavefronts, cost: np.ndarray, p: int, lo: int, hi: int, pack=None
) -> CoarsenedWavefront:
    """``BinPack(CC(W[lo:hi]), C, p)`` — Lines 23/25 of Algorithm 1."""
    verts = waves.vertices_in_range(lo, hi)
    components = components_as_lists(g2, verts)
    comp_costs = np.array([float(cost[c].sum()) for c in components], dtype=np.float64)
    packing = (pack or first_fit_pack)(comp_costs, p)
    return CoarsenedWavefront(wave_lo=lo, wave_hi=hi, components=components, packing=packing)


@dataclass
class _RangeCandidate:
    """One evaluated merge candidate: packing now, component lists on demand."""

    wave_lo: int
    wave_hi: int
    sorted_verts: np.ndarray  # range vertices sorted by (component, id)
    boundaries: np.ndarray  # component starts within ``sorted_verts`` (without 0)
    packing: BinPacking

    def materialize(self) -> CoarsenedWavefront:
        """Build the emitted :class:`CoarsenedWavefront` (lists built here only)."""
        sv = self.sorted_verts
        if sv.size == 0:
            components: List[np.ndarray] = []
        else:
            # plain slice pairs, not np.split: split's per-piece swapaxes
            # overhead dominates when components are tiny and plentiful
            cuts = self.boundaries.tolist()
            starts = [0] + cuts
            ends = cuts + [sv.shape[0]]
            components = [np.ascontiguousarray(sv[a:b]) for a, b in zip(starts, ends)]
        return CoarsenedWavefront(
            wave_lo=self.wave_lo,
            wave_hi=self.wave_hi,
            components=components,
            packing=self.packing,
        )


class _RangeComponents:
    """Incremental ``CC(W[lo:hi])`` over a growing wavefront range.

    LBP only ever *extends* the candidate range by one wavefront or resets
    it to a single wavefront after a cut, so the connected components are
    maintained with a warm-started hook-and-jump union over just the edges
    the newest wavefront brings in, instead of re-running Shiloach-Vishkin
    over the whole range for every merge candidate.  Roots are component
    minima (hooking always points at the smaller root), reproducing the
    from-scratch labels exactly.
    """

    def __init__(
        self, g2: DAG, waves: Wavefronts, cost: np.ndarray, p: int, pack=None
    ) -> None:
        self.g2 = g2
        self.waves = waves
        self.cost = cost
        self.p = p
        self.pack = pack or first_fit_pack
        self.level = waves.level
        self.parent = np.arange(g2.n, dtype=self.level.dtype)
        self.lo = 0
        self.hi = 0
        self.verts = np.empty(0, dtype=self.parent.dtype)

    def seed(self, lo: int, hi: int) -> None:
        """Reset the range to ``W[lo:hi]`` (entries outside it become stale)."""
        self.lo, self.hi = lo, hi
        self.verts = self.waves.vertices_in_range(lo, hi)
        self.parent[self.verts] = self.verts
        self._union_incoming(self.verts)

    def extend(self, new_hi: int) -> None:
        """Grow the range to ``W[lo:new_hi]``."""
        new_verts = self.waves.vertices_in_range(self.hi, new_hi)
        self.hi = new_hi
        self.parent[new_verts] = new_verts
        self.verts = np.concatenate((self.verts, new_verts))
        self._union_incoming(new_verts)

    def _union_incoming(self, new_verts: np.ndarray) -> None:
        """Union the in-edges of ``new_verts`` whose source is inside the range."""
        g2 = self.g2
        counts = g2.in_ptr[new_verts + 1] - g2.in_ptr[new_verts]
        srcs = gather_slices(g2.in_ptr, g2.in_idx, new_verts)
        if srcs.size == 0:
            return
        dsts = np.repeat(new_verts, counts)
        keep = self.level[srcs] >= self.lo  # sources above lo are in range
        srcs, dsts = srcs[keep], dsts[keep]
        parent = self.parent
        while srcs.size:
            ps, pd = parent[srcs], parent[dsts]
            lo_r = np.minimum(ps, pd)
            hi_r = np.maximum(ps, pd)
            active = lo_r != hi_r
            if not np.any(active):
                break
            np.minimum.at(parent, hi_r[active], lo_r[active])
            v = self.verts
            while True:
                pv = parent[v]
                ppv = parent[pv]
                if np.array_equal(ppv, pv):
                    break
                parent[v] = ppv

    def candidate(self) -> _RangeCandidate:
        """Evaluate the current range: component costs and first-fit packing.

        Component costs reproduce the reference's ``cost[members].sum()``
        bit for bit (same gathered array, same ``np.sum`` pairwise
        reduction), so packing decisions and the epsilon comparison can
        never drift by a summation-order ulp.  Length-1/2 segments — the
        overwhelming majority — are summed directly (provably identical to
        ``np.sum`` there); longer segments call ``np.sum`` per segment.
        """
        roots = self.parent[self.verts]
        # single int64 key sort == lexsort((verts, roots)): verts are unique,
        # so root*n + vert orders by (root, vert) with no stability concerns
        order = np.argsort(roots * np.int64(self.g2.n) + self.verts)
        sv = np.ascontiguousarray(self.verts[order])
        sr = roots[order]
        if sv.size == 0:
            boundaries = np.empty(0, dtype=np.int64)
        else:
            boundaries = np.flatnonzero(sr[1:] != sr[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        ends = np.concatenate((boundaries, np.array([sv.shape[0]], dtype=np.int64)))
        lengths = ends - starts
        cost_sv = self.cost[sv]
        comp_costs = np.empty(starts.shape[0], dtype=np.float64)
        one = lengths == 1
        comp_costs[one] = cost_sv[starts[one]]
        two = lengths == 2
        comp_costs[two] = cost_sv[starts[two]] + cost_sv[starts[two] + 1]
        for k in np.flatnonzero(lengths > 2).tolist():
            comp_costs[k] = cost_sv[starts[k] : ends[k]].sum()
        if sv.size == 0:
            comp_costs = np.empty(0, dtype=np.float64)
        packing = self.pack(comp_costs, self.p)
        return _RangeCandidate(
            wave_lo=self.lo,
            wave_hi=self.hi,
            sorted_verts=sv,
            boundaries=boundaries,
            packing=packing,
        )


def lbp_coarsen(
    g2: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    allow_fine_grained: bool = True,
    pack=None,
) -> LBPResult:
    """Run LBP on the coarsened DAG ``g2`` with per-coarse-vertex ``cost``.

    Parameters mirror Algorithm 1: ``p`` is the core count, ``epsilon`` the
    load-balance threshold.  ``allow_fine_grained=False`` suppresses the
    Lines 36-38 fallback (used by ablation benchmarks).  ``pack`` swaps the
    bin-packing implementation (the backend registry's ``binpack`` stage);
    ``None`` means :func:`first_fit_pack`.

    Fast path: merge candidates share one incremental component structure
    (see :class:`_RangeComponents`); the decision walk and every emitted
    coarsened wavefront match :func:`lbp_coarsen_reference`.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.shape[0] != g2.n:
        raise ValueError(f"cost has length {cost.shape[0]}, expected {g2.n}")
    waves = compute_wavefronts(g2)
    l = waves.n_levels
    coarsened: List[CoarsenedWavefront] = []
    decisions: List[LBPDecision] = []
    if l == 0:
        return LBPResult(
            coarsened=[], waves=waves, fine_grained=False,
            accumulated_pgp=0.0, decisions=decisions,
        )

    cc = _RangeComponents(g2, waves, cost, p, pack)
    cc.seed(0, 1)
    prev = cc.candidate()  # Line 23 seed
    i = 1
    while i < l:
        cc.extend(i + 1)
        cand = cc.candidate()  # Line 25
        score = pgp(cand.packing.loads)
        if score > epsilon:  # Line 26
            decisions.append(LBPDecision(wave=i, pgp=score, merged=False))
            coarsened.append(prev.materialize())  # Lines 27-31
            cc.seed(i, i + 1)  # cut before the wavefront that broke balance
            prev = cc.candidate()
        else:
            decisions.append(LBPDecision(wave=i, pgp=score, merged=True))
            prev = cand  # Line 34
        i += 1
    coarsened.append(prev.materialize())

    # Lines 36-38: accumulated imbalance across the whole schedule.
    total_mean = sum(float(cw.packing.loads.mean()) for cw in coarsened)
    total_max = sum(float(cw.packing.loads.max()) for cw in coarsened)
    accumulated = 1.0 - total_mean / total_max if total_max > 0 else 0.0
    fine = allow_fine_grained and accumulated > epsilon
    return LBPResult(
        coarsened=coarsened, waves=waves, fine_grained=fine,
        accumulated_pgp=accumulated, decisions=decisions,
    )


def lbp_coarsen_reference(
    g2: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    allow_fine_grained: bool = True,
    pack=None,
) -> LBPResult:
    """Per-candidate from-scratch LBP — the retained oracle for the fast path."""
    cost = np.asarray(cost, dtype=np.float64)
    if cost.shape[0] != g2.n:
        raise ValueError(f"cost has length {cost.shape[0]}, expected {g2.n}")
    waves = compute_wavefronts(g2)
    l = waves.n_levels
    coarsened: List[CoarsenedWavefront] = []
    decisions: List[LBPDecision] = []
    if l == 0:
        return LBPResult(
            coarsened=[], waves=waves, fine_grained=False,
            accumulated_pgp=0.0, decisions=decisions,
        )

    cut = 0
    prev = _pack_range(g2, waves, cost, p, 0, 1, pack)  # Line 23 seed
    i = 1
    while i < l:
        cand = _pack_range(g2, waves, cost, p, cut, i + 1, pack)  # Line 25
        score = pgp(cand.packing.loads)
        if score > epsilon:  # Line 26
            decisions.append(LBPDecision(wave=i, pgp=score, merged=False))
            coarsened.append(prev)  # Lines 27-31 (single wave == prev here)
            cut = i  # cut before the wavefront that broke balance
            prev = _pack_range(g2, waves, cost, p, cut, i + 1, pack)
        else:
            decisions.append(LBPDecision(wave=i, pgp=score, merged=True))
            prev = cand  # Line 34
        i += 1
    coarsened.append(prev)

    # Lines 36-38: accumulated imbalance across the whole schedule.
    total_mean = sum(float(cw.packing.loads.mean()) for cw in coarsened)
    total_max = sum(float(cw.packing.loads.max()) for cw in coarsened)
    accumulated = 1.0 - total_mean / total_max if total_max > 0 else 0.0
    fine = allow_fine_grained and accumulated > epsilon
    return LBPResult(
        coarsened=coarsened, waves=waves, fine_grained=fine,
        accumulated_pgp=accumulated, decisions=decisions,
    )
