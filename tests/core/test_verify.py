"""Tests for the one-call schedule verifier."""

import numpy as np
import pytest

from repro.core import Schedule, ScheduleError, WidthPartition, hdagg
from repro.core.verify import verify_schedule
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


@pytest.fixture(scope="module")
def setup(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    return kernel, low, g


def test_good_schedule_passes(setup):
    kernel, low, g = setup
    s = hdagg(g, kernel.cost(low), 4)
    report = verify_schedule(kernel, low, s, g)
    assert report.ok
    assert report.interleavings_checked == 2
    report.raise_if_failed()  # no-op


@pytest.mark.parametrize("algo", ["wavefront", "spmp", "lbc", "dagp"])
def test_all_baselines_pass(setup, algo):
    kernel, low, g = setup
    s = SCHEDULERS[algo](g, kernel.cost(low), 4)
    assert verify_schedule(kernel, low, s, g, interleavings=1).ok


def test_structural_failure_reported(setup):
    kernel, low, g = setup
    bad = Schedule(
        n=g.n,
        levels=[[WidthPartition(0, np.arange(g.n - 1))]],  # drops a vertex
        sync="barrier", algorithm="bad", n_cores=1,
    )
    report = verify_schedule(kernel, low, bad, g)
    assert not report.structural_ok
    assert not report.ok
    assert any("structural" in e for e in report.errors)
    with pytest.raises(ScheduleError):
        report.raise_if_failed()


def test_dependence_failure_reported(setup):
    kernel, low, g = setup
    bad = Schedule(
        n=g.n,
        levels=[[WidthPartition(0, np.arange(g.n)[::-1].copy())]],
        sync="barrier", algorithm="bad", n_cores=1,
    )
    report = verify_schedule(kernel, low, bad, g)
    assert report.structural_ok
    assert not report.dependences_ok
    assert any("dependences" in e for e in report.errors)


def test_dag_inferred_when_omitted(setup):
    kernel, low, g = setup
    s = hdagg(g, kernel.cost(low), 2)
    assert verify_schedule(kernel, low, s).ok


def test_factorisation_kernels_verify(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    s = hdagg(g, kernel.cost(mesh_nd), 4)
    assert verify_schedule(kernel, mesh_nd, s, g, interleavings=1).ok
