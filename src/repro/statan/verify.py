"""Static dataflow verification of pass pipelines (the ``SP0xx`` rules).

:func:`verify_pipeline` analyses a :class:`~repro.passes.base.PassGroup`
**without executing anything**: it walks the declared contracts,
propagating artifact availability and invariant state exactly the way
the executor would propagate real values, and rejects ill-formed
pipelines with structured diagnostics.  Rules:

======  ==============================================================
SP001   a pass requires an artifact nothing before it provides
SP002   a pass requires an invariant that is not established/assumed
SP003   a pass's product is never consumed and is not a group output
SP004   backend binding is broken (unknown stage, unregistered tier,
        or a registry stage missing its reference/numpy tiers)
SP005   two producers for one artifact (or a pass shadowing an input)
SP006   a declared group output is never produced
SP007   a required invariant was explicitly invalidated upstream
SP008   a pass "preserves" an invariant that is not even held (warning)
======  ==============================================================

A group is *accepted* when no error-severity diagnostic is emitted
(``SP008`` is a warning).  CI verifies every registered group at import
cost only — this is how a recombined pipeline (new scheduler wired from
existing passes) fails the build before it can produce a wrong schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..passes.base import Pass, PassGroup
from .diagnostics import Diagnostic

__all__ = ["verify_pipeline", "verify_registered_groups", "assert_valid"]


def _diag(
    group: PassGroup,
    p: Optional[Pass],
    rule: str,
    message: str,
    hint: str,
    severity: str = "error",
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        message=message,
        severity=severity,
        group=group.name,
        pass_name=None if p is None else p.name,
        hint=hint,
    )


def _check_backend_binding(group: PassGroup, p: Pass) -> List[Diagnostic]:
    """SP004: the pass's backend-registry binding must be coherent."""
    from ..core.backends import registered_tiers

    out: List[Diagnostic] = []
    if p.stage is None:
        return out
    try:
        tiers = registered_tiers(p.stage)
    except ValueError:
        out.append(
            _diag(
                group,
                p,
                "SP004",
                f"pass binds unknown backend stage {p.stage!r}",
                "use a stage from repro.core.backends.STAGES or register it",
            )
        )
        return out
    for tier in p.tiers:
        if tier not in tiers:
            out.append(
                _diag(
                    group,
                    p,
                    "SP004",
                    f"declared tier {tier!r} has no registered loader for stage {p.stage!r}",
                    f"register_backend({p.stage!r}, {tier!r}, loader) or drop the tier",
                )
            )
    for required in ("reference", "numpy"):
        if required not in tiers:
            out.append(
                _diag(
                    group,
                    p,
                    "SP004",
                    f"backend stage {p.stage!r} lacks the mandatory {required!r} tier",
                    f"every registry stage needs a {required!r} loader "
                    "(the differential oracle discipline)",
                )
            )
    return out


def verify_pipeline(group: PassGroup) -> List[Diagnostic]:
    """Dataflow-verify one pass group; returns structured diagnostics.

    An empty list (or warnings only) means the pipeline is well-formed:
    every required artifact has exactly one provider ordered before its
    consumer, invariants needed are held where needed, nothing dead,
    every output produced, every backend binding registered.
    """
    diags: List[Diagnostic] = []

    #: artifact -> provider ("<inputs>" or a pass name)
    provider: Dict[str, str] = {a: "<inputs>" for a in group.inputs}
    #: invariant -> holder; removed when invalidated
    held: Dict[str, str] = {inv: "<assumes>" for inv in group.assumes}
    #: invariant -> the pass that last invalidated it
    invalidated_by: Dict[str, str] = {}
    #: artifact -> index of the last pass that consumed it
    consumed: Dict[str, bool] = {}
    produced_by_pass: List[Tuple[Pass, str]] = []

    for p in group.passes:
        for a in p.contract.requires:
            if a in provider:
                consumed[a] = True
            else:
                later = [
                    q.name
                    for q in group.passes
                    if a in q.contract.produces and q is not p
                ]
                hint = (
                    f"move pass {later[0]!r} (which produces it) before {p.name!r}"
                    if later
                    else f"add {a!r} to the group inputs or a producing pass before {p.name!r}"
                )
                diags.append(
                    _diag(group, p, "SP001", f"requires artifact {a!r} which is not available", hint)
                )
        for inv in p.contract.requires_invariants:
            if inv in held:
                continue
            if inv in invalidated_by:
                diags.append(
                    _diag(
                        group,
                        p,
                        "SP007",
                        f"requires invariant {inv!r} after pass "
                        f"{invalidated_by[inv]!r} invalidated it",
                        f"re-establish {inv!r} between {invalidated_by[inv]!r} "
                        f"and {p.name!r}, or reorder the passes",
                    )
                )
            else:
                diags.append(
                    _diag(
                        group,
                        p,
                        "SP002",
                        f"requires invariant {inv!r} which is neither assumed nor established",
                        f"add {inv!r} to the group assumes or have an earlier pass establish it",
                    )
                )
        for inv in p.contract.preserves:
            if inv not in held:
                diags.append(
                    _diag(
                        group,
                        p,
                        "SP008",
                        f"claims to preserve invariant {inv!r} which is not held here",
                        "drop the vacuous preserves entry or establish the invariant upstream",
                        severity="warning",
                    )
                )
        diags.extend(_check_backend_binding(group, p))
        for a in p.contract.produces:
            if a in provider:
                diags.append(
                    _diag(
                        group,
                        p,
                        "SP005",
                        f"produces artifact {a!r} already provided by {provider[a]!r}",
                        "rename the product or remove the redundant producer",
                    )
                )
            provider[a] = p.name
            produced_by_pass.append((p, a))
        for inv in p.contract.invalidates:
            if inv in held:
                del held[inv]
            invalidated_by[inv] = p.name
        for inv in p.contract.establishes:
            held[inv] = p.name
            invalidated_by.pop(inv, None)

    for p, a in produced_by_pass:
        if a not in consumed and a not in group.outputs:
            diags.append(
                _diag(
                    group,
                    p,
                    "SP003",
                    f"product {a!r} is never consumed and is not a group output",
                    f"consume {a!r} downstream, add it to outputs, or stop producing it",
                )
            )
    for out in group.outputs:
        if out not in provider:
            diags.append(
                _diag(
                    group,
                    None,
                    "SP006",
                    f"group output {out!r} is never produced",
                    f"add a pass producing {out!r} or remove it from outputs",
                )
            )
    return diags


def verify_registered_groups() -> Dict[str, List[Diagnostic]]:
    """Verify every group in :data:`repro.passes.registry.PASS_GROUPS`."""
    from ..passes.registry import PASS_GROUPS

    return {name: verify_pipeline(group) for name, group in sorted(PASS_GROUPS.items())}


def assert_valid(group: PassGroup) -> None:
    """Raise ``ValueError`` with rendered diagnostics if ``group`` is rejected."""
    errors = [d for d in verify_pipeline(group) if d.severity == "error"]
    if errors:
        detail = "\n".join(d.render() for d in errors)
        raise ValueError(f"pass group {group.name!r} is ill-formed:\n{detail}")
