"""Tests for the schedule-driven executor and interleaving generator."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import dag_from_matrix_lower, verify_schedule_order
from repro.kernels import KERNELS, KernelError
from repro.runtime import execute_schedule, interleaved_order
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


def test_interleaved_order_is_level_consistent(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["hdagg"](g, np.ones(g.n), 4)
    for seed in range(3):
        order = interleaved_order(s, seed=seed)
        assert verify_schedule_order(g, order)


def test_interleavings_differ_by_seed(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["wavefront"](g, np.ones(g.n), 4)
    o1 = interleaved_order(s, seed=1)
    o2 = interleaved_order(s, seed=2)
    assert not np.array_equal(o1, o2)


def test_interleaved_preserves_partition_order():
    s = Schedule(
        n=4,
        levels=[[WidthPartition(0, np.array([0, 2])), WidthPartition(1, np.array([1, 3]))]],
        sync="barrier", algorithm="t", n_cores=2,
    )
    order = interleaved_order(s, seed=0)
    pos = {int(v): i for i, v in enumerate(order)}
    assert pos[0] < pos[2] and pos[1] < pos[3]


def test_execute_schedule_canonical(mesh_nd, rng):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    s = SCHEDULERS["hdagg"](g, kernel.cost(low), 4)
    b = rng.normal(size=mesh_nd.n_rows)
    got = execute_schedule(kernel, low, s, b)
    np.testing.assert_allclose(got, kernel.reference(low, b), rtol=1e-10)


def test_execute_schedule_interleaved_factorisation(mesh_nd):
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    s = SCHEDULERS["spmp"](g, kernel.cost(mesh_nd), 4)
    got = execute_schedule(kernel, mesh_nd, s, interleave_seed=7)
    np.testing.assert_allclose(got.data, kernel.reference(mesh_nd).data, rtol=1e-10)


def test_bad_schedule_raises_through_executor(mesh_nd):
    """A schedule that violates dependences is caught at execution time."""
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    n = g.n
    bad = Schedule(
        n=n,
        levels=[[WidthPartition(0, np.arange(n)[::-1].copy())]],
        sync="barrier", algorithm="bad", n_cores=1,
    )
    with pytest.raises(KernelError):
        execute_schedule(kernel, low, bad)


def test_empty_schedule():
    s = Schedule(n=0, levels=[], sync="barrier", algorithm="t", n_cores=1)
    assert interleaved_order(s).size == 0
