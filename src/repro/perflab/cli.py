"""``hdagg-bench perf``: the longitudinal benchmark lab.

Subcommands::

    perf run      measure the smoke cells under the adaptive protocol,
                  append to the JSONL history, rewrite the trajectory
                  snapshot (and optionally migrate a legacy
                  BENCH_inspector.json into the history first)
    perf compare  full statistical comparison of each series' latest
                  observation against its predecessor or a blessed
                  baseline history, with stage attribution tables
    perf report   render the history (+ comparison verdicts) as markdown
                  and a self-contained HTML file
    perf gate     one verdict line per series; exit 1 on any *confirmed*
                  regression (``--warn-only`` downgrades to exit 0)

Baseline blessing is just file plumbing: ``perf run --history new.jsonl``
on a known-good tree, then commit that file (CI keeps one at
``benchmarks/perf_baseline.jsonl``) and point ``perf gate --baseline`` at
it.  ``--stall-stage lbp:0.005`` arms the ``inspector.stage`` fault site
so a deterministic stall lands inside one named inspector stage — the
end-to-end check that a regression is not only detected but attributed.

Examples::

    hdagg-bench perf run --history perf-history.jsonl --note "pre-change"
    hdagg-bench perf run --history perf-history.jsonl --stall-stage lbp:0.005
    hdagg-bench perf gate --history perf-history.jsonl
    hdagg-bench perf report --history perf-history.jsonl --out-dir perf-out
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

import statistics

from .bench import (
    PERF_SMOKE,
    REPAIR_SMOKE_MATRIX,
    run_inspector_benchmarks,
    run_repair_benchmark,
)
from .compare import ObservationComparison, compare_observations, compare_series
from .history import HistoryStore, write_trajectory, migrate_bench_inspector
from .protocol import MeasurementProtocol, Observation
from .report import html_report, markdown_report

__all__ = ["perf_main", "build_perf_parser"]


def _add_history_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--history", default="perf-history.jsonl",
                   help="append-only JSONL history store (default: %(default)s)")


def _add_compare_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--baseline", default=None,
                   help="blessed baseline history (JSONL); compare each "
                        "series' latest observation against the baseline's "
                        "instead of its own predecessor")
    p.add_argument("--min-effect", type=float, default=0.05,
                   help="noise floor: relative shifts whose interval does not "
                        "clear this are never confirmed (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="bootstrap seed (verdicts are deterministic under it)")


def build_perf_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="hdagg-bench perf", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure and append to the history")
    _add_history_arg(run)
    run.add_argument("--matrices", nargs="+", default=list(PERF_SMOKE))
    run.add_argument("--kernel", default="sptrsv",
                     choices=["sptrsv", "spic0", "spilu0"])
    run.add_argument("--algorithm", default="hdagg")
    run.add_argument("--machine", default="intel20")
    run.add_argument("--cores", type=int, default=None)
    run.add_argument("--ordering", default="nd",
                     choices=["nd", "rcm", "natural", "random"])
    run.add_argument("--epsilon", type=float, default=None)
    run.add_argument("--backend", default=None, metavar="SPEC",
                     help="inspector backend spec for hdagg cells, e.g. "
                          "'lbp=compiled,coarsen=compiled' or 'compiled' "
                          "(default: follow REPRO_BACKENDS; stamped into "
                          "the fingerprint so tiers never share a series)")
    run.add_argument("--no-repair-cell", action="store_true",
                     help="skip the repair-vs-full smoke cell appended "
                          "after the inspector cells (warn-only either way)")
    run.add_argument("--warmup", type=int, default=2)
    run.add_argument("--min-reps", type=int, default=5)
    run.add_argument("--max-reps", type=int, default=30)
    run.add_argument("--target-ci", type=float, default=0.05,
                     help="adaptive-stop relative CI halfwidth (default: %(default)s)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--note", default="", help="free-text provenance stamped "
                     "into each observation")
    run.add_argument("--trajectory", default="BENCH_trajectory.json",
                     help="trajectory snapshot rewritten after the run "
                          "('' disables; default: %(default)s)")
    run.add_argument("--migrate", default=None, metavar="BENCH_JSON",
                     help="first lift a legacy BENCH_inspector.json into the "
                          "history (skipped if already migrated)")
    run.add_argument("--stall-stage", default=None, metavar="STAGE:SECONDS",
                     help="arm a deterministic stall inside one inspector "
                          "stage (e.g. lbp:0.005) — for exercising the gate")

    cmp_ = sub.add_parser("compare", help="statistical comparison per series")
    _add_history_arg(cmp_)
    _add_compare_args(cmp_)

    rep = sub.add_parser("report", help="render markdown + HTML report")
    _add_history_arg(rep)
    _add_compare_args(rep)
    rep.add_argument("--out-dir", default=None,
                     help="also write perf_report.md / perf_report.html here")
    rep.add_argument("--title", default="Perf-lab report")

    gate = sub.add_parser("gate", help="exit 1 on confirmed regressions")
    _add_history_arg(gate)
    _add_compare_args(gate)
    gate.add_argument("--warn-only", action="store_true",
                      help="report regressions but exit 0 (CI soft-launch)")
    return p


#: documented incremental-repair budget: repair of a small pattern delta
#: should cost at most this fraction of a full re-inspection
_REPAIR_BUDGET = 0.25


def _warn_repair_ratio(obs: Observation) -> None:
    """Advisory check of the repair smoke cell — never fails the run."""
    repairs = [t for t in obs.stages.get("repair", []) if t > 0]
    fulls = [t for t in obs.stages.get("full", []) if t > 0]
    if not repairs or not fulls:
        return
    ratio = statistics.median(repairs) / statistics.median(fulls)
    verdict = "within" if ratio <= _REPAIR_BUDGET else "OVER"
    line = (f"# repair smoke cell: median repair {ratio:.2f}x of a full "
            f"inspection — {verdict} the {_REPAIR_BUDGET:.0%} budget")
    if ratio > _REPAIR_BUDGET:
        line += " (warn-only; not gating)"
    print(line, file=sys.stderr)


def _parse_stall(spec: str) -> Tuple[str, float]:
    try:
        stage, seconds = spec.rsplit(":", 1)
        return stage, float(seconds)
    except ValueError:
        raise SystemExit(f"--stall-stage expects STAGE:SECONDS, got {spec!r}")


def _comparisons(
    store: HistoryStore,
    *,
    baseline_path: Optional[str],
    min_effect: float,
    seed: int,
) -> List[ObservationComparison]:
    """One comparison per series that has something to compare against.

    With a baseline store, a series matches first on (key, digest); a
    baseline observation of the same key under a *different* digest is
    still used (the environment changed under the series) but the verdict
    carries the fingerprint-mismatch warning.
    """
    baseline = HistoryStore(baseline_path) if baseline_path else None
    out: List[ObservationComparison] = []
    for key, digest in store.series_keys():
        series = store.series(key, digest)
        if baseline is not None:
            old = baseline.latest(key, digest)
            if old is None:
                for bkey, bdigest in baseline.series_keys():
                    if bkey == key:
                        old = baseline.latest(bkey, bdigest)
                        break
            if old is None:
                continue
            c = compare_observations(
                old, series[-1],
                min_effect=min_effect, seed=seed, history=series,
            )
        else:
            c = compare_series(series, min_effect=min_effect, seed=seed)
        if c is not None:
            out.append(c)
    return out


# ----------------------------------------------------------------------
def _cmd_run(args) -> int:
    store = HistoryStore(args.history)
    if args.migrate:
        already = any(
            fp.extra.get("migrated_from") == args.migrate
            for fp in store.fingerprints().values()
        )
        if already:
            print(f"# {args.migrate} already migrated into {args.history}; skipping",
                  file=sys.stderr)
        else:
            migrated = migrate_bench_inspector(args.migrate)
            store.extend(migrated)
            print(f"# migrated {len(migrated)} legacy observations from "
                  f"{args.migrate}", file=sys.stderr)
    protocol = MeasurementProtocol(
        warmup=args.warmup,
        min_reps=args.min_reps,
        max_reps=args.max_reps,
        target_rel_ci=args.target_ci,
        seed=args.seed,
    )

    def progress(obs: Observation) -> None:
        st = obs.stats
        mark = "" if obs.converged else " (CI target not reached)"
        print(f"# {obs.key.label()}: median {st.statistic * 1e3:.3f} ms "
              f"[{st.lo * 1e3:.3f}, {st.hi * 1e3:.3f}] over {obs.reps} reps "
              f"in {obs.protocol_seconds:.2f}s{mark}", file=sys.stderr)

    def measure() -> List[Observation]:
        observations = run_inspector_benchmarks(
            args.matrices,
            kernel=args.kernel,
            algorithm=args.algorithm,
            machine=args.machine,
            cores=args.cores,
            ordering=args.ordering,
            epsilon=args.epsilon,
            backend=args.backend,
            protocol=protocol,
            note=args.note,
            progress=progress,
        )
        if args.algorithm == "hdagg" and not args.no_repair_cell:
            # the repair cell keeps its own matrix/cores/ordering defaults:
            # they pin the documented repair-budget configuration rather
            # than following the inspector cells' grid
            obs = run_repair_benchmark(
                REPAIR_SMOKE_MATRIX,
                kernel=args.kernel,
                epsilon=args.epsilon,
                backend=args.backend,
                protocol=protocol,
                note=args.note,
                progress=progress,
            )
            observations.append(obs)
            _warn_repair_ratio(obs)
        return observations

    if args.stall_stage:
        from ..resilience.faults import FaultPlan, FaultSpec, armed

        stage, seconds = _parse_stall(args.stall_stage)
        plan = FaultPlan([
            FaultSpec("inspector.stage", "stall", at=0, times=-1,
                      match=stage, duration=seconds),
        ])
        print(f"# stalling inspector stage {stage!r} by {seconds * 1e3:.1f} ms "
              f"per occurrence", file=sys.stderr)
        with armed(plan):
            observations = measure()
    else:
        observations = measure()
    store.extend(observations)
    print(f"# {len(observations)} observations appended to {args.history} "
          f"({len(store)} total)", file=sys.stderr)
    if args.trajectory:
        write_trajectory(store, args.trajectory)
        print(f"# trajectory snapshot: {args.trajectory}", file=sys.stderr)
    return 0


def _cmd_compare(args) -> int:
    store = HistoryStore(args.history)
    comparisons = _comparisons(
        store, baseline_path=args.baseline, min_effect=args.min_effect,
        seed=args.seed,
    )
    if not comparisons:
        print("# nothing to compare (need >= 2 observations per series, "
              "or a --baseline)", file=sys.stderr)
        return 0
    print(markdown_report(store, comparisons, title="Perf-lab comparison"))
    from ..observability.reports import stage_share_report

    for key, digest in store.series_keys():
        latest = store.latest(key, digest)
        medians = {
            name: statistics.median(vals)
            for name, vals in latest.stages.items() if vals
        }
        if medians:
            print(f"\n{key.label()} (latest observation)")
            print(stage_share_report(medians))
    return 0


def _cmd_report(args) -> int:
    store = HistoryStore(args.history)
    comparisons = _comparisons(
        store, baseline_path=args.baseline, min_effect=args.min_effect,
        seed=args.seed,
    )
    md = markdown_report(store, comparisons, title=args.title)
    print(md)
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        md_path = os.path.join(args.out_dir, "perf_report.md")
        html_path = os.path.join(args.out_dir, "perf_report.html")
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(md)
        with open(html_path, "w", encoding="utf-8") as fh:
            fh.write(html_report(store, comparisons, title=args.title))
        print(f"# wrote {md_path} and {html_path}", file=sys.stderr)
    return 0


def _cmd_gate(args) -> int:
    store = HistoryStore(args.history)
    comparisons = _comparisons(
        store, baseline_path=args.baseline, min_effect=args.min_effect,
        seed=args.seed,
    )
    if not comparisons:
        print("# gate: nothing to compare (need >= 2 observations per "
              "series, or a --baseline) — passing", file=sys.stderr)
        return 0
    for c in comparisons:
        print(c.describe())
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        print(f"# gate: {len(regressed)} confirmed regression(s) out of "
              f"{len(comparisons)} series", file=sys.stderr)
        if args.warn_only:
            print("# gate: --warn-only set; exiting 0", file=sys.stderr)
            return 0
        return 1
    print(f"# gate: no confirmed regressions across {len(comparisons)} series",
          file=sys.stderr)
    return 0


def perf_main(argv: Optional[List[str]] = None) -> int:
    args = build_perf_parser().parse_args(argv)
    return {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "gate": _cmd_gate,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(perf_main())
