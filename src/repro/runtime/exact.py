"""Exact trace-based cache simulation — the edge model's differential oracle.

The production simulator scores locality with a vectorized edge rule
(:mod:`repro.runtime.simulator`).  This module runs the *slow, literal*
version instead: each kernel iteration's full cache-line trace
(:meth:`~repro.kernels.base.SparseKernel.memory_trace`) is pushed through
a per-core exact LRU cache in schedule order.  It is O(total accesses)
Python work — strictly a verification and analysis tool — and the tests
use it to bound the fast model: the two agree on the *ordering* of
schedules by locality even where their absolute hit counts differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.schedule import Schedule
from ..runtime.simulator import bind_dynamic_partitions
from .cache import LRUCache
from .machine import MachineConfig

__all__ = ["ExactCacheStats", "simulate_cache_exact"]


@dataclass(frozen=True)
class ExactCacheStats:
    """Hit/miss totals of an exact per-core LRU replay."""

    hits: int
    misses: int
    per_core_hits: Dict[int, int]
    per_core_misses: Dict[int, int]

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total_accesses if self.total_accesses else 0.0

    def avg_memory_access_latency(self, machine: MachineConfig) -> float:
        """The paper's locality metric under the exact replay."""
        if self.total_accesses == 0:
            return 0.0
        return (
            machine.hit_cycles * self.hits + machine.miss_cycles * self.misses
        ) / self.total_accesses


def simulate_cache_exact(
    schedule: Schedule,
    trace_ptr: np.ndarray,
    trace_lines: np.ndarray,
    machine: MachineConfig,
    cost: np.ndarray | None = None,
) -> ExactCacheStats:
    """Replay the full line trace through exact per-core LRU caches.

    Vertices run in schedule order on their assigned cores; each core owns
    an :class:`~repro.runtime.cache.LRUCache` of the machine's per-core
    capacity.  Cross-core coherence is modelled as in the fast path: a line
    resident in another core's cache does not help (private caches).
    """
    if cost is None:
        cost = np.ones(schedule.n, dtype=np.float64)
    schedule = bind_dynamic_partitions(schedule, cost)
    p = machine.n_cores
    caches: Dict[int, LRUCache] = {}
    per_hits: Dict[int, int] = {}
    per_miss: Dict[int, int] = {}
    # writes invalidate other cores' copies: track the last writer per line
    # via ownership — simplest faithful version: a line fetched by core c is
    # removed from every other cache (exclusive ownership on touch).
    owner: Dict[int, int] = {}
    for _, part in schedule.iter_partitions():
        c = part.core % p
        cache = caches.setdefault(c, LRUCache(machine.cache_lines_per_core))
        per_hits.setdefault(c, 0)
        per_miss.setdefault(c, 0)
        for v in part.vertices.tolist():
            for line in trace_lines[trace_ptr[v] : trace_ptr[v + 1]].tolist():
                prev = owner.get(line)
                if prev is not None and prev != c:
                    # exclusive transfer: the previous owner loses the line
                    caches[prev]._lines.pop(line, None)
                owner[line] = c
                if cache.access(line):
                    per_hits[c] += 1
                else:
                    per_miss[c] += 1
    return ExactCacheStats(
        hits=sum(per_hits.values()),
        misses=sum(per_miss.values()),
        per_core_hits=per_hits,
        per_core_misses=per_miss,
    )
