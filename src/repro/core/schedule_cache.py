"""Structure-keyed schedule cache.

Inspector output is a pure function of the dependence DAG's structure and
the scheduling parameters — re-running HDagg on the same sparsity pattern
with the same ``(kernel, algorithm, p, epsilon, options)`` always yields
the same schedule.  Solver pipelines exploit exactly this: a
factorization's pattern is fixed across hundreds of triangular solves, and
amortizing one inspection over them is what makes inspector-executor
frameworks pay off (the paper's NRE metric, Section V-D).

The key is a SHA-256 digest over the CSR structure bytes (``indptr`` and
``indices``) plus a canonical encoding of the parameters; two DAGs collide
only if they are structurally identical, in which case sharing the
schedule is precisely the point.  Entries are kept in LRU order with an
optional capacity bound, and hit/miss counters make cache effectiveness
observable from the harness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from typing import Callable, Optional

import numpy as np

from ..graph.dag import DAG
from ..observability.state import STATE as _OBS_STATE
from ..resilience.faults import fault_point
from .schedule import Schedule

__all__ = ["CacheStats", "ScheduleCache", "schedule_key"]

_KEY_VERSION = b"repro-schedule-key-v2\0"


def schedule_key(
    g: DAG,
    *,
    kernel: str = "",
    algorithm: str = "hdagg",
    p: int,
    epsilon: float | None = None,
    cost: np.ndarray | None = None,
    backend: str = "",
    options: dict | None = None,
) -> str:
    """Digest identifying one inspection problem.

    Covers the DAG structure (``indptr``/``indices`` bytes — the full CSR
    pattern), the kernel and algorithm names, the core count, epsilon, the
    active backend spec, and any extra keyword options (sorted by name,
    ``repr``-encoded).  ``cost`` is optional because kernels derive it
    deterministically from the pattern; pass it when costs come from
    elsewhere.  ``backend`` keeps schedules produced by different inspector
    tiers in distinct slots — tiers are bit-identical by contract, but a
    cache hit must never mask a tier divergence from the differential
    tests, and provenance (which tier built this schedule) must stay exact.
    """
    h = sha256(_KEY_VERSION)
    h.update(np.int64(g.n).tobytes())
    h.update(np.int64(g.n_edges).tobytes())
    h.update(np.ascontiguousarray(g.indptr).tobytes())
    h.update(np.ascontiguousarray(g.indices).tobytes())
    if cost is not None:
        h.update(b"cost\0")
        h.update(np.ascontiguousarray(cost, dtype=np.float64).tobytes())
    params = (
        kernel,
        algorithm,
        int(p),
        None if epsilon is None else float(epsilon),
        str(backend),
        sorted((options or {}).items()),
    )
    h.update(repr(params).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/entry counters of one :class:`ScheduleCache`."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ScheduleCache:
    """LRU map from :func:`schedule_key` digests to schedules.

    ``max_entries=None`` means unbounded (the harness's per-suite default:
    a suite holds a few hundred schedules at most).  Stored schedules are
    returned as-is — they are treated as immutable by every consumer.

    ``store`` optionally backs the cache with a persistent L2 — any
    object with ``get(key) -> Schedule | None`` and ``put(key, schedule)``
    (duck-typed so this module never imports :mod:`repro.store`; in
    practice a :class:`repro.store.ScheduleStore`).  Misses fall through
    to the store (promoting hits into the LRU), and :meth:`put` writes
    through best-effort — a store write failure never fails the caller,
    because the in-memory entry is already good.
    """

    def __init__(self, max_entries: Optional[int] = None, *, store=None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self.store = store
        self._entries: "OrderedDict[str, Schedule]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: str) -> Optional[Schedule]:
        """Look up a schedule; counts a hit or a miss.

        The ``schedule_cache.get`` fault site lets chaos runs hand back a
        deterministically corrupted schedule on a hit — consumers that
        re-validate hits (the harness) must catch it and fall back to a
        fresh inspection.
        """
        entry = self._entries.get(key)
        if entry is None:
            if self.store is not None:
                promoted = self.store.get(key)
                if promoted is not None:
                    # L2 hit: promote into the LRU (bypassing the write-
                    # through — the store already holds it) and serve
                    self._entries[key] = promoted
                    self._entries.move_to_end(key)
                    self._shrink_to_capacity()
                    self._hits += 1
                    if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                        _OBS_STATE.registry.counter("schedule_cache.store_hits").inc()
                        _OBS_STATE.registry.gauge("schedule_cache.entries").set(
                            len(self._entries)
                        )
                    return promoted
            self._misses += 1
            if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                _OBS_STATE.registry.counter("schedule_cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            _OBS_STATE.registry.counter("schedule_cache.hits").inc()
        injected = fault_point("schedule_cache.get", payload=entry, label=key)
        if injected is not None:
            return injected
        return entry

    def invalidate(self, key: str) -> bool:
        """Drop one entry (cache-corruption recovery); True when it existed."""
        return self._entries.pop(key, None) is not None

    def _shrink_to_capacity(self) -> None:
        """Evict LRU entries past ``max_entries``, counting each one."""
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                _OBS_STATE.registry.counter("schedule_cache.evictions").inc()

    def put(self, key: str, schedule: Schedule) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if over capacity.

        With a ``store`` attached the entry is also written through —
        best-effort, because the in-memory copy already serves this
        process and a persistence hiccup must not fail the inspection
        that produced the schedule.
        """
        self._entries[key] = schedule
        self._entries.move_to_end(key)
        self._shrink_to_capacity()
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            _OBS_STATE.registry.gauge("schedule_cache.entries").set(len(self._entries))
        if self.store is not None:
            try:
                self.store.put(key, schedule)
            except Exception:
                if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                    _OBS_STATE.registry.counter("schedule_cache.store_write_errors").inc()

    def get_or_build(self, key: str, builder: Callable[[], Schedule]) -> Schedule:
        """Return the cached schedule or build-and-store it."""
        found = self.get(key)
        if found is not None:
            return found
        built = builder()
        self.put(key, built)
        return built

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._entries))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
