"""Ablation study of HDagg's design choices (DESIGN.md experiment index).

Four switches isolate the pieces Algorithm 1 composes:

* ``aggregate=False``  — skip step 1 entirely (no subtree groups);
* ``transitive_reduce=False`` — run step 1 on the raw DAG (the reduction
  is what exposes subtrees, Section IV-B);
* ``bin_pack=False``   — always fine-grained tasks (Lines 36-38 fallback);
* ``epsilon`` sweep    — the locality/balance trade-off of LBP.

Claims checked: on a subtree-rich input (kite chains) disabling the
transitive reduction or step 1 costs locality; every variant still yields
a valid schedule; epsilon moves the coarsened-wavefront count monotonically.
"""

import numpy as np
import pytest

from _common import write_report
from repro.core import hdagg
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.runtime import INTEL20, simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import apply_ordering, lower_triangle
from repro.suite import format_table, suite_by_name

MATRICES = ["kite-small", "mesh2d-xl", "rand-mid"]


@pytest.fixture(scope="module")
def contexts():
    out = {}
    kernel = KERNELS["spilu0"]
    for name in MATRICES:
        a, _ = apply_ordering(suite_by_name()[name].build(), "nd")
        g = kernel.dag(a)
        cost = kernel.cost(a)
        mem = kernel.memory_model(a, g)
        serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, mem, INTEL20.scaled(1))
        out[name] = (g, cost, mem, serial)
    return out


def run_variant(ctx, **kwargs):
    g, cost, mem, serial = ctx
    s = hdagg(g, cost, INTEL20.n_cores, **kwargs)
    s.validate(g)
    r = simulate(s, g, cost, mem, INTEL20)
    return s, r, serial.makespan_cycles / r.makespan_cycles


def test_step1_ablation(benchmark, contexts, output_dir):
    rows = []
    for name in MATRICES:
        s_full, r_full, sp_full = run_variant(contexts[name])
        s_no1, r_no1, sp_no1 = run_variant(contexts[name], aggregate=False)
        s_notr, r_notr, sp_notr = run_variant(contexts[name], transitive_reduce=False)
        rows.append([name, sp_full, sp_no1, sp_notr,
                     s_full.meta["n_groups"], s_notr.meta["n_groups"]])
    write_report(
        output_dir,
        "ablation_step1",
        format_table(
            ["matrix", "full", "no step1", "no TR", "groups", "groups noTR"],
            rows,
            title="Ablation: step-1 aggregation and transitive reduction",
        ),
    )
    # On the clique-chain input the reduction is what exposes subtrees:
    # without it the grouping degenerates (far more groups).
    kite_row = rows[0]
    assert kite_row[4] < kite_row[5] or kite_row[4] < contexts["kite-small"][0].n / 2

    g, cost, _, _ = contexts["kite-small"]
    benchmark.pedantic(hdagg, args=(g, cost, INTEL20.n_cores), rounds=3, iterations=1)


def test_binpack_ablation(benchmark, contexts, output_dir):
    rows = []
    for name in MATRICES:
        s_pack, r_pack, sp_pack = run_variant(contexts[name])
        s_fine, r_fine, sp_fine = run_variant(contexts[name], bin_pack=False)
        rows.append([name, sp_pack, sp_fine, r_pack.hit_rate, r_fine.hit_rate])
    write_report(
        output_dir,
        "ablation_binpack",
        format_table(
            ["matrix", "packed", "fine-grained", "hit% packed", "hit% fine"],
            rows,
            title="Ablation: bin packing vs fine-grained tasks",
        ),
    )
    for row in rows:
        assert row[2] > 0  # fine-grained variant remains functional
    g, cost, _, _ = contexts["rand-mid"]
    benchmark.pedantic(hdagg, args=(g, cost, INTEL20.n_cores),
                       kwargs={"bin_pack": False}, rounds=3, iterations=1)


def test_epsilon_sweep(benchmark, contexts, output_dir):
    g, cost, mem, serial = contexts["mesh2d-xl"]
    rows = []
    prev_levels = None
    for eps in (0.05, 0.1, 0.2, 0.3, 0.5, 0.8):
        s, r, sp = run_variant(contexts["mesh2d-xl"], epsilon=eps)
        rows.append([eps, s.n_levels, int(s.fine_grained), sp, r.potential_gain])
        if prev_levels is not None:
            assert s.n_levels <= prev_levels + 1  # looser eps -> fewer (or equal) CWs
        prev_levels = s.n_levels
    write_report(
        output_dir,
        "ablation_epsilon",
        format_table(
            ["epsilon", "coarse wavefronts", "fine", "speedup", "PG"],
            rows,
            title="Ablation: epsilon sweep (mesh2d-xl, SpILU0, intel20)",
        ),
    )
    benchmark.pedantic(hdagg, args=(g, cost, INTEL20.n_cores),
                       kwargs={"epsilon": 0.5}, rounds=3, iterations=1)


def test_naive_coarsening_ablation(benchmark, contexts, output_dir):
    """LBP vs fixed-window coarsening [5], [6]: the balance-preserving cut
    policy is what keeps merged wavefronts parallel."""
    from repro.core import accumulated_pgp
    from repro.graph import compute_wavefronts

    rows = []
    for name in MATRICES:
        g, cost, mem, serial = contexts[name]
        s_h, r_h, sp_h = run_variant(contexts[name])
        window = max(1, round(compute_wavefronts(g).n_levels / max(1, s_h.n_levels)))
        s_k = SCHEDULERS["coarsenk"](g, cost, INTEL20.n_cores, k=window)
        s_k.validate(g)
        r_k = simulate(s_k, g, cost, mem, INTEL20)
        sp_k = serial.makespan_cycles / r_k.makespan_cycles
        rows.append([name, sp_h, sp_k, accumulated_pgp(s_h, cost), accumulated_pgp(s_k, cost)])
    write_report(
        output_dir,
        "ablation_naive_coarsening",
        format_table(
            ["matrix", "hdagg (LBP)", "fixed window", "PGP LBP", "PGP window"],
            rows,
            title="Ablation: LBP cuts vs fixed-window coarsening",
        ),
    )
    # LBP may accept more static imbalance than a barely-coarsening window
    # (it merges only where locality pays), so the end-to-end claim is on
    # speedup: LBP is never much worse and wins somewhere.
    for row in rows:
        assert row[1] >= 0.85 * row[2], row
    assert any(row[1] > row[2] for row in rows)
    g, cost, _, _ = contexts["mesh2d-xl"]
    benchmark.pedantic(SCHEDULERS["coarsenk"], args=(g, cost, INTEL20.n_cores),
                       kwargs={"k": 4}, rounds=3, iterations=1)


def test_ordering_ablation(benchmark, output_dir):
    """The METIS-style pre-ordering matters: ND beats natural order for
    every scheduler on a mesh (the reason the paper reorders everything)."""
    kernel = KERNELS["spilu0"]
    from repro.sparse import poisson2d

    rows = []
    for ordering in ("nd", "rcm", "natural"):
        a, _ = apply_ordering(poisson2d(72, seed=12), ordering)
        g = kernel.dag(a)
        cost = kernel.cost(a)
        mem = kernel.memory_model(a, g)
        serial = simulate(SCHEDULERS["serial"](g, cost), g, cost, mem, INTEL20.scaled(1))
        s = hdagg(g, cost, INTEL20.n_cores)
        r = simulate(s, g, cost, mem, INTEL20)
        rows.append([ordering, serial.makespan_cycles / r.makespan_cycles, s.n_levels])
    write_report(
        output_dir,
        "ablation_ordering",
        format_table(
            ["ordering", "hdagg speedup", "coarse wavefronts"],
            rows,
            title="Ablation: symmetric pre-ordering (mesh2d-m, SpILU0)",
        ),
    )
    by = {row[0]: row[1] for row in rows}
    assert by["nd"] > by["natural"]
    a, _ = apply_ordering(poisson2d(72, seed=12), "nd")
    benchmark.pedantic(apply_ordering, args=(a, "nd"), rounds=3, iterations=1)
