"""Exporters: JSONL span logs and Chrome ``trace_event`` timelines.

Two output formats, both plain JSON so nothing new is installed:

* **JSONL span log** — one :meth:`Span.as_dict` object per line; greppable,
  diffable, streamable.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON object that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly.  Spans
  become complete (``"ph": "X"``) events on their recording thread;
  timeline segments become complete events on one synthetic "process" per
  run with one row (``tid``) per core, so the per-core busy/wait/idle
  structure reads as a classic execution timeline.

Timestamps: trace_event wants microseconds.  Wall-clock sources are scaled
by 1e6; the simulator's model timelines are in cycles and exported 1 cycle
= 1 µs (``time_unit="cycles"``), which keeps relative proportions exact.
"""

from __future__ import annotations

import json
from os import PathLike
from typing import Iterable, List, Optional, Sequence, Union

from .spans import Span
from .timeline import CoreTimeline

__all__ = [
    "spans_to_jsonl",
    "write_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]

#: pid used for span (flame chart) events in the trace_event output.
SPAN_PID = 1
#: pid used for per-core timeline rows.
TIMELINE_PID = 2

#: segment kind -> color name understood by the Chrome trace viewer.
_KIND_COLORS = {
    "busy": "thread_state_running",
    "barrier_wait": "thread_state_uninterruptible",
    "p2p_wait": "thread_state_iowait",
    "idle": "thread_state_sleeping",
}


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line; order is the tracer's record order."""
    return "\n".join(json.dumps(s.as_dict(), sort_keys=True) for s in spans)


def write_spans_jsonl(spans: Iterable[Span], path: Union[str, PathLike]) -> None:
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        if text:
            fh.write("\n")


def _scale(time_unit: str) -> float:
    # trace_event ts/dur are microseconds; cycles map 1:1 so model
    # timelines keep exact integer proportions
    return 1e6 if time_unit == "s" else 1.0


def chrome_trace(
    spans: Optional[Sequence[Span]] = None,
    timeline: Optional[CoreTimeline] = None,
    *,
    time_unit: str = "s",
    label: str = "hdagg",
) -> dict:
    """Build a ``trace_event`` document from spans and/or a core timeline.

    ``time_unit`` is ``"s"`` (wall clock, scaled to µs) or ``"cycles"``
    (model time, exported 1 cycle = 1 µs).  The result is JSON-ready.
    """
    if time_unit not in ("s", "cycles"):
        raise ValueError(f"unknown time_unit {time_unit!r} (use 's' or 'cycles')")
    scale = _scale(time_unit)
    events: List[dict] = []
    events.append(
        {"ph": "M", "pid": SPAN_PID, "name": "process_name",
         "args": {"name": f"{label}: spans"}}
    )
    if spans:
        t_base = min(s.t0 for s in spans)
        tids = sorted({s.tid for s in spans})
        tid_row = {tid: i for i, tid in enumerate(tids)}
        for tid, row in tid_row.items():
            events.append(
                {"ph": "M", "pid": SPAN_PID, "tid": row, "name": "thread_name",
                 "args": {"name": f"thread {tid}"}}
            )
        by_id = {s.span_id: s for s in spans if s.span_id}
        for s in spans:
            ev = {
                "ph": "X",
                "pid": SPAN_PID,
                "tid": tid_row[s.tid],
                "name": s.name,
                "ts": (s.t0 - t_base) * scale,
                "dur": s.duration * scale,
            }
            if s.attrs:
                ev["args"] = dict(s.attrs)
            events.append(ev)
            # a parent on another thread cannot be drawn by nesting — emit a
            # flow arrow (parent start -> child start) so Perfetto shows the
            # asyncio -> worker handoff explicitly
            parent = by_id.get(s.parent_span_id)
            if parent is not None and parent.tid != s.tid:
                flow = {"cat": "handoff", "name": "handoff", "id": s.span_id,
                        "pid": SPAN_PID}
                events.append(
                    {**flow, "ph": "s", "tid": tid_row[parent.tid],
                     "ts": (parent.t0 - t_base) * scale}
                )
                events.append(
                    {**flow, "ph": "f", "bp": "e", "tid": tid_row[s.tid],
                     "ts": (s.t0 - t_base) * scale}
                )
    if timeline is not None:
        events.append(
            {"ph": "M", "pid": TIMELINE_PID, "name": "process_name",
             "args": {"name": f"{label}: per-core timeline ({time_unit})"}}
        )
        for core in sorted(timeline.cores):
            events.append(
                {"ph": "M", "pid": TIMELINE_PID, "tid": core, "name": "thread_name",
                 "args": {"name": f"core {core}"}}
            )
            for seg in timeline.cores[core]:
                ev = {
                    "ph": "X",
                    "pid": TIMELINE_PID,
                    "tid": core,
                    "name": seg.kind,
                    "cname": _KIND_COLORS.get(seg.kind, "generic_work"),
                    "ts": (seg.t0 - timeline.wall_t0) * scale,
                    "dur": seg.duration * scale,
                }
                args = {}
                if seg.vertex >= 0:
                    args["vertex"] = seg.vertex
                if seg.dependence >= 0:
                    args["dependence"] = seg.dependence
                if seg.level >= 0:
                    args["level"] = seg.level
                if args:
                    ev["args"] = args
                events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, PathLike],
    spans: Optional[Sequence[Span]] = None,
    timeline: Optional[CoreTimeline] = None,
    *,
    time_unit: str = "s",
    label: str = "hdagg",
) -> None:
    """Write a trace_event JSON file that Perfetto / chrome://tracing loads."""
    doc = chrome_trace(spans, timeline, time_unit=time_unit, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)

def _prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"repro_{safe}"


def _prom_value(v: object) -> str:
    if v is None:
        return "NaN"
    f = float(v)  # type: ignore[arg-type]
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(metrics: dict) -> str:
    """Render a registry document as Prometheus text exposition.

    ``metrics`` is :meth:`MetricsRegistry.as_dict` output (or the
    ``"metrics"`` object of a JSONL snapshot line) — rendering from the
    dict form means live registries and archived snapshots export
    identically.  Counters gain the conventional ``_total`` suffix;
    histograms expose cumulative ``_bucket{le="..."}`` series plus
    ``_sum``/``_count``.
    """
    lines: List[str] = []
    for name in sorted(metrics):
        blob = metrics[name]
        kind = blob.get("type")
        pname = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_prom_value(blob['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(blob['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cum = 0.0
            for bound, n in zip(blob["buckets"], blob["bucket_counts"]):
                cum += n
                lines.append(f'{pname}_bucket{{le="{_prom_value(bound)}"}} {_prom_value(cum)}')
            cum += blob["bucket_counts"][-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {_prom_value(cum)}')
            lines.append(f"{pname}_sum {_prom_value(blob['sum'])}")
            lines.append(f"{pname}_count {_prom_value(blob['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: Union[str, PathLike], metrics: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(metrics))
