"""Tests for the cached HDagg inspector."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.core.inspector import HDaggInspector
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS


@pytest.fixture(scope="module")
def problem(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    return g, kernel.cost(mesh_nd)


def test_matches_one_shot_hdagg(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    for p in (2, 4):
        for eps in (0.1, 0.3):
            cached = insp.schedule(p, eps)
            direct = hdagg(g, cost, p, epsilon=eps)
            assert cached.execution_order().tolist() == direct.execution_order().tolist()
            assert cached.core_assignment().tolist() == direct.core_assignment().tolist()
            assert cached.fine_grained == direct.fine_grained


def test_schedules_are_cached(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    s1 = insp.schedule(4)
    s2 = insp.schedule(4)
    assert s1 is s2
    assert insp.cache_info()["schedules"] == 1


def test_grouping_shared_across_epsilons(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    insp.schedule(4, 0.1)
    insp.schedule(4, 0.5)
    insp.schedule(4, 0.9)
    info = insp.cache_info()
    assert info["groupings"] == 1  # same p -> same cap -> one grouping
    assert info["schedules"] == 3


def test_distinct_core_counts_get_distinct_groupings(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    insp.schedule(2)
    insp.schedule(8)
    assert insp.cache_info()["groupings"] == 2


def test_uncapped_mode_shares_one_grouping(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost, group_cost_cap_fraction=None)
    insp.schedule(2)
    insp.schedule(8)
    assert insp.cache_info()["groupings"] == 1


def test_reduced_dag_exposed(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    assert insp.reduced_dag.n == g.n
    assert insp.reduced_dag.n_edges <= g.n_edges


def test_validates_cost_length(problem):
    g, _ = problem
    with pytest.raises(ValueError):
        HDaggInspector(g, np.ones(3))


def test_schedules_valid(problem):
    g, cost = problem
    insp = HDaggInspector(g, cost)
    for p in (1, 3, 6):
        insp.schedule(p).validate(g)
