"""Comparison engine: regression verdicts with stage attribution.

Comparing two observations is a three-layer decision:

1. **total verdict** — :func:`~repro.perflab.stats.shift_verdict` over the
   per-rep totals (bootstrap shift interval + BCa overlap rule);
2. **stage attribution** — the same verdict per stage series, restricted
   to *leaf* stages (``inspect/<sub>``, ``execute``, plus the derived
   ``inspect/other`` residual), ranked by absolute seconds moved.  A
   confirmed total regression names the stages whose distributions moved
   with it — "the inspector got 10% slower **because lbp did**";
3. **change point** — when the full history of a series is available,
   :func:`~repro.perflab.stats.detect_change_point` localizes *when* the
   series shifted, which separates "this commit regressed it" from "the
   machine has been drifting for a week".

:func:`classify_point_ratio` is the degenerate single-point fallback the
suite's record diff (:mod:`repro.suite.regression`) delegates to: no
samples, no interval — just a guarded ratio with an explicit
``indeterminate`` lane instead of ``inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .protocol import Observation
from .stats import ChangePoint, ShiftVerdict, detect_change_point, shift_verdict

__all__ = [
    "StageShift",
    "ObservationComparison",
    "compare_observations",
    "compare_series",
    "classify_point_ratio",
    "stage_series",
]

#: stage-level shifts must clear a lower floor than the total: a stage can
#: be individually small but responsible for the whole total move.
STAGE_MIN_EFFECT = 0.02


@dataclass(frozen=True)
class StageShift:
    """One stage's distribution move between two observations."""

    stage: str
    verdict: ShiftVerdict
    #: absolute seconds the stage median moved (signed; + is slower)
    delta_seconds: float

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "delta_seconds": self.delta_seconds,
            **self.verdict.as_dict(),
        }


@dataclass
class ObservationComparison:
    """Old-vs-new decision for one series, with attribution and history."""

    label: str
    total: ShiftVerdict
    stages: List[StageShift] = field(default_factory=list)
    change_point: Optional[ChangePoint] = None
    fingerprint_match: bool = True
    old_note: str = ""
    new_note: str = ""

    @property
    def regressed(self) -> bool:
        """True when the total verdict is a *confirmed* regression."""
        return self.total.verdict == "regressed" and self.total.confirmed

    @property
    def responsible_stages(self) -> List[StageShift]:
        """Stages that moved the same way, most seconds first."""
        moved = [
            s
            for s in self.stages
            if s.verdict.verdict == self.total.verdict and s.verdict.confirmed
        ]
        return sorted(moved, key=lambda s: -abs(s.delta_seconds))

    def describe(self) -> str:
        """One line per comparison — the gate's console output."""
        t = self.total
        if t.verdict == "indeterminate":
            return f"{self.label}: INDETERMINATE ({t.reason})"
        pct = f"{t.rel_shift:+.1%}"
        ci = f"[{t.shift_lo:+.1%}, {t.shift_hi:+.1%}]"
        if self.regressed:
            who = self.responsible_stages
            stage = f" stage={who[0].stage} ({who[0].delta_seconds * 1e3:+.2f}ms)" if who else ""
            line = f"{self.label}: REGRESSED {pct} {ci}{stage}"
        elif t.verdict == "improved" and t.confirmed:
            line = f"{self.label}: improved {pct} {ci}"
        elif t.verdict in ("regressed", "improved"):
            line = f"{self.label}: {t.verdict} (unconfirmed: {t.reason}) {pct} {ci}"
        else:
            line = f"{self.label}: unchanged {pct} {ci}"
        if self.change_point is not None:
            cp = self.change_point
            line += (
                f" | change point at obs {cp.index} "
                f"({cp.rel_shift:+.1%}, p={cp.p_value:.3f})"
            )
        if not self.fingerprint_match:
            line += " | WARNING: environment fingerprints differ"
        return line

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "total": self.total.as_dict(),
            "regressed": self.regressed,
            "stages": [s.as_dict() for s in self.stages],
            "responsible_stages": [s.stage for s in self.responsible_stages],
            "change_point": self.change_point.as_dict() if self.change_point else None,
            "fingerprint_match": self.fingerprint_match,
        }


def stage_series(obs: Observation) -> Dict[str, List[float]]:
    """Leaf-stage series of an observation, with the ``inspect/other``
    residual so time spent *between* the instrumented sub-stages is still
    attributable (an injected stall outside any stage lands here)."""
    out: Dict[str, List[float]] = {}
    sub_totals: Optional[np.ndarray] = None
    for name, vals in obs.stages.items():
        if name.startswith("inspect/"):
            arr = np.asarray(vals, dtype=np.float64)
            sub_totals = arr if sub_totals is None else sub_totals + arr
            out[name] = list(vals)
        elif name != "inspect":
            out[name] = list(vals)
    inspect = obs.stages.get("inspect")
    if inspect is not None and sub_totals is not None:
        residual = np.asarray(inspect, dtype=np.float64) - sub_totals
        out["inspect/other"] = [max(0.0, float(v)) for v in residual]
    return out


def compare_observations(
    old: Observation,
    new: Observation,
    *,
    min_effect: float = 0.05,
    stage_min_effect: float = STAGE_MIN_EFFECT,
    confidence: float = 0.95,
    seed: int = 0,
    history: Optional[Sequence[Observation]] = None,
) -> ObservationComparison:
    """Full comparison of two observations of the same cell.

    ``history`` (chronological, typically including both endpoints) feeds
    the change-point detector; omit it for a plain A/B comparison.
    """
    total = shift_verdict(
        old.timings, new.timings,
        min_effect=min_effect, confidence=confidence, seed=seed,
    )
    old_stages = stage_series(old)
    new_stages = stage_series(new)
    shifts: List[StageShift] = []
    for name in sorted(old_stages.keys() & new_stages.keys()):
        o, n = old_stages[name], new_stages[name]
        v = shift_verdict(
            o, n, min_effect=stage_min_effect, confidence=confidence, seed=seed,
        )
        delta = float(np.median(n) - np.median(o)) if o and n else 0.0
        shifts.append(StageShift(stage=name, verdict=v, delta_seconds=delta))
    change_point = None
    if history is not None:
        medians = [
            obs.stats.statistic for obs in history if obs.stats is not None
        ]
        change_point = detect_change_point(medians, seed=seed)
    return ObservationComparison(
        label=new.key.label(),
        total=total,
        stages=shifts,
        change_point=change_point,
        fingerprint_match=old.fingerprint.digest == new.fingerprint.digest,
        old_note=old.note,
        new_note=new.note,
    )


def compare_series(
    series: Sequence[Observation],
    *,
    baseline: Optional[Observation] = None,
    min_effect: float = 0.05,
    confidence: float = 0.95,
    seed: int = 0,
) -> Optional[ObservationComparison]:
    """Compare the latest observation of a series against its predecessor
    (or an explicit ``baseline``), feeding the whole series to the
    change-point detector.  Returns ``None`` when there is nothing to
    compare against."""
    if not series:
        return None
    new = series[-1]
    old = baseline
    if old is None:
        if len(series) < 2:
            return None
        old = series[-2]
    return compare_observations(
        old, new,
        min_effect=min_effect, confidence=confidence, seed=seed,
        history=series,
    )


def classify_point_ratio(
    old: float,
    new: float,
    *,
    threshold: float = 0.95,
) -> str:
    """Single-point fallback verdict for record diffs without samples.

    ``old``/``new`` are *higher-is-better* values (speedups).  Returns
    ``"regressed"``, ``"ok"``, or ``"indeterminate"`` — the latter for
    non-finite or non-positive baselines, which a bare ratio would turn
    into ``inf`` and silently wave through.
    """
    if not (math.isfinite(old) and math.isfinite(new)) or old <= 0 or new < 0:
        return "indeterminate"
    return "regressed" if (new / old) < threshold else "ok"
