"""Executor runtime contract enforcement and scheduler-group equivalence."""

import numpy as np
import pytest

from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.passes import (
    Contract,
    PASS_GROUPS,
    Pass,
    PassContext,
    PassGroup,
    PipelineExecutionError,
    get_pass_group,
    run_group,
    run_scheduler_group,
)
from repro.schedulers import SCHEDULERS


def _pass(name, requires=(), produces=(), run=None, **kw):
    return Pass(
        name=name,
        contract=Contract(requires=requires, produces=produces),
        run=run or (lambda ctx: {}),
        **kw,
    )


def test_run_group_threads_artifacts_between_passes():
    group = PassGroup(
        name="two-step",
        passes=(
            _pass("first", requires=("DAG",), produces=("Wavefronts",),
                  run=lambda ctx: {"Wavefronts": ctx["DAG"] + 1}),
            _pass("second", requires=("Wavefronts",), produces=("Schedule",),
                  run=lambda ctx: {"Schedule": ctx["Wavefronts"] * 10}),
        ),
        inputs=("DAG",),
    )
    ctx = run_group(group, PassContext({"DAG": 4}))
    assert ctx["Schedule"] == 50


def test_run_group_rejects_missing_required_artifact():
    group = PassGroup(
        name="needs-cost",
        passes=(_pass("p", requires=("Cost",), produces=("Schedule",),
                      run=lambda ctx: {"Schedule": 1}),),
        inputs=("DAG",),
    )
    with pytest.raises(PipelineExecutionError) as exc_info:
        run_group(group, PassContext({"DAG": 0}))
    err = exc_info.value
    assert (err.group, err.pass_name) == ("needs-cost", "p")
    assert "['Cost']" in str(err)
    assert "verify_pipeline" in str(err)  # points at the static checker


def test_run_group_rejects_products_not_matching_declaration():
    # under-delivering and over-delivering are both contract violations
    lies = PassGroup(
        name="liar",
        passes=(_pass("p", requires=("DAG",), produces=("Schedule",),
                      run=lambda ctx: {"Schedule": 1, "Grouping": 2}),),
        inputs=("DAG",),
    )
    with pytest.raises(PipelineExecutionError, match="do not match declared produces"):
        run_group(lies, PassContext({"DAG": 0}))
    silent = PassGroup(
        name="silent",
        passes=(_pass("p", requires=("DAG",), produces=("Schedule",),
                      run=lambda ctx: {}),),
        inputs=("DAG",),
    )
    with pytest.raises(PipelineExecutionError, match="do not match declared produces"):
        run_group(silent, PassContext({"DAG": 0}))


def test_run_group_rejects_unproduced_group_output():
    group = PassGroup(
        name="no-output",
        passes=(_pass("p", requires=("DAG",), produces=("Grouping",),
                      run=lambda ctx: {"Grouping": 1}),),
        inputs=("DAG",),
        outputs=("Schedule",),
    )
    with pytest.raises(PipelineExecutionError, match="'Schedule' was never produced"):
        run_group(group, PassContext({"DAG": 0}))


def test_get_pass_group_unknown_name_lists_registered():
    with pytest.raises(KeyError, match="unknown pass group 'nope'"):
        get_pass_group("nope")


def test_every_scheduler_has_a_registered_pass_group():
    assert set(PASS_GROUPS) == set(SCHEDULERS)


def _mesh_dag_and_cost(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    cost = KERNELS["spilu0"].cost(mesh_nd)
    return g, cost


@pytest.mark.parametrize("name", ["wavefront", "spmp", "mkl", "lbc", "dagp"])
def test_scheduler_group_matches_public_function(name, mesh_nd):
    """Running the registered group is the scheduler function, bit for bit."""
    g, cost = _mesh_dag_and_cost(mesh_nd)
    kwargs = {"epsilon": 0.1} if name == "lbc" else {}
    options = {"k": 1000} if name == "dagp" else None
    via_group = run_scheduler_group(name, g, cost, 4, options=options, **kwargs)
    via_function = SCHEDULERS[name](g, cost, 4)
    assert via_group.algorithm == via_function.algorithm
    assert via_group.execution_order().tolist() == via_function.execution_order().tolist()
    assert [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in via_group.levels
    ] == [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in via_function.levels
    ]


def test_hdagg_group_runs_through_uniform_driver(mesh_nd):
    """run_scheduler_group handles hdagg too: it coerces the backend spec
    and seeds the Backend artifact (epsilon accepted via options as well)."""
    g, cost = _mesh_dag_and_cost(mesh_nd)
    via_group = run_scheduler_group("hdagg", g, cost, 4, options={"epsilon": 0.5})
    via_function = SCHEDULERS["hdagg"](g, cost, 4, epsilon=0.5)
    assert via_group.execution_order().tolist() == via_function.execution_order().tolist()
    assert [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in via_group.levels
    ] == [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in via_function.levels
    ]


def test_hdagg_group_runs_standalone():
    """The registered hdagg group executes outside its driver too."""
    from repro.core.backends import BackendSpec

    g = DAG.from_edges(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
    cost = np.ones(6)
    ctx = PassContext(
        {"DAG": g, "Cost": cost, "Cores": 2, "Epsilon": 0.1, "Backend": "numpy"},
        spec=BackendSpec.coerce(None),
    )
    run_group(get_pass_group("hdagg"), ctx)
    schedule = ctx["Schedule"]
    schedule.validate(g)
    via_driver = SCHEDULERS["hdagg"](g, cost, 2, epsilon=0.1)
    assert schedule.execution_order().tolist() == via_driver.execution_order().tolist()
    # intermediate artifacts stay inspectable on the context
    for artifact in ("ReducedDAG", "Grouping", "CoarseDAG", "GroupCost", "CoarsenedWaves"):
        assert ctx.has(artifact), artifact
