"""Experiment harness: run (matrix x kernel x algorithm x machine) grids.

This is the programmatic engine behind every table and figure benchmark.
For one matrix it:

1. builds, sanitizes (:func:`~repro.sparse.sanitize.sanitize_csr`), and
   ND-reorders the matrix (the paper's METIS pre-pass, Section V);
2. derives the kernel inputs: operand matrix, dependence DAG, cost vector,
   memory model;
3. runs each inspector, validates its schedule against the DAG (structural
   + dependence safety), and simulates it on each machine;
4. records the paper's metrics per run (speedup vs the simulated sequential
   execution, locality, measured PG, sync counts, imbalance ratio, NRE).

Everything is cached per matrix so the grid costs one DAG build and one
memory model per kernel, not one per algorithm.

Resilience (all dormant-by-default, see DESIGN.md "Resilience"):

* inspectors run with a fallback chain (``hdagg → wavefront → serial``)
  and optional wall-clock budget; a failed or refuted inspection degrades
  the cell — stamped ``RunRecord.degraded`` / ``degraded_from`` — instead
  of killing the grid;
* ``run_suite`` can isolate per-matrix failures into structured
  :class:`~repro.resilience.failures.FailureRecord` rows, checkpoint
  finished matrices to a JSONL :class:`~repro.resilience.journal.RunJournal`
  (killed runs resume bit-identically), and recover crashed fork workers
  with bounded exponential-backoff retries;
* named ``fault_point`` sites let seeded
  :class:`~repro.resilience.faults.FaultPlan` chaos runs exercise every
  failure path deterministically.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..analysis.verifier import assert_schedule_safe, verify_dependences
from ..core.backends import BackendSpec
from ..core.incremental import IncrementalScheduleCache, family_key
from ..core.pgp import DEFAULT_EPSILON, accumulated_pgp
from ..core.schedule_cache import ScheduleCache, schedule_key
from ..kernels import KERNELS
from ..metrics.load_balance import imbalance_ratio
from ..metrics.nre import inspector_cost_model, nre
from ..metrics.parallelism import dag_shape
from ..metrics.synchronization import equivalent_p2p_syncs
from ..observability.state import STATE as _OBS_STATE
from ..resilience.degrade import inspect_with_fallback
from ..resilience.failures import FailureRecord
from ..resilience.faults import fault_point
from ..resilience.journal import RunJournal
from ..resilience.retry import RetryExhausted, retry_with_backoff
from ..runtime.machine import MACHINES, MachineConfig
from ..runtime.simulator import SimulationResult, simulate
from ..schedulers import SCHEDULERS
from ..sparse.csr import CSRMatrix
from ..sparse.ordering import apply_ordering
from ..sparse.sanitize import SanitizeReport, sanitize_csr
from ..sparse.triangular import lower_triangle
from .matrices import MatrixSpec

__all__ = [
    "RunRecord",
    "MatrixContext",
    "Harness",
    "BenchCell",
    "build_cell",
    "DEFAULT_ALGORITHMS",
    "FailureRecord",
]

#: The paper's comparison set (MKL is SpTRSV-only, handled by the harness).
DEFAULT_ALGORITHMS = ("hdagg", "spmp", "wavefront", "lbc", "dagp", "mkl")

#: shared no-op context manager for the disabled-observability path
_NULL_CM = nullcontext()


def _span(name: str, **attrs):
    """A harness-level span when observability is on, else a no-op."""
    return _OBS_STATE.tracer.span(name, **attrs) if _OBS_STATE.enabled else _NULL_CM


@dataclass
class RunRecord:
    """Metrics of one (matrix, kernel, algorithm, machine) execution."""

    matrix: str
    family: str
    kernel: str
    algorithm: str
    machine: str
    n: int
    nnz: int
    n_wavefronts: int
    average_parallelism: float
    nnz_per_wavefront: float
    speedup: float
    makespan_cycles: float
    serial_cycles: float
    avg_memory_access_latency: float
    hit_rate: float
    potential_gain: float
    pgp: float
    equivalent_syncs: float
    n_barriers: int
    n_p2p_syncs: int
    imbalance_ratio: float
    inspector_cycles: float
    nre: float
    schedule_levels: int
    schedule_partitions: int
    fine_grained: bool
    inspector_seconds: float
    #: per-stage inspector seconds (HDagg populates this; empty otherwise)
    stage_seconds: dict = field(default_factory=dict)
    #: True when the schedule came from the harness's structure-keyed cache
    schedule_cached: bool = False
    #: True when the requested inspector failed and a fallback produced the
    #: schedule; ``algorithm`` then names the fallback that succeeded
    degraded: bool = False
    #: comma-joined algorithms that failed before the fallback succeeded
    #: (the requested inspector first); empty when not degraded
    degraded_from: str = ""
    #: canonical backend-spec description of the inspector tier that built
    #: the schedule (``schedule.meta["backend"]``); empty for algorithms
    #: that have no backend registry
    backend: str = ""
    #: True when the schedule came from an incremental pattern repair
    #: (:class:`~repro.core.incremental.IncrementalScheduleCache`) rather
    #: than a full inspection or an exact cache hit
    schedule_repaired: bool = False


@dataclass
class MatrixContext:
    """Cached per-matrix artefacts shared across algorithms/machines."""

    spec: MatrixSpec
    matrix: CSRMatrix  # reordered full SPD matrix
    kernels: Dict[str, dict] = field(default_factory=dict)  # kernel -> artefacts
    #: input-hardening outcome (None when sanitization was skipped)
    sanitize_report: Optional[SanitizeReport] = None


@dataclass
class BenchCell:
    """Everything needed to run one (matrix, kernel, machine) cell.

    The single-cell counterpart of :class:`MatrixContext`: the trace CLI
    and the perf-lab benchmarks both need exactly one cell's operand, DAG,
    cost vector, and memory model without paying for the full grid.
    """

    matrix: str
    kernel_name: str
    machine: MachineConfig
    operand: CSRMatrix
    dag: object
    cost: np.ndarray
    memory: object
    kernel: object


def build_cell(
    matrix: str,
    kernel: str = "sptrsv",
    machine: Union[str, MachineConfig] = "intel20",
    *,
    cores: Optional[int] = None,
    ordering: str = "nd",
) -> BenchCell:
    """Build one dataset cell: reorder the matrix and derive kernel inputs.

    ``matrix`` names a dataset entry (``hdagg-bench --list``); ``cores``
    overrides the machine model's count.  This is the shared front door
    for single-cell tooling (``hdagg-bench trace``, ``hdagg-bench perf``).
    """
    from .matrices import suite_by_name

    by_name = suite_by_name()
    if matrix not in by_name:
        raise KeyError(f"unknown matrix {matrix!r}; see `hdagg-bench --list`")
    if kernel not in KERNELS:
        raise KeyError(f"unknown kernel {kernel!r}")
    mach = machine if isinstance(machine, MachineConfig) else MACHINES[machine]
    if cores is not None:
        mach = mach.scaled(cores)
    ordered, _ = apply_ordering(by_name[matrix].build(), ordering)
    k = KERNELS[kernel]
    operand = lower_triangle(ordered) if kernel == "sptrsv" else ordered
    g = k.dag(operand)
    cost = k.cost(operand)
    memory = k.memory_model(operand, g)
    return BenchCell(
        matrix=matrix,
        kernel_name=kernel,
        machine=mach,
        operand=operand,
        dag=g,
        cost=cost,
        memory=memory,
        kernel=k,
    )


class Harness:
    """Grid runner over the suite.

    Parameters
    ----------
    machines:
        Machine names (keys of :data:`repro.runtime.machine.MACHINES`) or
        :class:`MachineConfig` objects.
    kernels:
        Kernel names among ``{"sptrsv", "spic0", "spilu0"}``.
    algorithms:
        Scheduler names; ``"mkl"`` is automatically restricted to SpTRSV
        (MKL has no parallel SpIC0/SpILU0, Section V).
    ordering:
        Symmetric pre-ordering applied to every matrix (paper: METIS; here
        ``"nd"`` by default).
    epsilon:
        HDagg/LBC load-balance threshold.
    schedule_cache:
        Optional :class:`~repro.core.schedule_cache.ScheduleCache`.  When
        set, every inspection is keyed by the DAG structure and parameters;
        repeated structures (re-runs, parameter sweeps sharing a matrix)
        reuse the cached schedule instead of re-inspecting.  Cached hits
        are flagged in ``RunRecord.schedule_cached`` and re-verified (a
        corrupted entry is dropped and re-inspected).
    fallback:
        Degrade failed inspections down the declared fallback chain
        (stamping ``RunRecord.degraded``) instead of raising.  On the
        success path this is byte-identical to a direct inspector call.
    inspector_budget:
        Optional wall-clock seconds each inspector may spend before it is
        abandoned (``None`` — the default — imposes no budget and no
        threading overhead).
    sanitize:
        Run :func:`~repro.sparse.sanitize.sanitize_csr` over every built
        matrix in :meth:`prepare` (repairing what is repairable, rejecting
        structural corruption with a structured error).  Well-formed
        matrices pass through unchanged.
    backend:
        Inspector backend selection for HDagg cells — a
        :class:`~repro.core.backends.BackendSpec`, a grammar string
        (``"lbp=compiled,coarsen=compiled"``), or ``None`` to follow the
        ``REPRO_BACKENDS`` environment variable.  Tiers are bit-identical
        by contract, so this changes inspector wall time only; the spec is
        folded into cache keys and stamped into ``RunRecord.backend``.
    """

    def __init__(
        self,
        machines: Sequence = ("intel20",),
        kernels: Sequence[str] = ("sptrsv", "spic0", "spilu0"),
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        *,
        ordering: str = "nd",
        epsilon: float = DEFAULT_EPSILON,
        validate: bool = True,
        schedule_cache: Optional[ScheduleCache] = None,
        fallback: bool = True,
        inspector_budget: Optional[float] = None,
        sanitize: bool = True,
        backend: Union[str, BackendSpec, None] = None,
    ) -> None:
        self.machines: List[MachineConfig] = [
            m if isinstance(m, MachineConfig) else MACHINES[m] for m in machines
        ]
        for k in kernels:
            if k not in KERNELS:
                raise KeyError(f"unknown kernel {k!r}")
        self.kernels = tuple(kernels)
        for a in algorithms:
            if a not in SCHEDULERS:
                raise KeyError(f"unknown algorithm {a!r}")
        self.algorithms = tuple(algorithms)
        self.ordering = ordering
        self.epsilon = epsilon
        self.validate = validate
        self.schedule_cache = schedule_cache
        self.fallback = fallback
        if inspector_budget is not None and inspector_budget <= 0:
            raise ValueError("inspector_budget must be positive or None")
        self.inspector_budget = inspector_budget
        self.sanitize = sanitize
        # resolve once so a mid-run environment change cannot split the
        # grid across tiers (the env source is read exactly here)
        self.backend: BackendSpec = BackendSpec.coerce(backend)

    def __getstate__(self) -> dict:
        # worker processes re-inspect rather than ship the cache's schedules
        state = self.__dict__.copy()
        state["schedule_cache"] = None
        return state

    # ------------------------------------------------------------------
    def config_fingerprint(self, specs: Sequence[MatrixSpec]) -> str:
        """Digest of the grid configuration, used to key run journals."""
        payload = repr(
            (
                tuple(m.name for m in self.machines),
                self.kernels,
                self.algorithms,
                self.ordering,
                float(self.epsilon),
                self.validate,
                tuple(s.name for s in specs),
                self.backend.describe(),
            )
        )
        return sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    def prepare(self, spec: MatrixSpec) -> MatrixContext:
        """Build, sanitize, reorder, and derive kernel artefacts for one matrix."""
        with _span(f"suite/prepare[{spec.name}]"):
            return self._prepare(spec)

    def _prepare(self, spec: MatrixSpec) -> MatrixContext:
        raw = spec.build()
        injected = fault_point("harness.prepare", payload=raw, label=spec.name)
        sanitize_report: Optional[SanitizeReport] = None
        if injected is not None:
            # fault injection replaced the matrix with corrupted raw arrays;
            # the sanitizer must now repair or reject them
            raw, sanitize_report = sanitize_csr(
                injected, repair=True, ensure_diagonal=True, name=spec.name
            )
        elif self.sanitize:
            raw, sanitize_report = sanitize_csr(
                raw, repair=True, ensure_diagonal=True, name=spec.name
            )
        ctx = MatrixContext(spec=spec, matrix=raw, sanitize_report=sanitize_report)
        ordered, _ = apply_ordering(raw, self.ordering)
        ctx.matrix = ordered
        for kname in self.kernels:
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            g = kernel.dag(operand)
            cost = kernel.cost(operand)
            memory = kernel.memory_model(operand, g)
            shape = dag_shape(g)
            ctx.kernels[kname] = {
                "kernel": kernel,
                "operand": operand,
                "dag": g,
                "cost": cost,
                "memory": memory,
                "shape": shape,
            }
        return ctx

    def _algorithms_for(self, kernel: str) -> Iterable[str]:
        for a in self.algorithms:
            if a == "mkl" and kernel != "sptrsv":
                continue  # MKL's SpIC0/SpILU0 are not parallel (Section V)
            yield a

    # ------------------------------------------------------------------
    def run_matrix(self, spec: MatrixSpec) -> List[RunRecord]:
        """All records for one matrix across the configured grid."""
        with _span(f"suite/matrix[{spec.name}]"):
            return self._run_matrix_grid(spec)

    def _run_matrix_grid(self, spec: MatrixSpec) -> List[RunRecord]:
        fault_point("suite.matrix", label=spec.name)
        ctx = self.prepare(spec)
        records: List[RunRecord] = []
        for kname in self.kernels:
            art = ctx.kernels[kname]
            g, cost, memory = art["dag"], art["cost"], art["memory"]
            shape = art["shape"]

            # serial reference per machine (sequential run owns the machine)
            serial_schedule = SCHEDULERS["serial"](g, cost)
            serial_results: Dict[str, SimulationResult] = {}
            for machine in self.machines:
                serial_results[machine.name] = simulate(
                    serial_schedule, g, cost, memory, machine.scaled(1)
                )

            for algo in self._algorithms_for(kname):
                for machine in self.machines:
                    if _OBS_STATE.enabled:
                        _OBS_STATE.tracer.instant(
                            f"suite/cell[{spec.name},{kname},{algo},{machine.name}]"
                        )
                    uses_epsilon = algo in ("hdagg", "lbc")
                    backend_desc = self.backend.describe() if algo == "hdagg" else ""
                    incremental = algo == "hdagg" and isinstance(
                        self.schedule_cache, IncrementalScheduleCache
                    )
                    key = None
                    cached = None
                    if self.schedule_cache is not None:
                        key = schedule_key(
                            g,
                            kernel=kname,
                            algorithm=algo,
                            p=machine.n_cores,
                            epsilon=self.epsilon if uses_epsilon else None,
                            backend=backend_desc,
                        )
                        if not incremental:
                            # the incremental path looks the key up itself
                            # inside acquire(); probing here too would
                            # double-count hits and misses
                            cached = self.schedule_cache.get(key)
                    t0 = time.perf_counter()
                    if cached is not None and self.validate:
                        # hits are re-verified without touching their meta:
                        # a corrupted entry is dropped and re-inspected
                        report = verify_dependences(
                            cached, g, max_witnesses=1, stamp_meta=False
                        )
                        if not report.ok:
                            self.schedule_cache.invalidate(key)
                            cached = None
                    used_algo = algo
                    degraded = False
                    degraded_from = ""
                    repaired = False
                    acquired = False
                    if cached is not None:
                        schedule = cached
                    elif incremental:
                        family = family_key(
                            kernel=kname,
                            algorithm=algo,
                            p=machine.n_cores,
                            epsilon=self.epsilon,
                            backend=backend_desc,
                            label=spec.name,
                        )
                        for _ in range(2):
                            schedule, source = self.schedule_cache.acquire(
                                key,
                                family,
                                g,
                                cost,
                                p=machine.n_cores,
                                epsilon=self.epsilon,
                                backend=self.backend,
                            )
                            if source == "hit" and self.validate:
                                report = verify_dependences(
                                    schedule, g, max_witnesses=1, stamp_meta=False
                                )
                                if not report.ok:
                                    # corrupted hit: drop it and re-acquire —
                                    # the retry repairs or re-inspects
                                    self.schedule_cache.invalidate(key)
                                    continue
                            break
                        if source != "hit" and self.validate:
                            assert_schedule_safe(schedule, g)
                        cached = schedule if source == "hit" else None
                        repaired = source == "repaired"
                        acquired = True
                    elif self.fallback:
                        outcome = inspect_with_fallback(
                            algo,
                            g,
                            cost,
                            machine.n_cores,
                            epsilon=self.epsilon if uses_epsilon else None,
                            budget=self.inspector_budget,
                            validate=self.validate,
                            backend=self.backend if algo == "hdagg" else None,
                        )
                        schedule = outcome.schedule
                        used_algo = outcome.algorithm
                        degraded = outcome.degraded
                        degraded_from = outcome.degraded_from
                    else:
                        fault_point("inspector", label=algo)
                        if algo == "hdagg":
                            schedule = SCHEDULERS[algo](
                                g,
                                cost,
                                machine.n_cores,
                                epsilon=self.epsilon,
                                backend=self.backend,
                            )
                        elif uses_epsilon:
                            schedule = SCHEDULERS[algo](
                                g, cost, machine.n_cores, epsilon=self.epsilon
                            )
                        else:
                            schedule = SCHEDULERS[algo](g, cost, machine.n_cores)
                        if self.validate:
                            # structural check + dependence witness extraction;
                            # stamps "verify" into meta["stage_seconds"] so the
                            # verifier cost lands in RunRecord.stage_seconds
                            assert_schedule_safe(schedule, g)
                    inspector_seconds = time.perf_counter() - t0
                    if key is not None and cached is None and not degraded and not acquired:
                        # a degraded schedule must not poison the cache entry
                        # of the algorithm that failed to produce it; the
                        # incremental path already stored via acquire()
                        self.schedule_cache.put(key, schedule)
                    sim = simulate(schedule, g, cost, memory, machine)
                    serial = serial_results[machine.name]
                    insp_cycles = inspector_cost_model(used_algo, g, schedule)
                    if sim.makespan_cycles > 0:
                        speedup = serial.makespan_cycles / sim.makespan_cycles
                    elif serial.makespan_cycles <= 0:
                        warnings.warn(
                            f"{spec.name}/{kname}/{algo}: zero-cycle simulation; "
                            "speedup defined as 1.0",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        speedup = 1.0
                    else:
                        speedup = float("inf")
                    records.append(
                        RunRecord(
                            matrix=spec.name,
                            family=spec.family,
                            kernel=kname,
                            algorithm=used_algo,
                            machine=machine.name,
                            n=g.n,
                            nnz=ctx.matrix.nnz,
                            n_wavefronts=shape.n_wavefronts,
                            average_parallelism=shape.average_parallelism,
                            nnz_per_wavefront=ctx.matrix.nnz / max(1, shape.n_wavefronts),
                            speedup=speedup,
                            makespan_cycles=sim.makespan_cycles,
                            serial_cycles=serial.makespan_cycles,
                            avg_memory_access_latency=sim.avg_memory_access_latency,
                            hit_rate=sim.hit_rate,
                            potential_gain=sim.potential_gain,
                            pgp=accumulated_pgp(schedule, cost),
                            equivalent_syncs=equivalent_p2p_syncs(sim, machine.n_cores),
                            n_barriers=sim.n_barriers,
                            n_p2p_syncs=sim.n_p2p_syncs,
                            imbalance_ratio=imbalance_ratio(schedule, machine.n_cores),
                            inspector_cycles=insp_cycles,
                            nre=nre(insp_cycles, serial, sim),
                            schedule_levels=schedule.n_levels,
                            schedule_partitions=schedule.n_partitions,
                            fine_grained=schedule.fine_grained,
                            inspector_seconds=inspector_seconds,
                            # a cache hit never re-ran the inspector stages:
                            # copying the producer's stale stage timings here
                            # would make sum(stage_seconds) exceed the
                            # measured inspector_seconds, so a hit reports
                            # only the re-verification it actually paid for
                            stage_seconds=(
                                {"verify": inspector_seconds}
                                if cached is not None
                                else dict(schedule.meta.get("stage_seconds", {}))
                            ),
                            schedule_cached=cached is not None,
                            degraded=degraded,
                            degraded_from=degraded_from,
                            backend=str(schedule.meta.get("backend", "")),
                            schedule_repaired=repaired,
                        )
                    )
        return records

    # ------------------------------------------------------------------
    def run_suite(
        self,
        specs: Sequence[MatrixSpec],
        *,
        progress: bool = False,
        n_jobs: int = 1,
        isolate_failures: bool = False,
        failures: Optional[List[FailureRecord]] = None,
        journal: Optional[Union[RunJournal, str]] = None,
        max_retries: int = 2,
        retry_base_delay: float = 0.1,
        worker_timeout: Optional[float] = None,
    ) -> List[RunRecord]:
        """Run the grid over many matrices; flat record list.

        ``n_jobs > 1`` fans the per-matrix work over a fork pool with
        streamed progress (rows come back in spec order either way, so
        downstream tables are identical whichever mode produced them).

        ``isolate_failures`` turns a failing matrix into a structured
        :class:`FailureRecord` (collected into ``failures`` when given)
        while the rest of the grid continues; without it the first failure
        raises, always naming the matrix.  ``journal`` (a path or
        :class:`RunJournal`) checkpoints each finished matrix to JSONL;
        matrices already checkpointed are replayed from the journal
        verbatim, so a killed run resumes bit-identically.  Crashed or
        hung pool workers (detected via ``worker_timeout`` seconds without
        a result) are retried serially in the parent up to ``max_retries``
        times with exponential backoff starting at ``retry_base_delay``.
        """
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        specs = list(specs)
        owns_journal = journal is not None and not isinstance(journal, RunJournal)
        if owns_journal:
            journal = RunJournal(
                journal,
                fingerprint=self.config_fingerprint(specs),
                resume=True,
            )
        failures_out: List[FailureRecord] = failures if failures is not None else []
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = None  # spawn cannot inherit matrix builders; run serially
        try:
            if n_jobs == 1 or len(specs) <= 1 or ctx is None:
                return self._run_suite_serial(
                    specs,
                    progress=progress,
                    isolate_failures=isolate_failures,
                    failures_out=failures_out,
                    journal=journal,
                )
            return self._run_suite_pool(
                specs,
                ctx=ctx,
                n_jobs=n_jobs,
                progress=progress,
                isolate_failures=isolate_failures,
                failures_out=failures_out,
                journal=journal,
                max_retries=max_retries,
                retry_base_delay=retry_base_delay,
                worker_timeout=worker_timeout,
            )
        finally:
            if owns_journal:
                journal.close()

    # ------------------------------------------------------------------
    def _journal_records(self, journal: RunJournal, name: str) -> List[RunRecord]:
        from .storage import record_from_blob

        return [record_from_blob(blob) for blob in journal.record_blobs_for(name)]

    def _checkpoint(self, journal: Optional[RunJournal], name: str, records: List[RunRecord]) -> None:
        if journal is None:
            return
        from .storage import record_to_blob

        journal.append_matrix(name, [record_to_blob(r) for r in records])

    def _isolate(
        self,
        spec: MatrixSpec,
        exc: BaseException,
        *,
        stage: str,
        attempts: int,
        isolate_failures: bool,
        failures_out: List[FailureRecord],
        journal: Optional[RunJournal],
        progress: bool,
    ) -> None:
        """Fold one matrix failure into a structured row, or re-raise."""
        cause = exc.last if isinstance(exc, RetryExhausted) else exc
        record = FailureRecord(
            matrix=spec.name,
            family=spec.family,
            stage=stage,
            error_type=type(cause).__name__,
            message=str(cause),
            attempts=attempts,
            site=getattr(cause, "site", None),
        )
        if not isolate_failures:
            raise RuntimeError(f"matrix {spec.name!r} failed: {record.describe()}") from exc
        failures_out.append(record)
        if journal is not None:
            journal.append_failure(record.as_dict())
        if progress:
            print(f"    {spec.name} FAILED: {record.error_type}: {record.message}", flush=True)

    def _run_suite_serial(
        self,
        specs: List[MatrixSpec],
        *,
        progress: bool,
        isolate_failures: bool,
        failures_out: List[FailureRecord],
        journal: Optional[RunJournal],
    ) -> List[RunRecord]:
        out: List[RunRecord] = []
        for i, spec in enumerate(specs):
            if journal is not None and journal.has(spec.name):
                if progress:
                    print(f"[{i + 1}/{len(specs)}] {spec.name} (from journal)", flush=True)
                out.extend(self._journal_records(journal, spec.name))
                continue
            if progress:
                print(f"[{i + 1}/{len(specs)}] {spec.name}", flush=True)
            try:
                recs = self.run_matrix(spec)
            except Exception as exc:
                self._isolate(
                    spec,
                    exc,
                    stage="run",
                    attempts=1,
                    isolate_failures=isolate_failures,
                    failures_out=failures_out,
                    journal=journal,
                    progress=progress,
                )
                continue
            out.extend(recs)
            self._checkpoint(journal, spec.name, recs)
        return out

    def _run_suite_pool(
        self,
        specs: List[MatrixSpec],
        *,
        ctx,
        n_jobs: int,
        progress: bool,
        isolate_failures: bool,
        failures_out: List[FailureRecord],
        journal: Optional[RunJournal],
        max_retries: int,
        retry_base_delay: float,
        worker_timeout: Optional[float],
    ) -> List[RunRecord]:
        # Matrix builders (closures) don't pickle; fork workers inherit the
        # payload through this module global and receive only an index.
        global _POOL_PAYLOAD
        if _POOL_PAYLOAD is not None:
            raise RuntimeError(
                "Harness.run_suite(n_jobs>1) is already active in this process; "
                "nested or concurrent pool runs would clobber the shared worker "
                "payload — run them sequentially or with n_jobs=1"
            )
        results: Dict[int, List[RunRecord]] = {}
        pending: List[int] = []
        for i, spec in enumerate(specs):
            if journal is not None and journal.has(spec.name):
                results[i] = self._journal_records(journal, spec.name)
            else:
                pending.append(i)
        #: pool-side failures to resolve serially after the pool closes:
        #: index -> ("error", matrix, type, message, traceback) | ("crash", ...)
        deferred: Dict[int, tuple] = {}
        _POOL_PAYLOAD = (self, specs)
        try:
            if pending:
                with ctx.Pool(processes=min(n_jobs, len(pending))) as pool:
                    it = pool.imap(_run_matrix_safely, pending)
                    for pos, i in enumerate(pending):
                        spec = specs[i]
                        try:
                            if worker_timeout is not None:
                                payload = it.next(timeout=worker_timeout)
                            else:
                                payload = next(it)
                        except multiprocessing.TimeoutError:
                            # the worker crashed or hung: the pool's result
                            # stream is unrecoverable, so every matrix from
                            # here on is resolved serially in the parent
                            pool.terminate()
                            for j in pending[pos:]:
                                deferred[j] = (
                                    "crash",
                                    specs[j].name,
                                    "TimeoutError",
                                    f"pool worker returned no result within {worker_timeout}s",
                                    "",
                                )
                            break
                        if payload[0] == "ok":
                            results[i] = payload[1]
                            if progress:
                                print(
                                    f"[{i + 1}/{len(specs)}] {spec.name}", flush=True
                                )
                            self._checkpoint(journal, spec.name, results[i])
                        else:
                            deferred[i] = payload
        finally:
            _POOL_PAYLOAD = None
        # resolve pool-side failures serially, in spec order
        for i in sorted(deferred):
            spec = specs[i]
            kind, _, etype, msg, tb = deferred[i]
            if progress:
                print(
                    f"[{i + 1}/{len(specs)}] {spec.name} "
                    f"(pool worker {'crashed' if kind == 'crash' else 'failed'}: "
                    f"{etype}; re-running serially)",
                    flush=True,
                )
            retries = max_retries if kind == "crash" else 0
            attempts = 2 if kind == "error" else 1  # the worker attempt counts
            try:
                recs = retry_with_backoff(
                    lambda s=spec: self.run_matrix(s),
                    retries=retries,
                    base_delay=retry_base_delay,
                )
            except Exception as exc:
                total = attempts + (retries if isinstance(exc, RetryExhausted) else 0)
                self._isolate(
                    spec,
                    exc,
                    stage="worker",
                    attempts=total,
                    isolate_failures=isolate_failures,
                    failures_out=failures_out,
                    journal=journal,
                    progress=progress,
                )
                continue
            results[i] = recs
            self._checkpoint(journal, spec.name, recs)
        out: List[RunRecord] = []
        for i in range(len(specs)):
            out.extend(results.get(i, []))
        return out


#: (harness, specs) visible to fork workers; see Harness.run_suite
_POOL_PAYLOAD: Optional[tuple] = None


def _run_matrix_safely(index: int) -> tuple:
    """Module-level pool worker: run one matrix of the inherited payload.

    Exceptions are returned as a structured payload naming the matrix (a
    bare pool traceback says nothing about which matrix died); only a hard
    crash (injected ``pool.worker`` death, OOM-kill) leaves no payload.
    """
    harness, specs = _POOL_PAYLOAD
    spec = specs[index]
    fault_point("pool.worker", label=spec.name)
    try:
        return ("ok", harness.run_matrix(spec))
    except Exception as exc:
        return ("error", spec.name, type(exc).__name__, str(exc), traceback.format_exc())


def _run_matrix_at(index: int) -> List[RunRecord]:
    """Back-compat pool worker: run one matrix, raising on failure."""
    harness, specs = _POOL_PAYLOAD
    return harness.run_matrix(specs[index])
