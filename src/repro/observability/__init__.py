"""Observability: span tracing, per-core timelines, metrics registry.

The subsystem behind ``hdagg-bench trace`` (see DESIGN.md §10):

* :mod:`~repro.observability.spans` — nested span tracer;
* :mod:`~repro.observability.metrics` — counters / gauges / histograms;
* :mod:`~repro.observability.timeline` — per-core busy/wait/idle segments
  from the threaded executor and the simulator;
* :mod:`~repro.observability.export` — JSONL span logs and Chrome
  ``trace_event`` files (Perfetto-loadable);
* :mod:`~repro.observability.reports` — utilization, sync-cost, and
  trace-vs-model summaries;
* :mod:`~repro.observability.state` — the ambient enable switch
  (disabled by default; dormant cost is one attribute read per guarded
  site, gated by ``benchmarks/smoke_observability.py``);
* :mod:`~repro.observability.telemetry` — request-level serving
  telemetry: request ids, the span taxonomy, the closed metric catalog,
  request-tree validation, and JSONL metric snapshots (DESIGN.md §15);
* :mod:`~repro.observability.dashboard` — the self-contained HTML
  service dashboard behind ``hdagg-bench service dash``.
"""

from .export import chrome_trace, spans_to_jsonl, write_chrome_trace, write_spans_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .reports import (
    imbalance_comparison,
    imbalance_report,
    sync_breakdown,
    sync_report,
    utilization_report,
    utilization_rows,
)
from .spans import NULL_TRACER, ManualSpan, NullTracer, Span, SpanContext, Tracer
from .state import (
    STATE,
    current_registry,
    current_tracer,
    disable,
    enable,
    is_enabled,
    observed,
)
from .timeline import SEGMENT_KINDS, CoreTimeline, Segment, TimelineRecorder

from .telemetry import (
    LATENCY_BUCKETS,
    MetricsSnapshotter,
    RequestContext,
    catalog_violations,
    metric_catalog,
    next_request_id,
    request_trees,
    tier_breakdown,
    validate_request_trees,
)

__all__ = [
    "Span",
    "SpanContext",
    "ManualSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Segment",
    "TimelineRecorder",
    "CoreTimeline",
    "SEGMENT_KINDS",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "utilization_rows",
    "utilization_report",
    "sync_breakdown",
    "sync_report",
    "imbalance_comparison",
    "imbalance_report",
    "STATE",
    "enable",
    "disable",
    "is_enabled",
    "observed",
    "current_tracer",
    "current_registry",
    "RequestContext",
    "MetricsSnapshotter",
    "LATENCY_BUCKETS",
    "metric_catalog",
    "catalog_violations",
    "next_request_id",
    "request_trees",
    "tier_breakdown",
    "validate_request_trees",
]
