"""Incremental re-inspection: repaired schedules are bit-identical to full.

The hypothesis suite drives :func:`repair_schedule` with random pattern
deltas — single-row column changes, multi-row changes (optionally with a
cost perturbation), and row removals — and asserts the strict contract:
whatever path the repair takes (``repaired`` or guard-forced ``full``),
its schedule equals a from-scratch inspection of the new pattern down to
every vertex array, cut position, and accumulated-PGP float.
"""

import time

import numpy as np
import pytest
from hypothesis import event, given, settings
from hypothesis import strategies as st

from repro.analysis import assert_schedule_safe
from repro.core.incremental import (
    IncrementalScheduleCache,
    PatternDelta,
    changed_rows,
    diff_dag,
    family_key,
    inspect_with_artifacts,
    repair_schedule,
)
from repro.core.schedule_cache import schedule_key
from repro.graph import DAG, dag_from_matrix_lower
from repro.sparse import poisson2d

#: schedule meta keys that must agree exactly between repair and full
#: (stage_seconds is wall-clock and legitimately differs)
_META_KEYS = (
    "n_groups",
    "n_edges_original",
    "n_edges_reduced",
    "n_coarse_vertices",
    "n_coarse_wavefronts",
    "n_wavefronts",
    "accumulated_pgp",
    "epsilon",
    "backend",
)


def assert_same_schedule(a, b):
    assert a.n == b.n
    assert a.fine_grained == b.fine_grained
    assert a.sync == b.sync
    assert a.n_cores == b.n_cores
    assert len(a.levels) == len(b.levels)
    for la, lb in zip(a.levels, b.levels):
        assert len(la) == len(lb)
        for pa, pb in zip(la, lb):
            assert pa.core == pb.core
            assert np.array_equal(pa.vertices, pb.vertices)
    for key in _META_KEYS:
        assert a.meta.get(key) == b.meta.get(key), key
    assert list(a.meta["cut_positions"]) == list(b.meta["cut_positions"])


def assert_same_lbp(a, b):
    assert a.fine_grained == b.fine_grained
    assert a.accumulated_pgp == b.accumulated_pgp
    assert len(a.coarsened) == len(b.coarsened)
    for ca, cb in zip(a.coarsened, b.coarsened):
        assert (ca.wave_lo, ca.wave_hi) == (cb.wave_lo, cb.wave_hi)
        assert len(ca.components) == len(cb.components)
        for xa, xb in zip(ca.components, cb.components):
            assert np.array_equal(xa, xb)
        assert np.array_equal(ca.packing.loads, cb.packing.loads)
    da, db = a.decisions or [], b.decisions or []
    assert [(d.wave, d.pgp, d.merged) for d in da] == [
        (d.wave, d.pgp, d.merged) for d in db
    ]


def _random_dag(rng, n, m):
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src < dst
    return DAG.from_edges(n, src[keep], dst[keep])


def _rewrite_rows(g, rows, rng):
    """New DAG equal to ``g`` except the given rows' out-lists are random."""
    esrc, edst = g.edge_list()
    mask = ~np.isin(esrc, rows)
    srcs = [esrc[mask]]
    dsts = [edst[mask]]
    for r in rows:
        hi = g.n - int(r) - 1
        if hi <= 0:
            continue
        cnt = int(rng.integers(0, min(hi, 6) + 1))
        if cnt:
            targets = rng.choice(np.arange(r + 1, g.n), size=cnt, replace=False)
            srcs.append(np.full(cnt, r, dtype=targets.dtype))
            dsts.append(targets)
    return DAG.from_edges(g.n, np.concatenate(srcs), np.concatenate(dsts))


@st.composite
def delta_cases(draw):
    """(g_old, cost_old, g_new, cost_new, delta) for one repair problem."""
    n = draw(st.integers(4, 28))
    m = draw(st.integers(0, 90))
    seed = draw(st.integers(0, 2**32 - 1))
    kind = draw(st.sampled_from(["single", "multi", "remove"]))
    perturb_cost = draw(st.booleans())
    rng = np.random.default_rng(seed)
    g_old = _random_dag(rng, n, m)
    cost_old = rng.uniform(0.5, 2.0, size=n)
    if kind == "remove":
        k = int(rng.integers(1, min(3, n - 1) + 1))
        removed = rng.choice(n, size=k, replace=False)
        row_map = np.full(n, -1, dtype=np.int64)
        kept = np.setdiff1d(np.arange(n), removed)
        row_map[kept] = np.arange(kept.size)
        esrc, edst = g_old.edge_list()
        emask = (row_map[esrc] >= 0) & (row_map[edst] >= 0)
        g_new = DAG.from_edges(kept.size, row_map[esrc[emask]], row_map[edst[emask]])
        cost_new = cost_old[kept]
        delta = PatternDelta(n, kept.size, row_map)
    else:
        k = 1 if kind == "single" else int(rng.integers(2, 5))
        rows = rng.choice(n, size=min(k, n), replace=False)
        g_new = _rewrite_rows(g_old, rows, rng)
        cost_new = cost_old
        delta = diff_dag(g_old, g_new)
    if perturb_cost:
        cost_new = np.array(cost_new, copy=True)
        cost_new[int(rng.integers(0, cost_new.size))] += 1.0
    return g_old, cost_old, g_new, cost_new, delta


@given(delta_cases(), st.integers(1, 6), st.sampled_from([None, 0.05, 0.5]))
@settings(max_examples=60, deadline=None)
def test_repair_equals_full_reinspection(case, p, epsilon):
    g_old, cost_old, g_new, cost_new, delta = case
    kwargs = {} if epsilon is None else {"epsilon": epsilon}
    old = inspect_with_artifacts(g_old, cost_old, p, **kwargs)
    res = repair_schedule(old, g_new, cost_new, delta)
    full = inspect_with_artifacts(g_new, cost_new, p, **kwargs)
    event(f"mode={res.mode}")
    assert res.mode in ("repaired", "full")
    assert_same_schedule(res.schedule, full.schedule)
    if res.mode == "repaired":
        assert_same_lbp(res.artifacts.lbp, full.lbp)
        assert np.array_equal(res.artifacts.group_cost, full.group_cost)
        if not res.schedule.fine_grained:
            assert_schedule_safe(res.schedule, g_new)


@given(delta_cases(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_repaired_artifacts_seed_the_next_repair(case, p):
    # a repair's output artifacts must be as good an ancestor as a full
    # inspection's: chain two deltas and compare against scratch
    g_old, cost_old, g_new, cost_new, delta = case
    old = inspect_with_artifacts(g_old, cost_old, p)
    first = repair_schedule(old, g_new, cost_new, delta)
    rng = np.random.default_rng(7)
    g_third = _rewrite_rows(g_new, rng.choice(g_new.n, size=1), rng)
    second = repair_schedule(first.artifacts, g_third, cost_new)
    full = inspect_with_artifacts(g_third, cost_new, p)
    assert_same_schedule(second.schedule, full.schedule)


# ----------------------------------------------------------------------
# deltas and diffs
# ----------------------------------------------------------------------
def test_pattern_delta_validates_row_map():
    with pytest.raises(ValueError, match="length"):
        PatternDelta(3, 3, np.array([0, 1]))
    with pytest.raises(ValueError, match="out of range"):
        PatternDelta(2, 2, np.array([0, 5]))
    with pytest.raises(ValueError, match="increasing"):
        PatternDelta(3, 3, np.array([1, 0, 2]))
    d = PatternDelta(4, 3, np.array([0, -1, 1, 2]))
    assert list(d.removed) == [1]
    assert list(d.retained_old) == [0, 2, 3]
    assert list(d.retained_new) == [0, 1, 2]
    assert list(d.added) == []
    assert not d.is_identity
    assert PatternDelta.identity(4).is_identity


def test_diff_dag_requires_row_map_on_size_change():
    a = DAG.from_edges(3, [0], [1])
    b = DAG.from_edges(4, [0], [1])
    with pytest.raises(ValueError, match="row_map required"):
        diff_dag(a, b)
    assert diff_dag(a, DAG.from_edges(3, [0], [2])).is_identity


def test_changed_rows_sees_renumbered_targets():
    # old: 0->2, 1->2; drop row 2 entirely — both survivors' edge lists
    # vanish, and row 1 (renumbered from old row 1) reads as changed
    g_old = DAG.from_edges(3, [0, 1], [2, 2])
    g_new = DAG.from_edges(2, [], [])
    delta = PatternDelta(3, 2, np.array([0, 1, -1]))
    assert list(changed_rows(g_old, g_new, delta)) == [0, 1]
    # identical pattern: nothing changed
    same = diff_dag(g_old, g_old)
    assert changed_rows(g_old, g_old, same).size == 0


def test_oversized_delta_falls_back_to_full():
    rng = np.random.default_rng(0)
    g_old = dag_from_matrix_lower(poisson2d(12, seed=1))
    cost = np.ones(g_old.n)
    old = inspect_with_artifacts(g_old, cost, 4)
    assert not old.schedule.fine_grained
    # rewrite most rows: dirty fraction blows the splice budget
    g_new = _rewrite_rows(g_old, np.arange(g_old.n - 10), rng)
    res = repair_schedule(old, g_new, cost)
    assert res.mode == "full"
    assert "dirty fraction" in res.stats["reason"]
    full = inspect_with_artifacts(g_new, cost, 4)
    assert_same_schedule(res.schedule, full.schedule)


# ----------------------------------------------------------------------
# cache wiring
# ----------------------------------------------------------------------
def _key_for(g, cost, p, backend=""):
    return schedule_key(g, kernel="t", algorithm="hdagg", p=p, cost=cost,
                        backend=backend)


def test_acquire_full_then_repair_then_hit():
    rng = np.random.default_rng(1)
    g1 = dag_from_matrix_lower(poisson2d(10, seed=1))
    cost = np.ones(g1.n)
    cache = IncrementalScheduleCache()
    fam = family_key(kernel="t", p=4, label="poisson10")
    s1, src1 = cache.acquire(_key_for(g1, cost, 4), fam, g1, cost, p=4)
    assert src1 == "full"
    g2 = _rewrite_rows(g1, np.array([g1.n // 2]), rng)
    s2, src2 = cache.acquire(_key_for(g2, cost, 4), fam, g2, cost, p=4)
    assert src2 in ("repaired", "full")
    assert_same_schedule(s2, inspect_with_artifacts(g2, cost, 4).schedule)
    s3, src3 = cache.acquire(_key_for(g2, cost, 4), fam, g2, cost, p=4)
    assert src3 == "hit"
    assert s3 is s2
    assert cache.repairs + cache.repair_fulls == 1
    cache.clear()
    assert cache.artifacts_for(fam) is None
    assert cache.repairs == 0


def test_family_key_separates_parameters():
    base = dict(kernel="sptrsv", p=8, epsilon=0.1, backend="numpy", label="m")
    k = family_key(**base)
    assert family_key(**{**base, "p": 4}) != k
    assert family_key(**{**base, "epsilon": 0.2}) != k
    assert family_key(**{**base, "backend": "compiled"}) != k
    assert family_key(**{**base, "label": "other"}) != k
    assert family_key(**{**base, "kernel": "spic0"}) != k
    assert family_key(**base) == k


@pytest.mark.flaky
def test_repair_beats_full_on_mesh():
    # the documented budget configuration (natural-ordered mesh, p=8,
    # 5-row delta) lands near 0.22x in practice; assert a generous 0.8x so
    # only a broken repair path — not scheduler noise — can fail this
    g = dag_from_matrix_lower(poisson2d(96, seed=1))
    cost = np.ones(g.n)
    old = inspect_with_artifacts(g, cost, 8)
    # drop one dependence from each of 5 random rows — the local,
    # factorization-update-shaped delta the budget is stated for
    rng = np.random.default_rng(0)
    keep = np.ones(g.indices.size, dtype=bool)
    for r in rng.choice(g.n, size=5, replace=False):
        lo, hi = int(g.indptr[r]), int(g.indptr[r + 1])
        if hi > lo:
            keep[int(rng.integers(lo, hi))] = False
    esrc, edst = g.edge_list()
    g_new = DAG.from_edges(g.n, esrc[keep], edst[keep])
    res = repair_schedule(old, g_new, cost)
    assert res.mode == "repaired"
    assert res.stats["n_reused_cws"] > res.stats["n_live_cws"]
    t_rep, t_full = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        repair_schedule(old, g_new, cost)
        t_rep.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        inspect_with_artifacts(g_new, cost, 8)
        t_full.append(time.perf_counter() - t0)
    assert min(t_rep) < 0.8 * min(t_full), (min(t_rep), min(t_full))
