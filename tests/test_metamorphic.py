"""Metamorphic tests: transformations with predictable consequences.

Instead of asserting absolute values, these assert how known input
transformations must move the outputs — a strong net for subtle
inspector/simulator bugs.
"""

import numpy as np
import pytest

from repro.core import accumulated_pgp, hdagg
from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.metrics import weighted_critical_path
from repro.runtime import LAPTOP4, simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import csr_from_coo, poisson2d


def block_duplicate(a):
    """Block-diag of two copies of ``a`` (ids offset for the second)."""
    n = a.n_rows
    row_of = np.repeat(np.arange(n, dtype=np.int64), a.row_nnz())
    rows = np.concatenate([row_of, row_of + n])
    cols = np.concatenate([a.indices, a.indices + n])
    vals = np.concatenate([a.data, a.data])
    return csr_from_coo(2 * n, 2 * n, rows, cols, vals, sum_duplicates=False)


@pytest.fixture(scope="module")
def base():
    return poisson2d(10, seed=3)


def test_duplication_doubles_work_preserves_span(base):
    """Two independent copies: total cost doubles, critical path unchanged."""
    kernel = KERNELS["spilu0"]
    twin = block_duplicate(base)
    g1, g2 = kernel.dag(base), kernel.dag(twin)
    c1, c2 = kernel.cost(base), kernel.cost(twin)
    assert c2.sum() == pytest.approx(2 * c1.sum())
    assert weighted_critical_path(g2, c2) == pytest.approx(
        weighted_critical_path(g1, c1)
    )


def test_duplication_improves_or_preserves_balance(base):
    """An extra independent copy can only help HDagg fill its bins."""
    kernel = KERNELS["spilu0"]
    twin = block_duplicate(base)
    s1 = hdagg(kernel.dag(base), kernel.cost(base), 4)
    s2 = hdagg(kernel.dag(twin), kernel.cost(twin), 4)
    s2.validate(kernel.dag(twin))
    assert accumulated_pgp(s2, kernel.cost(twin)) <= (
        accumulated_pgp(s1, kernel.cost(base)) + 0.05
    )


def test_uniform_cost_scaling_scales_simulation(base):
    """Scaling every cost by k scales compute; memory unchanged — makespan
    grows but strictly less than k-fold."""
    kernel = KERNELS["sptrsv"]
    from repro.sparse import lower_triangle

    low = lower_triangle(base)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    mem = kernel.memory_model(low, g)
    s = SCHEDULERS["wavefront"](g, cost, 4)
    r1 = simulate(s, g, cost, mem, LAPTOP4)
    r2 = simulate(s, g, cost * 10.0, mem, LAPTOP4)
    assert r1.makespan_cycles < r2.makespan_cycles < 10 * r1.makespan_cycles
    # memory metrics untouched by pure compute scaling
    assert r1.hits == r2.hits and r1.misses == r2.misses


def test_adding_transitive_edges_changes_nothing_after_reduction(base):
    """Transitive edges do not change HDagg's grouping (step 1 removes
    them), so the coarse structure is identical."""
    kernel = KERNELS["spilu0"]
    g = kernel.dag(base)
    src, dst = g.edge_list()
    # add the 2-hop closure edges explicitly
    extra_src, extra_dst = [], []
    for v in range(g.n):
        for c1 in g.children(v):
            for c2 in g.children(int(c1)):
                extra_src.append(v)
                extra_dst.append(int(c2))
    g_fat = DAG.from_edges(
        g.n,
        np.concatenate([src, np.array(extra_src, dtype=np.int64)]),
        np.concatenate([dst, np.array(extra_dst, dtype=np.int64)]),
    )
    cost = kernel.cost(base)
    s_thin = hdagg(g, cost, 4)
    s_fat = hdagg(g_fat, cost, 4)
    s_fat.validate(g_fat)
    assert s_thin.meta["n_groups"] == s_fat.meta["n_groups"]
    assert s_thin.n_levels == s_fat.n_levels


def test_machine_with_more_cores_never_slower_for_wavefront(base):
    """More cores with the same schedule family: per-level spans shrink."""
    kernel = KERNELS["spilu0"]
    g = kernel.dag(base)
    cost = kernel.cost(base)
    mem = kernel.memory_model(base, g)
    r2 = simulate(SCHEDULERS["wavefront"](g, cost, 2), g, cost, mem, LAPTOP4.scaled(2))
    r4 = simulate(SCHEDULERS["wavefront"](g, cost, 4), g, cost, mem, LAPTOP4.scaled(4))
    # sync costs rise with p, so compare the work part only
    assert sum(r4.level_spans) <= sum(r2.level_spans) * 1.3
