"""Deterministic, seeded fault injection.

Production hardening of an inspector-executor pipeline is only testable if
the failures themselves are reproducible: a chaos run that cannot be
replayed bit-for-bit cannot gate CI.  This module follows the mutation
harness's playbook (:mod:`repro.analysis.mutate`) — every injected fault is
chosen by a seeded RNG and fires at a *named site* on a *counted
occurrence*, so the same :class:`FaultPlan` always produces the same
failures in the same places.

The hook is :func:`fault_point`: instrumented code calls
``fault_point("site", payload=..., label=...)`` at each site; when no plan
is armed the call is a single module-global ``None`` check (the resilience
layer's dormant cost), and when a plan is armed the plan decides whether
this occurrence fires and with which action:

``raise``
    raise a :class:`FaultError` naming the site (hung-free failure path);
``stall``
    sleep ``duration`` seconds (inspector budget overruns, executor core
    stalls feeding the p2p deadlock detector);
``corrupt``
    return a deterministically corrupted variant of ``payload`` (malformed
    CSR inputs for :func:`repro.sparse.sanitize.sanitize_csr`, broken
    schedules from the schedule cache);
``exit``
    hard-kill the process via ``os._exit`` (fork pool-worker death).

This module intentionally imports nothing from the rest of :mod:`repro`
so any layer (sparse, core, runtime, suite) can instrument itself without
import cycles.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_SITES",
    "CSR_CORRUPTIONS",
    "FaultError",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "fault_point",
    "active_plan",
    "armed",
    "set_fault_observer",
    "corrupt_csr_arrays",
    "corrupt_schedule",
    "truncate_blob",
    "bit_flip_blob",
]

#: Every instrumented site and the actions it supports.  Keeping the
#: registry explicit makes a typo'd site name a construction-time error
#: rather than a fault that silently never fires.
FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    # harness inspection of one (algorithm, machine) cell
    "inspector": ("raise", "stall"),
    # inside one named HDagg inspector stage (label: the stage name); the
    # stall lands within that stage's StageTimer window, which is what the
    # perf-lab uses to exercise end-to-end regression *attribution*
    "inspector.stage": ("stall",),
    # threaded executor: worker body before processing a vertex
    "executor.worker": ("raise",),
    "executor.stall": ("stall",),
    # harness matrix preparation (payload: the built CSRMatrix)
    "harness.prepare": ("corrupt",),
    # schedule-cache hit (payload: the cached Schedule)
    "schedule_cache.get": ("corrupt",),
    # fork pool worker, before running its matrix
    "pool.worker": ("exit", "raise"),
    # run_matrix entry (suite-level isolation tests)
    "suite.matrix": ("raise",),
    # persistent schedule store: between the temp-file write and the
    # rename (payload: the encoded record bytes).  ``corrupt`` truncates
    # the bytes that reach disk (a torn write that became visible);
    # ``raise`` simulates a kill before the rename (temp litter only)
    "store.torn_write": ("raise", "corrupt"),
    # persistent schedule store: silent media corruption of the record
    # bytes before they are written (payload: the encoded record bytes)
    "store.bit_flip": ("corrupt",),
    # persistent schedule store: kill between the record rename and the
    # manifest update (the record exists on disk, the index missed it)
    "store.stale_manifest": ("raise",),
    # serving front door: inspection worker death mid-request
    "service.worker_crash": ("raise",),
}

#: Malformed-CSR classes :func:`corrupt_csr_arrays` can produce.
CSR_CORRUPTIONS = (
    "indptr_regression",
    "col_out_of_range",
    "col_duplicate",
    "nan_data",
    "inf_data",
    "drop_diagonal",
)

#: Exit status used by the ``exit`` action so tests can tell an injected
#: worker death from an organic crash.
FAULT_EXIT_CODE = 70


class FaultError(RuntimeError):
    """An injected fault fired with the ``raise`` action.

    Attributes ``site``, ``label``, and ``occurrence`` identify exactly
    which :func:`fault_point` call fired, so chaos tests can assert the
    failure surfaced from the intended site.
    """

    def __init__(self, site: str, *, label: Optional[str] = None, occurrence: int = 0) -> None:
        detail = f" (label={label!r})" if label is not None else ""
        super().__init__(f"injected fault at site {site!r}, occurrence {occurrence}{detail}")
        self.site = site
        self.label = label
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where, what, and on which occurrences.

    ``at`` is the zero-based occurrence index (per site, counted across the
    plan's lifetime) of the first firing; ``times`` is how many consecutive
    occurrences fire (``-1`` means every occurrence from ``at`` on).
    ``match`` restricts firing to calls whose ``label`` equals it — e.g.
    one specific matrix name or core id.
    """

    site: str
    action: str
    at: int = 0
    times: int = 1
    match: Optional[str] = None
    duration: float = 0.25

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}")
        if self.action not in FAULT_SITES[self.site]:
            raise ValueError(
                f"site {self.site!r} does not support action {self.action!r} "
                f"(supported: {FAULT_SITES[self.site]})"
            )
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be positive or -1 (unbounded)")

    def fires_at(self, occurrence: int, label: Optional[str]) -> bool:
        """True when this spec fires for the given site occurrence."""
        if self.match is not None and self.match != label:
            return False
        if occurrence < self.at:
            return False
        return self.times == -1 or occurrence < self.at + self.times


@dataclass(frozen=True)
class FaultEvent:
    """Log entry of one fired fault (kept on ``FaultPlan.fired``)."""

    site: str
    action: str
    occurrence: int
    label: Optional[str] = None


class FaultPlan:
    """A seeded, deterministic set of faults to inject.

    The plan owns one ``random.Random(seed)`` used for every corruption
    decision, and per-site occurrence counters, so two runs armed with
    ``FaultPlan(specs, seed=s)`` inject byte-identical faults.  Arm it with
    :func:`armed` (a context manager); :func:`fault_point` consults the
    armed plan.
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.fired: List[FaultEvent] = []
        self._counts: Dict[str, int] = {}
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        sites: Sequence[str] = ("inspector", "harness.prepare", "schedule_cache.get", "suite.matrix"),
        n_faults: int = 3,
        stall_seconds: float = 0.05,
    ) -> "FaultPlan":
        """A deterministic random plan for chaos runs (``--faults SEED``).

        Draws ``n_faults`` (site, action, occurrence) triples from the
        in-process sites — the defaults exclude ``exit``/executor sites,
        which only make sense under a pool or the threaded executor.
        """
        rng = random.Random(int(seed))
        specs = []
        for _ in range(n_faults):
            site = rng.choice(list(sites))
            action = rng.choice(FAULT_SITES[site])
            specs.append(
                FaultSpec(
                    site,
                    action,
                    at=rng.randrange(0, 6),
                    duration=stall_seconds,
                )
            )
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------
    def fire(self, site: str, *, payload: Any = None, label: Optional[str] = None) -> Any:
        """Decide and execute the fault (if any) for one site occurrence.

        Returns a corrupted payload for ``corrupt`` actions, else ``None``.
        Raises :class:`FaultError` for ``raise`` actions.
        """
        specs = self._by_site.get(site)
        if not specs:
            return None
        with self._lock:
            occurrence = self._counts.get(site, 0)
            self._counts[site] = occurrence + 1
            matched = [s for s in specs if s.fires_at(occurrence, label)]
            if not matched:
                return None
            for spec in matched:
                self.fired.append(FaultEvent(site, spec.action, occurrence, label))
        observer = _OBSERVER
        if observer is not None:
            for spec in matched:
                observer(site, spec.action, label)
        result = None
        for spec in matched:
            if spec.action == "raise":
                raise FaultError(site, label=label, occurrence=occurrence)
            if spec.action == "stall":
                time.sleep(spec.duration)
            elif spec.action == "exit":
                os._exit(FAULT_EXIT_CODE)
            elif spec.action == "corrupt":
                with self._lock:
                    result = self._corrupt(site, payload)
        return result

    def _corrupt(self, site: str, payload: Any) -> Any:
        if payload is None:
            return None
        if site == "harness.prepare":
            mode = self.rng.choice(CSR_CORRUPTIONS)
            return corrupt_csr_arrays(payload, mode, self.rng)
        if site == "schedule_cache.get":
            return corrupt_schedule(payload, self.rng)
        if site == "store.torn_write":
            return truncate_blob(payload, self.rng)
        if site == "store.bit_flip":
            return bit_flip_blob(payload, self.rng)
        return None

    def describe(self) -> str:
        """One line per planned fault — for chaos-run logs."""
        lines = [f"FaultPlan(seed={self.seed}, {len(self.specs)} faults):"]
        for s in self.specs:
            window = "all" if s.times == -1 else f"{s.at}..{s.at + s.times - 1}"
            match = f" match={s.match!r}" if s.match else ""
            lines.append(f"  {s.site}: {s.action} @ occurrence {window}{match}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# corruption primitives (deterministic under the plan's RNG)
# ----------------------------------------------------------------------
def corrupt_csr_arrays(a, mode: str, rng: random.Random):
    """Return ``(n_rows, n_cols, indptr, indices, data)`` with one defect.

    ``a`` is any CSR-shaped object (``n_rows``/``n_cols``/``indptr``/
    ``indices``/``data`` attributes).  The result is raw arrays — it cannot
    be a :class:`~repro.sparse.csr.CSRMatrix`, whose constructor enforces
    the very invariants being broken — ready to feed ``sanitize_csr``.
    """
    indptr = np.array(a.indptr, dtype=np.int64, copy=True)
    indices = np.array(a.indices, dtype=np.int64, copy=True)
    data = np.array(a.data, dtype=np.float64, copy=True)
    n_rows, n_cols = int(a.n_rows), int(a.n_cols)
    nnz = indices.shape[0]
    if mode not in CSR_CORRUPTIONS:
        raise ValueError(f"unknown CSR corruption {mode!r}; known: {CSR_CORRUPTIONS}")
    if mode == "indptr_regression" and n_rows >= 2:
        i = rng.randrange(1, n_rows)
        indptr[i] = indptr[i - 1] - 1
    elif mode == "col_out_of_range" and nnz:
        indices[rng.randrange(nnz)] = n_cols + 3
    elif mode == "col_duplicate" and nnz:
        wide = np.nonzero(np.diff(indptr) >= 2)[0]
        if wide.size:
            row = int(wide[rng.randrange(wide.size)])
            lo = int(indptr[row])
            indices[lo + 1] = indices[lo]
        else:
            indices[rng.randrange(nnz)] = n_cols + 3
    elif mode == "nan_data" and nnz:
        data[rng.randrange(nnz)] = np.nan
    elif mode == "inf_data" and nnz:
        data[rng.randrange(nnz)] = np.inf
    elif mode == "drop_diagonal" and nnz and n_rows:
        row = rng.randrange(n_rows)
        lo, hi = int(indptr[row]), int(indptr[row + 1])
        hit = np.nonzero(indices[lo:hi] == row)[0]
        if hit.size:
            k = lo + int(hit[0])
            indices = np.delete(indices, k)
            data = np.delete(data, k)
            indptr[row + 1 :] -= 1
    return (n_rows, n_cols, indptr, indices, data)


def truncate_blob(data: bytes, rng: random.Random) -> bytes:
    """A torn-write variant of ``data``: a strict prefix cut at a random point.

    Models a crash mid-``write(2)``: some prefix of the record reached the
    platter and the rest never did.  The cut point is drawn by the plan's
    RNG so two chaos runs tear the same records at the same byte.
    """
    if not data:
        return data
    return bytes(data[: rng.randrange(0, len(data))])


def bit_flip_blob(data: bytes, rng: random.Random) -> bytes:
    """``data`` with one bit flipped at a seeded position (media corruption)."""
    if not data:
        return data
    out = bytearray(data)
    pos = rng.randrange(len(out))
    out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


def corrupt_schedule(schedule, rng: random.Random):
    """A deterministically broken variant of a cached schedule.

    Drops the last coarsened wavefront, so the result no longer covers the
    vertex set — a structural defect ``assert_schedule_safe`` refutes on
    any DAG, which is what makes cache-corruption chaos tests reliable.
    """
    from dataclasses import replace

    if not schedule.levels:
        return schedule
    return replace(schedule, levels=list(schedule.levels[:-1]), meta=dict(schedule.meta))


# ----------------------------------------------------------------------
# the global hook
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None

#: Optional ``(site, action, label) -> None`` callback invoked for every
#: *fired* fault.  The observability layer installs a metrics counter here
#: (:mod:`repro.observability.state`); keeping it an injected callable
#: preserves this module's no-repro-imports layering.
_OBSERVER = None


def set_fault_observer(observer) -> None:
    """Install (or clear, with ``None``) the fired-fault callback."""
    global _OBSERVER
    _OBSERVER = observer


def fault_point(site: str, *, payload: Any = None, label: Optional[str] = None) -> Any:
    """Fault-injection hook: a no-op unless a :class:`FaultPlan` is armed.

    Instrumented code ignores the return value except at ``corrupt`` sites,
    where a non-``None`` return replaces the payload.  The dormant cost is
    one global read and a ``None`` comparison.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, payload=payload, label=label)


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def armed(plan: Optional[FaultPlan]):
    """Arm ``plan`` for the duration of the block (``None`` is a no-op).

    Arming is process-global (fork pool workers inherit the armed plan);
    nesting two plans is refused — it would make occurrence counting, and
    therefore the injected faults, ambiguous.
    """
    global _ACTIVE
    if plan is None:
        yield None
        return
    if _ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already armed; disarm it before arming another")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
