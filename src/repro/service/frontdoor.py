"""Asyncio front door over the synchronous broker.

The broker's core is deliberately synchronous — inspectors are CPU-bound
numpy code, and single-flight rendezvous with plain threading primitives
is easy to reason about.  The front door adapts it to an async serving
loop: requests are dispatched onto a bounded thread pool via
``run_in_executor``, and *admission happens before dispatch* — when
``max_pending`` requests are already queued or running, new arrivals are
shed immediately with the structured :class:`AdmissionRejected` payload
instead of growing an unbounded queue (the classic overload failure:
every request eventually times out instead of most succeeding).

Two bounds compose, intentionally::

    FrontDoor(max_pending=...)     # total requests admitted concurrently
    ScheduleBroker(max_inflight=…) # concurrent *fresh inspections*

A burst of requests for cached structures sails through both; a burst of
novel structures is first capped by the pool, then by the broker's
inspection bound.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Sequence, Union

from ..observability.state import STATE as _OBS_STATE
from ..observability.state import current_tracer
from ..observability.telemetry import REQUEST_SPAN, RequestContext, next_request_id
from .broker import (
    AdmissionRejected,
    DeadlineExceeded,
    ScheduleBroker,
    ServeRequest,
    ServeResult,
    ServiceRejected,
)

__all__ = ["FrontDoor"]


class FrontDoor:
    """Bounded async request gateway for a :class:`ScheduleBroker`.

    Parameters
    ----------
    broker:
        The synchronous core doing the actual serving.
    max_workers:
        Thread-pool width — how many broker calls run concurrently.
    max_pending:
        Admission bound: queued + running requests.  Arrivals beyond it
        raise :class:`AdmissionRejected` without queueing.
    """

    def __init__(
        self,
        broker: ScheduleBroker,
        *,
        max_workers: int = 4,
        max_pending: int = 32,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.broker = broker
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="frontdoor"
        )
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._closed = False

    @property
    def pending(self) -> int:
        """Requests currently admitted (queued or running)."""
        with self._pending_lock:
            return self._pending

    async def submit(self, req: ServeRequest) -> ServeResult:
        """Serve one request, shedding immediately when over capacity.

        With the ambient observability switch on, each submission opens a
        request-root span on the event loop (a manual span — ``with``
        nesting cannot hold across ``await`` without interleaving tasks)
        and hands a :class:`RequestContext` to the broker so the worker
        thread's spans parent under it.  The root span is tagged with the
        structured outcome: the hit tier, ``shed``, or ``deadline``.
        """
        if self._closed:
            raise RuntimeError("front door is closed")
        tracer = current_tracer()
        span = None
        call = self.broker.request
        if tracer.enabled:
            rid = next_request_id()
            span = tracer.begin(
                REQUEST_SPAN, request_id=rid,
                algorithm=req.algorithm, kernel=req.kernel,
            )
            ctx = RequestContext(
                request_id=rid, parent=span.context, t_admit=tracer.clock()
            )
            call = functools.partial(self.broker.request, telemetry=ctx)
        try:
            with self._pending_lock:
                if self._pending >= self.max_pending:
                    if span is not None:
                        span.annotate(outcome="shed", shed_at="frontdoor")
                    if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
                        _OBS_STATE.registry.counter("service.sheds.frontdoor").inc()
                    raise AdmissionRejected(
                        f"{self._pending} requests pending (capacity {self.max_pending})",
                        pending=self._pending, capacity=self.max_pending,
                    )
                self._pending += 1
            try:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(self._pool, call, req)
                if span is not None:
                    span.annotate(outcome=result.source, degraded=result.degraded)
                return result
            except ServiceRejected as exc:
                if span is not None:
                    outcome = "deadline" if isinstance(exc, DeadlineExceeded) else "shed"
                    span.annotate(outcome=outcome)
                raise
            finally:
                with self._pending_lock:
                    self._pending -= 1
        finally:
            if span is not None:
                span.end()

    async def submit_many(
        self, requests: Sequence[ServeRequest]
    ) -> List[Union[ServeResult, BaseException]]:
        """Serve a batch concurrently; rejections come back as exceptions.

        The per-element type is ``ServeResult`` or the exception that
        request raised (``return_exceptions`` semantics) — callers bucket
        sheds/deadline misses without one failure poisoning the batch.
        """
        return await asyncio.gather(
            *(self.submit(r) for r in requests), return_exceptions=True
        )

    def close(self, *, wait: bool = True) -> None:
        """Stop admitting and shut the worker pool down."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    async def __aenter__(self) -> "FrontDoor":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
