"""One-call schedule verification: structure, dependences, numerics.

``verify_schedule`` bundles every check the framework can make against a
schedule into a single call with a structured verdict:

1. **structural** — partition cover, core uniqueness, size consistency
   (:meth:`Schedule.validate` with dependences off);
2. **dependences** — every DAG edge ordered correctly;
3. **numerics** — the kernel executed through the schedule (canonical order
   plus adversarial interleavings) matches the sequential reference.

Use it in tests of new inspectors, after deserialising a schedule from
elsewhere, or any time "is this schedule actually safe?" needs one answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..graph.dag import DAG
from ..kernels.base import KernelError, SparseKernel
from ..sparse.csr import CSRMatrix
from .schedule import Schedule, ScheduleError

__all__ = ["VerificationReport", "verify_schedule"]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_schedule`."""

    structural_ok: bool
    dependences_ok: bool
    numerics_ok: bool
    interleavings_checked: int
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Everything passed."""
        return self.structural_ok and self.dependences_ok and self.numerics_ok

    def raise_if_failed(self) -> None:
        """Raise :class:`ScheduleError` with every recorded failure."""
        if not self.ok:
            raise ScheduleError("; ".join(self.errors) or "verification failed")


def verify_schedule(
    kernel: SparseKernel,
    operand: CSRMatrix,
    schedule: Schedule,
    g: DAG | None = None,
    b: np.ndarray | None = None,
    *,
    interleavings: int = 2,
    rtol: float = 1e-9,
) -> VerificationReport:
    """Run all checks; never raises — inspect / ``raise_if_failed`` the report."""
    if g is None:
        g = kernel.dag(operand)
    errors: List[str] = []

    structural_ok = True
    try:
        schedule.validate(g, check_dependences=False)
    except ScheduleError as exc:
        structural_ok = False
        errors.append(f"structural: {exc}")

    dependences_ok = structural_ok
    if structural_ok:
        try:
            schedule.validate(g, check_dependences=True)
        except ScheduleError as exc:
            dependences_ok = False
            errors.append(f"dependences: {exc}")

    numerics_ok = False
    checked = 0
    if dependences_ok:
        from ..runtime.executor import execute_schedule

        try:
            reference = kernel.reference(operand, b)
            results = [execute_schedule(kernel, operand, schedule, b)]
            for seed in range(interleavings):
                results.append(
                    execute_schedule(kernel, operand, schedule, b, interleave_seed=seed)
                )
                checked += 1
            numerics_ok = True
            for got in results:
                ref_arr = reference.data if isinstance(reference, CSRMatrix) else reference
                got_arr = got.data if isinstance(got, CSRMatrix) else got
                if not np.allclose(got_arr, ref_arr, rtol=rtol, atol=1e-12):
                    numerics_ok = False
                    errors.append("numerics: scheduled result differs from reference")
                    break
        except (KernelError, ScheduleError, ValueError) as exc:
            numerics_ok = False
            errors.append(f"numerics: {exc}")

    return VerificationReport(
        structural_ok=structural_ok,
        dependences_ok=dependences_ok,
        numerics_ok=numerics_ok,
        interleavings_checked=checked,
        errors=errors,
    )
