"""Graceful degradation: inspector budgets and the fallback chain."""

import time

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.resilience.degrade import (
    FALLBACK_CHAIN,
    TERMINAL_FALLBACK,
    DegradationError,
    InspectorTimeout,
    fallback_chain,
    inspect_with_fallback,
    run_with_budget,
)
from repro.resilience.faults import FaultPlan, FaultSpec, armed
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle, poisson2d


@pytest.fixture(scope="module")
def problem():
    operand = lower_triangle(poisson2d(8, seed=3))
    kernel = KERNELS["sptrsv"]
    g = kernel.dag(operand)
    return g, kernel.cost(operand)


class TestFallbackChain:
    def test_every_chain_ends_in_serial(self):
        for algo in list(FALLBACK_CHAIN) + [TERMINAL_FALLBACK]:
            chain = fallback_chain(algo)
            assert chain[0] == algo
            assert chain[-1] == TERMINAL_FALLBACK
            assert len(chain) == len(set(chain))

    def test_hdagg_chain_shape(self):
        assert fallback_chain("hdagg") == ["hdagg", "wavefront", "serial"]
        assert fallback_chain("wavefront") == ["wavefront", "serial"]
        assert fallback_chain("serial") == ["serial"]


class TestRunWithBudget:
    def test_no_budget_is_direct_call(self):
        assert run_with_budget(lambda: 42, None) == 42

    def test_result_within_budget(self):
        assert run_with_budget(lambda: "ok", 5.0, algorithm="x") == "ok"

    def test_timeout_raises(self):
        t0 = time.perf_counter()
        with pytest.raises(InspectorTimeout) as exc_info:
            run_with_budget(lambda: time.sleep(5.0), 0.05, algorithm="slow")
        assert time.perf_counter() - t0 < 2.0
        assert exc_info.value.algorithm == "slow"
        assert exc_info.value.budget == pytest.approx(0.05)

    def test_worker_exception_reraised_on_caller(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            run_with_budget(boom, 5.0)


class TestInspectWithFallback:
    def test_success_path_is_not_degraded(self, problem):
        g, cost = problem
        outcome = inspect_with_fallback("hdagg", g, cost, 4, epsilon=0.5)
        assert outcome.algorithm == "hdagg"
        assert not outcome.degraded
        assert outcome.degraded_from == ""
        direct = SCHEDULERS["hdagg"](g, cost, 4, epsilon=0.5)
        assert (
            outcome.schedule.execution_order().tolist()
            == direct.execution_order().tolist()
        )

    def test_injected_exception_degrades_to_wavefront(self, problem):
        g, cost = problem
        plan = FaultPlan([FaultSpec("inspector", "raise", times=-1, match="hdagg")])
        with armed(plan):
            outcome = inspect_with_fallback("hdagg", g, cost, 4)
        assert outcome.degraded
        assert outcome.algorithm == "wavefront"
        assert outcome.requested == "hdagg"
        assert outcome.degraded_from == "hdagg"
        assert outcome.failures[0].error_type == "FaultError"

    def test_budget_timeout_degrades(self, problem):
        g, cost = problem
        plan = FaultPlan(
            [FaultSpec("inspector", "stall", times=-1, match="hdagg", duration=1.0)]
        )
        with armed(plan):
            outcome = inspect_with_fallback("hdagg", g, cost, 4, budget=0.1)
        assert outcome.degraded and outcome.algorithm == "wavefront"
        assert outcome.failures[0].error_type == "InspectorTimeout"

    def test_unsafe_schedule_is_refuted_and_degraded(self, problem, monkeypatch):
        import random

        from repro.resilience.faults import corrupt_schedule

        g, cost = problem
        real = SCHEDULERS["wavefront"]

        def bad_inspector(g_, cost_, p_, **kw):
            return corrupt_schedule(real(g_, cost_, p_), random.Random(0))

        monkeypatch.setitem(SCHEDULERS, "spmp", bad_inspector)
        outcome = inspect_with_fallback("spmp", g, cost, 4)
        assert outcome.degraded
        assert outcome.algorithm == "wavefront"
        assert outcome.degraded_from == "spmp"
        assert outcome.failures[0].error_type == "ScheduleError"

    def test_validate_false_accepts_without_verification(self, problem):
        g, cost = problem
        outcome = inspect_with_fallback("wavefront", g, cost, 4, validate=False)
        assert not outcome.degraded

    def test_whole_chain_failing_raises_degradation_error(self, problem):
        g, cost = problem
        plan = FaultPlan([FaultSpec("inspector", "raise", times=-1)])
        with armed(plan):
            with pytest.raises(DegradationError) as exc_info:
                inspect_with_fallback("hdagg", g, cost, 4)
        err = exc_info.value
        assert err.requested == "hdagg"
        assert [f.algorithm for f in err.failures] == ["hdagg", "wavefront", "serial"]

    def test_multi_hop_degradation_records_all_failures(self, problem):
        g, cost = problem
        plan = FaultPlan(
            [
                FaultSpec("inspector", "raise", times=-1, match="hdagg"),
                FaultSpec("inspector", "raise", times=-1, match="wavefront"),
            ]
        )
        with armed(plan):
            outcome = inspect_with_fallback("hdagg", g, cost, 4)
        assert outcome.algorithm == "serial"
        assert outcome.degraded_from == "hdagg,wavefront"
