"""Tests for symbolic Cholesky factorisation."""

import numpy as np
import pytest

from repro.sparse import csr_from_dense, lower_triangle, poisson2d, tridiagonal_spd
from repro.sparse.symbolic import (
    column_counts,
    elimination_tree_from_matrix,
    factor_pattern_spd,
    fill_in,
    is_chordal_pattern,
    symbolic_cholesky,
)


def dense_chol_pattern(a):
    """Oracle: pattern of the dense Cholesky factor (no cancellation)."""
    dense = a.to_dense()
    n = dense.shape[0]
    # boolean gaussian elimination on the lower triangle
    pat = dense != 0
    for k in range(n):
        rows = np.nonzero(pat[k + 1 :, k])[0] + k + 1
        for i in rows:
            pat[i, rows[rows <= i]] = True
    return np.tril(pat)


@pytest.fixture
def arrow():
    # arrowhead reversed: first row/col dense -> massive fill
    dense = np.eye(5) * 4
    dense[0, :] = 1.0
    dense[:, 0] = 1.0
    dense[0, 0] = 8.0
    return csr_from_dense(dense)


def test_etree_matches_dag_builder(mesh):
    """The matrix-level etree equals the DAG-level etree used by LBC."""
    from repro.graph import dag_from_matrix_lower
    from repro.schedulers import elimination_tree

    np.testing.assert_array_equal(
        elimination_tree_from_matrix(mesh),
        elimination_tree(dag_from_matrix_lower(mesh)),
    )


def test_symbolic_pattern_matches_dense_oracle(mesh3d_small, arrow):
    for a in (mesh3d_small, arrow):
        l = symbolic_cholesky(a)
        np.testing.assert_array_equal(l.to_dense() != 0, dense_chol_pattern(a))


def test_symbolic_matches_numeric_cholesky(mesh):
    """Numeric Cholesky nonzeros are a subset of (generically equal to)
    the symbolic pattern."""
    num = np.linalg.cholesky(mesh.to_dense())
    sym = symbolic_cholesky(mesh).to_dense() != 0
    assert np.all(sym[np.abs(num) > 1e-14])


def test_tridiagonal_has_no_fill(chain):
    assert fill_in(chain) == 0
    assert is_chordal_pattern(chain)


def test_arrowhead_reversed_fills_completely(arrow):
    l = symbolic_cholesky(arrow)
    # dense first column -> fully dense factor
    assert l.nnz == 5 * 6 // 2
    assert not is_chordal_pattern(arrow)


def test_mesh_fills(mesh):
    assert fill_in(mesh) > 0
    assert not is_chordal_pattern(mesh)


def test_column_counts_match_pattern(mesh):
    l = symbolic_cholesky(mesh)
    counts = np.bincount(l.indices, minlength=mesh.n_rows)
    np.testing.assert_array_equal(column_counts(mesh), counts)


def test_factor_includes_original_lower(mesh):
    l = symbolic_cholesky(mesh)
    low = lower_triangle(mesh)
    ld = l.to_dense() != 0
    assert np.all(ld[low.to_dense() != 0])


def test_factor_pattern_spd_is_chordal_and_spd(mesh):
    f = factor_pattern_spd(mesh, seed=3)
    assert is_chordal_pattern(f)
    eig = np.linalg.eigvalsh(f.to_dense())
    assert eig.min() > 0
    # pattern matches the symbolic factor (mirrored)
    np.testing.assert_array_equal(
        lower_triangle(f).indices, symbolic_cholesky(mesh).indices
    )


def test_factor_pattern_solve_has_tree_friendly_dag(mesh):
    """On a chordal pattern the etree drives LBC exactly (the class LBC is
    optimised for)."""
    from repro.graph import dag_from_matrix_lower
    from repro.schedulers import SCHEDULERS

    f = factor_pattern_spd(mesh, seed=3)
    g = dag_from_matrix_lower(f)
    s = SCHEDULERS["lbc"](g, np.ones(g.n), 4)
    s.validate(g)


def test_requires_square():
    with pytest.raises(ValueError):
        symbolic_cholesky(csr_from_dense(np.ones((2, 3))))
    with pytest.raises(ValueError):
        elimination_tree_from_matrix(csr_from_dense(np.ones((2, 3))))
