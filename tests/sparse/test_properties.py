"""Tests for structural matrix properties."""

import numpy as np

from repro.sparse import (
    bandwidth,
    csr_from_dense,
    density,
    diagonal_dominance_ratio,
    is_numerically_symmetric,
    is_structurally_symmetric,
    profile,
    summarize,
)


def test_structural_symmetry():
    sym = csr_from_dense(np.array([[1.0, 2], [3, 4]]))
    assert is_structurally_symmetric(sym)
    asym = csr_from_dense(np.array([[1.0, 2], [0, 4]]))
    assert not is_structurally_symmetric(asym)


def test_structural_symmetry_requires_square():
    assert not is_structurally_symmetric(csr_from_dense(np.ones((2, 3))))


def test_numerical_symmetry():
    assert is_numerically_symmetric(csr_from_dense(np.array([[1.0, 2], [2, 4]])))
    assert not is_numerically_symmetric(csr_from_dense(np.array([[1.0, 2], [3, 4]])))


def test_numerical_symmetry_tolerance():
    a = csr_from_dense(np.array([[1.0, 2.0], [2.0 + 1e-15, 4.0]]))
    assert is_numerically_symmetric(a)


def test_bandwidth():
    assert bandwidth(csr_from_dense(np.eye(3))) == 0
    assert bandwidth(csr_from_dense(np.array([[1.0, 0, 1], [0, 1, 0], [0, 0, 1]]))) == 2


def test_bandwidth_empty():
    assert bandwidth(csr_from_dense(np.zeros((3, 3)))) == 0


def test_profile():
    a = csr_from_dense(np.array([[1.0, 0, 0], [1, 1, 0], [1, 0, 1]]))
    assert profile(a) == 1 + 2


def test_density():
    assert density(csr_from_dense(np.eye(4))) == 4 / 16
    assert density(csr_from_dense(np.zeros((0, 5)))) == 0.0


def test_diagonal_dominance(mesh):
    # generators build strictly dominant matrices
    assert diagonal_dominance_ratio(mesh) == 1.0
    weak = csr_from_dense(np.array([[1.0, 5.0], [5.0, 1.0]]))
    assert diagonal_dominance_ratio(weak) == 0.0


def test_summarize(mesh):
    s = summarize(mesh)
    assert s.n == mesh.n_rows
    assert s.nnz == mesh.nnz
    assert s.structurally_symmetric
    assert s.max_nnz_per_row == int(mesh.row_nnz().max())
    assert 0 < s.density < 1
    assert "nnz" in str(s)
